//! Deliberate planning corruption — the oracle's negative controls.
//!
//! A validator that never fires is indistinguishable from a validator
//! that checks nothing, so the test suite (and `usep verify`'s
//! self-test) corrupts known-good plannings in targeted ways and
//! asserts the oracle reports the matching typed violation. These
//! helpers are the only intended users of
//! [`Schedule::from_events_unchecked`].

use usep_core::{EventId, Instance, Planning, Schedule, UserId};

/// The corruption repertoire. Each variant breaks exactly one class of
/// invariant (though collateral violations may follow — e.g. an
/// overload can also blow a budget).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// Duplicate the first assignment of some user.
    DuplicateAssignment,
    /// Reverse a multi-event schedule, breaking time order.
    ReverseSchedule,
    /// Assign one event to more users than its capacity.
    OverloadEvent,
    /// Append an event the user has zero utility for.
    ZeroUtilityAssignment,
}

impl Corruption {
    /// All corruption kinds.
    pub const ALL: [Corruption; 4] = [
        Corruption::DuplicateAssignment,
        Corruption::ReverseSchedule,
        Corruption::OverloadEvent,
        Corruption::ZeroUtilityAssignment,
    ];
}

/// Applies `kind` to a copy of `planning`, returning `None` when the
/// planning has no site for that corruption (e.g. no user with a
/// multi-event schedule to reverse).
pub fn corrupt(inst: &Instance, planning: &Planning, kind: Corruption) -> Option<Planning> {
    let mut schedules: Vec<Vec<EventId>> =
        planning.schedules().iter().map(|s| s.events().to_vec()).collect();
    match kind {
        Corruption::DuplicateAssignment => {
            let (u, v) = schedules
                .iter()
                .enumerate()
                .find_map(|(u, s)| s.first().map(|&v| (u, v)))?;
            schedules[u].push(v);
        }
        Corruption::ReverseSchedule => {
            let u = schedules.iter().position(|s| s.len() >= 2)?;
            schedules[u].reverse();
        }
        Corruption::OverloadEvent => {
            // pick the event whose capacity is easiest to exceed, then
            // append it to enough schedules that don't already hold it
            let (v, cap) = inst
                .event_ids()
                .map(|v| (v, inst.event(v).capacity))
                .min_by_key(|&(_, c)| c)?;
            let mut load: u32 =
                schedules.iter().filter(|s| s.contains(&v)).count() as u32;
            for s in schedules.iter_mut() {
                if load > cap {
                    break;
                }
                if !s.contains(&v) {
                    s.push(v);
                    load += 1;
                }
            }
            if load <= cap {
                return None; // not enough users to overload any event
            }
        }
        Corruption::ZeroUtilityAssignment => {
            let mut site = None;
            'outer: for u in inst.user_ids() {
                for v in inst.event_ids() {
                    if inst.mu(v, u) <= 0.0 && !schedules[u.index()].contains(&v) {
                        site = Some((u, v));
                        break 'outer;
                    }
                }
            }
            let (u, v) = site?;
            schedules[u.index()].push(v);
        }
    }
    Some(Planning::from_schedules(
        inst,
        schedules.into_iter().map(Schedule::from_events_unchecked).collect(),
    ))
}

/// Appends `v` to `u`'s schedule with no checks at all — the raw
/// corruption primitive for tests that need full control.
pub fn assign_unchecked(inst: &Instance, planning: &Planning, u: UserId, v: EventId) -> Planning {
    let schedules = planning
        .schedules()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut events = s.events().to_vec();
            if i == u.index() {
                events.push(v);
            }
            Schedule::from_events_unchecked(events)
        })
        .collect();
    Planning::from_schedules(inst, schedules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::check_planning;
    use crate::report::Violation;
    use usep_algos::{solve, Algorithm};
    use usep_gen::{generate, SyntheticConfig};
    use usep_trace::NOOP;

    fn setup() -> (Instance, Planning) {
        let inst = generate(&SyntheticConfig::tiny(), 11);
        let planning = solve(Algorithm::DeDPO, &inst);
        assert!(planning.num_assignments() > 0, "seed must yield a non-empty planning");
        (inst, planning)
    }

    #[test]
    fn duplicate_corruption_caught() {
        let (inst, p) = setup();
        let bad = corrupt(&inst, &p, Corruption::DuplicateAssignment).unwrap();
        let report = check_planning(&inst, &bad, &NOOP);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateAssignment { .. })));
    }

    #[test]
    fn reverse_corruption_caught() {
        let (inst, p) = setup();
        if let Some(bad) = corrupt(&inst, &p, Corruption::ReverseSchedule) {
            let report = check_planning(&inst, &bad, &NOOP);
            assert!(report.violations.iter().any(|v| matches!(
                v,
                Violation::OrderInfeasible { .. } | Violation::UnreachableLeg { .. }
            )));
        }
    }

    #[test]
    fn overload_corruption_caught() {
        let (inst, p) = setup();
        let bad = corrupt(&inst, &p, Corruption::OverloadEvent).unwrap();
        let report = check_planning(&inst, &bad, &NOOP);
        assert!(report.violations.iter().any(|v| matches!(v, Violation::Capacity { .. })));
    }

    #[test]
    fn zero_utility_corruption_caught() {
        let (inst, p) = setup();
        if let Some(bad) = corrupt(&inst, &p, Corruption::ZeroUtilityAssignment) {
            let report = check_planning(&inst, &bad, &NOOP);
            assert!(report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::ZeroUtility { .. })));
        }
    }

    #[test]
    fn assign_unchecked_touches_only_the_target_user() {
        let (inst, p) = setup();
        let bad = assign_unchecked(&inst, &p, UserId(0), EventId(0));
        assert_eq!(
            bad.schedule(UserId(0)).len(),
            p.schedule(UserId(0)).len() + 1
        );
        for u in inst.user_ids().skip(1) {
            assert_eq!(bad.schedule(u), p.schedule(u));
        }
    }
}
