//! Typed violation reports.
//!
//! Every anomaly the oracle can detect has its own variant carrying the
//! concrete numbers involved, so a failing fuzz run produces a bug
//! report ("event v3 holds 4 users against capacity 2"), not a boolean.

use serde::{Deserialize, Serialize};
use usep_core::{EventId, UserId};

/// One concrete violation found by the oracle.
///
/// The constraint variants mirror the four USEP constraints of §2 plus
/// the structural invariants a schedule must satisfy; the audit
/// variants come from the differential engine (omega cross-check,
/// exact/bound comparisons, Theorem-3 ratio) and the metamorphic suite.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// Constraint 1: event holds more users than its capacity.
    Capacity {
        /// The overfull event.
        event: EventId,
        /// Independently recounted attendance.
        assigned: u32,
        /// The event's capacity `c_v`.
        capacity: u32,
    },
    /// Constraint 2: a user's recomputed travel + fee total exceeds
    /// their budget.
    Budget {
        /// The over-budget user.
        user: UserId,
        /// From-scratch round-trip cost including fees.
        cost: u64,
        /// The user's budget `b_u`.
        budget: u64,
    },
    /// Constraint 3: consecutive events are not in strict time order.
    OrderInfeasible {
        /// The user whose schedule is out of order.
        user: UserId,
        /// The earlier-scheduled event.
        first: EventId,
        /// The event scheduled right after it.
        second: EventId,
    },
    /// Constraint 3: a leg between consecutive events is unreachable
    /// (explicit `+∞` cost, or the time gap is too short to travel).
    UnreachableLeg {
        /// The user attempting the leg.
        user: UserId,
        /// Leg origin.
        from: EventId,
        /// Leg destination.
        to: EventId,
    },
    /// Constraint 3: the home leg to or from an event is unreachable
    /// (explicit `+∞` user-event cost).
    UnreachableHomeLeg {
        /// The user.
        user: UserId,
        /// The first or last event of their schedule.
        event: EventId,
    },
    /// Constraint 4: a user attends an event they have zero utility for.
    ZeroUtility {
        /// The indifferent user.
        user: UserId,
        /// The event they were assigned to.
        event: EventId,
    },
    /// An event appears more than once in one user's schedule.
    DuplicateAssignment {
        /// The user.
        user: UserId,
        /// The repeated event.
        event: EventId,
    },
    /// A schedule references an event index outside the instance.
    UnknownEvent {
        /// The user.
        user: UserId,
        /// The out-of-range index.
        event: EventId,
    },
    /// The production `Ω` disagrees with the oracle's independent
    /// recomputation.
    OmegaMismatch {
        /// `Ω` as reported by the code under test.
        reported: f64,
        /// `Ω` recomputed from raw utilities.
        recomputed: f64,
    },
    /// A heuristic scored above the exhaustive optimum — impossible
    /// unless one of the two is wrong.
    AboveOptimal {
        /// The offending algorithm.
        algorithm: String,
        /// The heuristic's `Ω`.
        omega: f64,
        /// The exhaustive optimum.
        optimal: f64,
    },
    /// DeDP/DeDPO scored below `½ · OPT`, violating Theorem 3.
    RatioBelowHalf {
        /// The offending algorithm.
        algorithm: String,
        /// The algorithm's `Ω`.
        omega: f64,
        /// The exhaustive optimum.
        optimal: f64,
    },
    /// A planning scored above a relaxation upper bound on `OPT`.
    BoundExceeded {
        /// The offending algorithm.
        algorithm: String,
        /// The algorithm's `Ω`.
        omega: f64,
        /// The capacity-relaxed upper bound.
        bound: f64,
    },
    /// A metamorphic relation failed.
    MetamorphicBroken {
        /// Which relation (e.g. `"event_permutation"`).
        relation: String,
        /// Free-form description with the concrete numbers.
        detail: String,
    },
}

/// What the oracle found in one planning: the independently recomputed
/// objective and every violation (not just the first).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OracleReport {
    /// `Ω` recomputed from raw utilities, summed in user-id order.
    pub omega: f64,
    /// All violations found, in scan order.
    pub violations: Vec<Violation>,
}

impl OracleReport {
    /// Whether the planning passed every check.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A violation attributed to the code path that produced the planning.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Which solver / path produced the offending planning (an
    /// [`Algorithm`](usep_algos::Algorithm) name, `"Guarded(...)"`,
    /// `"serve"`, or `"exact"`).
    pub algorithm: String,
    /// The violation itself.
    pub violation: Violation,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_validity_reflects_violations() {
        let ok = OracleReport { omega: 1.5, violations: vec![] };
        assert!(ok.is_valid());
        let bad = OracleReport {
            omega: 1.5,
            violations: vec![Violation::ZeroUtility { user: UserId(0), event: EventId(1) }],
        };
        assert!(!bad.is_valid());
    }

    #[test]
    fn findings_serialize_to_json() {
        let f = Finding {
            algorithm: "DeDP".to_string(),
            violation: Violation::Capacity { event: EventId(3), assigned: 4, capacity: 2 },
        };
        let json = serde_json::to_string(&f).unwrap();
        assert!(json.contains("DeDP"), "{json}");
        assert!(json.contains("Capacity"), "{json}");
        let back: Finding = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }
}
