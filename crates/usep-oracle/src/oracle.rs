//! The independent constraint oracle.
//!
//! [`check_planning`] re-derives every constraint of §2 **from raw
//! instance data only** — event fields, user fields, the utility
//! matrix, the fee vector and the travel model. It deliberately shares
//! no code with the production cost path: no
//! [`Schedule::total_cost`](usep_core::Schedule::total_cost), no
//! incremental Eq.-3 logic, no precomputed event-event matrix (which
//! folds fees in), no [`Planning::validate`](usep_core::Planning::validate).
//! Leg costs are recomputed here from `Point::manhattan` /
//! the raw explicit matrices, fees are re-applied per Remark 2, and
//! all arithmetic is plain `u64` — so a bug in the shared `Cost`
//! bookkeeping cannot cancel itself out of the audit.
//!
//! Unlike the production validator (which returns the *first*
//! violation), the oracle scans everything and returns all of them:
//! a fuzz failure should arrive with the complete damage report.

use crate::report::{OracleReport, Violation};
use usep_core::{EventId, Instance, Planning, TravelCost, UserId};
use usep_trace::{Counter, Probe};

/// A leg cost in plain `u64` units; `None` means the leg is
/// unreachable. Mirrors the production `Cost` saturation rule: any
/// value at or above `u32::MAX` is treated as infinite.
type LegCost = Option<u64>;

fn saturate(d: u64) -> LegCost {
    if d >= u64::from(u32::MAX) {
        None
    } else {
        Some(d)
    }
}

/// Travel cost between user `u`'s home and event `v`, fee excluded.
fn home_leg(inst: &Instance, u: UserId, v: EventId) -> LegCost {
    match inst.travel() {
        TravelCost::Grid { .. } => {
            saturate(inst.users()[u.index()].location.manhattan(inst.events()[v.index()].location))
        }
        TravelCost::Explicit { user_event, .. } => {
            user_event[u.index() * inst.num_events() + v.index()].finite_value().map(u64::from)
        }
    }
}

/// Travel cost of attending `b` right after `a`, fee excluded. `None`
/// when the pair is spatio-temporally unreachable — for grid travel
/// that re-derives the time gate from the raw intervals, for explicit
/// travel it reads the raw (fee-free) matrix.
fn event_leg(inst: &Instance, a: EventId, b: EventId) -> LegCost {
    match inst.travel() {
        TravelCost::Grid { time_per_unit } => {
            let (ea, eb) = (&inst.events()[a.index()], &inst.events()[b.index()]);
            if ea.time.end() > eb.time.start() {
                return None;
            }
            let dist = ea.location.manhattan(eb.location);
            if *time_per_unit > 0 {
                let gap = (eb.time.start() - ea.time.end()) as u64;
                if dist.saturating_mul(u64::from(*time_per_unit)) > gap {
                    return None;
                }
            }
            saturate(dist)
        }
        TravelCost::Explicit { event_event, .. } => {
            event_event[a.index() * inst.num_events() + b.index()].finite_value().map(u64::from)
        }
    }
}

/// The fee of event `v` as `u64` (Remark 2; 0 when the instance has no
/// fee vector).
fn fee(inst: &Instance, v: EventId) -> u64 {
    if inst.fees().is_empty() {
        0
    } else {
        u64::from(inst.fees()[v.index()])
    }
}

/// Audits `planning` against `inst` from scratch, returning the
/// recomputed objective and **every** violation found.
///
/// Emits one `oracle_check` counter tick per call and one
/// `oracle_violation` tick per violation.
pub fn check_planning(inst: &Instance, planning: &Planning, probe: &dyn Probe) -> OracleReport {
    probe.count(Counter::OracleCheck, 1);
    let nv = inst.num_events();
    let mut violations = Vec::new();
    let mut load = vec![0u64; nv];
    let mut omega = 0.0f64;

    for (ui, schedule) in planning.schedules().iter().enumerate() {
        let u = UserId(ui as u32);
        let events = schedule.events();

        // structural: ids in range, no duplicates
        let mut in_range = true;
        for &v in events {
            if v.index() >= nv {
                violations.push(Violation::UnknownEvent { user: u, event: v });
                in_range = false;
            }
        }
        if !in_range {
            // the remaining checks index by event id; skip this user
            continue;
        }
        let mut seen = vec![false; nv];
        for &v in events {
            if seen[v.index()] {
                violations.push(Violation::DuplicateAssignment { user: u, event: v });
            }
            seen[v.index()] = true;
            load[v.index()] += 1;
        }

        // constraint 4: positive utility, and the Ω recomputation
        let mu_row = inst.mu_row(u);
        for &v in events {
            let m = mu_row[v.index()];
            if m <= 0.0 || m.is_nan() {
                violations.push(Violation::ZeroUtility { user: u, event: v });
            }
            omega += f64::from(m);
        }

        // constraint 3: strict time order and reachable legs
        for w in events.windows(2) {
            let (a, b) = (w[0], w[1]);
            if inst.events()[a.index()].time.end() > inst.events()[b.index()].time.start() {
                violations.push(Violation::OrderInfeasible { user: u, first: a, second: b });
            } else if event_leg(inst, a, b).is_none() {
                violations.push(Violation::UnreachableLeg { user: u, from: a, to: b });
            }
        }

        // constraint 2: round-trip cost within budget, fees on inbound
        // legs (Remark 2). Only meaningful when every leg is reachable;
        // unreachable legs were already reported above.
        if let (Some(&first), Some(&last)) = (events.first(), events.last()) {
            let mut total: Option<u64> = home_leg(inst, u, first).map(|c| c + fee(inst, first));
            for w in events.windows(2) {
                total = match (total, event_leg(inst, w[0], w[1])) {
                    (Some(t), Some(c)) => Some(t + c + fee(inst, w[1])),
                    _ => None,
                };
            }
            total = match (total, home_leg(inst, u, last)) {
                (Some(t), Some(c)) => Some(t + c),
                _ => None,
            };
            let budget =
                inst.users()[u.index()].budget.finite_value().map_or(u64::MAX, u64::from);
            match total {
                Some(t) if t <= budget => {}
                Some(t) => {
                    violations.push(Violation::Budget { user: u, cost: t, budget });
                }
                None => {
                    // a home leg was unreachable (event legs are
                    // reported by the feasibility pass above)
                    if home_leg(inst, u, first).is_none() {
                        violations.push(Violation::UnreachableHomeLeg { user: u, event: first });
                    }
                    if home_leg(inst, u, last).is_none() && last != first {
                        violations.push(Violation::UnreachableHomeLeg { user: u, event: last });
                    }
                }
            }
        }
    }

    // constraint 1: capacities, from independently recounted loads
    for (vi, &n) in load.iter().enumerate() {
        let cap = inst.events()[vi].capacity;
        if n > u64::from(cap) {
            violations.push(Violation::Capacity {
                event: EventId(vi as u32),
                assigned: n.min(u64::from(u32::MAX)) as u32,
                capacity: cap,
            });
        }
    }

    probe.count(Counter::OracleViolation, violations.len() as u64);
    OracleReport { omega, violations }
}

/// Relative tolerance for Ω cross-checks. The oracle sums utilities in
/// the same (user-id, schedule) order as the production code, so the
/// two values should agree to the last bit; the epsilon only forgives
/// future reorderings of either summation.
pub const OMEGA_TOLERANCE: f64 = 1e-9;

/// [`check_planning`] plus a cross-check of the production-reported
/// objective against the oracle's recomputation.
pub fn check_planning_with_omega(
    inst: &Instance,
    planning: &Planning,
    reported_omega: f64,
    probe: &dyn Probe,
) -> OracleReport {
    let mut report = check_planning(inst, planning, probe);
    let scale = report.omega.abs().max(1.0);
    if (reported_omega - report.omega).abs() > OMEGA_TOLERANCE * scale {
        report.violations.push(Violation::OmegaMismatch {
            reported: reported_omega,
            recomputed: report.omega,
        });
        probe.count(Counter::OracleViolation, 1);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_core::{Cost, InstanceBuilder, Point, Schedule, TimeInterval};
    use usep_trace::{TraceSink, NOOP};

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    /// 3 events on a line, 2 users; v0 [0,10] → v1 [10,20] reachable.
    fn instance() -> Instance {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::new(0, 0), iv(0, 10));
        b.event(2, Point::new(5, 0), iv(10, 20));
        b.event(1, Point::new(2, 2), iv(5, 15));
        let u0 = b.user(Point::new(1, 0), Cost::new(50));
        let u1 = b.user(Point::new(3, 0), Cost::new(4));
        b.utility(EventId(0), u0, 0.5);
        b.utility(EventId(1), u0, 0.7);
        b.utility(EventId(1), u1, 0.9);
        b.utility(EventId(2), u1, 0.2);
        b.build().unwrap()
    }

    fn planning_of(inst: &Instance, events: Vec<Vec<u32>>) -> Planning {
        let schedules = events
            .into_iter()
            .map(|evs| Schedule::from_events_unchecked(evs.into_iter().map(EventId).collect()))
            .collect();
        Planning::from_schedules(inst, schedules)
    }

    #[test]
    fn valid_planning_passes_with_exact_omega() {
        let inst = instance();
        let p = planning_of(&inst, vec![vec![0, 1], vec![1]]);
        let report = check_planning(&inst, &p, &NOOP);
        assert!(report.is_valid(), "{:?}", report.violations);
        assert!((report.omega - (0.5 + 0.7 + 0.9)).abs() < 1e-6);
        // and it agrees with the production objective bit-for-bit
        assert_eq!(report.omega, p.omega(&inst));
    }

    #[test]
    fn capacity_violation_detected_with_counts() {
        let inst = instance();
        // v0 has capacity 1; put both users there
        let p = planning_of(&inst, vec![vec![0], vec![0]]);
        let report = check_planning(&inst, &p, &NOOP);
        assert!(report.violations.contains(&Violation::Capacity {
            event: EventId(0),
            assigned: 2,
            capacity: 1,
        }));
    }

    #[test]
    fn budget_violation_detected_with_recomputed_cost() {
        let inst = instance();
        // u1 (budget 4) at v0: round trip |3-0|·2 = 6 > 4
        let p = planning_of(&inst, vec![vec![], vec![0]]);
        let report = check_planning(&inst, &p, &NOOP);
        assert!(report
            .violations
            .contains(&Violation::Budget { user: UserId(1), cost: 6, budget: 4 }));
    }

    #[test]
    fn order_and_duplicate_violations_detected() {
        let inst = instance();
        let p = planning_of(&inst, vec![vec![1, 0], vec![1, 1]]);
        let report = check_planning(&inst, &p, &NOOP);
        assert!(report.violations.contains(&Violation::OrderInfeasible {
            user: UserId(0),
            first: EventId(1),
            second: EventId(0),
        }));
        assert!(report
            .violations
            .contains(&Violation::DuplicateAssignment { user: UserId(1), event: EventId(1) }));
    }

    #[test]
    fn zero_utility_and_overlap_detected() {
        let inst = instance();
        // u0 has μ = 0 for v2, and v0 → v2 overlap in time
        let p = planning_of(&inst, vec![vec![0, 2], vec![]]);
        let report = check_planning(&inst, &p, &NOOP);
        assert!(report
            .violations
            .contains(&Violation::ZeroUtility { user: UserId(0), event: EventId(2) }));
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::OrderInfeasible { user: UserId(0), .. }
        )));
    }

    #[test]
    fn unknown_event_detected_without_panicking() {
        let inst = instance();
        // an out-of-range planning can only enter through deserialization
        // (`Planning::from_schedules` recomputes loads and would panic),
        // so that is exactly how the hostile input is built here
        let p: Planning = serde_json::from_str(
            r#"{"schedules":[{"events":[9]},{"events":[]}],"load":[0,0,0]}"#,
        )
        .unwrap();
        let report = check_planning(&inst, &p, &NOOP);
        assert!(report
            .violations
            .contains(&Violation::UnknownEvent { user: UserId(0), event: EventId(9) }));
    }

    #[test]
    fn time_gated_grid_leg_reported_unreachable() {
        // gap 5 between the events, distance 10, 1 time unit per step
        let mut b = InstanceBuilder::new();
        b.event(1, Point::new(0, 0), iv(0, 10));
        b.event(1, Point::new(10, 0), iv(15, 20));
        let u = b.user(Point::ORIGIN, Cost::new(100));
        b.utility(EventId(0), u, 0.5);
        b.utility(EventId(1), u, 0.5);
        b.travel(TravelCost::Grid { time_per_unit: 1 });
        let inst = b.build().unwrap();
        let p = planning_of(&inst, vec![vec![0, 1]]);
        let report = check_planning(&inst, &p, &NOOP);
        assert!(report.violations.contains(&Violation::UnreachableLeg {
            user: UserId(0),
            from: EventId(0),
            to: EventId(1),
        }));
    }

    #[test]
    fn fees_counted_on_inbound_legs() {
        let mut b = InstanceBuilder::new();
        let v0 = b.event(1, Point::new(0, 0), iv(0, 10));
        let v1 = b.event(1, Point::new(4, 0), iv(10, 20));
        let u = b.user(Point::new(1, 0), Cost::new(20));
        b.utility(v0, u, 0.5);
        b.utility(v1, u, 0.5);
        b.fee(v0, 3).fee(v1, 9);
        let inst = b.build().unwrap();
        // 1 + fee 3 + 4 + fee 9 + 3 = 20 — exactly on budget
        let p = planning_of(&inst, vec![vec![0, 1]]);
        assert!(check_planning(&inst, &p, &NOOP).is_valid());
        // one unit less budget and the oracle flags it
        let mut b = InstanceBuilder::new();
        let v0 = b.event(1, Point::new(0, 0), iv(0, 10));
        let v1 = b.event(1, Point::new(4, 0), iv(10, 20));
        let u = b.user(Point::new(1, 0), Cost::new(19));
        b.utility(v0, u, 0.5);
        b.utility(v1, u, 0.5);
        b.fee(v0, 3).fee(v1, 9);
        let inst = b.build().unwrap();
        let p = planning_of(&inst, vec![vec![0, 1]]);
        let report = check_planning(&inst, &p, &NOOP);
        assert!(report
            .violations
            .contains(&Violation::Budget { user: UserId(0), cost: 20, budget: 19 }));
    }

    #[test]
    fn omega_cross_check_flags_mismatch() {
        let inst = instance();
        let p = planning_of(&inst, vec![vec![0, 1], vec![1]]);
        let honest = p.omega(&inst);
        assert!(check_planning_with_omega(&inst, &p, honest, &NOOP).is_valid());
        let report = check_planning_with_omega(&inst, &p, honest + 0.25, &NOOP);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::OmegaMismatch { .. })));
    }

    #[test]
    fn oracle_counters_emitted() {
        let inst = instance();
        let sink = TraceSink::new();
        let p = planning_of(&inst, vec![vec![0], vec![0]]);
        let _ = check_planning(&inst, &p, &sink);
        assert_eq!(sink.counter(Counter::OracleCheck), 1);
        assert!(sink.counter(Counter::OracleViolation) >= 1);
    }

    #[test]
    fn explicit_travel_audited_from_raw_matrices() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 1));
        b.event(1, Point::ORIGIN, iv(2, 3));
        let u = b.user(Point::ORIGIN, Cost::new(8));
        b.utility(EventId(0), u, 0.5);
        b.utility(EventId(1), u, 0.5);
        let inf = Cost::INFINITE;
        b.travel(TravelCost::Explicit {
            user_event: vec![Cost::new(2), Cost::new(3)],
            event_event: vec![inf, Cost::new(4), inf, inf],
        });
        let inst = b.build().unwrap();
        // 2 + 4 + 3 = 9 > 8
        let p = planning_of(&inst, vec![vec![0, 1]]);
        let report = check_planning(&inst, &p, &NOOP);
        assert!(report
            .violations
            .contains(&Violation::Budget { user: UserId(0), cost: 9, budget: 8 }));
        // reversed order: the raw matrix has no 1 → 0 leg
        let p = planning_of(&inst, vec![vec![1, 0]]);
        let report = check_planning(&inst, &p, &NOOP);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::OrderInfeasible { .. } | Violation::UnreachableLeg { .. }
        )));
    }
}
