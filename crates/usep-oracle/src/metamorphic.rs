//! The metamorphic suite.
//!
//! Relations that must hold between a solver's outputs on an instance
//! and on a transformed copy of it, checked without knowing the right
//! answer for either:
//!
//! 1. **`event_permutation`** — relabeling events must not let a solver
//!    emit an invalid planning; mapped back to the original labels, the
//!    planning must pass the oracle. On small instances (see
//!    [`META_EXACT_EVENT_CAP`]) the exhaustive optimum must be exactly
//!    invariant.
//! 2. **`user_permutation`** — the same for user relabeling.
//! 3. **`mu_scaling`** — multiplying every utility by `0.5` (exact in
//!    floating point) must leave every solver's planning byte-identical
//!    and exactly halve its `Ω`.
//! 4. **`capacity_monotonicity`** — raising every capacity can only
//!    loosen the instance: outputs stay oracle-valid and (on small
//!    instances) the optimum cannot decrease.
//! 5. **`budget_monotonicity`** — the same for raising every budget.
//! 6. **`user_removal`** — deleting one user keeps outputs oracle-valid
//!    and (on small instances) the optimum cannot increase.
//!
//! Heuristic plannings are *not* required to be invariant under
//! permutation — the solvers break ties by index, so relabeling can
//! legitimately flip which of two equal-ratio assignments wins. Only
//! validity (always) and the exhaustive optimum (small instances) are
//! label-free.

use crate::oracle::check_planning;
use crate::report::{Finding, Violation};
use crate::transform::{
    bump_budgets, bump_capacities, drop_user, permute_events, permute_users, scale_mu,
    seeded_permutation,
};
use usep_algos::{exact, solve, Algorithm};
use usep_core::{EventId, Instance, Planning, Schedule, UserId};
use usep_trace::Probe;

/// Absolute slack for comparisons of exhaustive optima, which are
/// computed twice through identical arithmetic.
const EXACT_EPS: f64 = 1e-9;

/// Size caps for the exhaustive-optimum invariance checks. Tighter than
/// the differential engine's caps because one metamorphic run needs up
/// to six exhaustive solves (base + five transformed instances), and
/// the capacity/budget bumps loosen the instance, inflating the search
/// space further. Validity checks run at every size regardless.
pub const META_EXACT_EVENT_CAP: usize = 6;
/// See [`META_EXACT_EVENT_CAP`].
pub const META_EXACT_USER_CAP: usize = 5;

/// Relative slack for the `Ω`-halving check (`0.5` scaling is exact, so
/// this only absorbs the sum's re-association — in practice zero).
const SCALE_EPS: f64 = 1e-12;

fn map_events_back(inst: &Instance, p: &Planning, perm: &[usize]) -> Planning {
    let schedules = p
        .schedules()
        .iter()
        .map(|s| {
            Schedule::from_events_unchecked(
                s.events().iter().map(|v| EventId(perm[v.index()] as u32)).collect(),
            )
        })
        .collect();
    Planning::from_schedules(inst, schedules)
}

fn map_users_back(inst: &Instance, p: &Planning, perm: &[usize]) -> Planning {
    let mut events: Vec<Vec<EventId>> = vec![Vec::new(); perm.len()];
    for (new, s) in p.schedules().iter().enumerate() {
        events[perm[new]] = s.events().to_vec();
    }
    Planning::from_schedules(
        inst,
        events.into_iter().map(Schedule::from_events_unchecked).collect(),
    )
}

fn same_schedules(a: &Planning, b: &Planning) -> bool {
    a.schedules().len() == b.schedules().len()
        && a.schedules()
            .iter()
            .zip(b.schedules())
            .all(|(x, y)| x.events() == y.events())
}

/// Oracle-checks `planning` against `inst` and records any violations
/// under `label` (solver name plus relation).
fn check_into(
    inst: &Instance,
    planning: &Planning,
    label: String,
    probe: &dyn Probe,
    findings: &mut Vec<Finding>,
) {
    let report = check_planning(inst, planning, probe);
    findings.extend(report.violations.into_iter().map(|violation| Finding {
        algorithm: label.clone(),
        violation,
    }));
}

fn broken(relation: &str, detail: String) -> Finding {
    Finding {
        algorithm: relation.to_string(),
        violation: Violation::MetamorphicBroken { relation: relation.to_string(), detail },
    }
}

/// Records a [`Violation::MetamorphicBroken`] with both optima and the
/// violated `law` unless `ok` holds.
fn check_opt(
    relation: &str,
    base: f64,
    transformed: f64,
    ok: bool,
    law: &str,
    findings: &mut Vec<Finding>,
) {
    if !ok {
        findings.push(broken(
            relation,
            format!("expected {law}: base OPT = {base}, transformed OPT = {transformed}"),
        ));
    }
}

/// Runs all six metamorphic relations on `inst` for every paper solver
/// and returns the violations found (empty means all relations held).
pub fn run_metamorphic(inst: &Instance, seed: u64, probe: &dyn Probe) -> Vec<Finding> {
    let mut findings = Vec::new();
    let small =
        inst.num_events() <= META_EXACT_EVENT_CAP && inst.num_users() <= META_EXACT_USER_CAP;
    let base_opt = if small { Some(exact::optimal_planning(inst).1) } else { None };

    // 1. event permutation
    let perm = seeded_permutation(inst.num_events(), seed);
    if let Some(pinst) = permute_events(inst, &perm) {
        for alg in Algorithm::PAPER_SET {
            let p = solve(alg, &pinst);
            let mapped = map_events_back(inst, &p, &perm);
            check_into(
                inst,
                &mapped,
                format!("{}@event_permutation", alg.name()),
                probe,
                &mut findings,
            );
        }
        if let Some(opt) = base_opt {
            let opt2 = exact::optimal_planning(&pinst).1;
            check_opt(
                "event_permutation",
                opt,
                opt2,
                (opt2 - opt).abs() <= EXACT_EPS,
                "OPT invariant under event relabeling",
                &mut findings,
            );
        }
    } else {
        findings.push(broken("event_permutation", "permuted instance failed to rebuild".into()));
    }

    // 2. user permutation
    let perm = seeded_permutation(inst.num_users(), seed.wrapping_add(1));
    if let Some(pinst) = permute_users(inst, &perm) {
        for alg in Algorithm::PAPER_SET {
            let p = solve(alg, &pinst);
            let mapped = map_users_back(inst, &p, &perm);
            check_into(
                inst,
                &mapped,
                format!("{}@user_permutation", alg.name()),
                probe,
                &mut findings,
            );
        }
        if let Some(opt) = base_opt {
            let opt2 = exact::optimal_planning(&pinst).1;
            check_opt(
                "user_permutation",
                opt,
                opt2,
                (opt2 - opt).abs() <= EXACT_EPS,
                "OPT invariant under user relabeling",
                &mut findings,
            );
        }
    } else {
        findings.push(broken("user_permutation", "permuted instance failed to rebuild".into()));
    }

    // 3. μ-scaling by 0.5
    if let Some(sinst) = scale_mu(inst, 0.5) {
        for alg in Algorithm::PAPER_SET {
            let p1 = solve(alg, inst);
            let p2 = solve(alg, &sinst);
            if !same_schedules(&p1, &p2) {
                findings.push(broken(
                    "mu_scaling",
                    format!("{}: planning changed under exact 0.5 scaling", alg.name()),
                ));
                continue;
            }
            let o1 = check_planning(inst, &p1, probe).omega;
            let o2 = check_planning(&sinst, &p2, probe).omega;
            if (o2 - 0.5 * o1).abs() > SCALE_EPS * o1.abs().max(1.0) {
                findings.push(broken(
                    "mu_scaling",
                    format!("{}: omega {o1} scaled to {o2}, expected {}", alg.name(), 0.5 * o1),
                ));
            }
        }
    } else {
        findings.push(broken("mu_scaling", "scaled instance failed to rebuild".into()));
    }

    // 4. capacity monotonicity
    if let Some(binst) = bump_capacities(inst, 1) {
        for alg in Algorithm::PAPER_SET {
            let p = solve(alg, &binst);
            check_into(
                &binst,
                &p,
                format!("{}@capacity_monotonicity", alg.name()),
                probe,
                &mut findings,
            );
        }
        if let Some(opt) = base_opt {
            let opt2 = exact::optimal_planning(&binst).1;
            check_opt(
                "capacity_monotonicity",
                opt,
                opt2,
                opt2 >= opt - EXACT_EPS,
                "OPT non-decreasing when capacities grow",
                &mut findings,
            );
        }
    }

    // 5. budget monotonicity
    if let Some(binst) = bump_budgets(inst, 10) {
        for alg in Algorithm::PAPER_SET {
            let p = solve(alg, &binst);
            check_into(
                &binst,
                &p,
                format!("{}@budget_monotonicity", alg.name()),
                probe,
                &mut findings,
            );
        }
        if let Some(opt) = base_opt {
            let opt2 = exact::optimal_planning(&binst).1;
            check_opt(
                "budget_monotonicity",
                opt,
                opt2,
                opt2 >= opt - EXACT_EPS,
                "OPT non-decreasing when budgets grow",
                &mut findings,
            );
        }
    }

    // 6. single-user removal
    if inst.num_users() >= 2 {
        let last = UserId((inst.num_users() - 1) as u32);
        if let Some(dinst) = drop_user(inst, last) {
            for alg in Algorithm::PAPER_SET {
                let p = solve(alg, &dinst);
                check_into(
                    &dinst,
                    &p,
                    format!("{}@user_removal", alg.name()),
                    probe,
                    &mut findings,
                );
            }
            if let Some(opt) = base_opt {
                let opt2 = exact::optimal_planning(&dinst).1;
                check_opt(
                    "user_removal",
                    opt,
                    opt2,
                    opt2 <= opt + EXACT_EPS,
                    "OPT non-increasing when a user is removed",
                    &mut findings,
                );
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_gen::{generate, SyntheticConfig};
    use usep_trace::NOOP;

    #[test]
    fn relations_hold_on_small_instances_with_exact_audit() {
        let cfg = SyntheticConfig::tiny().with_events(5).with_users(4).with_capacity_mean(2);
        for seed in 0..5 {
            let inst = generate(&cfg, seed);
            let findings = run_metamorphic(&inst, seed ^ 0xd1ce, &NOOP);
            assert!(findings.is_empty(), "seed {seed}: {findings:?}");
        }
    }

    #[test]
    fn relations_hold_on_medium_instances() {
        let cfg = SyntheticConfig::tiny().with_events(12).with_users(20).with_capacity_mean(4);
        let inst = generate(&cfg, 17);
        let findings = run_metamorphic(&inst, 17, &NOOP);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn mapped_back_permutation_planning_matches_original_omega_domain() {
        // sanity for the mapping helpers themselves: mapping a planning
        // back must preserve the multiset of (user, event-label) pairs
        let cfg = SyntheticConfig::tiny().with_events(6).with_users(5).with_capacity_mean(2);
        let inst = generate(&cfg, 2);
        let perm = seeded_permutation(inst.num_events(), 9);
        let pinst = permute_events(&inst, &perm).unwrap();
        let p = solve(Algorithm::DeDPO, &pinst);
        let mapped = map_events_back(&inst, &p, &perm);
        assert_eq!(mapped.num_assignments(), p.num_assignments());
        // every mapped assignment points at the event with identical data
        for (u, s) in p.schedules().iter().enumerate() {
            for (k, v) in s.events().iter().enumerate() {
                let back = mapped.schedules()[u].events()[k];
                assert_eq!(inst.event(back), pinst.event(*v));
            }
        }
    }
}
