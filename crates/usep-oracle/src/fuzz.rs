//! Seeded differential fuzzing.
//!
//! Generates a deterministic stream of synthetic instances across four
//! size classes (three small enough for the exhaustive audit, one
//! medium under the relaxation bound), runs the differential engine on
//! every instance and the metamorphic suite on every
//! [`FuzzConfig::metamorphic_every`]-th, and — on the first violation —
//! greedily minimizes the offending instance to a repro JSON.
//!
//! Everything is a pure function of [`FuzzConfig::seed`], so a CI
//! failure replays locally with the same `--seed`.

use crate::differential::verify_instance;
use crate::metamorphic::run_metamorphic;
use crate::minimize::minimize;
use crate::report::Finding;
use usep_gen::{generate, SyntheticConfig};
use usep_trace::{Probe, NOOP};

/// What to fuzz and how hard.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// How many instances to generate and verify.
    pub count: u64,
    /// Master seed; every instance seed derives from it.
    pub seed: u64,
    /// Run the (much more expensive) metamorphic suite on every n-th
    /// instance; `0` disables it.
    pub metamorphic_every: u64,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig { count: 100, seed: 42, metamorphic_every: 5 }
    }
}

/// One violation, tagged with the instance seed that produced it.
#[derive(Clone, Debug)]
pub struct FuzzFinding {
    /// Seed passed to [`generate`] for the offending instance.
    pub instance_seed: u64,
    /// Index of the instance in the fuzz stream.
    pub index: u64,
    /// The violation itself.
    pub finding: Finding,
}

/// Outcome of a fuzz run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Instances generated and verified.
    pub instances: u64,
    /// Instances that additionally went through the metamorphic suite.
    pub metamorphic_runs: u64,
    /// Every violation found, in discovery order.
    pub findings: Vec<FuzzFinding>,
    /// Minimized repro of the *first* violating instance, as JSON
    /// (deserializable back into an [`usep_core::Instance`]).
    pub repro: Option<String>,
}

impl FuzzReport {
    /// Whether the run found no violations.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// SplitMix64 — decorrelates per-instance seeds from the master seed.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The generator configuration for the `i`-th instance of the stream.
///
/// Classes 0–2 stay within the exhaustive audit's size caps; class 3 is
/// audited against the capacity-relaxed bound instead. Conflict ratio
/// cycles so overlapping-event instances are always represented.
pub fn stream_config(i: u64) -> SyntheticConfig {
    let cfg = match i % 4 {
        0 => SyntheticConfig::tiny().with_events(4).with_users(3).with_capacity_mean(2),
        1 => SyntheticConfig::tiny().with_events(6).with_users(4).with_capacity_mean(2),
        2 => SyntheticConfig::tiny().with_events(8).with_users(6).with_capacity_mean(3),
        _ => SyntheticConfig::tiny().with_events(12).with_users(20).with_capacity_mean(4),
    };
    match (i / 4) % 3 {
        0 => cfg,
        1 => cfg.with_conflict_ratio(0.5),
        _ => cfg.with_conflict_ratio(0.9),
    }
}

/// Runs the fuzz campaign described by `cfg`.
pub fn run_fuzz(cfg: &FuzzConfig, probe: &dyn Probe) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..cfg.count {
        let instance_seed = mix(cfg.seed ^ i);
        let inst = generate(&stream_config(i), instance_seed);
        // Freeze up front: every audited path, every corruption forge
        // and every metamorphic re-solve below runs against an instance
        // whose flat SoA lowering already exists, so the fuzz stream
        // exercises the frozen-view code paths end to end.
        inst.freeze();
        let mut findings = verify_instance(&inst, probe);
        if cfg.metamorphic_every > 0 && i % cfg.metamorphic_every == 0 {
            findings.extend(run_metamorphic(&inst, instance_seed, probe));
            report.metamorphic_runs += 1;
        }
        report.instances += 1;
        if !findings.is_empty() && report.repro.is_none() {
            // shrink the first failure to a minimal repro; the predicate
            // re-runs the full differential check, so the repro fails for
            // the same class of reason the original did
            let minimal = minimize(&inst, |c| !verify_instance(c, &NOOP).is_empty(), probe);
            report.repro = serde_json::to_string(&minimal).ok();
        }
        report
            .findings
            .extend(findings.into_iter().map(|finding| FuzzFinding {
                instance_seed,
                index: i,
                finding,
            }));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_trace::{Counter, TraceSink};

    #[test]
    fn seeded_fuzz_run_is_clean_and_deterministic() {
        let cfg = FuzzConfig { count: 12, seed: 42, metamorphic_every: 6 };
        let a = run_fuzz(&cfg, &NOOP);
        assert!(a.is_clean(), "{:?}", a.findings);
        assert_eq!(a.instances, 12);
        assert_eq!(a.metamorphic_runs, 2);
        let b = run_fuzz(&cfg, &NOOP);
        assert_eq!(a.instances, b.instances);
        assert_eq!(a.findings.len(), b.findings.len());
    }

    #[test]
    fn fuzz_emits_oracle_counters() {
        let sink = TraceSink::new();
        let cfg = FuzzConfig { count: 4, seed: 7, metamorphic_every: 0 };
        let report = run_fuzz(&cfg, &sink);
        assert!(report.is_clean(), "{:?}", report.findings);
        // 8 checked paths per instance, 4 instances
        assert_eq!(sink.counter(Counter::OracleCheck), 32);
        assert_eq!(sink.counter(Counter::OracleViolation), 0);
    }

    #[test]
    fn stream_covers_all_size_classes_and_conflict_ratios() {
        let sizes: Vec<(usize, usize)> = (0..4)
            .map(|i| {
                let inst = generate(&stream_config(i), mix(1 ^ i));
                (inst.num_events(), inst.num_users())
            })
            .collect();
        assert_eq!(sizes, vec![(4, 3), (6, 4), (8, 6), (12, 20)]);
    }
}
