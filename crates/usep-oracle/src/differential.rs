//! The differential engine.
//!
//! Runs every production code path that emits a planning — the six
//! paper solvers, the `GuardedSolver` degradation chain, and the serve
//! retry path — on one instance, audits each planning with the
//! independent oracle, cross-checks each reported `Ω` against the
//! oracle's recomputation, and audits solution quality:
//!
//! * on **small** instances (≤ [`EXACT_EVENT_CAP`] events,
//!   ≤ [`EXACT_USER_CAP`] users) the exhaustive optimum is computed and
//!   every heuristic must satisfy `Ω ≤ OPT`, with DeDP/DeDPO further
//!   held to Theorem 3's `Ω ≥ ½ · OPT`;
//! * on larger instances the capacity-relaxed upper bound substitutes
//!   for `OPT` — but only in the sound direction (`Ω ≤ bound`). The
//!   ratio direction is **not** asserted against the bound: Theorem 3
//!   guarantees `Ω ≥ ½ · OPT`, and the bound only promises
//!   `bound ≥ OPT`, so `Ω ≥ ½ · bound` does not follow.
//!
//! Every audited path is additionally re-run with the flat SoA lowering
//! disabled ([`usep_core::with_object_path`]) and the two plannings must
//! be identical — the object path is the executable specification the
//! cache-friendly layout is held to.

use crate::oracle::check_planning_with_omega;
use crate::report::{Finding, Violation};
use usep_algos::{bounds, exact, solve, Algorithm, GuardedSolver, SolveBudget};
use usep_core::{Instance, Planning};
use usep_serve::{solve_with_retry, SolveLimits, SolveRequest};
use usep_trace::Probe;

/// Largest event count for which the exhaustive optimum is computed.
pub const EXACT_EVENT_CAP: usize = 8;
/// Largest user count for which the exhaustive optimum is computed.
pub const EXACT_USER_CAP: usize = 6;

/// Absolute slack for float comparisons of `Ω` aggregates.
const EPS: f64 = 1e-6;

/// Whether the exhaustive reference solver is affordable for `inst`.
pub fn exact_applies(inst: &Instance) -> bool {
    inst.num_events() <= EXACT_EVENT_CAP && inst.num_users() <= EXACT_USER_CAP
}

fn audit(
    inst: &Instance,
    planning: &Planning,
    reported_omega: f64,
    label: &str,
    probe: &dyn Probe,
    findings: &mut Vec<Finding>,
) -> f64 {
    let report = check_planning_with_omega(inst, planning, reported_omega, probe);
    findings.extend(
        report
            .violations
            .iter()
            .cloned()
            .map(|violation| Finding { algorithm: label.to_string(), violation }),
    );
    report.omega
}

/// Runs every solver and service path on `inst` and returns all
/// violations found. An empty vector means the instance is clean.
pub fn verify_instance(inst: &Instance, probe: &dyn Probe) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut omegas: Vec<(Algorithm, f64)> = Vec::new();

    // flat-vs-object identity: the default run below goes through the
    // frozen SoA view; the forced object-path re-run must match it
    // byte for byte. Plain comparison, not an extra oracle check — the
    // audit count per path stays 1.
    let check_flat_object = |label: &str, flat: &Planning, object: &Planning,
                             findings: &mut Vec<Finding>| {
        if flat != object {
            findings.push(Finding {
                algorithm: label.to_string(),
                violation: Violation::MetamorphicBroken {
                    relation: "flat_matches_object_path".to_string(),
                    detail: format!(
                        "{label}: SoA planning (Ω={}) differs from object-path planning (Ω={})",
                        flat.omega(inst),
                        object.omega(inst)
                    ),
                },
            });
        }
    };

    for algorithm in Algorithm::PAPER_SET {
        let planning = solve(algorithm, inst);
        let object = usep_core::with_object_path(|| solve(algorithm, inst));
        check_flat_object(algorithm.name(), &planning, &object, &mut findings);
        let omega =
            audit(inst, &planning, planning.omega(inst), algorithm.name(), probe, &mut findings);
        omegas.push((algorithm, omega));
    }

    // the degradation chain under an unlimited budget must also emit a
    // clean planning (exercises the guarded solve path end to end)
    let guarded = GuardedSolver::new(Algorithm::DeDP, SolveBudget::unlimited()).solve(inst);
    let guarded_object = usep_core::with_object_path(|| {
        GuardedSolver::new(Algorithm::DeDP, SolveBudget::unlimited()).solve(inst)
    });
    check_flat_object("Guarded(DeDP)", &guarded.planning, &guarded_object.planning, &mut findings);
    audit(
        inst,
        &guarded.planning,
        guarded.planning.omega(inst),
        "Guarded(DeDP)",
        probe,
        &mut findings,
    );

    // the serve retry path, in-process (no socket): the journaled
    // planning and the response's Ω must both survive the oracle
    let request = SolveRequest {
        id: "oracle-differential".to_string(),
        instance: std::sync::Arc::new(inst.clone()),
        algorithm: None,
        timeout_ms: None,
        mem_budget_mb: None,
        city: None,
    };
    let response = solve_with_retry(&request, &SolveLimits::default(), probe);
    let response_object =
        usep_core::with_object_path(|| solve_with_retry(&request, &SolveLimits::default(), probe));
    if let (Some(flat), Some(object)) = (&response.planning, &response_object.planning) {
        check_flat_object("serve", flat, object, &mut findings);
    }
    match &response.planning {
        Some(planning) => {
            audit(inst, planning, response.omega, "serve", probe, &mut findings);
        }
        None => findings.push(Finding {
            algorithm: "serve".to_string(),
            violation: Violation::MetamorphicBroken {
                relation: "serve_returns_planning".to_string(),
                detail: format!("serve path returned no planning: {:?}", response.status),
            },
        }),
    }

    if exact_applies(inst) {
        let (_, optimal) = exact::optimal_planning(inst);
        for &(algorithm, omega) in &omegas {
            if omega > optimal + EPS {
                findings.push(Finding {
                    algorithm: algorithm.name().to_string(),
                    violation: Violation::AboveOptimal {
                        algorithm: algorithm.name().to_string(),
                        omega,
                        optimal,
                    },
                });
            }
            if matches!(algorithm, Algorithm::DeDP | Algorithm::DeDPO)
                && omega < 0.5 * optimal - EPS
            {
                findings.push(Finding {
                    algorithm: algorithm.name().to_string(),
                    violation: Violation::RatioBelowHalf {
                        algorithm: algorithm.name().to_string(),
                        omega,
                        optimal,
                    },
                });
            }
        }
    } else {
        let bound = bounds::capacity_relaxed_bound(inst);
        for &(algorithm, omega) in &omegas {
            if omega > bound + EPS {
                findings.push(Finding {
                    algorithm: algorithm.name().to_string(),
                    violation: Violation::BoundExceeded {
                        algorithm: algorithm.name().to_string(),
                        omega,
                        bound,
                    },
                });
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_gen::{generate, SyntheticConfig};
    use usep_trace::{Counter, TraceSink, NOOP};

    #[test]
    fn small_instances_verify_clean_with_exact_audit() {
        let cfg = SyntheticConfig::tiny().with_events(6).with_users(4).with_capacity_mean(2);
        for seed in 0..5 {
            let inst = generate(&cfg, seed);
            assert!(exact_applies(&inst));
            let findings = verify_instance(&inst, &NOOP);
            assert!(findings.is_empty(), "seed {seed}: {findings:?}");
        }
    }

    #[test]
    fn medium_instances_verify_clean_with_bound_audit() {
        let cfg = SyntheticConfig::tiny().with_events(12).with_users(20).with_capacity_mean(4);
        let inst = generate(&cfg, 3);
        assert!(!exact_applies(&inst));
        let findings = verify_instance(&inst, &NOOP);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn every_path_is_oracle_checked() {
        let cfg = SyntheticConfig::tiny().with_events(5).with_users(4).with_capacity_mean(2);
        let inst = generate(&cfg, 1);
        let sink = TraceSink::new();
        let findings = verify_instance(&inst, &sink);
        assert!(findings.is_empty(), "{findings:?}");
        // six solvers + guarded + serve = 8 oracle checks
        assert_eq!(sink.counter(Counter::OracleCheck), 8);
        assert_eq!(sink.counter(Counter::OracleViolation), 0);
    }
}
