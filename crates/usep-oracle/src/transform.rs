//! Instance transforms for the metamorphic suite and the minimizer.
//!
//! Every transform decomposes an instance into its raw parts, edits
//! them, and rebuilds through [`InstanceBuilder`] — so a transformed
//! instance re-derives its event-cost matrix and temporal index from
//! scratch and is exactly what the builder would have produced in the
//! first place. Rebuilds skip the `O(|V|³)` triangle audit: the parts
//! come from an instance that already passed it, and dropping rows or
//! columns of a metric cost matrix keeps it metric.

use usep_core::{
    Cost, Event, EventId, Instance, InstanceBuilder, TravelCost, User, UserId,
};

/// The raw parts of an instance, as the builder consumes them.
#[derive(Clone, Debug)]
pub struct Parts {
    /// Events, by `EventId`.
    pub events: Vec<Event>,
    /// Users, by `UserId`.
    pub users: Vec<User>,
    /// Dense utilities, row-major by user.
    pub mu: Vec<f32>,
    /// The travel model.
    pub travel: TravelCost,
    /// Per-event fees, length `|V|` (zero-filled when the instance has
    /// none).
    pub fees: Vec<u32>,
}

/// Decomposes `inst` into its raw parts.
pub fn parts(inst: &Instance) -> Parts {
    let nv = inst.num_events();
    let mut mu = Vec::with_capacity(nv * inst.num_users());
    for u in inst.user_ids() {
        mu.extend_from_slice(inst.mu_row(u));
    }
    let fees = if inst.fees().is_empty() {
        vec![0; nv]
    } else {
        inst.fees().to_vec()
    };
    Parts {
        events: inst.events().to_vec(),
        users: inst.users().to_vec(),
        mu,
        travel: inst.travel().clone(),
        fees,
    }
}

/// Rebuilds an instance from parts; `None` when the edited parts no
/// longer form a valid instance (e.g. a capacity hit zero).
pub fn rebuild(p: Parts) -> Option<Instance> {
    let mut b = InstanceBuilder::new();
    for e in &p.events {
        b.event(e.capacity, e.location, e.time);
    }
    for u in &p.users {
        b.user(u.location, u.budget);
    }
    b.utility_matrix(p.mu);
    b.travel(p.travel);
    for (i, &f) in p.fees.iter().enumerate() {
        if f != 0 {
            b.fee(EventId(i as u32), f);
        }
    }
    b.skip_triangle_check();
    b.build().ok()
}

/// Removes row `idx` and column `idx` from a square row-major matrix.
fn drop_square_row_col(m: &[Cost], n: usize, idx: usize) -> Vec<Cost> {
    let mut out = Vec::with_capacity((n - 1) * (n - 1));
    for i in 0..n {
        if i == idx {
            continue;
        }
        for j in 0..n {
            if j != idx {
                out.push(m[i * n + j]);
            }
        }
    }
    out
}

/// The instance without event `v` (utilities, fees and cost matrices
/// shrink accordingly). `None` if the rebuild fails.
pub fn drop_event(inst: &Instance, v: EventId) -> Option<Instance> {
    let nv = inst.num_events();
    let mut p = parts(inst);
    p.events.remove(v.index());
    p.fees.remove(v.index());
    let mut mu = Vec::with_capacity((nv - 1) * p.users.len());
    for row in p.mu.chunks(nv) {
        for (j, &m) in row.iter().enumerate() {
            if j != v.index() {
                mu.push(m);
            }
        }
    }
    p.mu = mu;
    let travel = match &p.travel {
        TravelCost::Grid { time_per_unit } => TravelCost::Grid { time_per_unit: *time_per_unit },
        TravelCost::Explicit { user_event, event_event } => {
            let mut ue = Vec::with_capacity((nv - 1) * p.users.len());
            for row in user_event.chunks(nv) {
                for (j, &c) in row.iter().enumerate() {
                    if j != v.index() {
                        ue.push(c);
                    }
                }
            }
            TravelCost::Explicit {
                user_event: ue,
                event_event: drop_square_row_col(event_event, nv, v.index()),
            }
        }
    };
    p.travel = travel;
    rebuild(p)
}

/// The instance without user `u`. `None` if the rebuild fails.
pub fn drop_user(inst: &Instance, u: UserId) -> Option<Instance> {
    let nv = inst.num_events();
    let mut p = parts(inst);
    p.users.remove(u.index());
    let start = u.index() * nv;
    p.mu.drain(start..start + nv);
    let travel = match &p.travel {
        TravelCost::Grid { time_per_unit } => TravelCost::Grid { time_per_unit: *time_per_unit },
        TravelCost::Explicit { user_event, event_event } => {
            let mut ue = user_event.clone();
            ue.drain(start..start + nv);
            TravelCost::Explicit { user_event: ue, event_event: event_event.clone() }
        }
    };
    p.travel = travel;
    rebuild(p)
}

/// The instance with event `v`'s capacity halved (floored at 1; `None`
/// when the capacity is already 1, i.e. nothing shrinks).
pub fn halve_capacity(inst: &Instance, v: EventId) -> Option<Instance> {
    let mut p = parts(inst);
    let c = p.events[v.index()].capacity;
    if c <= 1 {
        return None;
    }
    p.events[v.index()].capacity = (c / 2).max(1);
    rebuild(p)
}

/// The instance with user `u`'s budget halved (`None` when it is
/// already 0).
pub fn halve_budget(inst: &Instance, u: UserId) -> Option<Instance> {
    let mut p = parts(inst);
    let b = p.users[u.index()].budget.finite_value().unwrap_or(0);
    if b == 0 {
        return None;
    }
    p.users[u.index()].budget = Cost::new(b / 2);
    rebuild(p)
}

/// Every capacity raised by `delta` — a pure constraint loosening.
pub fn bump_capacities(inst: &Instance, delta: u32) -> Option<Instance> {
    let mut p = parts(inst);
    for e in &mut p.events {
        e.capacity = e.capacity.saturating_add(delta);
    }
    rebuild(p)
}

/// Every budget raised by `delta` — a pure constraint loosening.
pub fn bump_budgets(inst: &Instance, delta: u32) -> Option<Instance> {
    let mut p = parts(inst);
    for u in &mut p.users {
        let b = u.budget.finite_value().unwrap_or(0);
        let raised = b.saturating_add(delta).min(u32::MAX - 1);
        u.budget = Cost::new(raised);
    }
    rebuild(p)
}

/// Every utility multiplied by `factor`. With a power-of-two factor
/// like `0.5` the scaling is exact in floating point, so solver
/// decisions (all ratio and sum comparisons) are provably unchanged.
pub fn scale_mu(inst: &Instance, factor: f32) -> Option<Instance> {
    let mut p = parts(inst);
    for m in &mut p.mu {
        *m *= factor;
    }
    rebuild(p)
}

/// The instance with events relabeled: new event `i` is old event
/// `perm[i]`. Returns `None` unless `perm` is a permutation of
/// `0..|V|`.
pub fn permute_events(inst: &Instance, perm: &[usize]) -> Option<Instance> {
    let nv = inst.num_events();
    if !is_permutation(perm, nv) {
        return None;
    }
    let p = parts(inst);
    let events = perm.iter().map(|&old| p.events[old]).collect();
    let fees = perm.iter().map(|&old| p.fees[old]).collect();
    let mut mu = Vec::with_capacity(p.mu.len());
    for row in p.mu.chunks(nv) {
        mu.extend(perm.iter().map(|&old| row[old]));
    }
    let travel = match &p.travel {
        TravelCost::Grid { time_per_unit } => TravelCost::Grid { time_per_unit: *time_per_unit },
        TravelCost::Explicit { user_event, event_event } => {
            let mut ue = Vec::with_capacity(user_event.len());
            for row in user_event.chunks(nv) {
                ue.extend(perm.iter().map(|&old| row[old]));
            }
            let mut ee = Vec::with_capacity(event_event.len());
            for &oi in perm {
                ee.extend(perm.iter().map(|&oj| event_event[oi * nv + oj]));
            }
            TravelCost::Explicit { user_event: ue, event_event: ee }
        }
    };
    rebuild(Parts { events, users: p.users, mu, travel, fees })
}

/// The instance with users relabeled: new user `i` is old user
/// `perm[i]`. Returns `None` unless `perm` is a permutation of
/// `0..|U|`.
pub fn permute_users(inst: &Instance, perm: &[usize]) -> Option<Instance> {
    let nv = inst.num_events();
    let nu = inst.num_users();
    if !is_permutation(perm, nu) {
        return None;
    }
    let p = parts(inst);
    let users = perm.iter().map(|&old| p.users[old]).collect();
    let mut mu = Vec::with_capacity(p.mu.len());
    for &old in perm {
        mu.extend_from_slice(&p.mu[old * nv..(old + 1) * nv]);
    }
    let travel = match &p.travel {
        TravelCost::Grid { time_per_unit } => TravelCost::Grid { time_per_unit: *time_per_unit },
        TravelCost::Explicit { user_event, event_event } => {
            let mut ue = Vec::with_capacity(user_event.len());
            for &old in perm {
                ue.extend_from_slice(&user_event[old * nv..(old + 1) * nv]);
            }
            TravelCost::Explicit { user_event: ue, event_event: event_event.clone() }
        }
    };
    rebuild(Parts { events: p.events, users, mu, travel, fees: p.fees })
}

fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &i in perm {
        if i >= n || seen[i] {
            return false;
        }
        seen[i] = true;
    }
    true
}

/// A deterministic pseudo-random permutation of `0..n` (Fisher–Yates
/// driven by SplitMix64).
pub fn seeded_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_gen::{generate, SyntheticConfig};

    fn inst() -> Instance {
        generate(&SyntheticConfig::tiny(), 7)
    }

    #[test]
    fn parts_roundtrip_rebuilds_identical_instance() {
        let i = inst();
        let back = rebuild(parts(&i)).unwrap();
        assert_eq!(back, i);
    }

    #[test]
    fn drop_event_shrinks_all_views() {
        let i = inst();
        let j = drop_event(&i, EventId(2)).unwrap();
        assert_eq!(j.num_events(), i.num_events() - 1);
        assert_eq!(j.num_users(), i.num_users());
        // column removed: new v2 is old v3
        assert_eq!(j.mu(EventId(2), UserId(0)), i.mu(EventId(3), UserId(0)));
        assert_eq!(j.event(EventId(2)), i.event(EventId(3)));
    }

    #[test]
    fn drop_user_shrinks_rows() {
        let i = inst();
        let j = drop_user(&i, UserId(0)).unwrap();
        assert_eq!(j.num_users(), i.num_users() - 1);
        assert_eq!(j.mu_row(UserId(0)), i.mu_row(UserId(1)));
    }

    #[test]
    fn halvers_shrink_and_bottom_out() {
        let i = inst();
        let v = EventId(0);
        let c0 = i.event(v).capacity;
        if c0 > 1 {
            let j = halve_capacity(&i, v).unwrap();
            assert_eq!(j.event(v).capacity, (c0 / 2).max(1));
        }
        let u = UserId(0);
        let b0 = i.user(u).budget.value();
        let j = halve_budget(&i, u).unwrap();
        assert_eq!(j.user(u).budget.value(), b0 / 2);
    }

    #[test]
    fn bumps_loosen_constraints() {
        let i = inst();
        let j = bump_capacities(&i, 1).unwrap();
        for v in i.event_ids() {
            assert_eq!(j.event(v).capacity, i.event(v).capacity + 1);
        }
        let j = bump_budgets(&i, 10).unwrap();
        for u in i.user_ids() {
            assert_eq!(j.user(u).budget.value(), i.user(u).budget.value() + 10);
        }
    }

    #[test]
    fn permutations_relabel_consistently() {
        let i = inst();
        let perm = seeded_permutation(i.num_events(), 99);
        let j = permute_events(&i, &perm).unwrap();
        for (new, &old) in perm.iter().enumerate() {
            assert_eq!(j.event(EventId(new as u32)), i.event(EventId(old as u32)));
            for u in i.user_ids() {
                assert_eq!(j.mu(EventId(new as u32), u), i.mu(EventId(old as u32), u));
            }
        }
        let perm = seeded_permutation(i.num_users(), 5);
        let j = permute_users(&i, &perm).unwrap();
        for (new, &old) in perm.iter().enumerate() {
            assert_eq!(j.user(UserId(new as u32)), i.user(UserId(old as u32)));
            assert_eq!(j.mu_row(UserId(new as u32)), i.mu_row(UserId(old as u32)));
        }
    }

    #[test]
    fn seeded_permutation_is_deterministic_and_valid() {
        let a = seeded_permutation(20, 42);
        let b = seeded_permutation(20, 42);
        assert_eq!(a, b);
        assert!(is_permutation(&a, 20));
        assert_ne!(a, seeded_permutation(20, 43));
    }

    #[test]
    fn scale_mu_halves_every_entry_exactly() {
        let i = inst();
        let j = scale_mu(&i, 0.5).unwrap();
        for u in i.user_ids() {
            for (a, b) in i.mu_row(u).iter().zip(j.mu_row(u)) {
                assert_eq!(*b, *a * 0.5);
            }
        }
    }

    #[test]
    fn bad_permutations_rejected() {
        let i = inst();
        assert!(permute_events(&i, &[0, 0, 1]).is_none());
        assert!(permute_users(&i, &[1]).is_none());
    }
}
