//! # usep-oracle — independent verification for the USEP solvers
//!
//! A from-scratch checking subsystem that trusts nothing the solvers
//! computed. The crate has four parts:
//!
//! * [`oracle`] — an **independent constraint validator**. It recomputes
//!   reachability, travel costs, fees and `Ω` from the instance's raw
//!   data (locations, time intervals, utility matrix, explicit cost
//!   matrices) and shares *no code* with `usep-core`'s incremental-cost
//!   (Eq. 3) machinery: it never calls `Schedule::inc_cost`,
//!   `Schedule::total_cost`, `Planning::validate`, `Planning::omega`, or
//!   any `Instance::cost_*` accessor. A bug in the production cost path
//!   therefore cannot hide itself from the oracle.
//! * [`differential`] — runs all six paper solvers, the
//!   `GuardedSolver` chain and the serve retry path on one instance,
//!   oracle-checks every planning, cross-checks each reported `Ω`
//!   against independent recomputation, and audits quality against the
//!   exhaustive optimum (small instances: `Ω ≤ OPT`, and Theorem 3's
//!   `Ω ≥ ½·OPT` for DeDP/DeDPO) or the capacity-relaxed upper bound.
//! * [`metamorphic`] — six relations (event/user permutation,
//!   μ-scaling, capacity/budget monotonicity, single-user removal) that
//!   hold without knowing the right answer.
//! * [`mod@minimize`] + [`fuzz`] — seeded instance streams feeding the
//!   above, with greedy shrinking of any violating instance to a
//!   minimal JSON repro.
//!
//! Everything is deterministic in the seed, and every check emits
//! `oracle_*` trace counters through the standard [`usep_trace::Probe`]
//! interface.
//!
//! ```
//! use usep_oracle::{run_fuzz, FuzzConfig};
//! use usep_trace::NOOP;
//!
//! let report = run_fuzz(&FuzzConfig { count: 4, seed: 42, metamorphic_every: 2 }, &NOOP);
//! assert!(report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corrupt;
pub mod delta;
pub mod differential;
pub mod fuzz;
pub mod metamorphic;
pub mod minimize;
pub mod oracle;
pub mod report;
pub mod transform;

pub use corrupt::{assign_unchecked, corrupt, Corruption};
pub use delta::{oracle_step_check, run_oracle_delta_fuzz};
pub use differential::{exact_applies, verify_instance};
pub use fuzz::{run_fuzz, FuzzConfig, FuzzFinding, FuzzReport};
pub use metamorphic::run_metamorphic;
pub use minimize::minimize;
pub use oracle::{check_planning, check_planning_with_omega};
pub use report::{Finding, OracleReport, Violation};
