//! Oracle-refereed delta fuzzing.
//!
//! `usep-delta` ships its own differential referee (constraint
//! validity, patched-instance byte-identity, Ω-versus-cold-solve), but
//! its validity check is the production [`Planning::validate`] — the
//! code path the engine itself relies on. This module closes the loop
//! the way the rest of the oracle does: it plugs the **independent**
//! constraint validator of [`check_planning`] into the referee's
//! external-check hook, so after every single mutation the incremental
//! planning is re-derived from raw locations, intervals and fees by
//! code that shares nothing with the incremental-cost machinery.
//!
//! Failures come back as kind-preserving minimized traces
//! (self-contained JSON repros) — the same replayable-seed + greedy
//! shrink workflow as [`run_fuzz`](crate::run_fuzz) and `usep-chaos`.
//!
//! [`Planning::validate`]: usep_core::Planning::validate

use usep_delta::{run_delta_fuzz, DeltaEngine, DeltaFuzzConfig, DeltaFuzzReport};
use usep_trace::Probe;

use crate::oracle::check_planning;

/// Per-step oracle hook for the delta referee: runs the independent
/// constraint validator on the engine's live state and reports the
/// first violation as an external failure.
pub fn oracle_step_check(_step: usize, engine: &DeltaEngine) -> Option<String> {
    let report = check_planning(engine.instance(), engine.planning(), &usep_trace::NOOP);
    if report.is_valid() {
        None
    } else {
        report
            .violations
            .first()
            .map(|v| format!("oracle violation: {v:?}"))
            .or_else(|| Some("oracle violation".to_string()))
    }
}

/// [`run_delta_fuzz`] with the independent
/// oracle validator wired into every step. This is what `usep delta
/// --fuzz` and the CI `delta-fuzz` job run.
pub fn run_oracle_delta_fuzz(cfg: &DeltaFuzzConfig, probe: &dyn Probe) -> DeltaFuzzReport {
    run_delta_fuzz(cfg, probe, &oracle_step_check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_delta::{generate_trace, run_trace, RefereeConfig, TraceGenConfig};
    use usep_trace::NOOP;

    #[test]
    fn oracle_hook_passes_on_clean_traces() {
        let trace =
            generate_trace(&TraceGenConfig { seed: 5, mutations: 20, events: 6, users: 8 });
        let report =
            run_trace(&trace, &RefereeConfig::default(), &NOOP, &oracle_step_check).unwrap();
        assert_eq!(report.steps, 20);
    }

    #[test]
    fn oracle_refereed_campaign_is_clean() {
        let cfg = DeltaFuzzConfig { traces: 5, seed: 900, mutations: 15, ..Default::default() };
        let report = run_oracle_delta_fuzz(&cfg, &NOOP);
        assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
    }
}
