//! Greedy failure minimization.
//!
//! Given a violating instance and a predicate that re-checks it, shrink
//! the instance as far as possible while the predicate keeps failing:
//! drop events, drop users, halve capacities, halve budgets. Each
//! accepted shrink restarts the scan; the round repeats until a whole
//! pass produces no accepted shrink (a greedy fixpoint, the classic
//! delta-debugging ddmin simplification). The result is the smallest
//! instance this greedy walk can reach — typically a handful of events
//! and users — ready to serialize as a repro.

use crate::transform::{drop_event, drop_user, halve_budget, halve_capacity};
use usep_core::{EventId, Instance, UserId};
use usep_trace::{Counter, Probe};

/// Hard cap on shrink attempts, so a pathological predicate (e.g. one
/// that re-runs an expensive differential check) cannot spin forever.
pub const MAX_STEPS: usize = 10_000;

/// Shrinks `inst` to a (locally) minimal instance on which
/// `still_fails` still returns `true`.
///
/// `still_fails(inst)` must be `true` on entry — the caller found a
/// violation there — and is re-invoked on every candidate shrink, so
/// keep it deterministic. Every attempt emits one
/// [`Counter::OracleMinimizeStep`].
pub fn minimize<F>(inst: &Instance, still_fails: F, probe: &dyn Probe) -> Instance
where
    F: Fn(&Instance) -> bool,
{
    let mut cur = inst.clone();
    let mut steps = 0usize;

    // one shrink attempt; returns the candidate if it still fails
    let attempt = |steps: &mut usize, cand: Option<Instance>| -> Option<Instance> {
        *steps += 1;
        probe.count(Counter::OracleMinimizeStep, 1);
        cand.filter(|c| still_fails(c))
    };

    loop {
        let mut shrunk = false;

        // drop events (keep at least one so solvers stay meaningful)
        let mut v = 0;
        while v < cur.num_events() && cur.num_events() > 1 && steps < MAX_STEPS {
            match attempt(&mut steps, drop_event(&cur, EventId(v as u32))) {
                Some(smaller) => {
                    cur = smaller;
                    shrunk = true; // same index now names the next event
                }
                None => v += 1,
            }
        }

        // drop users
        let mut u = 0;
        while u < cur.num_users() && cur.num_users() > 1 && steps < MAX_STEPS {
            match attempt(&mut steps, drop_user(&cur, UserId(u as u32))) {
                Some(smaller) => {
                    cur = smaller;
                    shrunk = true;
                }
                None => u += 1,
            }
        }

        // halve capacities (each halving is one attempt; repeated rounds
        // drive a capacity from, say, 8 down to 1 if the failure allows)
        for v in 0..cur.num_events() {
            if steps >= MAX_STEPS {
                break;
            }
            if let Some(smaller) = attempt(&mut steps, halve_capacity(&cur, EventId(v as u32))) {
                cur = smaller;
                shrunk = true;
            }
        }

        // halve budgets
        for u in 0..cur.num_users() {
            if steps >= MAX_STEPS {
                break;
            }
            if let Some(smaller) = attempt(&mut steps, halve_budget(&cur, UserId(u as u32))) {
                cur = smaller;
                shrunk = true;
            }
        }

        if !shrunk || steps >= MAX_STEPS {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_gen::{generate, SyntheticConfig};
    use usep_trace::{TraceSink, NOOP};

    #[test]
    fn minimizes_capacity_failure_to_a_tiny_instance() {
        // predicate: "some event has capacity ≥ 2" — a monotone property
        // the minimizer should shrink to one event, one user
        let inst = generate(&SyntheticConfig::tiny(), 5);
        let fails = |i: &Instance| i.event_ids().any(|v| i.event(v).capacity >= 2);
        assert!(fails(&inst));
        let min = minimize(&inst, fails, &NOOP);
        assert!(fails(&min));
        assert_eq!(min.num_events(), 1);
        assert_eq!(min.num_users(), 1);
        // halving stops once it would break the predicate: 2 stays, 3
        // would halve to 1, so either terminal value is minimal here
        assert!(min.event(EventId(0)).capacity <= 3);
    }

    #[test]
    fn preserves_failures_tied_to_specific_users() {
        // predicate keyed to the count of rich users: the minimizer must
        // keep exactly one of them around
        let inst = generate(&SyntheticConfig::tiny(), 6);
        let median = {
            let mut budgets: Vec<u32> =
                inst.user_ids().map(|u| inst.user(u).budget.value()).collect();
            budgets.sort_unstable();
            budgets[budgets.len() / 2]
        };
        let fails = move |i: &Instance| i.user_ids().any(|u| i.user(u).budget.value() > median);
        assert!(fails(&inst));
        let min = minimize(&inst, fails, &NOOP);
        assert!(fails(&min));
        assert_eq!(min.num_users(), 1);
        assert!(min.user(UserId(0)).budget.value() > median);
    }

    #[test]
    fn emits_minimize_step_counters_and_respects_the_cap() {
        let inst = generate(&SyntheticConfig::tiny(), 7);
        let sink = TraceSink::new();
        let _ = minimize(&inst, |_| true, &sink);
        let steps = sink.counter(usep_trace::Counter::OracleMinimizeStep);
        assert!(steps > 0);
        assert!(steps as usize <= MAX_STEPS + 4, "runaway minimizer: {steps} steps");
    }
}
