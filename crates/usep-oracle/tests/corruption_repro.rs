//! The oracle's negative controls, end to end: corrupt a known-good
//! planning, get a typed violation, minimize the instance to a repro
//! that still exhibits the failure, and round-trip it through JSON.

use usep_algos::{solve, Algorithm};
use usep_core::Instance;
use usep_gen::{generate, SyntheticConfig};
use usep_oracle::{check_planning, corrupt, minimize, Corruption, Violation};
use usep_trace::NOOP;

/// Whether `kind`-corrupting the DeDPO planning of `inst` still
/// produces an oracle violation — the minimizer's failure predicate.
fn corruption_detected(inst: &Instance, kind: Corruption) -> bool {
    let p = solve(Algorithm::DeDPO, inst);
    corrupt(inst, &p, kind)
        .map(|bad| !check_planning(inst, &bad, &NOOP).is_valid())
        .unwrap_or(false)
}

#[test]
fn every_corruption_kind_yields_a_typed_violation() {
    let inst = generate(&SyntheticConfig::tiny(), 11);
    let p = solve(Algorithm::DeDPO, &inst);
    assert!(p.num_assignments() > 0);
    let mut kinds_fired = 0;
    for kind in Corruption::ALL {
        if let Some(bad) = corrupt(&inst, &p, kind) {
            let report = check_planning(&inst, &bad, &NOOP);
            assert!(!report.is_valid(), "{kind:?} went undetected");
            kinds_fired += 1;
        }
    }
    assert!(kinds_fired >= 2, "too few corruption sites on this seed");
}

#[test]
fn corrupted_planning_minimizes_to_a_tiny_json_repro() {
    let inst = generate(&SyntheticConfig::tiny(), 11);
    let kind = Corruption::OverloadEvent;
    assert!(corruption_detected(&inst, kind), "seed must admit an overload");

    let minimal = minimize(&inst, |i| corruption_detected(i, kind), &NOOP);

    // the acceptance bar: a handful of events and users, not the
    // original 8×12 instance
    assert!(minimal.num_events() <= 4, "repro has {} events", minimal.num_events());
    assert!(minimal.num_users() <= 3, "repro has {} users", minimal.num_users());

    // the violation is still typed on the minimal instance
    let p = solve(Algorithm::DeDPO, &minimal);
    let bad = corrupt(&minimal, &p, kind).unwrap();
    let report = check_planning(&minimal, &bad, &NOOP);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::Capacity { .. })));

    // and the repro round-trips through JSON without losing the failure
    let json = serde_json::to_string(&minimal).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    assert!(corruption_detected(&back, kind));
}

#[test]
fn minimizer_keeps_the_failure_through_every_accepted_shrink() {
    // run the minimizer with an instrumented predicate and check the
    // invariant it promises: the returned instance still fails
    let inst = generate(&SyntheticConfig::tiny(), 23);
    let kind = Corruption::DuplicateAssignment;
    if !corruption_detected(&inst, kind) {
        return; // seed produced an empty planning; nothing to duplicate
    }
    let minimal = minimize(&inst, |i| corruption_detected(i, kind), &NOOP);
    assert!(corruption_detected(&minimal, kind));
    assert!(minimal.num_events() <= inst.num_events());
    assert!(minimal.num_users() <= inst.num_users());
}
