//! End-to-end oracle runs: the differential engine, the metamorphic
//! suite and the seeded fuzzer, across a spread of instance shapes.

use usep_gen::{generate, SyntheticConfig};
use usep_oracle::fuzz::stream_config;
use usep_oracle::{run_fuzz, run_metamorphic, verify_instance, FuzzConfig};
use usep_trace::{Counter, TraceSink, NOOP};

#[test]
fn differential_engine_is_clean_across_the_size_classes() {
    for i in 0..8u64 {
        let inst = generate(&stream_config(i), 1000 + i);
        let findings = verify_instance(&inst, &NOOP);
        assert!(findings.is_empty(), "class {}: {findings:?}", i % 4);
    }
}

#[test]
fn differential_engine_is_clean_under_full_conflict() {
    // every event overlaps every other: schedules are all single-event,
    // which stresses the feasibility checks rather than the cost path
    let cfg = SyntheticConfig::tiny()
        .with_events(6)
        .with_users(5)
        .with_capacity_mean(2)
        .with_conflict_ratio(1.0);
    for seed in 0..3 {
        let inst = generate(&cfg, seed);
        let findings = verify_instance(&inst, &NOOP);
        assert!(findings.is_empty(), "seed {seed}: {findings:?}");
    }
}

#[test]
fn metamorphic_suite_is_clean_across_seeds_and_shapes() {
    for i in 0..6u64 {
        let inst = generate(&stream_config(i), 2000 + i);
        let findings = run_metamorphic(&inst, 31 + i, &NOOP);
        assert!(findings.is_empty(), "class {}: {findings:?}", i % 4);
    }
}

#[test]
fn seeded_fuzz_campaign_is_clean() {
    let report = run_fuzz(&FuzzConfig { count: 20, seed: 42, metamorphic_every: 5 }, &NOOP);
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.instances, 20);
    assert_eq!(report.metamorphic_runs, 4);
    assert!(report.repro.is_none());
}

#[test]
fn fuzz_campaign_emits_oracle_counters_deterministically() {
    let cfg = FuzzConfig { count: 8, seed: 9, metamorphic_every: 4 };
    let a = TraceSink::new();
    let b = TraceSink::new();
    assert!(run_fuzz(&cfg, &a).is_clean());
    assert!(run_fuzz(&cfg, &b).is_clean());
    assert!(a.counter(Counter::OracleCheck) > 0);
    assert_eq!(a.counter(Counter::OracleCheck), b.counter(Counter::OracleCheck));
    assert_eq!(a.counter(Counter::OracleViolation), 0);
}
