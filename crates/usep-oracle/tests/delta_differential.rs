//! Mutation-trace differential suite: incremental vs cold, refereed by
//! the independent oracle after **every** mutation.
//!
//! 200+ seeded traces run through `usep-delta`'s engine with the
//! oracle's from-scratch constraint validator on the referee's
//! external-check hook. Any failure is shrunk kind-preservingly and
//! printed as a self-contained JSON repro (replay with
//! `usep delta --trace-in <file>`).
//!
//! The bulk runs with `check_patching: false` (the patch-layer
//! byte-identity differential is quadratic per step and is covered
//! densely by a smaller sweep below plus `usep-core`'s own patch
//! tests); planning validity, oracle validity and the Ω drift bound are
//! asserted on every step of every trace.

use usep_delta::{
    generate_trace, minimize_trace, run_trace, FailureKind, MutationTrace, RefereeConfig,
    TraceGenConfig,
};
use usep_oracle::oracle_step_check;
use usep_trace::NOOP;

fn repro(trace: &MutationTrace, cfg: &RefereeConfig, kind: FailureKind) -> String {
    let min = minimize_trace(trace, &|cand| {
        matches!(run_trace(cand, cfg, &NOOP, &oracle_step_check), Err(f) if f.kind == kind)
    });
    serde_json::to_string(&min).unwrap_or_else(|e| format!("<repro serialization failed: {e}>"))
}

fn sweep(seeds: std::ops::Range<u64>, gen: TraceGenConfig, cfg: RefereeConfig) {
    let mut total_steps = 0u64;
    let mut total_repairs = 0u64;
    for seed in seeds {
        let trace = generate_trace(&TraceGenConfig { seed, ..gen });
        match run_trace(&trace, &cfg, &NOOP, &oracle_step_check) {
            Ok(r) => {
                total_steps += r.steps as u64;
                total_repairs += r.repairs;
            }
            Err(f) => {
                panic!(
                    "seed {seed}: {f}\nminimized repro (usep delta --trace-in):\n{}",
                    repro(&trace, &cfg, f.kind)
                );
            }
        }
    }
    assert!(total_steps > 0);
    // the engine must mostly stay on the bounded-repair path
    assert!(
        total_repairs as f64 >= 0.8 * total_steps as f64,
        "repair fraction {:.3} below 0.8 across the sweep",
        total_repairs as f64 / total_steps as f64
    );
}

#[test]
fn differential_sweep_small_instances() {
    // 100 traces × 30 mutations on small instances
    sweep(
        0..100,
        TraceGenConfig { seed: 0, mutations: 30, events: 5, users: 7 },
        RefereeConfig { check_patching: false, ..RefereeConfig::default() },
    );
}

#[test]
fn differential_sweep_medium_instances() {
    // 80 traces × 40 mutations on medium instances
    sweep(
        1000..1080,
        TraceGenConfig { seed: 0, mutations: 40, events: 9, users: 14 },
        RefereeConfig { check_patching: false, ..RefereeConfig::default() },
    );
}

#[test]
fn differential_sweep_with_patch_byte_identity() {
    // 30 traces with the quadratic patched-instance differential on:
    // object arrays, cost matrix and amended frozen view must equal a
    // from-scratch rebuild after every single mutation
    sweep(
        5000..5030,
        TraceGenConfig { seed: 0, mutations: 25, events: 6, users: 8 },
        RefereeConfig { check_patching: true, ..RefereeConfig::default() },
    );
}

#[test]
fn differential_sweep_adversarial_churn() {
    // crank structural churn: tiny instances where removals, shrinks
    // and μ-zeroing hit assigned pairs constantly
    sweep(
        7000..7040,
        TraceGenConfig { seed: 0, mutations: 50, events: 3, users: 4 },
        RefereeConfig { check_patching: true, ..RefereeConfig::default() },
    );
}

#[test]
fn acceptance_500_mutation_trace_seed_42() {
    // The PR acceptance gate: on a 500-mutation seeded trace, ≥90% of
    // mutations resolve via bounded repair, every intermediate planning
    // passes the oracle, and the final Ω lands within the drift
    // threshold of a cold solve.
    let trace =
        generate_trace(&TraceGenConfig { seed: 42, mutations: 500, events: 10, users: 16 });
    let cfg = RefereeConfig { check_patching: false, ..RefereeConfig::default() };
    let report = run_trace(&trace, &cfg, &NOOP, &oracle_step_check)
        .unwrap_or_else(|f| panic!("seed 42: {f}\nrepro:\n{}", repro(&trace, &cfg, f.kind)));
    assert_eq!(report.steps, 500);
    assert!(
        report.repair_fraction() >= 0.9,
        "repair fraction {:.3} below the 0.9 acceptance floor (repairs {}, fallbacks {})",
        report.repair_fraction(),
        report.repairs,
        report.fallbacks
    );
    assert!(
        report.final_omega + 1e-9 >= (1.0 - cfg.drift_bound) * report.final_omega_cold,
        "final Ω {:.4} outside drift bound of cold Ω {:.4}",
        report.final_omega,
        report.final_omega_cold
    );
}
