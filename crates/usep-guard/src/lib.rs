//! Resource governance for USEP solves.
//!
//! The solvers in `usep-algos` are anytime-shaped: RatioGreedy grows a
//! planning one assignment at a time and the decomposed solvers
//! (DeDP/DeDPO/DeGreedy) finish one user before starting the next, so
//! every prefix of their work is itself a constraint-valid planning.
//! This crate supplies the machinery to stop them at such a prefix:
//!
//! * [`SolveBudget`] — a declarative budget: optional wall-clock
//!   deadline, optional memory ceiling in bytes, optional cooperative
//!   [`CancelToken`].
//! * [`Guard`] — the runtime handle a solver polls from its hot loop
//!   via [`Guard::checkpoint`] and charges allocations against via
//!   [`Guard::try_reserve`]. A guard trips at most once and stays
//!   tripped (the first reason wins).
//! * [`SolveOutcome`] — the tag attached to the returned planning:
//!   [`SolveOutcome::Complete`] or [`SolveOutcome::Truncated`] with a
//!   [`TruncationReason`].
//!
//! Like `usep-trace`, this crate has no dependencies: the checkpoint
//! sits inside every solver's innermost loop and must never allocate.
//! An unlimited guard's checkpoint is a single boolean load.
//!
//! For fault injection, [`SolveBudget::with_chaos_trip`] arms a
//! deterministic trip at the *n*-th checkpoint, which lets a test
//! simulate "the deadline expired exactly here" at every checkpoint a
//! solver ever reaches.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Why a solve stopped before completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TruncationReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// An allocation would have exceeded the memory ceiling.
    MemoryCeiling,
    /// The [`CancelToken`] was cancelled from another thread.
    Cancelled,
}

impl TruncationReason {
    /// Stable snake_case name, used in traces, measurements and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            TruncationReason::Deadline => "deadline",
            TruncationReason::MemoryCeiling => "memory_ceiling",
            TruncationReason::Cancelled => "cancelled",
        }
    }

    fn encode(self) -> u8 {
        match self {
            TruncationReason::Deadline => 1,
            TruncationReason::MemoryCeiling => 2,
            TruncationReason::Cancelled => 3,
        }
    }

    fn decode(code: u8) -> Option<TruncationReason> {
        match code {
            1 => Some(TruncationReason::Deadline),
            2 => Some(TruncationReason::MemoryCeiling),
            3 => Some(TruncationReason::Cancelled),
            _ => None,
        }
    }
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a guarded solve ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolveOutcome {
    /// The solver ran to its natural end; the planning is the same one
    /// an unguarded solve would have produced.
    Complete,
    /// The guard tripped; the planning is the constraint-valid prefix
    /// built up to the last checkpoint.
    Truncated {
        /// What tripped the guard.
        reason: TruncationReason,
    },
}

impl SolveOutcome {
    /// True for [`SolveOutcome::Complete`].
    pub fn is_complete(self) -> bool {
        matches!(self, SolveOutcome::Complete)
    }

    /// The truncation reason, if any.
    pub fn reason(self) -> Option<TruncationReason> {
        match self {
            SolveOutcome::Complete => None,
            SolveOutcome::Truncated { reason } => Some(reason),
        }
    }

    /// Stable one-token description: `complete`, `truncated:deadline`,
    /// `truncated:memory_ceiling` or `truncated:cancelled`.
    pub fn describe(self) -> String {
        match self {
            SolveOutcome::Complete => "complete".to_string(),
            SolveOutcome::Truncated { reason } => format!("truncated:{}", reason.name()),
        }
    }
}

impl std::fmt::Display for SolveOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A cooperative cancellation flag, cheap to clone and share across
/// threads. Cancelling is sticky.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Guards built from this token trip with
    /// [`TruncationReason::Cancelled`] at their next checkpoint.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A declarative resource budget for one solve (or one orchestrated
/// chain of solves). All limits are optional; the default budget is
/// unlimited and adds no overhead beyond a branch per checkpoint.
#[derive(Clone, Debug, Default)]
pub struct SolveBudget {
    deadline: Option<Duration>,
    memory_ceiling: Option<usize>,
    cancel: Option<CancelToken>,
    chaos_trip: Option<(u64, TruncationReason)>,
}

impl SolveBudget {
    /// A budget with no limits.
    pub fn unlimited() -> SolveBudget {
        SolveBudget::default()
    }

    /// Sets a wall-clock deadline, measured from [`Guard::new`].
    pub fn with_deadline(mut self, deadline: Duration) -> SolveBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a ceiling on bytes charged via [`Guard::try_reserve`].
    pub fn with_memory_ceiling(mut self, bytes: usize) -> SolveBudget {
        self.memory_ceiling = Some(bytes);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> SolveBudget {
        self.cancel = Some(token);
        self
    }

    /// Arms a deterministic fault-injection trip: the guard trips with
    /// `reason` once `checkpoint` checkpoints have been observed
    /// (`0` trips at the very first checkpoint). Pass `u64::MAX` to
    /// merely count checkpoints without ever tripping.
    pub fn with_chaos_trip(mut self, checkpoint: u64, reason: TruncationReason) -> SolveBudget {
        self.chaos_trip = Some((checkpoint, reason));
        self
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The configured memory ceiling in bytes, if any.
    pub fn memory_ceiling(&self) -> Option<usize> {
        self.memory_ceiling
    }

    /// True when no limit of any kind is configured.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.memory_ceiling.is_none()
            && self.cancel.is_none()
            && self.chaos_trip.is_none()
    }

    /// A copy of this budget with the deadline replaced by the time
    /// remaining out of `total` after `elapsed` (used by orchestrators
    /// that spend one budget across a fallback chain). Returns `None`
    /// when a configured deadline is already exhausted.
    pub fn with_remaining_deadline(&self, elapsed: Duration) -> Option<SolveBudget> {
        let mut next = self.clone();
        if let Some(total) = self.deadline {
            if elapsed >= total {
                return None;
            }
            next.deadline = Some(total - elapsed);
        }
        Some(next)
    }
}

/// A shared, non-sticky byte-reservation pool for admission control.
///
/// [`Guard::try_reserve`] is the right shape *inside* one solve: a
/// refused reservation trips the guard and the whole solve winds down.
/// A long-running server needs the opposite semantics — refusing one
/// request's reservation must leave the pool serving every other
/// request — so the ledger refuses without tripping anything, and
/// releases return headroom immediately.
///
/// The accounting is the same saturating fetch-add/fetch-sub scheme as
/// the guard's, so a ledger and per-solve guards can share one mental
/// model: the ledger bounds what is admitted, each admitted solve's
/// guard bounds what that solve allocates.
#[derive(Debug)]
pub struct MemoryLedger {
    capacity: usize,
    in_use: AtomicUsize,
}

impl MemoryLedger {
    /// A ledger with `capacity` reservable bytes.
    pub fn new(capacity: usize) -> MemoryLedger {
        MemoryLedger { capacity, in_use: AtomicUsize::new(0) }
    }

    /// Reserves `bytes` if they fit under the capacity. On `false`
    /// nothing was reserved and the ledger is unchanged — later
    /// (smaller, or post-release) reservations may still succeed.
    pub fn try_reserve(&self, bytes: usize) -> bool {
        let prev = self.in_use.fetch_add(bytes, Ordering::Relaxed);
        if prev.saturating_add(bytes) > self.capacity {
            self.in_use.fetch_sub(bytes, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Returns a reservation made with [`MemoryLedger::try_reserve`].
    pub fn release(&self, bytes: usize) {
        let _ = self.in_use.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            Some(cur.saturating_sub(bytes))
        });
    }

    /// Bytes currently reserved.
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// The reservable capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

const NOT_TRIPPED: u8 = 0;

/// The runtime handle solvers poll. Construction captures the start
/// instant for deadline accounting; the guard is `Sync`, so one guard
/// can serve a solver that fans work out across threads.
#[derive(Debug)]
pub struct Guard {
    active: bool,
    deadline: Option<Instant>,
    ceiling: Option<usize>,
    cancel: Option<CancelToken>,
    chaos_trip: Option<(u64, TruncationReason)>,
    checkpoints: AtomicU64,
    reserved: AtomicUsize,
    tripped: AtomicU8,
}

impl Guard {
    /// Starts the clock on `budget` and returns the handle to poll.
    pub fn new(budget: &SolveBudget) -> Guard {
        Guard {
            active: !budget.is_unlimited(),
            deadline: budget.deadline.map(|d| Instant::now() + d),
            ceiling: budget.memory_ceiling,
            cancel: budget.cancel.clone(),
            chaos_trip: budget.chaos_trip,
            checkpoints: AtomicU64::new(0),
            reserved: AtomicUsize::new(0),
            tripped: AtomicU8::new(NOT_TRIPPED),
        }
    }

    /// A guard that never trips; its checkpoint is a single branch.
    pub fn unlimited() -> Guard {
        Guard::new(&SolveBudget::unlimited())
    }

    /// A shared `'static` unlimited guard, for APIs that take
    /// `&Guard` but have no budget to enforce (e.g. a solver's plain
    /// `solve` path delegating to its guarded implementation).
    pub fn none() -> &'static Guard {
        static NONE: OnceLock<Guard> = OnceLock::new();
        NONE.get_or_init(Guard::unlimited)
    }

    /// Polls the budget. Returns `true` when the solver must stop and
    /// return its best-so-far planning. Once tripped, every later call
    /// returns `true`.
    pub fn checkpoint(&self) -> bool {
        if !self.active {
            return false;
        }
        if self.tripped.load(Ordering::Relaxed) != NOT_TRIPPED {
            return true;
        }
        let seen = self.checkpoints.fetch_add(1, Ordering::Relaxed);
        if let Some((at, reason)) = self.chaos_trip {
            if seen >= at {
                self.trip(reason);
                return true;
            }
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                self.trip(TruncationReason::Cancelled);
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.trip(TruncationReason::Deadline);
                return true;
            }
        }
        false
    }

    /// Charges `bytes` against the memory ceiling before a large
    /// allocation. On `false` the reservation was refused and the guard
    /// has tripped with [`TruncationReason::MemoryCeiling`]; the caller
    /// must not allocate. Guards that are already tripped refuse every
    /// reservation.
    pub fn try_reserve(&self, bytes: usize) -> bool {
        if self.tripped.load(Ordering::Relaxed) != NOT_TRIPPED {
            return false;
        }
        if let Some(ceiling) = self.ceiling {
            let prev = self.reserved.fetch_add(bytes, Ordering::Relaxed);
            if prev.saturating_add(bytes) > ceiling {
                self.reserved.fetch_sub(bytes, Ordering::Relaxed);
                self.trip(TruncationReason::MemoryCeiling);
                return false;
            }
        }
        true
    }

    /// Returns a reservation made with [`Guard::try_reserve`] (after
    /// the allocation is dropped).
    pub fn release(&self, bytes: usize) {
        if self.ceiling.is_some() {
            let _ =
                self.reserved
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                        Some(cur.saturating_sub(bytes))
                    });
        }
    }

    /// Whether reserving `bytes` would exceed the ceiling, without
    /// reserving or tripping. Orchestrators use this to pre-estimate.
    pub fn would_exceed(&self, bytes: usize) -> bool {
        match self.ceiling {
            Some(ceiling) => self.reserved.load(Ordering::Relaxed).saturating_add(bytes) > ceiling,
            None => false,
        }
    }

    /// Trips the guard manually. The first reason recorded wins.
    pub fn trip(&self, reason: TruncationReason) {
        let _ = self.tripped.compare_exchange(
            NOT_TRIPPED,
            reason.encode(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Whether the guard has tripped.
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed) != NOT_TRIPPED
    }

    /// The absolute wall-clock deadline this guard enforces, when one
    /// was configured. The serve layer stamps this into its
    /// request-scoped trace context so nested layers share one clock.
    pub fn deadline_instant(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left before the deadline trips (zero once it has passed);
    /// `None` when no deadline is configured.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether any limit is configured. Solvers with a legacy
    /// fail-fast path (e.g. a panic on an absurd table size) keep it
    /// when the guard is inactive — tripping a shared unlimited guard
    /// would poison every later solve through it.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The outcome tag for the solve this guard supervised.
    pub fn outcome(&self) -> SolveOutcome {
        match TruncationReason::decode(self.tripped.load(Ordering::Relaxed)) {
            None => SolveOutcome::Complete,
            Some(reason) => SolveOutcome::Truncated { reason },
        }
    }

    /// Checkpoints observed so far (only counted on active guards;
    /// an unlimited guard always reports zero).
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Bytes currently charged against the ceiling.
    pub fn reserved_bytes(&self) -> usize {
        self.reserved.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = Guard::unlimited();
        for _ in 0..10_000 {
            assert!(!g.checkpoint());
        }
        assert!(g.try_reserve(usize::MAX));
        assert_eq!(g.outcome(), SolveOutcome::Complete);
        assert_eq!(g.checkpoints(), 0);
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let budget = SolveBudget::unlimited().with_deadline(Duration::ZERO);
        let g = Guard::new(&budget);
        assert!(g.checkpoint());
        assert_eq!(
            g.outcome(),
            SolveOutcome::Truncated {
                reason: TruncationReason::Deadline
            }
        );
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let budget = SolveBudget::unlimited().with_deadline(Duration::from_secs(3600));
        let g = Guard::new(&budget);
        for _ in 0..1000 {
            assert!(!g.checkpoint());
        }
        assert_eq!(g.outcome(), SolveOutcome::Complete);
        assert_eq!(g.checkpoints(), 1000);
    }

    #[test]
    fn cancel_token_trips_at_next_checkpoint() {
        let token = CancelToken::new();
        let budget = SolveBudget::unlimited().with_cancel(token.clone());
        let g = Guard::new(&budget);
        assert!(!g.checkpoint());
        token.cancel();
        assert!(g.checkpoint());
        assert_eq!(g.outcome().reason(), Some(TruncationReason::Cancelled));
    }

    #[test]
    fn memory_ceiling_refuses_and_trips() {
        let budget = SolveBudget::unlimited().with_memory_ceiling(1024);
        let g = Guard::new(&budget);
        assert!(g.try_reserve(512));
        assert!(g.try_reserve(512));
        assert!(!g.try_reserve(1));
        assert_eq!(g.outcome().reason(), Some(TruncationReason::MemoryCeiling));
        // once tripped, every reservation is refused
        assert!(!g.try_reserve(0));
    }

    #[test]
    fn release_returns_headroom_before_any_trip() {
        let budget = SolveBudget::unlimited().with_memory_ceiling(1024);
        let g = Guard::new(&budget);
        assert!(g.try_reserve(1024));
        g.release(1024);
        assert_eq!(g.reserved_bytes(), 0);
        assert!(g.try_reserve(1024));
    }

    #[test]
    fn would_exceed_does_not_trip() {
        let budget = SolveBudget::unlimited().with_memory_ceiling(100);
        let g = Guard::new(&budget);
        assert!(g.would_exceed(101));
        assert!(!g.would_exceed(100));
        assert!(!g.is_tripped());
    }

    #[test]
    fn chaos_trip_fires_at_exact_checkpoint() {
        let budget =
            SolveBudget::unlimited().with_chaos_trip(3, TruncationReason::Deadline);
        let g = Guard::new(&budget);
        assert!(!g.checkpoint()); // 0
        assert!(!g.checkpoint()); // 1
        assert!(!g.checkpoint()); // 2
        assert!(g.checkpoint()); // 3 → trip
        assert_eq!(g.outcome().reason(), Some(TruncationReason::Deadline));
    }

    #[test]
    fn chaos_sentinel_counts_without_tripping() {
        let budget =
            SolveBudget::unlimited().with_chaos_trip(u64::MAX, TruncationReason::Deadline);
        let g = Guard::new(&budget);
        for _ in 0..57 {
            assert!(!g.checkpoint());
        }
        assert_eq!(g.checkpoints(), 57);
        assert_eq!(g.outcome(), SolveOutcome::Complete);
    }

    #[test]
    fn first_trip_reason_wins() {
        let g = Guard::unlimited();
        g.trip(TruncationReason::Cancelled);
        g.trip(TruncationReason::Deadline);
        assert_eq!(g.outcome().reason(), Some(TruncationReason::Cancelled));
    }

    #[test]
    fn remaining_deadline_splits_budget() {
        let budget = SolveBudget::unlimited().with_deadline(Duration::from_millis(100));
        let rest = budget
            .with_remaining_deadline(Duration::from_millis(40))
            .expect("time left");
        assert_eq!(rest.deadline(), Some(Duration::from_millis(60)));
        assert!(budget
            .with_remaining_deadline(Duration::from_millis(100))
            .is_none());
        // unlimited budgets always have time left
        assert!(SolveBudget::unlimited()
            .with_remaining_deadline(Duration::from_secs(999))
            .is_some());
    }

    #[test]
    fn ledger_refusals_are_not_sticky() {
        let ledger = MemoryLedger::new(1000);
        assert!(ledger.try_reserve(600));
        // refused: does not fit — but the ledger keeps serving
        assert!(!ledger.try_reserve(500));
        assert_eq!(ledger.in_use(), 600);
        assert!(ledger.try_reserve(400));
        assert!(!ledger.try_reserve(1));
        ledger.release(600);
        assert!(ledger.try_reserve(600));
        assert_eq!(ledger.in_use(), 1000);
        assert_eq!(ledger.capacity(), 1000);
    }

    #[test]
    fn ledger_release_saturates_at_zero() {
        let ledger = MemoryLedger::new(10);
        ledger.release(100);
        assert_eq!(ledger.in_use(), 0);
        assert!(ledger.try_reserve(10));
    }

    #[test]
    fn deadline_accessors_expose_the_absolute_clock() {
        let unlimited = Guard::unlimited();
        assert!(unlimited.deadline_instant().is_none());
        assert!(unlimited.remaining().is_none());

        let budget = SolveBudget::unlimited().with_deadline(Duration::from_secs(60));
        let guard = Guard::new(&budget);
        let deadline = guard.deadline_instant().expect("deadline configured");
        assert!(deadline > Instant::now());
        let remaining = guard.remaining().expect("deadline configured");
        assert!(remaining <= Duration::from_secs(60));
        assert!(remaining >= Duration::from_secs(59));

        let expired = Guard::new(&SolveBudget::unlimited().with_deadline(Duration::ZERO));
        assert_eq!(expired.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn describe_strings_are_stable() {
        assert_eq!(SolveOutcome::Complete.describe(), "complete");
        assert_eq!(
            SolveOutcome::Truncated {
                reason: TruncationReason::MemoryCeiling
            }
            .describe(),
            "truncated:memory_ceiling"
        );
        assert_eq!(TruncationReason::Cancelled.to_string(), "cancelled");
    }
}
