//! Panel definitions: one per table/figure column of the paper's §5.
//!
//! Every sweep panel lists its x-axis values and a closure building the
//! instance for each point. `quick` mode divides user counts by 8
//! (keeping every other Table-7 knob) so a full regeneration fits in
//! minutes instead of hours; EXPERIMENTS.md records that the qualitative
//! shapes are scale-invariant in that range.

use usep_algos::Algorithm;
use usep_core::Instance;
use usep_gen::{generate, generate_city, CityConfig, Spread, SyntheticConfig, UtilityDistribution};

/// How user counts shrink in quick mode.
const QUICK_DIVISOR: usize = 8;

/// One x-axis point of a sweep panel.
pub struct PanelPoint {
    /// X-axis value label (the parameter setting).
    pub x: String,
    /// Builds the instance for this point from a seed.
    pub make: Box<dyn Fn(u64) -> Instance + Send + Sync>,
}

/// What a panel produces.
pub enum PanelKind {
    /// Algorithm sweep over x-axis points (Figures 2–4 and the special
    /// test).
    Sweep {
        /// X-axis label.
        x_label: &'static str,
        /// Algorithms to run at every point.
        algos: Vec<Algorithm>,
        /// The x-axis points.
        points: Vec<PanelPoint>,
    },
    /// Table 6: statistics of the simulated city datasets.
    CityStats,
    /// Extension: per-instance optimality gaps — Ω of selected
    /// algorithms against the relaxation upper bound of
    /// `usep_algos::bounds`.
    QualityGap {
        /// X-axis label.
        x_label: &'static str,
        /// The x-axis points.
        points: Vec<PanelPoint>,
    },
    /// Extension: instance-noise error bars — mean ± std of Ω per
    /// algorithm over an ensemble of seeds at one configuration.
    Variance {
        /// Seeds to run.
        seeds: Vec<u64>,
        /// Instance factory.
        make: Box<dyn Fn(u64) -> Instance + Send + Sync>,
    },
    /// Extension: fairness comparison — Jain index / served fraction /
    /// min utility per algorithm (including the max-min solver) under
    /// capacity scarcity.
    Fairness {
        /// Instance factory.
        make: Box<dyn Fn(u64) -> Instance + Send + Sync>,
    },
}

/// A regenerable panel of the paper's evaluation.
pub struct Panel {
    /// Figure id: `"2"`, `"3"`, `"4"`, `"table6"`, `"special"`.
    pub figure: &'static str,
    /// Panel name within the figure (CLI `--panel`).
    pub name: &'static str,
    /// Human-readable description.
    pub title: String,
    /// What to run.
    pub kind: PanelKind,
}

fn users(full: usize, quick: bool) -> usize {
    if quick {
        (full / QUICK_DIVISOR).max(20)
    } else {
        full
    }
}

fn point(x: impl Into<String>, cfg: SyntheticConfig) -> PanelPoint {
    PanelPoint { x: x.into(), make: Box::new(move |seed| generate(&cfg, seed)) }
}

fn paper_algos() -> Vec<Algorithm> {
    Algorithm::PAPER_SET.to_vec()
}

fn scalable_algos() -> Vec<Algorithm> {
    Algorithm::SCALABLE_SET.to_vec()
}

/// Builds every panel at the requested scale.
pub fn all_panels(quick: bool) -> Vec<Panel> {
    let nu = users(5000, quick); // Table-7 default |U|
    let base = SyntheticConfig::default().with_users(nu);
    let mut panels = Vec::new();

    // ---- Figure 2, column 1: vary |V| ----
    panels.push(Panel {
        figure: "2",
        name: "v",
        title: format!("vary |V| in {{20..500}} at |U|={nu} (Fig. 2 a/e/i)"),
        kind: PanelKind::Sweep {
            x_label: "|V|",
            algos: paper_algos(),
            points: [20, 50, 100, 200, 500]
                .iter()
                .map(|&v| point(v.to_string(), base.clone().with_events(v)))
                .collect(),
        },
    });

    // ---- Figure 2, column 2: vary |U| ----
    let u_axis: Vec<usize> = [100, 200, 500, 1000, 5000]
        .iter()
        .map(|&u| users(u, quick).min(u))
        .collect();
    panels.push(Panel {
        figure: "2",
        name: "u",
        title: format!("vary |U| in {u_axis:?} (Fig. 2 b/f/j)"),
        kind: PanelKind::Sweep {
            x_label: "|U|",
            algos: paper_algos(),
            points: u_axis
                .iter()
                .map(|&u| point(u.to_string(), SyntheticConfig::default().with_users(u)))
                .collect(),
        },
    });

    // ---- Figure 2, column 3: vary mean capacity ----
    panels.push(Panel {
        figure: "2",
        name: "cap",
        title: format!("vary mean c_v in {{10..200}} at |U|={nu} (Fig. 2 c/g/k)"),
        kind: PanelKind::Sweep {
            x_label: "mean c_v",
            algos: paper_algos(),
            points: [10, 20, 50, 100, 200]
                .iter()
                .map(|&c| point(c.to_string(), base.clone().with_capacity_mean(c)))
                .collect(),
        },
    });

    // ---- Figure 2, column 4: vary conflict ratio ----
    panels.push(Panel {
        figure: "2",
        name: "cr",
        title: format!("vary conflict ratio in {{0..1}} at |U|={nu} (Fig. 2 d/h/l)"),
        kind: PanelKind::Sweep {
            x_label: "cr",
            algos: paper_algos(),
            points: [0.0, 0.25, 0.5, 0.75, 1.0]
                .iter()
                .map(|&cr| point(cr.to_string(), base.clone().with_conflict_ratio(cr)))
                .collect(),
        },
    });

    // ---- Figure 3, column 1: vary budget factor ----
    let fb_axis = [0.5, 1.0, 2.0, 5.0, 10.0];
    panels.push(Panel {
        figure: "3",
        name: "fb",
        title: format!("vary f_b in {{0.5..10}} at |U|={nu} (Fig. 3, col 1)"),
        kind: PanelKind::Sweep {
            x_label: "f_b",
            algos: paper_algos(),
            points: fb_axis
                .iter()
                .map(|&f| point(f.to_string(), base.clone().with_budget_factor(f)))
                .collect(),
        },
    });

    // ---- Figure 3, column 2: μ ~ Power(0.5), vary f_b ----
    panels.push(Panel {
        figure: "3",
        name: "mu-power",
        title: format!("μ ~ Power(0.5), vary f_b at |U|={nu} (Fig. 3, col 2)"),
        kind: PanelKind::Sweep {
            x_label: "f_b",
            algos: paper_algos(),
            points: fb_axis
                .iter()
                .map(|&f| {
                    point(
                        f.to_string(),
                        base.clone()
                            .with_budget_factor(f)
                            .with_mu_dist(UtilityDistribution::Power { exponent: 0.5 }),
                    )
                })
                .collect(),
        },
    });

    // ---- Figure 3, column 3: c_v ~ Normal, vary mean ----
    panels.push(Panel {
        figure: "3",
        name: "cap-normal",
        title: format!("c_v ~ Normal, vary mean in {{10..200}} at |U|={nu} (Fig. 3, col 3)"),
        kind: PanelKind::Sweep {
            x_label: "mean c_v",
            algos: paper_algos(),
            points: [10, 20, 50, 100, 200]
                .iter()
                .map(|&c| {
                    point(
                        c.to_string(),
                        base.clone().with_capacity_mean(c).with_capacity_dist(Spread::Normal),
                    )
                })
                .collect(),
        },
    });

    // ---- Figure 3, column 4: b_u ~ Normal, vary f_b ----
    panels.push(Panel {
        figure: "3",
        name: "budget-normal",
        title: format!("b_u ~ Normal, vary f_b at |U|={nu} (Fig. 3, col 4)"),
        kind: PanelKind::Sweep {
            x_label: "f_b",
            algos: paper_algos(),
            points: fb_axis
                .iter()
                .map(|&f| {
                    point(
                        f.to_string(),
                        base.clone().with_budget_factor(f).with_budget_dist(Spread::Normal),
                    )
                })
                .collect(),
        },
    });

    // ---- Figure 4, columns 1-3: scalability (no DeDP) ----
    let scal_axis: Vec<usize> = [10_000, 20_000, 30_000, 40_000, 50_000, 100_000]
        .iter()
        .map(|&u| users(u, quick))
        .collect();
    for &(nv, name) in &[(100usize, "scal-100"), (200, "scal-200"), (500, "scal-500")] {
        panels.push(Panel {
            figure: "4",
            name,
            title: format!("scalability: |V|={nv}, mean c_v=200, |U| up to {} (Fig. 4)", scal_axis.last().unwrap()),
            kind: PanelKind::Sweep {
                x_label: "|U|",
                algos: scalable_algos(),
                points: scal_axis
                    .iter()
                    .map(|&u| {
                        point(
                            u.to_string(),
                            SyntheticConfig::default()
                                .with_events(nv)
                                .with_users(u)
                                .with_capacity_mean(200),
                        )
                    })
                    .collect(),
            },
        });
    }

    // ---- Figure 4, column 4: real (simulated Singapore), vary f_b ----
    let city_users = users(1500, quick).min(1500);
    panels.push(Panel {
        figure: "4",
        name: "real",
        title: format!("simulated Singapore EBSN ({city_users} users), vary f_b (Fig. 4, col 4)"),
        kind: PanelKind::Sweep {
            x_label: "f_b",
            algos: paper_algos(),
            points: fb_axis
                .iter()
                .map(|&f| {
                    let mut cfg = CityConfig::singapore().with_budget_factor(f);
                    cfg.num_users = city_users;
                    PanelPoint {
                        x: f.to_string(),
                        make: Box::new(move |seed| generate_city(&cfg, seed)),
                    }
                })
                .collect(),
        },
    });

    // ---- Table 6: simulated city statistics ----
    panels.push(Panel {
        figure: "table6",
        name: "table6",
        title: "simulated Meetup city datasets (Table 6)".to_string(),
        kind: PanelKind::CityStats,
    });

    // ---- §5.2 special test: |V|=500, |U|=200K, mean c_v=500 ----
    let special_users = users(200_000, quick);
    let special_cfg = SyntheticConfig::default()
        .with_events(500)
        .with_users(special_users)
        .with_capacity_mean(500);
    panels.push(Panel {
        figure: "special",
        name: "special",
        title: format!(
            "special test: |V|=500, |U|={special_users}, mean c_v=500 — DeGreedy vs DeDPO (§5.2)"
        ),
        kind: PanelKind::Sweep {
            x_label: "|U|",
            algos: vec![Algorithm::DeGreedy, Algorithm::DeDPO],
            points: vec![point(special_users.to_string(), special_cfg)],
        },
    });

    // ---- Extension: optimality gaps against the relaxation bound ----
    let gap_users = users(1000, quick).min(1000);
    panels.push(Panel {
        figure: "ext",
        name: "quality",
        title: format!(
            "extension: Ω vs the relaxation upper bound across cr, |U|={gap_users}"
        ),
        kind: PanelKind::QualityGap {
            x_label: "cr",
            points: [0.0, 0.25, 0.5, 0.75]
                .iter()
                .map(|&cr| {
                    point(
                        cr.to_string(),
                        SyntheticConfig::default()
                            .with_events(50)
                            .with_users(gap_users)
                            .with_capacity_mean(20)
                            .with_conflict_ratio(cr),
                    )
                })
                .collect(),
        },
    });

    // ---- Extension: instance-noise error bars at the default setting ----
    let var_users = users(1000, quick).min(1000);
    let var_cfg = SyntheticConfig::default()
        .with_events(50)
        .with_users(var_users)
        .with_capacity_mean(20);
    panels.push(Panel {
        figure: "ext",
        name: "variance",
        title: format!("extension: Ω mean ± std over 10 seeds at |V|=50, |U|={var_users}"),
        kind: PanelKind::Variance {
            seeds: (0..10).collect(),
            make: Box::new(move |seed| generate(&var_cfg, seed)),
        },
    });

    // ---- Extension: fairness under capacity scarcity ----
    let fair_users = users(2000, quick).min(2000);
    let fair_cfg = SyntheticConfig::default()
        .with_events(40)
        .with_users(fair_users)
        .with_capacity_mean(5); // scarce: ~200 slots for many users
    panels.push(Panel {
        figure: "ext",
        name: "fairness",
        title: format!(
            "extension: fairness under scarcity — 40 events × mean capacity 5, |U|={fair_users}"
        ),
        kind: PanelKind::Fairness { make: Box::new(move |seed| generate(&fair_cfg, seed)) },
    });

    panels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figure_columns_present() {
        let panels = all_panels(true);
        let names: Vec<&str> = panels.iter().map(|p| p.name).collect();
        for expected in [
            "v", "u", "cap", "cr", "fb", "mu-power", "cap-normal", "budget-normal", "scal-100",
            "scal-200", "scal-500", "real", "table6", "special",
        ] {
            assert!(names.contains(&expected), "missing panel {expected}");
        }
    }

    #[test]
    fn quick_mode_shrinks_users() {
        let quick = all_panels(true);
        let full = all_panels(false);
        let nu = |p: &Panel| match &p.kind {
            PanelKind::Sweep { points, .. } => (points[0].make)(1).num_users(),
            PanelKind::CityStats
            | PanelKind::QualityGap { .. }
            | PanelKind::Variance { .. }
            | PanelKind::Fairness { .. } => 0,
        };
        let q = quick.iter().find(|p| p.name == "v").unwrap();
        let f = full.iter().find(|p| p.name == "v").unwrap();
        assert_eq!(nu(f), 5000);
        assert_eq!(nu(q), 5000 / QUICK_DIVISOR);
    }

    #[test]
    fn paper_panels_use_six_algorithms_scalability_five() {
        let panels = all_panels(true);
        for p in &panels {
            if let PanelKind::Sweep { algos, .. } = &p.kind {
                match p.figure {
                    "2" | "3" => assert_eq!(algos.len(), 6, "{}", p.name),
                    "4" if p.name != "real" => assert_eq!(algos.len(), 5, "{}", p.name),
                    _ => {}
                }
            }
        }
    }
}
