//! Panel execution: generate instances, run algorithms, write results.

use crate::panels::{Panel, PanelKind};
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;
use usep_core::PlanningStats;
use usep_gen::CityConfig;
use usep_metrics::{run_measured, run_measured_guarded, Measurement, ResultTable, SolveBudget};

/// Re-renders an SVG next to every `*_{utility,time,memory}.csv` in
/// `dir` without re-running any experiment. Returns the number of SVGs
/// written.
pub fn replot(dir: &Path) -> io::Result<usize> {
    let mut n = 0;
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|s| s.to_str()) else { continue };
        let Some(stem) = name.strip_suffix(".csv") else { continue };
        let (y_label, log_y) = if stem.ends_with("_utility") {
            ("total utility score", false)
        } else if stem.ends_with("_time") {
            ("running time (s)", true)
        } else if stem.ends_with("_memory") {
            ("peak memory (MB)", true)
        } else {
            continue;
        };
        let csv = std::fs::read_to_string(&path)?;
        let table = match ResultTable::from_csv(stem.replace('_', " "), &csv) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("   skipping {name}: {e}");
                continue;
            }
        };
        let svg_path = path.with_extension("svg");
        std::fs::write(&svg_path, usep_metrics::LinePlot::from_table(&table, y_label, log_y).render_svg())?;
        n += 1;
    }
    Ok(n)
}

/// Runs one panel, writing CSVs plus a markdown summary into `out`.
/// Returns the written file paths. When `budget` is set, sweep
/// measurements run guarded: a solve that trips the deadline records a
/// truncated (but constraint-valid) data point instead of running
/// unboundedly. Non-sweep panels ignore the budget — their solves are
/// either fast (city stats) or Ω-comparisons where truncation would
/// invalidate the comparison.
pub fn run_panel(
    panel: &Panel,
    seed: u64,
    out: &Path,
    budget: Option<&SolveBudget>,
) -> io::Result<Vec<PathBuf>> {
    match &panel.kind {
        PanelKind::Sweep { x_label, algos, points } => {
            run_sweep(panel, x_label, algos, points, seed, out, budget)
        }
        PanelKind::CityStats => run_city_stats(panel, seed, out),
        PanelKind::QualityGap { x_label, points } => {
            run_quality_gap(panel, x_label, points, seed, out)
        }
        PanelKind::Variance { seeds, make } => run_variance(panel, seeds, make, out),
        PanelKind::Fairness { make } => run_fairness(panel, make, seed, out),
    }
}

/// Extension panel: fairness metrics per algorithm (Ω maximizers vs the
/// max-min water-filling solver) under capacity scarcity.
fn run_fairness(
    panel: &Panel,
    make: &(dyn Fn(u64) -> usep_core::Instance + Send + Sync),
    seed: u64,
    out: &Path,
) -> io::Result<Vec<PathBuf>> {
    use usep_algos::{MaxMinGreedy, Solver};
    use usep_core::FairnessStats;
    let inst = make(seed);
    let mut table = ResultTable::new(
        format!("Extension — {}", panel.title),
        "algorithm",
        vec![
            "Ω".into(),
            "Jain index".into(),
            "served %".into(),
            "min served Ω_u".into(),
            "median served Ω_u".into(),
        ],
    );
    let mut row = |name: &str, planning: &usep_core::Planning| {
        planning.validate(&inst).expect("feasible planning");
        let f = FairnessStats::compute(&inst, planning);
        eprintln!(
            "   {:<12} Ω = {:>8.2}  Jain {:.3}  served {:>5.1}%  min {:.3}",
            name,
            planning.omega(&inst),
            f.jain_index,
            100.0 * f.served_fraction,
            f.min_served
        );
        table.push_row(
            name,
            vec![
                planning.omega(&inst),
                f.jain_index,
                100.0 * f.served_fraction,
                f.min_served,
                f.median_served,
            ],
        );
    };
    for algo in usep_algos::Algorithm::PAPER_SET {
        row(algo.name(), &usep_algos::solve(algo, &inst));
    }
    row("MaxMinGreedy", &MaxMinGreedy.solve(&inst));
    let csv = out.join("ext_fairness.csv");
    table.write_csv(&csv)?;
    let md = out.join("ext_fairness.md");
    std::fs::write(&md, table.to_markdown())?;
    Ok(vec![csv, md])
}

/// Extension panel: mean ± std of Ω per algorithm over an ensemble of
/// seeds (parallel across seeds — Ω is timing-independent).
fn run_variance(
    panel: &Panel,
    seeds: &[u64],
    make: &(dyn Fn(u64) -> usep_core::Instance + Send + Sync),
    out: &Path,
) -> io::Result<Vec<PathBuf>> {
    // honors --threads / USEP_THREADS; capped because seed ensembles
    // are small and per-thread instance generation dominates beyond 8
    let threads = usep_par::current_threads().min(8);
    let mut table = ResultTable::new(
        format!("Extension — {}", panel.title),
        "algorithm",
        vec!["mean Ω".into(), "std".into(), "min".into(), "max".into(), "runs".into()],
    );
    for algo in usep_algos::Algorithm::PAPER_SET {
        let e = usep_metrics::evaluate_ensemble(algo, seeds, threads, make);
        eprintln!(
            "   {:<12} Ω = {:>9.2} ± {:>6.2}  [{:.2}, {:.2}] over {} seeds",
            e.algorithm, e.mean, e.std, e.min, e.max, e.runs
        );
        table.push_row(
            e.algorithm.clone(),
            vec![e.mean, e.std, e.min, e.max, e.runs as f64],
        );
    }
    let csv = out.join("ext_variance.csv");
    table.write_csv(&csv)?;
    let md = out.join("ext_variance.md");
    std::fs::write(&md, table.to_markdown())?;
    Ok(vec![csv, md])
}

/// Extension panel: Ω of DeDPO+RG / DeGreedy+RG / DeGreedy+RG+LS against
/// the relaxation upper bound (a certified fraction of optimal, since
/// `bound ≥ OPT`).
fn run_quality_gap(
    panel: &Panel,
    x_label: &str,
    points: &[crate::panels::PanelPoint],
    seed: u64,
    out: &Path,
) -> io::Result<Vec<PathBuf>> {
    use usep_algos::{bounds, local_search, solve, Algorithm};
    let mut table = ResultTable::new(
        format!("Extension — {}", panel.title),
        x_label,
        vec![
            "upper bound".into(),
            "DeDPO+RG Ω".into(),
            "DeDPO+RG %".into(),
            "DeGreedy+RG Ω".into(),
            "DeGreedy+RG %".into(),
            "DeGreedy+RG+LS Ω".into(),
            "LS moves".into(),
        ],
    );
    // each panel cell is an independent untimed Ω measurement, so the
    // cells fan out over the worker pool (unlike run_sweep, whose
    // timing/memory numbers would be corrupted by co-running solves);
    // rows are collected by point index, keeping the table order and
    // values identical to a sequential run
    let indices: Vec<usize> = (0..points.len()).collect();
    let rows = usep_par::par_map_complete(usep_par::current_threads(), &indices, |_, &pi| {
        let p = &points[pi];
        let inst = (p.make)(seed.wrapping_add(pi as u64));
        let ub = bounds::best_upper_bound(&inst);
        let dedporg = solve(Algorithm::DeDPORG, &inst).omega(&inst);
        let mut dgr = solve(Algorithm::DeGreedyRG, &inst);
        let dgr_omega = dgr.omega(&inst);
        let moves = local_search::improve(&inst, &mut dgr, 5);
        dgr.validate(&inst).expect("local search keeps plannings feasible");
        let ls_omega = dgr.omega(&inst);
        (ub, dedporg, dgr_omega, ls_omega, moves)
    });
    for (pi, (ub, dedporg, dgr_omega, ls_omega, moves)) in rows.into_iter().enumerate() {
        let p = &points[pi];
        eprintln!(
            "   [{x_label}={}] bound {ub:.1}: DeDPO+RG {:.1}% | DeGreedy+RG {:.1}% | +LS {:.1}% ({moves} moves)",
            p.x,
            100.0 * dedporg / ub,
            100.0 * dgr_omega / ub,
            100.0 * ls_omega / ub,
        );
        table.push_row(
            p.x.clone(),
            vec![
                ub,
                dedporg,
                100.0 * dedporg / ub,
                dgr_omega,
                100.0 * dgr_omega / ub,
                ls_omega,
                moves as f64,
            ],
        );
    }
    let csv = out.join("ext_quality.csv");
    table.write_csv(&csv)?;
    let md = out.join("ext_quality.md");
    std::fs::write(&md, table.to_markdown())?;
    Ok(vec![csv, md])
}

fn run_sweep(
    panel: &Panel,
    x_label: &str,
    algos: &[usep_algos::Algorithm],
    points: &[crate::panels::PanelPoint],
    seed: u64,
    out: &Path,
    budget: Option<&SolveBudget>,
) -> io::Result<Vec<PathBuf>> {
    // measurements stay sequential on the panel level: co-running
    // solves would contaminate each other's wall-clock and the global
    // counting allocator's peak; parallelism happens *inside* each
    // solve instead, via the usep-par hot paths
    let columns: Vec<String> = algos.iter().map(|a| a.name().to_string()).collect();
    let mk = |metric: &str| {
        ResultTable::new(
            format!("Figure {} / {} — {metric} ({})", panel.figure, panel.name, panel.title),
            x_label,
            columns.clone(),
        )
    };
    let mut utility = mk("total utility score");
    let mut time = mk("running time (s)");
    let mut memory = mk("peak memory (MB)");
    let mut raw: Vec<(String, Vec<Measurement>)> = Vec::new();

    for (pi, p) in points.iter().enumerate() {
        let t0 = Instant::now();
        let inst = (p.make)(seed.wrapping_add(pi as u64));
        eprintln!(
            "   [{}={}] generated |V|={} |U|={} cr={:.3} in {:.1}s",
            x_label,
            p.x,
            inst.num_events(),
            inst.num_users(),
            inst.conflict_ratio(),
            t0.elapsed().as_secs_f64()
        );
        let mut us = Vec::with_capacity(algos.len());
        let mut ts = Vec::with_capacity(algos.len());
        let mut ms = Vec::with_capacity(algos.len());
        let mut measurements = Vec::with_capacity(algos.len());
        for &a in algos {
            let m = match budget {
                Some(b) => run_measured_guarded(a, &inst, b),
                None => run_measured(a, &inst),
            };
            let tag = if m.outcome == "complete" {
                String::new()
            } else {
                format!("   [{}]", m.outcome)
            };
            eprintln!(
                "      {:<12} Ω = {:>10.2}   {:>8.2}s   {:>8.1} MB   ({} assignments){tag}",
                m.algorithm,
                m.omega,
                m.seconds,
                m.peak_bytes as f64 / 1e6,
                m.assignments
            );
            us.push(m.omega);
            ts.push(m.seconds);
            ms.push(m.peak_bytes as f64 / 1e6);
            measurements.push(m);
        }
        utility.push_row(p.x.clone(), us);
        time.push_row(p.x.clone(), ts);
        memory.push_row(p.x.clone(), ms);
        raw.push((p.x.clone(), measurements));
    }

    let stem = format!("fig{}_{}", panel.figure, panel.name);
    let mut files = Vec::new();
    for (t, suffix, y_label, log_y) in [
        (&utility, "utility", "total utility score", false),
        (&time, "time", "running time (s)", true),
        (&memory, "memory", "peak memory (MB)", true),
    ] {
        let path = out.join(format!("{stem}_{suffix}.csv"));
        t.write_csv(&path)?;
        files.push(path);
        let svg_path = out.join(format!("{stem}_{suffix}.svg"));
        std::fs::write(&svg_path, usep_metrics::LinePlot::from_table(t, y_label, log_y).render_svg())?;
        files.push(svg_path);
    }
    let md_path = out.join(format!("{stem}.md"));
    std::fs::write(
        &md_path,
        format!("{}\n{}\n{}\n", utility.to_markdown(), time.to_markdown(), memory.to_markdown()),
    )?;
    files.push(md_path);
    let json_path = out.join(format!("{stem}.json"));
    std::fs::write(&json_path, serde_json::to_string_pretty(&raw).expect("serializable"))?;
    files.push(json_path);
    Ok(files)
}

fn run_city_stats(panel: &Panel, seed: u64, out: &Path) -> io::Result<Vec<PathBuf>> {
    let mut table = ResultTable::new(
        format!("Table 6 — {}", panel.title),
        "city",
        vec![
            "|V|".into(),
            "|U|".into(),
            "mean c_v".into(),
            "measured cr".into(),
            "mean b_u".into(),
            "DeDPO Ω".into(),
            "DeDPO served users".into(),
        ],
    );
    for (i, cfg) in CityConfig::all_cities().into_iter().enumerate() {
        let inst = usep_gen::generate_city(&cfg, seed.wrapping_add(i as u64));
        let cap_mean = inst.events().iter().map(|e| f64::from(e.capacity)).sum::<f64>()
            / inst.num_events() as f64;
        let b_mean = inst.users().iter().map(|u| f64::from(u.budget.value())).sum::<f64>()
            / inst.num_users() as f64;
        let m = run_measured(usep_algos::Algorithm::DeDPO, &inst);
        let planning = usep_algos::solve(usep_algos::Algorithm::DeDPO, &inst);
        let stats = PlanningStats::compute(&inst, &planning);
        eprintln!(
            "   {:<10} |V|={:<4} |U|={:<5} mean c_v={:.1} cr={:.3} Ω={:.1}",
            cfg.name,
            inst.num_events(),
            inst.num_users(),
            cap_mean,
            inst.conflict_ratio(),
            m.omega
        );
        table.push_row(
            cfg.name.clone(),
            vec![
                inst.num_events() as f64,
                inst.num_users() as f64,
                cap_mean,
                inst.conflict_ratio(),
                b_mean,
                m.omega,
                stats.users_served as f64,
            ],
        );
    }
    let csv = out.join("table6.csv");
    table.write_csv(&csv)?;
    let md = out.join("table6.md");
    std::fs::write(&md, table.to_markdown())?;
    Ok(vec![csv, md])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replot_renders_svgs_for_metric_csvs_only() {
        let dir = std::env::temp_dir().join(format!("usep_replot_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("fig9_x_time.csv"),
            "|V|,A,B\n10,0.5,0.2\n20,1.5,0.4\n",
        )
        .unwrap();
        std::fs::write(dir.join("notes.csv"), "a,b\n1,2\n").unwrap(); // no metric suffix
        std::fs::write(dir.join("fig9_x.md"), "# not a csv").unwrap();
        let n = replot(&dir).unwrap();
        assert_eq!(n, 1);
        let svg = std::fs::read_to_string(dir.join("fig9_x_time.svg")).unwrap();
        assert!(svg.contains("<polyline"));
        assert!(!dir.join("notes.svg").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replot_skips_malformed_csv_without_failing() {
        let dir = std::env::temp_dir().join(format!("usep_replot_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("broken_memory.csv"), "x,a\n1,notanumber\n").unwrap();
        assert_eq!(replot(&dir).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
