//! `usep-experiments` — regenerates every table and figure of the USEP
//! paper's evaluation (§5) on simulated substrates.
//!
//! ```text
//! usep-experiments [--figure all|2|3|4|table6|special|ext]
//!                  [--panel <name>]      # e.g. v, u, cap, cr, fb, real
//!                  [--scale quick|full]  # quick (default) shrinks |U|
//!                  [--seed N] [--out DIR]
//! usep-experiments --list
//! usep-experiments --figure replot   # re-render SVGs from existing CSVs
//! ```
//!
//! Results land in `--out` (default `results/`) as one CSV per metric per
//! panel plus a combined markdown file, and progress is logged to stderr.
//! `--scale full` uses the paper's exact Table-7 sizes (hours of compute
//! for the DeDP panels); `quick` divides user counts by 8 and keeps every
//! other knob, which preserves all the qualitative shapes the paper
//! reports (see EXPERIMENTS.md).

mod panels;
mod sweep;

use panels::{all_panels, Panel};
use std::path::PathBuf;
use std::process::ExitCode;

/// Register the counting allocator so memory measurements are live.
#[global_allocator]
static ALLOC: usep_metrics::CountingAllocator = usep_metrics::CountingAllocator;

struct Args {
    figure: String,
    panel: Option<String>,
    quick: bool,
    seed: u64,
    out: PathBuf,
    list: bool,
    /// Per-measurement wall-clock deadline; truncated runs are recorded
    /// with their outcome tag instead of running unboundedly.
    timeout_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        figure: "all".to_string(),
        panel: None,
        quick: true,
        seed: 2015, // SIGMOD'15
        out: PathBuf::from("results"),
        list: false,
        timeout_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |flag: &str| {
            it.next().ok_or_else(|| format!("missing value for {flag}"))
        };
        match a.as_str() {
            "--figure" | "-f" => args.figure = next("--figure")?,
            "--panel" | "-p" => args.panel = Some(next("--panel")?),
            "--scale" | "-s" => {
                args.quick = match next("--scale")?.as_str() {
                    "quick" => true,
                    "full" => false,
                    other => return Err(format!("unknown scale '{other}' (quick|full)")),
                }
            }
            "--seed" => {
                args.seed = next("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--timeout-ms" => {
                args.timeout_ms = Some(
                    next("--timeout-ms")?
                        .parse()
                        .map_err(|e| format!("bad --timeout-ms: {e}"))?,
                )
            }
            "--threads" | "-t" => {
                let n: usize = next("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                usep_par::set_threads(n);
            }
            "--out" | "-o" => args.out = PathBuf::from(next("--out")?),
            "--list" | "-l" => args.list = true,
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

const HELP: &str = "usep-experiments — regenerate the USEP paper's figures

USAGE:
    usep-experiments [--figure all|2|3|4|table6|special|ext] [--panel NAME]
                     [--scale quick|full] [--seed N] [--out DIR]
                     [--timeout-ms N]   # per-measurement deadline; truncated
                                        # runs are tagged, not discarded
                     [--threads N]      # worker threads for the parallel
                                        # panels (default: USEP_THREADS,
                                        # then the machine's core count)
    usep-experiments --list
    usep-experiments --figure replot [--out DIR]   # re-render SVGs from CSVs

Panels (use with --figure N --panel NAME, or omit --panel for all of N):
    figure 2:  v, u, cap, cr
    figure 3:  fb, mu-power, cap-normal, budget-normal
    figure 4:  scal-100, scal-200, scal-500, real
    table6, special (no panels)
    ext:       quality, variance, fairness (beyond-the-paper extensions)";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.figure == "replot" {
        return match sweep::replot(&args.out) {
            Ok(n) => {
                eprintln!("rendered {n} SVGs from the CSVs in {}", args.out.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let panels = all_panels(args.quick);
    if args.list {
        for p in &panels {
            println!("figure {:<7} panel {:<15} {}", p.figure, p.name, p.title);
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&Panel> = panels
        .iter()
        .filter(|p| args.figure == "all" || p.figure == args.figure)
        .filter(|p| args.panel.as_deref().is_none_or(|n| p.name == n))
        .collect();
    if selected.is_empty() {
        eprintln!("error: no panel matches --figure {} --panel {:?}", args.figure, args.panel);
        return ExitCode::FAILURE;
    }

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("error: cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }

    let budget = args
        .timeout_ms
        .map(|ms| {
            usep_metrics::SolveBudget::unlimited()
                .with_deadline(std::time::Duration::from_millis(ms))
        });
    let scale = if args.quick { "quick" } else { "full" };
    eprintln!(
        "running {} panel(s) at scale '{scale}', seed {}, into {}",
        selected.len(),
        args.seed,
        args.out.display()
    );
    for p in selected {
        eprintln!("== figure {} / {} — {}", p.figure, p.name, p.title);
        match sweep::run_panel(p, args.seed, &args.out, budget.as_ref()) {
            Ok(files) => {
                for f in files {
                    eprintln!("   wrote {}", f.display());
                }
            }
            Err(e) => {
                eprintln!("error in panel {}: {e}", p.name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
