//! Instance → JSON → `Instance::validate()` round-trip properties.
//!
//! Two halves:
//!
//! * every generated instance survives the JSON round trip bit-exact
//!   and validates `Ok` afterwards;
//! * the **corruption forge** applies one targeted single-field
//!   corruption to the serialized JSON tree and asserts that the
//!   reloaded instance (a) never panics on load — deserialization runs
//!   before validation can reject anything — and (b) is rejected by
//!   `validate()` with exactly the right `ValidateError` variant.

use proptest::prelude::*;
use serde::Content;
use usep_core::{Instance, ValidateError};
use usep_gen::{generate, SyntheticConfig};

fn small_instance(nv: usize, nu: usize, seed: u64) -> Instance {
    generate(
        &SyntheticConfig::tiny().with_events(nv).with_users(nu).with_capacity_mean(3),
        seed,
    )
}

/// Navigates to a map entry; the serialized instance shape is a stable
/// part of the format, so a miss is a test bug worth a panic.
fn entry<'a>(c: &'a mut Content, key: &str) -> &'a mut Content {
    match c {
        Content::Map(m) => {
            &mut m.iter_mut().find(|(k, _)| k == key).unwrap_or_else(|| panic!("no key {key}")).1
        }
        other => panic!("expected a map at {key}, got {other:?}"),
    }
}

fn seq(c: &mut Content) -> &mut Vec<Content> {
    match c {
        Content::Seq(s) => s,
        other => panic!("expected a sequence, got {other:?}"),
    }
}

/// One single-field corruption and the `ValidateError` it must map to.
#[derive(Clone, Copy, Debug)]
enum Forge {
    /// One extra μ entry → `UtilityShape`.
    ExtraMu,
    /// μ\[k\] pushed outside `[0, 1]` → `Utility`.
    MuOutOfRange,
    /// μ\[k\] = JSON `null` (deserializes to NaN) → `Utility`.
    MuNull,
    /// `events[k].capacity = 0` → `ZeroCapacity`.
    ZeroCapacity,
    /// `events[k].time` collapsed to `[t, t]` → `EmptyInterval`.
    EmptyInterval,
    /// `users[k].budget = u32::MAX` → `InfiniteBudget`.
    InfiniteBudget,
    /// Fee vector one entry too long → `FeeShape`.
    FeeTooLong,
    /// Fee vector one entry, |V| > 1 → `FeeShape` (and no panic from
    /// the fee-application loop during deserialization).
    FeeTooShort,
    /// `fees[k] = u32::MAX` → `InfiniteFee`.
    InfiniteFee,
    /// Travel swapped for empty `Explicit` matrices → `CostShape`.
    EmptyCostMatrices,
}

const ALL_FORGES: [Forge; 10] = [
    Forge::ExtraMu,
    Forge::MuOutOfRange,
    Forge::MuNull,
    Forge::ZeroCapacity,
    Forge::EmptyInterval,
    Forge::InfiniteBudget,
    Forge::FeeTooLong,
    Forge::FeeTooShort,
    Forge::InfiniteFee,
    Forge::EmptyCostMatrices,
];

/// Applies `forge` to the serialized tree, reloads, and checks the
/// variant. `k` selects which event/user/entry is corrupted.
fn assert_forge_maps_to_variant(inst: &Instance, forge: Forge, k: usize) {
    let nv = inst.num_events();
    let nu = inst.num_users();
    let json = serde_json::to_string(inst).unwrap();
    let mut tree: Content = serde_json::from_str(&json).unwrap();

    match forge {
        Forge::ExtraMu => seq(entry(&mut tree, "mu")).push(Content::F64(0.5)),
        Forge::MuOutOfRange => {
            let mu = seq(entry(&mut tree, "mu"));
            let idx = k % mu.len();
            mu[idx] = Content::F64(1.5);
        }
        Forge::MuNull => {
            let mu = seq(entry(&mut tree, "mu"));
            let idx = k % mu.len();
            mu[idx] = Content::Null;
        }
        Forge::ZeroCapacity => {
            let ev = &mut seq(entry(&mut tree, "events"))[k % nv];
            *entry(ev, "capacity") = Content::I64(0);
        }
        Forge::EmptyInterval => {
            let ev = &mut seq(entry(&mut tree, "events"))[k % nv];
            let time = entry(ev, "time");
            *entry(time, "start") = Content::I64(7);
            *entry(time, "end") = Content::I64(7);
        }
        Forge::InfiniteBudget => {
            let user = &mut seq(entry(&mut tree, "users"))[k % nu];
            *entry(user, "budget") = Content::I64(i64::from(u32::MAX));
        }
        Forge::FeeTooLong => {
            *entry(&mut tree, "fees") = Content::Seq(vec![Content::I64(1); nv + 1]);
        }
        Forge::FeeTooShort => {
            *entry(&mut tree, "fees") = Content::Seq(vec![Content::I64(1)]);
        }
        Forge::InfiniteFee => {
            let mut fees = vec![Content::I64(0); nv];
            fees[k % nv] = Content::I64(i64::from(u32::MAX));
            *entry(&mut tree, "fees") = Content::Seq(fees);
        }
        Forge::EmptyCostMatrices => {
            *entry(&mut tree, "travel") = Content::Map(vec![(
                "Explicit".to_string(),
                Content::Map(vec![
                    ("user_event".to_string(), Content::Seq(Vec::new())),
                    ("event_event".to_string(), Content::Seq(Vec::new())),
                ]),
            )]);
        }
    }

    // reload must never panic, whatever the forge smuggled in
    let corrupted = serde_json::to_string(&tree).unwrap();
    let reloaded: Instance = serde_json::from_str(&corrupted).unwrap();
    let err = reloaded.validate().expect_err("corrupted instance must not validate");

    let matches = match forge {
        Forge::ExtraMu => matches!(
            err,
            ValidateError::UtilityShape { expected, got } if got == expected + 1
        ),
        Forge::MuOutOfRange | Forge::MuNull => matches!(err, ValidateError::Utility { .. }),
        Forge::ZeroCapacity => {
            matches!(err, ValidateError::ZeroCapacity(v) if v.0 as usize == k % nv)
        }
        Forge::EmptyInterval => matches!(
            err,
            ValidateError::EmptyInterval { event, start: 7, end: 7 } if event.0 as usize == k % nv
        ),
        Forge::InfiniteBudget => {
            matches!(err, ValidateError::InfiniteBudget(u) if u.0 as usize == k % nu)
        }
        Forge::FeeTooLong => matches!(
            err,
            ValidateError::FeeShape { expected, got } if expected == nv && got == nv + 1
        ),
        Forge::FeeTooShort => matches!(
            err,
            ValidateError::FeeShape { expected, got } if expected == nv && got == 1
        ),
        Forge::InfiniteFee => {
            matches!(err, ValidateError::InfiniteFee(v) if v.0 as usize == k % nv)
        }
        Forge::EmptyCostMatrices => matches!(
            err,
            ValidateError::CostShape { which: "user_event", got: 0, .. }
        ),
    };
    assert!(matches, "{forge:?} produced the wrong error: {err:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clean round trip: serialize, reload, bit-identical, validates Ok.
    #[test]
    fn generated_instances_roundtrip_and_validate(
        nv in 1usize..10,
        nu in 1usize..12,
        seed in any::<u64>(),
    ) {
        let inst = small_instance(nv, nu, seed);
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &inst);
        prop_assert!(back.validate().is_ok());
    }

    /// Every forge corruption is caught with the right variant, for
    /// every corruption site the index picks.
    #[test]
    fn every_forge_corruption_maps_to_its_variant(
        nv in 2usize..8,
        nu in 1usize..10,
        seed in any::<u64>(),
        k in any::<usize>(),
    ) {
        let inst = small_instance(nv, nu, seed);
        for forge in ALL_FORGES {
            assert_forge_maps_to_variant(&inst, forge, k);
        }
    }
}
