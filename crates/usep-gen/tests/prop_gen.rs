//! Property tests for the generators.

use proptest::prelude::*;
use usep_gen::{generate, generate_city, CityConfig, Spread, SyntheticConfig, UtilityDistribution};

fn arb_config() -> impl Strategy<Value = SyntheticConfig> {
    (
        0usize..30,
        0usize..40,
        1u32..20,
        0.0f64..=1.0,
        prop::sample::select(vec![0.5f64, 1.0, 2.0, 5.0, 10.0]),
        prop::bool::ANY,
        prop::bool::ANY,
        0u8..4,
        5i32..60,
    )
        .prop_map(|(nv, nu, cap, cr, fb, cap_n, bud_n, mui, grid)| {
            let mut cfg = SyntheticConfig::default()
                .with_events(nv)
                .with_users(nu)
                .with_capacity_mean(cap)
                .with_conflict_ratio(cr)
                .with_budget_factor(fb)
                .with_capacity_dist(if cap_n { Spread::Normal } else { Spread::Uniform })
                .with_budget_dist(if bud_n { Spread::Normal } else { Spread::Uniform })
                .with_mu_dist(match mui {
                    0 => UtilityDistribution::Uniform,
                    1 => UtilityDistribution::Normal { mean: 0.5, std: 0.25 },
                    2 => UtilityDistribution::Power { exponent: 0.5 },
                    _ => UtilityDistribution::Power { exponent: 4.0 },
                });
            cfg.grid = grid;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generation never panics and always yields a structurally valid
    /// instance (the builder validates capacities, utilities, budgets).
    #[test]
    fn generator_total_over_configs(cfg in arb_config(), seed in any::<u64>()) {
        let inst = generate(&cfg, seed);
        prop_assert_eq!(inst.num_events(), cfg.num_events);
        prop_assert_eq!(inst.num_users(), cfg.num_users);
        for e in inst.events() {
            prop_assert!(e.capacity >= 1);
            prop_assert!(e.time.duration() >= cfg.duration.0);
            prop_assert!(e.time.duration() <= cfg.duration.1);
        }
        for u in inst.users() {
            prop_assert!(u.budget.is_finite());
        }
    }

    /// Same seed, same instance; different seed, (almost surely)
    /// different instance.
    #[test]
    fn determinism(cfg in arb_config(), seed in any::<u64>()) {
        prop_assert_eq!(generate(&cfg, seed), generate(&cfg, seed));
    }

    /// The conflict ratio lands near its target once there are enough
    /// events for the pair statistics to be meaningful.
    #[test]
    fn conflict_ratio_tracking(cr_idx in 0usize..5, seed in any::<u64>()) {
        let cr = [0.0, 0.25, 0.5, 0.75, 1.0][cr_idx];
        let cfg = SyntheticConfig::default()
            .with_events(80)
            .with_users(3)
            .with_conflict_ratio(cr);
        let inst = generate(&cfg, seed);
        let got = inst.conflict_ratio();
        prop_assert!((got - cr).abs() < 0.06, "target {} got {}", cr, got);
    }

    /// Uniform budgets always cover the cheapest round trip, so no user
    /// is stranded by construction.
    #[test]
    fn uniform_budgets_cover_cheapest_round_trip(seed in any::<u64>()) {
        let cfg = SyntheticConfig::tiny().with_users(30);
        let inst = generate(&cfg, seed);
        for u in inst.user_ids() {
            let min_rt = inst.event_ids().map(|v| inst.round_trip(u, v)).min().unwrap();
            prop_assert!(inst.user(u).budget >= min_rt);
        }
    }

    /// The EBSN simulator is deterministic and structurally sound for
    /// arbitrary (small) city shapes.
    #[test]
    fn city_generator_total(nv in 1usize..25, nu in 1usize..40, seed in any::<u64>()) {
        let mut cfg = CityConfig::auckland();
        cfg.num_events = nv;
        cfg.num_users = nu;
        let a = generate_city(&cfg, seed);
        let b = generate_city(&cfg, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.num_events(), nv);
        prop_assert_eq!(a.num_users(), nu);
        // tag-cosine utilities are similarities in [0, 1]
        for v in a.event_ids() {
            for u in a.user_ids() {
                let m = a.mu(v, u);
                prop_assert!((0.0..=1.0).contains(&m));
            }
        }
    }
}
