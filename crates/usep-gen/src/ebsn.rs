//! Meetup-like EBSN simulator for the paper's "real" datasets (Table 6).
//!
//! The paper evaluates on the Meetup crawl of Liu et al. (KDD'12) for
//! three cities; that dataset is not redistributable, so this module
//! simulates an EBSN with the same *structure*:
//!
//! * a tag universe with power-law popularity (interest topics);
//! * groups, each holding a handful of tags; events inherit their
//!   creating group's tags (as the paper does, since Meetup events have
//!   no tags of their own);
//! * users with tag sets drawn from the same popularity distribution;
//! * utilities = cosine similarity between event and user tag sets
//!   (the paper cites \[36\] for tag-similarity utilities);
//! * locations clustered around a few "downtown" centers on the integer
//!   grid (Meetup venues and users concentrate spatially);
//! * capacities, times and budgets generated synthetically — exactly as
//!   the paper itself does even for the real datasets (§5.1), with
//!   Table 6's mean capacity 50 and `cr = 0.25`.
//!
//! [`CityConfig::vancouver`], [`auckland`](CityConfig::auckland) and
//! [`singapore`](CityConfig::singapore) carry Table 6's sizes.

use crate::config::Spread;
use crate::distributions::{sample_budget, sample_capacity};
use crate::time_gen::generate_intervals;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use usep_core::{Cost, Instance, InstanceBuilder, Point, TimeInterval};

/// Configuration of one simulated EBSN city.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CityConfig {
    /// City name (for reports).
    pub name: String,
    /// `|V|` — events in the city.
    pub num_events: usize,
    /// `|U|` — users in the city.
    pub num_users: usize,
    /// Mean event capacity (Table 6: 50, Uniform).
    pub capacity_mean: u32,
    /// Conflict ratio of event times (Table 6: 0.25).
    pub conflict_ratio: f64,
    /// Budget factor `f_b` (default 2; Figure 4's last column varies it).
    pub budget_factor: f64,
    /// Size of the tag universe.
    pub num_tags: usize,
    /// Number of Meetup groups creating the events.
    pub num_groups: usize,
    /// City grid: locations fall on `[0, grid] × [0, grid]`.
    pub grid: i32,
    /// Number of spatial clusters ("downtowns").
    pub num_clusters: usize,
}

impl CityConfig {
    /// Vancouver (Table 6: 225 events, 2012 users).
    pub fn vancouver() -> CityConfig {
        CityConfig::city("Vancouver", 225, 2012)
    }

    /// Auckland (Table 6: 37 events, 569 users).
    pub fn auckland() -> CityConfig {
        CityConfig::city("Auckland", 37, 569)
    }

    /// Singapore (Table 6: 87 events, 1500 users).
    pub fn singapore() -> CityConfig {
        CityConfig::city("Singapore", 87, 1500)
    }

    /// All three Table-6 cities.
    pub fn all_cities() -> Vec<CityConfig> {
        vec![CityConfig::vancouver(), CityConfig::auckland(), CityConfig::singapore()]
    }

    fn city(name: &str, num_events: usize, num_users: usize) -> CityConfig {
        CityConfig {
            name: name.to_string(),
            num_events,
            num_users,
            capacity_mean: 50,
            conflict_ratio: 0.25,
            budget_factor: 2.0,
            num_tags: 120,
            num_groups: (num_events / 4).max(4),
            grid: 100,
            num_clusters: 3,
        }
    }

    /// Builder-style override of `f_b` (Figure 4, last column).
    pub fn with_budget_factor(mut self, fb: f64) -> CityConfig {
        self.budget_factor = fb;
        self
    }
}

/// Draws a tag id with power-law popularity (Zipf-ish, exponent 1).
fn sample_tag(rng: &mut StdRng, weights: &[f64], total: f64) -> usize {
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

fn sample_tag_set(rng: &mut StdRng, weights: &[f64], total: f64, k: usize) -> Vec<usize> {
    let mut set = Vec::with_capacity(k);
    let mut guard = 0;
    while set.len() < k && guard < 1000 {
        let t = sample_tag(rng, weights, total);
        if !set.contains(&t) {
            set.push(t);
        }
        guard += 1;
    }
    set.sort_unstable();
    set
}

/// Cosine similarity between two sorted tag sets viewed as binary
/// vectors: `|A ∩ B| / √(|A| · |B|)`.
fn tag_cosine(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / ((a.len() * b.len()) as f64).sqrt()
}

/// Generates the simulated EBSN instance for a city.
pub fn generate_city(cfg: &CityConfig, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let nv = cfg.num_events;
    let nu = cfg.num_users;

    // tag popularity ∝ 1/rank
    let weights: Vec<f64> = (0..cfg.num_tags).map(|i| 1.0 / (i + 1) as f64).collect();
    let total_w: f64 = weights.iter().sum();

    // spatial clusters
    let clusters: Vec<(Point, f64)> = (0..cfg.num_clusters.max(1))
        .map(|_| {
            let c = Point::new(
                rng.gen_range(cfg.grid / 4..=3 * cfg.grid / 4),
                rng.gen_range(cfg.grid / 4..=3 * cfg.grid / 4),
            );
            let spread = f64::from(cfg.grid) * rng.gen_range(0.05..0.15);
            (c, spread)
        })
        .collect();
    let clustered_point = |rng: &mut StdRng| -> Point {
        let &(c, spread) = clusters.choose(rng).expect("at least one cluster");
        let dx = (rng.gen::<f64>() - 0.5) * 4.0 * spread;
        let dy = (rng.gen::<f64>() - 0.5) * 4.0 * spread;
        Point::new(
            (f64::from(c.x) + dx).round().clamp(0.0, f64::from(cfg.grid)) as i32,
            (f64::from(c.y) + dy).round().clamp(0.0, f64::from(cfg.grid)) as i32,
        )
    };

    // groups own tag sets; events inherit them
    let groups: Vec<Vec<usize>> = (0..cfg.num_groups.max(1))
        .map(|_| {
            let k = rng.gen_range(3..=8);
            sample_tag_set(&mut rng, &weights, total_w, k)
        })
        .collect();

    let mut b = InstanceBuilder::new();
    let intervals = generate_intervals(nv, (30, 120), cfg.conflict_ratio, rng.gen());
    let mut event_tags = Vec::with_capacity(nv);
    let mut event_pts = Vec::with_capacity(nv);
    for &(t1, t2) in &intervals {
        let p = clustered_point(&mut rng);
        let g = rng.gen_range(0..groups.len());
        event_tags.push(groups[g].clone());
        event_pts.push(p);
        let cap = sample_capacity(&mut rng, Spread::Uniform, cfg.capacity_mean);
        b.event(cap, p, TimeInterval::new(t1, t2).expect("valid interval"));
    }

    let mid = {
        let mut min_d = u64::MAX;
        let mut max_d = 0u64;
        for i in 0..nv {
            for j in i + 1..nv {
                let d = event_pts[i].manhattan(event_pts[j]);
                min_d = min_d.min(d);
                max_d = max_d.max(d);
            }
        }
        if nv < 2 {
            f64::from(cfg.grid.max(1))
        } else {
            0.5 * (max_d + min_d) as f64
        }
    };

    let mut user_tags = Vec::with_capacity(nu);
    for _ in 0..nu {
        let p = clustered_point(&mut rng);
        let k = rng.gen_range(3..=10);
        user_tags.push(sample_tag_set(&mut rng, &weights, total_w, k));
        let base = event_pts.iter().map(|&e| p.manhattan(e)).min().unwrap_or(0) as u32 * 2;
        let budget = sample_budget(&mut rng, Spread::Uniform, base, mid, cfg.budget_factor);
        b.user(p, Cost::new(budget));
    }

    let mut mu = Vec::with_capacity(nv * nu);
    for ut in &user_tags {
        for et in &event_tags {
            mu.push(tag_cosine(et, ut) as f32);
        }
    }
    b.utility_matrix(mu);
    b.build().expect("EBSN simulator produces valid instances")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_sizes() {
        let v = CityConfig::vancouver();
        assert_eq!((v.num_events, v.num_users), (225, 2012));
        let a = CityConfig::auckland();
        assert_eq!((a.num_events, a.num_users), (37, 569));
        let s = CityConfig::singapore();
        assert_eq!((s.num_events, s.num_users), (87, 1500));
        for c in CityConfig::all_cities() {
            assert_eq!(c.capacity_mean, 50);
            assert_eq!(c.conflict_ratio, 0.25);
        }
    }

    #[test]
    fn tag_cosine_basics() {
        assert_eq!(tag_cosine(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(tag_cosine(&[1, 2], &[3, 4]), 0.0);
        assert!((tag_cosine(&[1, 2], &[2, 3]) - 0.5).abs() < 1e-12);
        assert_eq!(tag_cosine(&[], &[1]), 0.0);
    }

    #[test]
    fn generates_valid_instance_with_table6_shape() {
        let cfg = CityConfig::auckland();
        let inst = generate_city(&cfg, 42);
        assert_eq!(inst.num_events(), 37);
        assert_eq!(inst.num_users(), 569);
        let cr = inst.conflict_ratio();
        assert!((cr - 0.25).abs() < 0.06, "cr = {cr}");
        let cap_mean: f64 = inst.events().iter().map(|e| f64::from(e.capacity)).sum::<f64>()
            / inst.num_events() as f64;
        assert!((cap_mean - 50.0).abs() < 12.0, "capacity mean = {cap_mean}");
    }

    #[test]
    fn utilities_are_similarities_in_range_with_zeros_and_positives() {
        let inst = generate_city(&CityConfig::auckland(), 7);
        let mass = inst.total_utility_mass();
        let cells = (inst.num_events() * inst.num_users()) as f64;
        let mean = mass / cells;
        assert!(mean > 0.0 && mean < 0.9, "tag similarity mean {mean}");
        // tag similarity produces genuine zeros (disjoint interests)
        let zeros = inst
            .user_ids()
            .flat_map(|u| inst.event_ids().map(move |v| (v, u)))
            .filter(|&(v, u)| inst.mu(v, u) == 0.0)
            .count();
        assert!(zeros > 0, "expected some zero-utility pairs");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CityConfig::auckland();
        assert_eq!(generate_city(&cfg, 1), generate_city(&cfg, 1));
        assert_ne!(generate_city(&cfg, 1), generate_city(&cfg, 2));
    }

    #[test]
    fn locations_clustered_not_uniform() {
        // clustered generation should concentrate mass: mean pairwise
        // distance well below the uniform-grid expectation (~2/3 grid)
        let inst = generate_city(&CityConfig::auckland(), 3);
        let pts: Vec<_> = inst.events().iter().map(|e| e.location).collect();
        let mut sum = 0.0;
        let mut n = 0.0;
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                sum += pts[i].manhattan(pts[j]) as f64;
                n += 1.0;
            }
        }
        let mean = sum / n;
        assert!(mean < 60.0, "mean pairwise distance {mean} not clustered");
    }

    #[test]
    fn budget_factor_override() {
        let lo = generate_city(&CityConfig::auckland().with_budget_factor(0.5), 5);
        let hi = generate_city(&CityConfig::auckland().with_budget_factor(10.0), 5);
        let mean = |i: &Instance| {
            i.users().iter().map(|u| f64::from(u.budget.value())).sum::<f64>()
                / i.num_users() as f64
        };
        assert!(mean(&hi) > mean(&lo));
    }
}
