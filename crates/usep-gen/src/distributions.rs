//! Sampling primitives for the Table-7 knobs.

use crate::config::{Spread, UtilityDistribution};
use rand::Rng;
use rand_distr::{Distribution, Normal};

impl UtilityDistribution {
    /// Draws one utility value in `[0, 1]`.
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        match self {
            UtilityDistribution::Uniform => rng.gen::<f64>(),
            UtilityDistribution::Normal { mean, std } => {
                let n = Normal::new(mean, std).expect("valid normal parameters");
                n.sample(rng).clamp(0.0, 1.0)
            }
            UtilityDistribution::Power { exponent } => {
                assert!(exponent > 0.0, "power exponent must be positive");
                rng.gen::<f64>().powf(1.0 / exponent)
            }
        }
    }
}

/// Draws an event capacity with the given mean: Uniform is a
/// mean-preserving integer uniform on `[1, 2·mean − 1]`; Normal uses
/// `std = 0.25 × mean` (§5.2), rounded and clamped to ≥ 1.
pub fn sample_capacity<R: Rng + ?Sized>(rng: &mut R, spread: Spread, mean: u32) -> u32 {
    debug_assert!(mean >= 1);
    match spread {
        Spread::Uniform => {
            if mean <= 1 {
                1
            } else {
                rng.gen_range(1..=2 * mean - 1)
            }
        }
        Spread::Normal => {
            let m = f64::from(mean);
            let n = Normal::new(m, 0.25 * m).expect("valid normal parameters");
            n.sample(rng).round().max(1.0) as u32
        }
    }
}

/// Draws a user budget per the paper's §5.1 formula. `base` is
/// `2 · min_v cost(u, v)` (the cheapest round trip) and `mid` is
/// `½ (max_{v,v'} cost(v,v') + min_{v,v'} cost(v,v'))`:
///
/// * Uniform: `b_u ~ U[base, base + mid · f_b · 2]`;
/// * Normal: mean `base + mid · f_b`, `std = 0.25 × mean` (§5.2),
///   clamped to ≥ 0.
pub fn sample_budget<R: Rng + ?Sized>(
    rng: &mut R,
    spread: Spread,
    base: u32,
    mid: f64,
    fb: f64,
) -> u32 {
    match spread {
        Spread::Uniform => {
            let width = (mid * fb * 2.0).round().max(0.0) as u32;
            rng.gen_range(base..=base.saturating_add(width))
        }
        Spread::Normal => {
            let mean = f64::from(base) + mid * fb;
            if mean <= 0.0 {
                return base;
            }
            let n = Normal::new(mean, 0.25 * mean).expect("valid normal parameters");
            n.sample(rng).round().max(0.0) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_utility_in_range_with_right_mean() {
        let mut r = rng();
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = UtilityDistribution::Uniform.sample(&mut r);
            assert!((0.0..=1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn normal_utility_clamped_with_right_mean() {
        let mut r = rng();
        let d = UtilityDistribution::Normal { mean: 0.5, std: 0.25 };
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut r);
            assert!((0.0..=1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn power_half_skews_low_power_four_skews_high() {
        let mut r = rng();
        let n = 20_000;
        let mean = |e: f64, r: &mut StdRng| {
            (0..n)
                .map(|_| UtilityDistribution::Power { exponent: e }.sample(r))
                .sum::<f64>()
                / n as f64
        };
        let low = mean(0.5, &mut r); // E[u²] = 1/3
        let high = mean(4.0, &mut r); // E[u^(1/4)] = 4/5
        assert!((low - 1.0 / 3.0).abs() < 0.02, "got {low}");
        assert!((high - 0.8).abs() < 0.02, "got {high}");
    }

    #[test]
    fn capacity_uniform_mean_and_bounds() {
        let mut r = rng();
        let n = 20_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let c = sample_capacity(&mut r, Spread::Uniform, 50);
            assert!((1..=99).contains(&c));
            sum += u64::from(c);
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "got {mean}");
    }

    #[test]
    fn capacity_mean_one_is_constant() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(sample_capacity(&mut r, Spread::Uniform, 1), 1);
        }
    }

    #[test]
    fn capacity_normal_clamped_at_one() {
        let mut r = rng();
        for _ in 0..20_000 {
            assert!(sample_capacity(&mut r, Spread::Normal, 2) >= 1);
        }
    }

    #[test]
    fn budget_uniform_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let b = sample_budget(&mut r, Spread::Uniform, 40, 100.0, 2.0);
            assert!((40..=440).contains(&b), "got {b}");
        }
    }

    #[test]
    fn budget_normal_mean() {
        let mut r = rng();
        let n = 20_000;
        let sum: u64 = (0..n)
            .map(|_| u64::from(sample_budget(&mut r, Spread::Normal, 40, 100.0, 2.0)))
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 240.0).abs() < 5.0, "got {mean}");
    }

    #[test]
    fn budget_zero_fb_uniform_is_base() {
        let mut r = rng();
        assert_eq!(sample_budget(&mut r, Spread::Uniform, 17, 100.0, 0.0), 17);
    }
}
