//! Workload generators for the USEP experiments.
//!
//! Two families, matching the paper's §5.1:
//!
//! * [`SyntheticConfig`] + [`generate`] — the Table-7 synthetic
//!   generator, with every knob the paper sweeps: `|V|`, `|U|`, the
//!   utility distribution (Uniform / Normal(0.5, 0.25) / Power 0.5 / 4),
//!   capacity mean and distribution, budget factor `f_b` and budget
//!   distribution, and the conflict ratio `cr` (hit by binary-searching
//!   the time-horizon density — see [`time_gen`]).
//! * [`ebsn`] — a Meetup-like EBSN simulator standing in for the paper's
//!   (unavailable) Meetup crawl: tagged groups/events/users with
//!   tag-similarity utilities and city-clustered geography, preconfigured
//!   with Table 6's Vancouver / Auckland / Singapore statistics.
//!
//! All generation is deterministic given a `u64` seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod distributions;
pub mod ebsn;
pub mod merge;
pub mod synthetic;
pub mod time_gen;

pub use config::{Spread, SyntheticConfig, UtilityDistribution};
pub use ebsn::{generate_city, CityConfig};
pub use merge::merge;
pub use synthetic::generate;
