//! Event time-interval generation targeting a conflict ratio.
//!
//! The paper controls a *conflict ratio* `cr` — the fraction of event
//! pairs that are spatio-temporally conflicting — and "the time and cost
//! values are generated based on the conflict ratio" (§5.1). With the
//! default money-cost model (`time_per_unit = 0`), a pair conflicts
//! exactly when its intervals overlap, so we can hit any target `cr` by
//! tuning the temporal *density*: fix per-event durations and relative
//! positions, then binary-search the horizon length `H` — squeezing the
//! same layout into a shorter day creates more overlaps, monotonically in
//! expectation. The measured ratio lands within ~2 percentage points of
//! the target for realistic instance sizes.
//!
//! Edge cases are exact: `cr = 0` lays events out back-to-back with gaps
//! (zero overlaps) and `cr = 1` gives every event the same interval.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generated `[start, end]` pairs (always `start < end`).
pub type Intervals = Vec<(i64, i64)>;

/// Generates `n` event intervals whose pairwise overlap fraction is
/// approximately `target_cr`. Durations are integer-uniform in
/// `duration = (min, max)`.
pub fn generate_intervals(n: usize, duration: (i64, i64), target_cr: f64, seed: u64) -> Intervals {
    assert!((0.0..=1.0).contains(&target_cr), "cr must be in [0, 1]");
    assert!(0 < duration.0 && duration.0 <= duration.1, "bad duration range");
    let mut rng = StdRng::seed_from_u64(seed);
    let durations: Vec<i64> = (0..n).map(|_| rng.gen_range(duration.0..=duration.1)).collect();

    if n < 2 {
        return durations.iter().map(|&d| (0, d)).collect();
    }
    if target_cr >= 1.0 {
        // all pairs conflict: identical interval
        let d = duration.1;
        return vec![(0, d); n];
    }
    if target_cr <= 0.0 {
        // no pair conflicts: sequential layout with unit gaps
        let mut t = 0i64;
        return durations
            .iter()
            .map(|&d| {
                let iv = (t, t + d);
                t += d + 1;
                iv
            })
            .collect();
    }

    // fixed relative positions, scaled by the horizon
    let fracs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let layout = |h: f64| -> Intervals {
        durations
            .iter()
            .zip(&fracs)
            .map(|(&d, &f)| {
                let slack = (h - d as f64).max(0.0);
                let start = (f * slack).round() as i64;
                (start, start + d)
            })
            .collect()
    };

    // binary-search the horizon: smaller H → denser → higher cr
    let mut lo = duration.1 as f64; // everything overlaps-ish
    let mut hi = (duration.1 + 1) as f64 * n as f64 * 2.0; // sparse
    let mut best = layout(hi);
    let mut best_err = (overlap_ratio(&best) - target_cr).abs();
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        let ivs = layout(mid);
        let cr = overlap_ratio(&ivs);
        let err = (cr - target_cr).abs();
        if err < best_err {
            best = ivs;
            best_err = err;
        }
        if cr > target_cr {
            lo = mid; // too dense: widen
        } else {
            hi = mid;
        }
    }
    best
}

/// Generates `n` intervals whose *spatio-temporal* conflict fraction —
/// pairs that overlap **or** whose gap is too short to travel between
/// the given venue locations at `time_per_unit` ticks per Manhattan
/// unit — approximates `target_cr`. With `time_per_unit = 0` this
/// degenerates to [`generate_intervals`].
///
/// Used when the cost dimension is *time* rather than money: the paper's
/// conflict notion ("users can attend v_j on time after attending v_i")
/// then depends on geography as well as on the raw intervals.
pub fn generate_intervals_spatiotemporal(
    duration: (i64, i64),
    target_cr: f64,
    seed: u64,
    locations: &[usep_core::Point],
    time_per_unit: u32,
) -> Intervals {
    let n = locations.len();
    if time_per_unit == 0 {
        return generate_intervals(n, duration, target_cr, seed);
    }
    assert!((0.0..=1.0).contains(&target_cr), "cr must be in [0, 1]");
    assert!(0 < duration.0 && duration.0 <= duration.1, "bad duration range");
    let mut rng = StdRng::seed_from_u64(seed);
    let durations: Vec<i64> = (0..n).map(|_| rng.gen_range(duration.0..=duration.1)).collect();
    if n < 2 {
        return durations.iter().map(|&d| (0, d)).collect();
    }
    if target_cr >= 1.0 {
        let d = duration.1;
        return vec![(0, d); n];
    }
    let max_travel: i64 = {
        let mut m = 0u64;
        for i in 0..n {
            for j in i + 1..n {
                m = m.max(locations[i].manhattan(locations[j]));
            }
        }
        (m * u64::from(time_per_unit)) as i64
    };
    if target_cr <= 0.0 {
        // sequential with gaps long enough for the farthest trip
        let mut t = 0i64;
        return durations
            .iter()
            .map(|&d| {
                let iv = (t, t + d);
                t += d + max_travel + 1;
                iv
            })
            .collect();
    }
    let fracs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let layout = |h: f64| -> Intervals {
        durations
            .iter()
            .zip(&fracs)
            .map(|(&d, &f)| {
                let slack = (h - d as f64).max(0.0);
                let start = (f * slack).round() as i64;
                (start, start + d)
            })
            .collect()
    };
    let mut lo = duration.1 as f64;
    let mut hi = (duration.1 + max_travel + 1) as f64 * n as f64 * 2.0;
    let mut best = layout(hi);
    let mut best_err =
        (spatiotemporal_conflict_ratio(&best, locations, time_per_unit) - target_cr).abs();
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        let ivs = layout(mid);
        let cr = spatiotemporal_conflict_ratio(&ivs, locations, time_per_unit);
        let err = (cr - target_cr).abs();
        if err < best_err {
            best = ivs;
            best_err = err;
        }
        if cr > target_cr {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    best
}

/// Fraction of unordered pairs that conflict spatio-temporally: overlap,
/// or a gap too short to cover the Manhattan distance at `time_per_unit`
/// ticks per unit.
pub fn spatiotemporal_conflict_ratio(
    intervals: &[(i64, i64)],
    locations: &[usep_core::Point],
    time_per_unit: u32,
) -> f64 {
    assert_eq!(intervals.len(), locations.len());
    let n = intervals.len();
    if n < 2 {
        return 0.0;
    }
    let mut conflicts = 0u64;
    for i in 0..n {
        for j in i + 1..n {
            let (s1, e1) = intervals[i];
            let (s2, e2) = intervals[j];
            let overlap = s1 < e2 && s2 < e1;
            let feasible = |from: usize, to: usize, gap: i64| -> bool {
                gap >= 0
                    && locations[from].manhattan(locations[to]) * u64::from(time_per_unit)
                        <= gap as u64
            };
            let some_order = (e1 <= s2 && feasible(i, j, s2 - e1))
                || (e2 <= s1 && feasible(j, i, s1 - e2));
            if overlap || !some_order {
                conflicts += 1;
            }
        }
    }
    conflicts as f64 / (n as u64 * (n as u64 - 1) / 2) as f64
}

/// Fraction of unordered interval pairs that overlap (boundary contact is
/// not an overlap, matching `TimeInterval::overlaps`).
pub fn overlap_ratio(intervals: &[(i64, i64)]) -> f64 {
    let n = intervals.len();
    if n < 2 {
        return 0.0;
    }
    // sweep over intervals sorted by start: count pairs with overlap
    let mut by_start: Vec<(i64, i64)> = intervals.to_vec();
    by_start.sort_unstable();
    let mut overlaps = 0u64;
    // ends of currently "open" intervals, kept sorted for binary search
    let mut open: Vec<i64> = Vec::new();
    for &(s, e) in &by_start {
        // drop intervals ending at or before s (boundary contact is fine)
        open.retain(|&oe| oe > s);
        overlaps += open.len() as u64;
        let pos = open.partition_point(|&oe| oe <= e);
        open.insert(pos, e);
    }
    overlaps as f64 / (n as u64 * (n as u64 - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cr_zero_is_exactly_zero() {
        let ivs = generate_intervals(50, (30, 120), 0.0, 1);
        assert_eq!(overlap_ratio(&ivs), 0.0);
        for w in ivs.windows(2) {
            assert!(w[0].1 < w[1].0);
        }
    }

    #[test]
    fn cr_one_is_exactly_one() {
        let ivs = generate_intervals(50, (30, 120), 1.0, 1);
        assert_eq!(overlap_ratio(&ivs), 1.0);
        assert!(ivs.iter().all(|&iv| iv == ivs[0]));
    }

    #[test]
    fn targets_are_hit_within_tolerance() {
        for &cr in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            for seed in [3u64, 17, 99] {
                let ivs = generate_intervals(100, (30, 120), cr, seed);
                let got = overlap_ratio(&ivs);
                assert!(
                    (got - cr).abs() < 0.03,
                    "target {cr} seed {seed}: got {got}"
                );
            }
        }
    }

    #[test]
    fn small_instances_stay_reasonable() {
        let ivs = generate_intervals(10, (30, 120), 0.25, 5);
        let got = overlap_ratio(&ivs);
        // with only 45 pairs, granularity is 1/45 ≈ 0.022
        assert!((got - 0.25).abs() < 0.1, "got {got}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_intervals(64, (30, 120), 0.4, 11);
        let b = generate_intervals(64, (30, 120), 0.4, 11);
        assert_eq!(a, b);
        let c = generate_intervals(64, (30, 120), 0.4, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn overlap_ratio_matches_naive_count() {
        let ivs = generate_intervals(40, (10, 60), 0.5, 23);
        let naive = {
            let mut c = 0u64;
            for i in 0..ivs.len() {
                for j in i + 1..ivs.len() {
                    let (s1, e1) = ivs[i];
                    let (s2, e2) = ivs[j];
                    if s1 < e2 && s2 < e1 {
                        c += 1;
                    }
                }
            }
            c as f64 / (ivs.len() as u64 * (ivs.len() as u64 - 1) / 2) as f64
        };
        assert!((overlap_ratio(&ivs) - naive).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(generate_intervals(0, (10, 20), 0.5, 1).is_empty());
        let one = generate_intervals(1, (10, 20), 0.5, 1);
        assert_eq!(one.len(), 1);
        assert!(one[0].0 < one[0].1);
    }

    #[test]
    fn spatiotemporal_cr_zero_and_one_exact() {
        use usep_core::Point;
        let pts: Vec<Point> = (0..20).map(|i| Point::new(i * 7 % 50, i * 13 % 50)).collect();
        let ivs = generate_intervals_spatiotemporal((30, 120), 0.0, 3, &pts, 1);
        assert_eq!(spatiotemporal_conflict_ratio(&ivs, &pts, 1), 0.0);
        let ivs = generate_intervals_spatiotemporal((30, 120), 1.0, 3, &pts, 1);
        assert_eq!(spatiotemporal_conflict_ratio(&ivs, &pts, 1), 1.0);
    }

    #[test]
    fn spatiotemporal_targets_hit_within_tolerance() {
        use usep_core::Point;
        let pts: Vec<Point> = (0..80).map(|i| Point::new(i * 17 % 100, i * 31 % 100)).collect();
        for &cr in &[0.25, 0.5, 0.75] {
            let ivs = generate_intervals_spatiotemporal((30, 120), cr, 9, &pts, 1);
            let got = spatiotemporal_conflict_ratio(&ivs, &pts, 1);
            assert!((got - cr).abs() < 0.05, "target {cr}: got {got}");
        }
    }

    #[test]
    fn spatiotemporal_degenerates_to_overlap_when_tpu_zero() {
        use usep_core::Point;
        let pts: Vec<Point> = (0..30).map(|i| Point::new(i, 0)).collect();
        let a = generate_intervals_spatiotemporal((30, 120), 0.4, 11, &pts, 0);
        let b = generate_intervals(30, (30, 120), 0.4, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn spatiotemporal_counts_travel_infeasible_pairs() {
        use usep_core::Point;
        // two non-overlapping events, gap 5, distance 10, speed 1 → conflict
        let pts = vec![Point::new(0, 0), Point::new(10, 0)];
        let ivs = vec![(0, 10), (15, 25)];
        assert_eq!(spatiotemporal_conflict_ratio(&ivs, &pts, 1), 1.0);
        assert_eq!(spatiotemporal_conflict_ratio(&ivs, &pts, 0), 0.0);
        // wide gap: reachable
        let ivs = vec![(0, 10), (25, 35)];
        assert_eq!(spatiotemporal_conflict_ratio(&ivs, &pts, 1), 0.0);
    }

    #[test]
    fn durations_respected() {
        let ivs = generate_intervals(30, (30, 120), 0.25, 2);
        for &(s, e) in &ivs {
            assert!((30..=120).contains(&(e - s)));
        }
    }
}
