//! The Table-7 synthetic instance generator.

use crate::config::SyntheticConfig;
use crate::distributions::{sample_budget, sample_capacity};
use crate::time_gen::generate_intervals;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usep_core::{Cost, Instance, InstanceBuilder, Point, TimeInterval};

/// Generates a synthetic USEP instance per `config`, deterministically
/// from `seed`.
///
/// Locations (events and users) are uniform on the integer grid,
/// capacities and utilities follow the configured distributions, time
/// intervals target the conflict ratio, and budgets follow the paper's
/// §5.1 formula: `b_u ~ U[2·min_v cost(u,v), 2·min_v cost(u,v) +
/// mid·f_b·2]` with `mid = ½(max cost(v,v') + min cost(v,v'))` over event
/// pair distances.
pub fn generate(config: &SyntheticConfig, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let nv = config.num_events;
    let nu = config.num_users;
    let mut b = InstanceBuilder::new();
    if config.time_per_unit > 0 {
        b.travel(usep_core::TravelCost::Grid { time_per_unit: config.time_per_unit });
    }

    // events: capacity, location, time. In time-cost mode the conflict
    // target must account for travel-infeasible pairs, so locations are
    // drawn first and the interval search sees them.
    let event_pts: Vec<Point> =
        (0..nv).map(|_| random_point(&mut rng, config.grid)).collect();
    let intervals = if config.time_per_unit > 0 {
        crate::time_gen::generate_intervals_spatiotemporal(
            config.duration,
            config.conflict_ratio,
            rng.gen(),
            &event_pts,
            config.time_per_unit,
        )
    } else {
        generate_intervals(nv, config.duration, config.conflict_ratio, rng.gen())
    };
    for (&(t1, t2), &p) in intervals.iter().zip(&event_pts) {
        let cap = sample_capacity(&mut rng, config.capacity_dist, config.capacity_mean);
        b.event(cap, p, TimeInterval::new(t1, t2).expect("generator produces valid intervals"));
    }

    // mid = ½(max + min) over event-event distances (see DESIGN.md: the
    // paper's formula read over distance values, not the ∞-gated costs)
    let mid = {
        let mut min_d = u64::MAX;
        let mut max_d = 0u64;
        for i in 0..nv {
            for j in i + 1..nv {
                let d = event_pts[i].manhattan(event_pts[j]);
                min_d = min_d.min(d);
                max_d = max_d.max(d);
            }
        }
        if nv < 2 {
            f64::from(config.grid.max(1)) // arbitrary sane scale
        } else {
            0.5 * (max_d + min_d) as f64
        }
    };

    // users: location, budget
    let mut user_pts = Vec::with_capacity(nu);
    for _ in 0..nu {
        let p = random_point(&mut rng, config.grid);
        let base = event_pts
            .iter()
            .map(|&e| p.manhattan(e))
            .min()
            .unwrap_or(0) as u32
            * 2;
        let budget = sample_budget(&mut rng, config.budget_dist, base, mid, config.budget_factor);
        user_pts.push(p);
        b.user(p, Cost::new(budget));
    }

    // dense utility matrix, row-major by user
    let mut mu = Vec::with_capacity(nv * nu);
    for _ in 0..nu {
        for _ in 0..nv {
            mu.push(config.mu_dist.sample(&mut rng) as f32);
        }
    }
    b.utility_matrix(mu);

    b.build().expect("synthetic generator produces valid instances")
}

fn random_point(rng: &mut StdRng, grid: i32) -> Point {
    Point::new(rng.gen_range(0..=grid), rng.gen_range(0..=grid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Spread, UtilityDistribution};

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticConfig::tiny();
        assert_eq!(generate(&cfg, 42), generate(&cfg, 42));
        assert_ne!(generate(&cfg, 42), generate(&cfg, 43));
    }

    #[test]
    fn dimensions_match_config() {
        let cfg = SyntheticConfig::tiny().with_events(15).with_users(30);
        let inst = generate(&cfg, 1);
        assert_eq!(inst.num_events(), 15);
        assert_eq!(inst.num_users(), 30);
    }

    #[test]
    fn conflict_ratio_near_target() {
        for &cr in &[0.0, 0.25, 0.5, 1.0] {
            let cfg = SyntheticConfig::default().with_events(100).with_users(5).with_conflict_ratio(cr);
            let inst = generate(&cfg, 9);
            let got = inst.conflict_ratio();
            assert!((got - cr).abs() < 0.05, "target {cr}: got {got}");
        }
    }

    #[test]
    fn capacity_mean_near_target() {
        let cfg = SyntheticConfig::default().with_events(300).with_users(5).with_capacity_mean(50);
        let inst = generate(&cfg, 3);
        let mean: f64 = inst.events().iter().map(|e| f64::from(e.capacity)).sum::<f64>()
            / inst.num_events() as f64;
        assert!((mean - 50.0).abs() < 5.0, "got {mean}");
    }

    #[test]
    fn budgets_cover_cheapest_round_trip_under_uniform() {
        let cfg = SyntheticConfig::tiny().with_users(50);
        let inst = generate(&cfg, 4);
        for u in inst.user_ids() {
            let min_rt = inst
                .event_ids()
                .map(|v| inst.round_trip(u, v))
                .min()
                .unwrap();
            assert!(
                inst.user(u).budget >= min_rt,
                "uniform budgets start at the cheapest round trip"
            );
        }
    }

    #[test]
    fn larger_fb_gives_larger_budgets_on_average() {
        let lo = generate(&SyntheticConfig::tiny().with_users(200).with_budget_factor(0.5), 5);
        let hi = generate(&SyntheticConfig::tiny().with_users(200).with_budget_factor(10.0), 5);
        let mean = |i: &Instance| {
            i.users().iter().map(|u| f64::from(u.budget.value())).sum::<f64>()
                / i.num_users() as f64
        };
        assert!(mean(&hi) > 2.0 * mean(&lo));
    }

    #[test]
    fn normal_spreads_produce_valid_instances() {
        let cfg = SyntheticConfig::tiny()
            .with_capacity_dist(Spread::Normal)
            .with_budget_dist(Spread::Normal)
            .with_mu_dist(UtilityDistribution::Normal { mean: 0.5, std: 0.25 });
        let inst = generate(&cfg, 6);
        assert!(inst.events().iter().all(|e| e.capacity >= 1));
    }

    #[test]
    fn power_mu_skews_mass() {
        let low = generate(
            &SyntheticConfig::tiny()
                .with_users(100)
                .with_mu_dist(UtilityDistribution::Power { exponent: 0.5 }),
            7,
        );
        let high = generate(
            &SyntheticConfig::tiny()
                .with_users(100)
                .with_mu_dist(UtilityDistribution::Power { exponent: 4.0 }),
            7,
        );
        let mass = |i: &Instance| i.total_utility_mass() / (i.num_events() * i.num_users()) as f64;
        assert!(mass(&low) < 0.4);
        assert!(mass(&high) > 0.7);
    }

    #[test]
    fn time_cost_mode_hits_spatiotemporal_cr() {
        let cfg = SyntheticConfig::default()
            .with_events(80)
            .with_users(5)
            .with_conflict_ratio(0.4)
            .with_time_per_unit(1);
        let inst = generate(&cfg, 12);
        // Instance::conflict_ratio accounts for travel gating via the
        // cost matrix, so it must land near the target too
        let got = inst.conflict_ratio();
        assert!((got - 0.4).abs() < 0.06, "got {got}");
        assert!(matches!(
            inst.travel(),
            usep_core::TravelCost::Grid { time_per_unit: 1 }
        ));
    }

    #[test]
    fn time_cost_mode_instances_are_solvable() {
        use usep_algos::{solve, Algorithm};
        let cfg = SyntheticConfig::tiny().with_users(15).with_time_per_unit(2);
        let inst = generate(&cfg, 13);
        for a in Algorithm::PAPER_SET {
            solve(a, &inst).validate(&inst).unwrap();
        }
    }

    #[test]
    fn single_event_instance() {
        let cfg = SyntheticConfig::tiny().with_events(1).with_users(3);
        let inst = generate(&cfg, 8);
        assert_eq!(inst.num_events(), 1);
        assert_eq!(inst.conflict_ratio(), 0.0);
    }
}
