//! Synthetic-workload configuration (Table 7).

use serde::{Deserialize, Serialize};

/// How utility values `μ(v, u)` are drawn (Table 7, row 3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum UtilityDistribution {
    /// Uniform on `[0, 1]` — the paper's default.
    Uniform,
    /// Normal, clamped to `[0, 1]`. The paper uses `Normal(0.5, 0.25)`.
    Normal {
        /// Mean of the (pre-clamp) normal.
        mean: f64,
        /// Standard deviation of the (pre-clamp) normal.
        std: f64,
    },
    /// Power-law `x = u^(1/exponent)` for `u ~ U[0, 1]`: exponent `0.5`
    /// skews toward 0 (most users barely interested), `4` toward 1.
    Power {
        /// Shape exponent (paper uses 0.5 and 4).
        exponent: f64,
    },
}

/// Spread shape for capacities and budgets (Table 7, rows 5 and 7:
/// "Distributions of c_v / b_u").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Spread {
    /// Uniform on `[lo, 2·mean − lo]` (mean-preserving) — the default.
    Uniform,
    /// Normal with the given mean and `std = 0.25 × mean`, as §5.2
    /// describes for the distribution experiments.
    Normal,
}

/// Full synthetic-instance configuration, mirroring Table 7. The
/// `Default` impl is the paper's bold default setting.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// `|V|` — number of events (default 100).
    pub num_events: usize,
    /// `|U|` — number of users (default 5000).
    pub num_users: usize,
    /// Distribution of `μ(v, u)` (default Uniform).
    pub mu_dist: UtilityDistribution,
    /// Mean event capacity (default 50).
    pub capacity_mean: u32,
    /// Capacity spread (default Uniform).
    pub capacity_dist: Spread,
    /// Budget factor `f_b` (default 2).
    pub budget_factor: f64,
    /// Budget spread (default Uniform).
    pub budget_dist: Spread,
    /// Target conflict ratio `cr` (default 0.25).
    pub conflict_ratio: f64,
    /// Locations are uniform on the `[0, grid] × [0, grid]` integer grid
    /// (default 100, giving Manhattan costs up to `2 × grid`).
    pub grid: i32,
    /// Event durations are uniform integers in this inclusive range
    /// (default `[30, 120]` "minutes").
    pub duration: (i64, i64),
    /// Travel time per unit of Manhattan distance (default 0 = money
    /// costs; > 0 switches to time costs, where the conflict ratio also
    /// counts pairs whose gap is too short to travel — the full
    /// "spatio-temporal conflict" of the problem statement).
    pub time_per_unit: u32,
}

impl Default for SyntheticConfig {
    fn default() -> SyntheticConfig {
        SyntheticConfig {
            num_events: 100,
            num_users: 5000,
            mu_dist: UtilityDistribution::Uniform,
            capacity_mean: 50,
            capacity_dist: Spread::Uniform,
            budget_factor: 2.0,
            budget_dist: Spread::Uniform,
            conflict_ratio: 0.25,
            grid: 100,
            duration: (30, 120),
            time_per_unit: 0,
        }
    }
}

impl SyntheticConfig {
    /// The paper's default setting (Table 7 bold values).
    pub fn paper_default() -> SyntheticConfig {
        SyntheticConfig::default()
    }

    /// A small instance for examples, doctests and quick tests
    /// (8 events, 12 users, 20×20 grid).
    pub fn tiny() -> SyntheticConfig {
        SyntheticConfig {
            num_events: 8,
            num_users: 12,
            capacity_mean: 3,
            grid: 20,
            ..SyntheticConfig::default()
        }
    }

    /// Builder-style override of `|V|`.
    pub fn with_events(mut self, n: usize) -> Self {
        self.num_events = n;
        self
    }

    /// Builder-style override of `|U|`.
    pub fn with_users(mut self, n: usize) -> Self {
        self.num_users = n;
        self
    }

    /// Builder-style override of the mean capacity.
    pub fn with_capacity_mean(mut self, c: u32) -> Self {
        self.capacity_mean = c;
        self
    }

    /// Builder-style override of the conflict ratio.
    pub fn with_conflict_ratio(mut self, cr: f64) -> Self {
        assert!((0.0..=1.0).contains(&cr), "cr must be in [0, 1]");
        self.conflict_ratio = cr;
        self
    }

    /// Builder-style override of the budget factor.
    pub fn with_budget_factor(mut self, fb: f64) -> Self {
        assert!(fb >= 0.0, "f_b must be non-negative");
        self.budget_factor = fb;
        self
    }

    /// Builder-style override of the utility distribution.
    pub fn with_mu_dist(mut self, d: UtilityDistribution) -> Self {
        self.mu_dist = d;
        self
    }

    /// Builder-style override of the capacity spread.
    pub fn with_capacity_dist(mut self, d: Spread) -> Self {
        self.capacity_dist = d;
        self
    }

    /// Builder-style override of the budget spread.
    pub fn with_budget_dist(mut self, d: Spread) -> Self {
        self.budget_dist = d;
        self
    }

    /// Builder-style override of the travel speed (time-cost mode).
    pub fn with_time_per_unit(mut self, tpu: u32) -> Self {
        self.time_per_unit = tpu;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table7_bold() {
        let c = SyntheticConfig::default();
        assert_eq!(c.num_events, 100);
        assert_eq!(c.num_users, 5000);
        assert_eq!(c.mu_dist, UtilityDistribution::Uniform);
        assert_eq!(c.capacity_mean, 50);
        assert_eq!(c.budget_factor, 2.0);
        assert_eq!(c.conflict_ratio, 0.25);
    }

    #[test]
    fn builders_override() {
        let c = SyntheticConfig::default()
            .with_events(20)
            .with_users(100)
            .with_capacity_mean(10)
            .with_conflict_ratio(0.5)
            .with_budget_factor(5.0);
        assert_eq!(c.num_events, 20);
        assert_eq!(c.num_users, 100);
        assert_eq!(c.capacity_mean, 10);
        assert_eq!(c.conflict_ratio, 0.5);
        assert_eq!(c.budget_factor, 5.0);
    }

    #[test]
    #[should_panic(expected = "cr must be in")]
    fn bad_cr_rejected() {
        let _ = SyntheticConfig::default().with_conflict_ratio(1.5);
    }

    #[test]
    fn serde_roundtrip() {
        let c = SyntheticConfig::tiny().with_mu_dist(UtilityDistribution::Power { exponent: 0.5 });
        let json = serde_json::to_string(&c).unwrap();
        let back: SyntheticConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
