//! Multi-city instance composition.
//!
//! The paper plans each city separately ("it is unlikely for a user
//! living in a city to attend a meet-up event held in another city",
//! §5.1). [`merge`] composes several city instances into one regional
//! instance that preserves exactly that semantics: cities are placed on
//! a horizontal strip with a spacing gap, ids are offset, and the
//! utility matrix becomes block-diagonal — users keep `μ = 0` for other
//! cities' events, so the utility constraint forbids cross-city
//! assignments. Planning the merged instance therefore decomposes into
//! the per-city plannings (a tested invariant), which makes `merge`
//! useful both for building region-scale benchmarks and as a
//! correctness oracle.

use usep_core::{EventId, Instance, InstanceBuilder, Point, TravelCost, UserId};

/// Merges grid-cost instances side by side, `spacing` grid units apart.
///
/// # Panics
/// Panics if `parts` is empty, or if any instance uses explicit cost
/// matrices or a different `time_per_unit` than the first (merging is
/// only meaningful for translation-invariant grid costs).
pub fn merge(parts: &[Instance], spacing: i32) -> Instance {
    assert!(!parts.is_empty(), "merge needs at least one instance");
    let tpu = match parts[0].travel() {
        TravelCost::Grid { time_per_unit } => *time_per_unit,
        TravelCost::Explicit { .. } => panic!("merge requires grid travel costs"),
    };
    let mut b = InstanceBuilder::new();
    if tpu > 0 {
        b.travel(TravelCost::Grid { time_per_unit: tpu });
    }

    // horizontal placement: each part is shifted so its bounding box
    // starts `spacing` right of the previous part's box
    let mut x_cursor = 0i64;
    let mut offsets = Vec::with_capacity(parts.len());
    for part in parts {
        match part.travel() {
            TravelCost::Grid { time_per_unit } if *time_per_unit == tpu => {}
            TravelCost::Grid { .. } => panic!("merge requires a uniform time_per_unit"),
            TravelCost::Explicit { .. } => panic!("merge requires grid travel costs"),
        }
        let (min_x, max_x) = part
            .events()
            .iter()
            .map(|e| e.location.x)
            .chain(part.users().iter().map(|u| u.location.x))
            .fold((i32::MAX, i32::MIN), |(lo, hi), x| (lo.min(x), hi.max(x)));
        let (min_x, max_x) = if min_x > max_x { (0, 0) } else { (min_x, max_x) };
        let dx = x_cursor - i64::from(min_x);
        offsets.push(dx as i32);
        x_cursor += i64::from(max_x - min_x) + i64::from(spacing);
    }

    let total_events: usize = parts.iter().map(Instance::num_events).sum();
    let total_users: usize = parts.iter().map(Instance::num_users).sum();
    let mut fees: Vec<(EventId, u32)> = Vec::new();
    let mut event_base = 0u32;
    for (part, &dx) in parts.iter().zip(&offsets) {
        for (i, e) in part.events().iter().enumerate() {
            let id = b.event(e.capacity, Point::new(e.location.x + dx, e.location.y), e.time);
            debug_assert_eq!(id, EventId(event_base + i as u32));
            let fee = part.fee(EventId(i as u32));
            if fee > 0 {
                fees.push((id, fee));
            }
        }
        event_base += part.num_events() as u32;
    }
    for (part, &dx) in parts.iter().zip(&offsets) {
        for u in part.users() {
            b.user(Point::new(u.location.x + dx, u.location.y), u.budget);
        }
    }
    for (v, fee) in fees {
        b.fee(v, fee);
    }

    // block-diagonal utilities: cross-city μ stays 0
    let mut mu = vec![0.0f32; total_events * total_users];
    let mut user_base = 0usize;
    let mut ev_base = 0usize;
    for part in parts {
        let (nv, nu) = (part.num_events(), part.num_users());
        for u in 0..nu {
            let row = part.mu_row(UserId(u as u32));
            let dst = (user_base + u) * total_events + ev_base;
            mu[dst..dst + nv].copy_from_slice(row);
        }
        user_base += nu;
        ev_base += nv;
    }
    b.utility_matrix(mu);
    b.build().expect("merging valid instances yields a valid instance")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, generate_city, CityConfig, SyntheticConfig};
    use usep_algos::{solve, Algorithm};
    use usep_core::Cost;

    fn two_cities() -> (Instance, Instance) {
        let mut auck = CityConfig::auckland();
        auck.num_events = 10;
        auck.num_users = 25;
        let a = generate_city(&auck, 5);
        let b = generate(&SyntheticConfig::tiny().with_users(20), 6);
        (a, b)
    }

    #[test]
    fn sizes_and_blocks() {
        let (a, c) = two_cities();
        let m = merge(&[a.clone(), c.clone()], 50);
        assert_eq!(m.num_events(), a.num_events() + c.num_events());
        assert_eq!(m.num_users(), a.num_users() + c.num_users());
        // cross-city utilities are zero; within-city preserved
        let u_from_a = UserId(0);
        let v_from_c = EventId(a.num_events() as u32);
        assert_eq!(m.mu(v_from_c, u_from_a), 0.0);
        assert_eq!(m.mu(EventId(0), u_from_a), a.mu(EventId(0), UserId(0)));
        let u_from_c = UserId(a.num_users() as u32);
        assert_eq!(m.mu(v_from_c, u_from_c), c.mu(EventId(0), UserId(0)));
    }

    #[test]
    fn within_city_distances_are_translation_invariant() {
        let (a, c) = two_cities();
        let m = merge(&[a.clone(), c], 50);
        for i in 0..a.num_events() as u32 {
            for j in 0..a.num_events() as u32 {
                assert_eq!(
                    m.cost_vv(EventId(i), EventId(j)),
                    a.cost_vv(EventId(i), EventId(j)),
                    "pair ({i}, {j})"
                );
            }
        }
        assert_eq!(m.cost_uv(UserId(3), EventId(2)), a.cost_uv(UserId(3), EventId(2)));
    }

    #[test]
    fn planning_decomposes_across_cities() {
        let (a, c) = two_cities();
        let m = merge(&[a.clone(), c.clone()], 40);
        for algo in [Algorithm::DeDPO, Algorithm::DeGreedy] {
            let merged = solve(algo, &m);
            merged.validate(&m).unwrap();
            let separate =
                solve(algo, &a).omega(&a) + solve(algo, &c).omega(&c);
            let got = merged.omega(&m);
            assert!(
                (got - separate).abs() < 1e-6,
                "{algo}: merged Ω {got} vs per-city sum {separate}"
            );
            // nobody attends another city's event
            for (u, v) in merged.assignments() {
                let u_in_a = (u.index()) < a.num_users();
                let v_in_a = (v.index()) < a.num_events();
                assert_eq!(u_in_a, v_in_a, "cross-city assignment {u} → {v}");
            }
        }
    }

    #[test]
    fn merge_single_is_behaviorally_identity() {
        let (_, c) = two_cities();
        let m = merge(std::slice::from_ref(&c), 10);
        // locations may be translated, but the planning is the same
        assert_eq!(
            solve(Algorithm::DeDPO, &m),
            solve(Algorithm::DeDPO, &c)
        );
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_merge_rejected() {
        let _ = merge(&[], 10);
    }

    #[test]
    fn fees_survive_merging() {
        let mut b = InstanceBuilder::new();
        let v = b.event(1, Point::new(2, 0), usep_core::TimeInterval::new(0, 5).unwrap());
        let u = b.user(Point::ORIGIN, Cost::new(30));
        b.utility(v, u, 0.5);
        b.fee(v, 7);
        let inst = b.build().unwrap();
        let m = merge(&[inst.clone(), inst], 20);
        assert_eq!(m.fee(EventId(0)), 7);
        assert_eq!(m.fee(EventId(1)), 7);
    }
}
