//! Online incremental replanning for USEP — the delta-solve engine.
//!
//! A deployed event-participant planner does not get to re-solve from
//! scratch every time an event is cancelled or a user registers: it
//! keeps **warm state** and repairs. This crate provides that engine
//! and the machinery to trust it:
//!
//! * [`Mutation`] / [`MutationTrace`] — the typed mutation stream
//!   (event add/remove, capacity change, user arrive/depart, μ update),
//!   addressed by stable ids so traces are replayable and journal-able.
//! * [`DeltaEngine`] — warm state (live instance with amended frozen
//!   view, current planning, recency stamps) absorbing mutations with
//!   bounded work: instance *patch* (`usep-core`'s strided amendments,
//!   never a rebuild), deterministic *release* of invalidated
//!   assignments (LIFO on capacity shrink), then one RatioGreedy
//!   augmentation pass over residual events. A drift metric —
//!   released-but-surviving utility over the Ω anchor — triggers
//!   fallback to a full resolve when repairs have churned too much.
//! * [`generate_trace`] — seeded, adversarial trace generator
//!   (remove-then-readd, shrink-below-attendance, μ-zeroing).
//! * [`run_trace`] / [`run_delta_fuzz`] — the differential referee:
//!   after every mutation the incremental planning must be
//!   constraint-valid, the patched instance byte-identical to a
//!   from-scratch rebuild, and Ω within a configured bound of a cold
//!   solve. Failures shrink to minimal repros via [`minimize_trace`].
//!
//! `usep-serve` journals mutations behind a `mutate` verb and replays
//! them on resume; `usep-oracle` layers its constraint checker on the
//! referee's external-check hook; the CLI exposes the fuzz harness as
//! `usep delta`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod gentrace;
pub mod mutation;
pub mod referee;

pub use engine::{
    DeltaConfig, DeltaEngine, DeltaError, DeltaStats, MutationOutcome, RepairKind,
    TOUCHED_HISTOGRAM,
};
pub use gentrace::{generate_trace, TraceGenConfig};
pub use mutation::{MuEntry, Mutation, MutationTrace};
pub use referee::{
    minimize_trace, no_extra, run_delta_fuzz, run_trace, shadow_rebuild, DeltaFuzzConfig,
    DeltaFuzzFinding, DeltaFuzzReport, FailureKind, RefereeConfig, TraceFailure, TraceReport,
};
