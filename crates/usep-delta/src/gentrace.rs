//! Seeded mutation-trace generator.
//!
//! Produces replayable [`MutationTrace`]s from a `u64` seed via a
//! SplitMix64 stream: a random grid instance plus a mutation sequence
//! that tracks live stable ids exactly the way [`DeltaEngine`] assigns
//! them (initial entities `0..n`, arrivals take the next counter).
//! The mix is deliberately adversarial — it re-adds removed events
//! with identical parameters (remove-then-readd), shrinks capacities
//! below current attendance, and zeroes μ cells — because those are
//! the paths where an incremental engine diverges from a cold solve if
//! its bookkeeping is wrong.
//!
//! [`DeltaEngine`]: crate::engine::DeltaEngine

use usep_core::{Cost, EventId, InstanceBuilder, Point, TimeInterval, UserId};

use crate::mutation::{MuEntry, Mutation, MutationTrace};

/// Shape of a generated trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceGenConfig {
    /// Seed for the SplitMix64 stream.
    pub seed: u64,
    /// Mutations to generate.
    pub mutations: usize,
    /// Events in the starting instance.
    pub events: usize,
    /// Users in the starting instance.
    pub users: usize,
}

impl Default for TraceGenConfig {
    fn default() -> TraceGenConfig {
        TraceGenConfig { seed: 0, mutations: 40, events: 8, users: 12 }
    }
}

/// SplitMix64 — tiny, seedable, and good enough for trace generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn unit(&mut self) -> f32 {
        (self.next() >> 40) as f32 / (1u64 << 24) as f32
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// Parameters of a live event, kept so that removing one can later
/// re-add "the same" event (fresh stable id, identical payload).
#[derive(Clone)]
struct EventParams {
    capacity: u32,
    location: Point,
    time: TimeInterval,
    fee: u32,
}

fn random_event(rng: &mut Rng) -> EventParams {
    let start = rng.below(8) as i64 * 10;
    let dur = 5 + rng.below(12) as i64;
    EventParams {
        capacity: 1 + rng.below(3) as u32,
        location: Point::new(rng.below(30) as i32, rng.below(30) as i32),
        time: TimeInterval::new(start, start + dur).expect("start < end by construction"),
        fee: if rng.chance(10) { 1 + rng.below(4) as u32 } else { 0 },
    }
}

fn random_mu(rng: &mut Rng) -> f32 {
    // keep utilities comfortably inside (0, 1]
    (0.05 + 0.95 * rng.unit()).min(1.0)
}

/// Generates a replayable trace from `cfg`. Identical configs produce
/// byte-identical traces.
pub fn generate_trace(cfg: &TraceGenConfig) -> MutationTrace {
    let mut rng = Rng(cfg.seed ^ 0xd1b5_4a32_d192_ed03);
    let nv = cfg.events.max(1);
    let nu = cfg.users.max(1);

    // starting instance, with its event parameters retained
    let mut params: Vec<EventParams> = (0..nv).map(|_| random_event(&mut rng)).collect();
    let mut b = InstanceBuilder::new();
    for p in &params {
        b.event(p.capacity, p.location, p.time);
    }
    for _ in 0..nu {
        b.user(
            Point::new(rng.below(30) as i32, rng.below(30) as i32),
            Cost::new(20 + rng.below(120) as u32),
        );
    }
    for (v, p) in params.iter().enumerate() {
        if p.fee > 0 {
            b.fee(EventId(v as u32), p.fee);
        }
        for u in 0..nu {
            if rng.chance(55) {
                b.utility(EventId(v as u32), UserId(u as u32), f64::from(random_mu(&mut rng)));
            }
        }
    }
    let instance = b.build().expect("generated parameters are always buildable");

    // mirror of the engine's stable-id accounting; `params[i]` describes
    // the event with stable id `live_events[i]`
    let mut live_events: Vec<u32> = (0..nv as u32).collect();
    let mut live_users: Vec<u32> = (0..nu as u32).collect();
    let mut next_event = nv as u32;
    let mut next_user = nu as u32;
    let mut graveyard: Vec<EventParams> = Vec::new();

    let mut mutations = Vec::with_capacity(cfg.mutations);
    while mutations.len() < cfg.mutations {
        let roll = rng.below(100);
        let m = if roll < 18 {
            // EventAdd — 1 in 3 resurrects a removed event's parameters
            let p = if !graveyard.is_empty() && rng.chance(33) {
                graveyard.swap_remove(rng.below(graveyard.len() as u64) as usize)
            } else {
                random_event(&mut rng)
            };
            let mut mu = Vec::new();
            for &su in &live_users {
                if rng.chance(55) {
                    mu.push(MuEntry { id: su, mu: random_mu(&mut rng) });
                }
            }
            live_events.push(next_event);
            next_event += 1;
            params.push(p.clone());
            Mutation::EventAdd {
                capacity: p.capacity,
                location: p.location,
                time: p.time,
                fee: p.fee,
                mu,
            }
        } else if roll < 32 {
            // EventRemove — keep at least one event alive
            if live_events.len() <= 1 {
                continue;
            }
            let i = rng.below(live_events.len() as u64) as usize;
            let stable = live_events.swap_remove(i);
            graveyard.push(params.swap_remove(i));
            Mutation::EventRemove { event: stable }
        } else if roll < 52 {
            // CapacityChange — half the time an aggressive shrink that
            // can land below current attendance
            let i = rng.below(live_events.len() as u64) as usize;
            let capacity = if rng.chance(50) {
                1 + rng.below(2) as u32
            } else {
                2 + rng.below(5) as u32
            };
            params[i].capacity = capacity;
            Mutation::CapacityChange { event: live_events[i], capacity }
        } else if roll < 64 {
            // UserArrive
            let mut mu = Vec::new();
            for &sv in &live_events {
                if rng.chance(55) {
                    mu.push(MuEntry { id: sv, mu: random_mu(&mut rng) });
                }
            }
            live_users.push(next_user);
            next_user += 1;
            Mutation::UserArrive {
                location: Point::new(rng.below(30) as i32, rng.below(30) as i32),
                budget: 20 + rng.below(120) as u32,
                mu,
            }
        } else if roll < 74 {
            // UserDepart — keep at least one user alive
            if live_users.len() <= 1 {
                continue;
            }
            let i = rng.below(live_users.len() as u64) as usize;
            Mutation::UserDepart { user: live_users.swap_remove(i) }
        } else {
            // MuUpdate — 30% zeroing (evicts if the pair is assigned)
            let sv = live_events[rng.below(live_events.len() as u64) as usize];
            let su = live_users[rng.below(live_users.len() as u64) as usize];
            let mu = if rng.chance(30) { 0.0 } else { random_mu(&mut rng) };
            Mutation::MuUpdate { event: sv, user: su, mu }
        };
        mutations.push(m);
    }

    MutationTrace { seed: cfg.seed, instance, mutations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let cfg = TraceGenConfig { seed: 7, mutations: 30, events: 5, users: 8 };
        let a = generate_trace(&cfg);
        let b = generate_trace(&cfg);
        assert_eq!(a.instance, b.instance);
        assert_eq!(a.mutations, b.mutations);
        assert_eq!(a.len(), 30);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = generate_trace(&TraceGenConfig { seed: 1, ..TraceGenConfig::default() });
        let b = generate_trace(&TraceGenConfig { seed: 2, ..TraceGenConfig::default() });
        assert_ne!(a.mutations, b.mutations);
    }

    #[test]
    fn traces_cover_every_mutation_kind() {
        let t = generate_trace(&TraceGenConfig { seed: 3, mutations: 200, events: 8, users: 10 });
        let mut kinds: Vec<&str> = t.mutations.iter().map(|m| m.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(
            kinds,
            vec![
                "capacity_change",
                "event_add",
                "event_remove",
                "mu_update",
                "user_arrive",
                "user_depart"
            ]
        );
    }
}
