//! The typed mutation stream the delta engine consumes.
//!
//! Mutations address entities by **stable id**, not dense index: the
//! engine swap-removes entities from the instance's dense arrays, so a
//! dense index means different things before and after a removal. A
//! stable id is assigned once (initial entities get `0..n` in dense
//! order, later arrivals get the next counter value) and never reused,
//! which makes a [`MutationTrace`] replayable from its serialized form
//! alone — the journal in `usep-serve` and the repro files written by
//! the fuzz harness both lean on this.

use serde::{Deserialize, Serialize};
use usep_core::{Instance, Point, TimeInterval};

/// One sparse utility entry: `id` is the **stable** id of the
/// counterpart entity (user for [`Mutation::EventAdd`], event for
/// [`Mutation::UserArrive`]); omitted pairs default to `μ = 0`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MuEntry {
    /// Stable id of the counterpart entity.
    pub id: u32,
    /// Utility in `[0, 1]`.
    pub mu: f32,
}

/// A single typed change to the live instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Mutation {
    /// A new event opens for registration.
    EventAdd {
        /// Attendance cap (≥ 1).
        capacity: u32,
        /// Venue location on the grid.
        location: Point,
        /// When it runs.
        time: TimeInterval,
        /// Attendance fee folded into inbound travel legs (Remark 2).
        fee: u32,
        /// Sparse utility column over **stable user ids**.
        mu: Vec<MuEntry>,
    },
    /// An event is cancelled; its attendees are released.
    EventRemove {
        /// Stable id of the event.
        event: u32,
    },
    /// An event's capacity changes; shrinking below current attendance
    /// evicts the most recently assigned attendees first.
    CapacityChange {
        /// Stable id of the event.
        event: u32,
        /// New capacity (≥ 1).
        capacity: u32,
    },
    /// A new user registers.
    UserArrive {
        /// Where they start and return to.
        location: Point,
        /// Travel budget.
        budget: u32,
        /// Sparse utility row over **stable event ids**.
        mu: Vec<MuEntry>,
    },
    /// A user deregisters; their assignments are released (no churn —
    /// the demand left with them).
    UserDepart {
        /// Stable id of the user.
        user: u32,
    },
    /// One `μ(v, u)` cell changes; dropping to 0 evicts the pair if
    /// assigned (the μ > 0 constraint would otherwise be violated).
    MuUpdate {
        /// Stable id of the event.
        event: u32,
        /// Stable id of the user.
        user: u32,
        /// New utility in `[0, 1]`.
        mu: f32,
    },
}

impl Mutation {
    /// Short kind tag, used in journals, counters and failure reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Mutation::EventAdd { .. } => "event_add",
            Mutation::EventRemove { .. } => "event_remove",
            Mutation::CapacityChange { .. } => "capacity_change",
            Mutation::UserArrive { .. } => "user_arrive",
            Mutation::UserDepart { .. } => "user_depart",
            Mutation::MuUpdate { .. } => "mu_update",
        }
    }
}

/// A replayable scenario: a starting instance plus the mutation
/// sequence applied to it. Serializes to self-contained JSON — the
/// fuzz harness writes failing traces in this form and
/// `usep delta --trace-in` replays them.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MutationTrace {
    /// Seed the generator derived this trace from (0 for hand-written
    /// traces; informational only — replay never re-rolls).
    pub seed: u64,
    /// The instance as of the first mutation.
    pub instance: Instance,
    /// The mutations, in application order.
    pub mutations: Vec<Mutation>,
}

impl MutationTrace {
    /// Number of mutations in the trace.
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// Whether the trace has no mutations.
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty()
    }
}
