//! The differential referee: replays a [`MutationTrace`] through a
//! [`DeltaEngine`] and, after **every** mutation, checks that the
//! incremental planning
//!
//! 1. is constraint-valid ([`Planning::validate`]),
//! 2. lives on an instance that is byte-identical to a from-scratch
//!    rebuild (object arrays, cost matrix, and the amended frozen SoA
//!    view — the patch-layer differential), and
//! 3. achieves Ω within the configured drift bound of a **cold**
//!    RatioGreedy solve of the same live instance.
//!
//! On failure the fuzz harness shrinks the trace with a greedy
//! delta-debugging pass ([`minimize_trace`]) that preserves the failure
//! *kind*, and reports the minimized trace as a self-contained JSON
//! repro — the same replayable-seed + greedy-minimizer workflow
//! `usep-chaos` uses for fault schedules.
//!
//! [`Planning::validate`]: usep_core::Planning::validate

use usep_algos::{solve, Algorithm};
use usep_core::{FlatInstance, Instance, InstanceBuilder};
use usep_trace::Probe;

use crate::engine::{DeltaConfig, DeltaEngine, RepairKind};
use crate::gentrace::{generate_trace, TraceGenConfig};
use crate::mutation::MutationTrace;

/// What the referee tolerates.
#[derive(Clone, Copy, Debug)]
pub struct RefereeConfig {
    /// Engine tuning used for the incremental side.
    pub delta: DeltaConfig,
    /// Maximum relative Ω shortfall versus the cold solve:
    /// `Ω_inc ≥ (1 − drift_bound) · Ω_cold` must hold after every
    /// mutation.
    pub drift_bound: f64,
    /// Also rebuild the instance from scratch each step and demand
    /// byte-identity (object arrays + frozen view). Quadratic per step;
    /// disable for long traces where only planning quality matters.
    pub check_patching: bool,
}

impl Default for RefereeConfig {
    fn default() -> RefereeConfig {
        RefereeConfig {
            delta: DeltaConfig::default(),
            drift_bound: 0.5,
            check_patching: true,
        }
    }
}

/// Which referee check tripped. The minimizer preserves this, so a
/// shrunken trace still reproduces the *same class* of failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The engine rejected a mutation the generator considered valid.
    Apply,
    /// The incremental planning violated a USEP constraint.
    Constraint,
    /// The patched instance diverged from a from-scratch rebuild.
    Patching,
    /// Ω fell further behind the cold solve than the drift bound allows.
    Drift,
    /// An external per-step check (e.g. the oracle in `usep-oracle`)
    /// reported a violation.
    External,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureKind::Apply => "apply",
            FailureKind::Constraint => "constraint",
            FailureKind::Patching => "patching",
            FailureKind::Drift => "drift",
            FailureKind::External => "external",
        };
        f.write_str(s)
    }
}

/// A referee failure, pinned to the mutation that triggered it.
#[derive(Clone, Debug)]
pub struct TraceFailure {
    /// Index into `trace.mutations` of the offending mutation.
    pub step: usize,
    /// Which check tripped.
    pub kind: FailureKind,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for TraceFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {}: {} failure: {}", self.step, self.kind, self.detail)
    }
}

/// Aggregates over a clean trace replay.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceReport {
    /// Mutations replayed.
    pub steps: usize,
    /// Absorbed via bounded repair.
    pub repairs: u64,
    /// Absorbed via full resolve.
    pub fallbacks: u64,
    /// Assignments released across the trace.
    pub evicted: u64,
    /// Assignments added by repair passes.
    pub added: u64,
    /// Final Ω of the incremental planning.
    pub final_omega: f64,
    /// Final Ω of a cold solve of the final instance.
    pub final_omega_cold: f64,
    /// Worst per-step `Ω_inc / Ω_cold` observed (1.0 when cold was 0).
    pub min_omega_ratio: f64,
}

impl TraceReport {
    /// Fraction of mutations absorbed without a full resolve.
    pub fn repair_fraction(&self) -> f64 {
        if self.steps == 0 {
            1.0
        } else {
            self.repairs as f64 / self.steps as f64
        }
    }
}

/// Rebuilds an instance from scratch out of the live one's raw parts —
/// the ground truth the patched instance must match byte-for-byte.
pub fn shadow_rebuild(inst: &Instance) -> Result<Instance, String> {
    let mut b = InstanceBuilder::new();
    for e in inst.events() {
        b.event(e.capacity, e.location, e.time);
    }
    for u in inst.users() {
        b.user(u.location, u.budget);
    }
    let mut mu = Vec::with_capacity(inst.num_events() * inst.num_users());
    for u in inst.user_ids() {
        mu.extend_from_slice(inst.mu_row(u));
    }
    b.utility_matrix(mu);
    b.travel(inst.travel().clone());
    for (v, &f) in inst.fees().iter().enumerate() {
        b.fee(usep_core::EventId(v as u32), f);
    }
    b.build().map_err(|e| format!("shadow rebuild refused: {e:?}"))
}

/// Replays `trace` through a fresh engine, running the three referee
/// checks after every mutation plus an optional external `extra` check
/// (return `Some(detail)` to fail the step — `usep-oracle` hooks its
/// constraint checker in here). Returns per-trace aggregates, or the
/// first failure.
pub fn run_trace(
    trace: &MutationTrace,
    cfg: &RefereeConfig,
    probe: &dyn Probe,
    extra: &dyn Fn(usize, &DeltaEngine) -> Option<String>,
) -> Result<TraceReport, TraceFailure> {
    let mut engine = DeltaEngine::new(trace.instance.clone(), cfg.delta, probe);
    let mut report = TraceReport { min_omega_ratio: 1.0, ..TraceReport::default() };

    for (step, m) in trace.mutations.iter().enumerate() {
        let outcome = engine.apply(m, probe).map_err(|e| TraceFailure {
            step,
            kind: FailureKind::Apply,
            detail: format!("{} rejected: {e}", m.kind()),
        })?;
        report.steps += 1;
        match outcome.kind {
            RepairKind::Repaired => report.repairs += 1,
            RepairKind::Fallback => report.fallbacks += 1,
        }
        report.evicted += outcome.evicted as u64;
        report.added += outcome.added as u64;

        // 1. constraint validity
        if let Err(v) = engine.planning().validate(engine.instance()) {
            return Err(TraceFailure {
                step,
                kind: FailureKind::Constraint,
                detail: format!("after {}: {v}", m.kind()),
            });
        }

        // 2. patched instance ≡ from-scratch rebuild
        let cold_inst;
        let live = if cfg.check_patching {
            let fresh = shadow_rebuild(engine.instance()).map_err(|e| TraceFailure {
                step,
                kind: FailureKind::Patching,
                detail: e,
            })?;
            if *engine.instance() != fresh {
                return Err(TraceFailure {
                    step,
                    kind: FailureKind::Patching,
                    detail: format!("object arrays diverged after {}", m.kind()),
                });
            }
            for i in fresh.event_ids() {
                for j in fresh.event_ids() {
                    if engine.instance().cost_vv(i, j) != fresh.cost_vv(i, j) {
                        return Err(TraceFailure {
                            step,
                            kind: FailureKind::Patching,
                            detail: format!("cost_vv({i}, {j}) diverged after {}", m.kind()),
                        });
                    }
                }
            }
            if *engine.instance().freeze() != FlatInstance::build(&fresh) {
                return Err(TraceFailure {
                    step,
                    kind: FailureKind::Patching,
                    detail: format!("amended frozen view diverged after {}", m.kind()),
                });
            }
            cold_inst = fresh;
            &cold_inst
        } else {
            engine.instance()
        };

        // 3. Ω within drift bound of a cold solve
        let cold = solve(Algorithm::RatioGreedy, live);
        let omega_cold = cold.omega(live);
        let omega_inc = engine.omega();
        if omega_cold > 0.0 {
            let ratio = omega_inc / omega_cold;
            if ratio < report.min_omega_ratio {
                report.min_omega_ratio = ratio;
            }
            if omega_inc + 1e-9 < (1.0 - cfg.drift_bound) * omega_cold {
                return Err(TraceFailure {
                    step,
                    kind: FailureKind::Drift,
                    detail: format!(
                        "Ω_inc {omega_inc:.4} < (1 - {:.2}) × Ω_cold {omega_cold:.4} after {}",
                        cfg.drift_bound,
                        m.kind()
                    ),
                });
            }
        }
        if step + 1 == trace.mutations.len() {
            report.final_omega = omega_inc;
            report.final_omega_cold = omega_cold;
        }

        // 4. external check (oracle hook)
        if let Some(detail) = extra(step, &engine) {
            return Err(TraceFailure { step, kind: FailureKind::External, detail });
        }
    }
    Ok(report)
}

/// No external check.
pub fn no_extra(_step: usize, _engine: &DeltaEngine) -> Option<String> {
    None
}

/// Greedy delta-debugging shrink: repeatedly tries to drop chunks of
/// mutations (halving the chunk size down to 1) while `fails` keeps
/// returning true, until a fixpoint. `fails` should pin the failure
/// kind so the shrunken trace reproduces the same bug — dropping an
/// `EventAdd`, for example, turns later mutations on that event into
/// benign `Apply` rejections that must not count as "still failing".
pub fn minimize_trace(trace: &MutationTrace, fails: &dyn Fn(&MutationTrace) -> bool) -> MutationTrace {
    let mut cur = trace.clone();
    loop {
        let mut shrunk = false;
        let mut chunk = (cur.mutations.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < cur.mutations.len() {
                let mut cand = cur.clone();
                let end = (i + chunk).min(cand.mutations.len());
                cand.mutations.drain(i..end);
                if fails(&cand) {
                    cur = cand;
                    shrunk = true;
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        if !shrunk {
            break;
        }
    }
    cur
}

/// Shape of a fuzz campaign.
#[derive(Clone, Copy, Debug)]
pub struct DeltaFuzzConfig {
    /// Traces to run.
    pub traces: usize,
    /// Base seed; trace `i` uses `seed + i`.
    pub seed: u64,
    /// Mutations per trace.
    pub mutations: usize,
    /// Events in each starting instance.
    pub events: usize,
    /// Users in each starting instance.
    pub users: usize,
    /// Referee tolerances.
    pub referee: RefereeConfig,
}

impl Default for DeltaFuzzConfig {
    fn default() -> DeltaFuzzConfig {
        DeltaFuzzConfig {
            traces: 50,
            seed: 0,
            mutations: 40,
            events: 8,
            users: 12,
            referee: RefereeConfig::default(),
        }
    }
}

/// One failing trace, shrunk.
#[derive(Clone, Debug)]
pub struct DeltaFuzzFinding {
    /// Seed of the offending trace.
    pub seed: u64,
    /// The failure as observed on the full trace.
    pub failure: TraceFailure,
    /// The kind-preserving minimized trace (self-contained repro).
    pub minimized: MutationTrace,
}

/// Campaign aggregates.
#[derive(Clone, Debug, Default)]
pub struct DeltaFuzzReport {
    /// Traces replayed.
    pub traces: usize,
    /// Total mutations absorbed across clean traces.
    pub steps: u64,
    /// Bounded repairs across clean traces.
    pub repairs: u64,
    /// Full resolves across clean traces.
    pub fallbacks: u64,
    /// Worst per-step `Ω_inc / Ω_cold` seen anywhere.
    pub min_omega_ratio: f64,
    /// Failures found (empty on a clean campaign).
    pub findings: Vec<DeltaFuzzFinding>,
}

impl DeltaFuzzReport {
    /// Fraction of mutations absorbed without a full resolve.
    pub fn repair_fraction(&self) -> f64 {
        if self.steps == 0 {
            1.0
        } else {
            self.repairs as f64 / self.steps as f64
        }
    }
}

/// Runs `cfg.traces` seeded traces through the referee, minimizing any
/// failure kind-preservingly. `extra` is forwarded to [`run_trace`].
pub fn run_delta_fuzz(
    cfg: &DeltaFuzzConfig,
    probe: &dyn Probe,
    extra: &dyn Fn(usize, &DeltaEngine) -> Option<String>,
) -> DeltaFuzzReport {
    let mut report = DeltaFuzzReport { min_omega_ratio: 1.0, ..DeltaFuzzReport::default() };
    for i in 0..cfg.traces {
        let seed = cfg.seed.wrapping_add(i as u64);
        let trace = generate_trace(&TraceGenConfig {
            seed,
            mutations: cfg.mutations,
            events: cfg.events,
            users: cfg.users,
        });
        report.traces += 1;
        match run_trace(&trace, &cfg.referee, probe, extra) {
            Ok(r) => {
                report.steps += r.steps as u64;
                report.repairs += r.repairs;
                report.fallbacks += r.fallbacks;
                if r.min_omega_ratio < report.min_omega_ratio {
                    report.min_omega_ratio = r.min_omega_ratio;
                }
            }
            Err(failure) => {
                let kind = failure.kind;
                let referee = cfg.referee;
                let minimized = minimize_trace(&trace, &|cand| {
                    matches!(run_trace(cand, &referee, &usep_trace::NOOP, extra),
                             Err(f) if f.kind == kind)
                });
                report.findings.push(DeltaFuzzFinding { seed, failure, minimized });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::Mutation;
    use usep_trace::NOOP;

    #[test]
    fn seeded_traces_replay_cleanly() {
        for seed in 0..6 {
            let trace = generate_trace(&TraceGenConfig {
                seed,
                mutations: 25,
                events: 6,
                users: 8,
            });
            let report = run_trace(&trace, &RefereeConfig::default(), &NOOP, &no_extra)
                .unwrap_or_else(|f| panic!("seed {seed}: {f}"));
            assert_eq!(report.steps, 25);
            assert!(report.min_omega_ratio >= 0.5);
        }
    }

    #[test]
    fn external_check_failures_are_surfaced() {
        let trace =
            generate_trace(&TraceGenConfig { seed: 1, mutations: 5, events: 4, users: 5 });
        let fail_at_3 = |step: usize, _: &DeltaEngine| -> Option<String> {
            (step == 3).then(|| "synthetic".to_string())
        };
        let failure = run_trace(&trace, &RefereeConfig::default(), &NOOP, &fail_at_3).unwrap_err();
        assert_eq!(failure.step, 3);
        assert_eq!(failure.kind, FailureKind::External);
    }

    #[test]
    fn minimizer_shrinks_to_the_triggering_suffix() {
        let trace =
            generate_trace(&TraceGenConfig { seed: 2, mutations: 30, events: 5, users: 6 });
        // synthetic failure: any trace still containing a capacity change
        let fails = |cand: &MutationTrace| {
            cand.mutations.iter().any(|m| matches!(m, Mutation::CapacityChange { .. }))
        };
        assert!(fails(&trace), "seed 2 should roll at least one capacity change");
        let min = minimize_trace(&trace, &fails);
        assert_eq!(min.mutations.len(), 1, "exactly one mutation should survive");
        assert!(matches!(min.mutations[0], Mutation::CapacityChange { .. }));
    }

    #[test]
    fn fuzz_campaign_runs_clean_on_default_tolerances() {
        let cfg = DeltaFuzzConfig { traces: 8, seed: 100, mutations: 20, ..Default::default() };
        let report = run_delta_fuzz(&cfg, &NOOP, &no_extra);
        assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
        assert_eq!(report.steps, 8 * 20);
        assert!(report.repair_fraction() > 0.5);
    }
}
