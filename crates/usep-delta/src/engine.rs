//! The delta-solve engine: warm state + bounded repair + drift-gated
//! fallback.
//!
//! [`DeltaEngine`] keeps a live [`Instance`] (with its amended frozen
//! view), the current [`Planning`], stable↔dense id maps, and
//! per-assignment recency stamps. Each [`Mutation`] is applied in three
//! steps:
//!
//! 1. **Patch** — the instance is mutated through the `patch_*` methods
//!    of `usep-core` (strided memcpy + derived edges, never a full
//!    rebuild) and the planning's assignment vectors are remapped to
//!    the post-patch dense ids.
//! 2. **Release** — assignments the mutation invalidates are unassigned
//!    deterministically: cancelled events release every attendee,
//!    capacity shrinks evict in LIFO stamp order, departures release
//!    the departing user's schedule, μ-zeroing releases the one pair.
//!    All released utility accrues to the churn accumulator.
//! 3. **Repair or fallback** — if the drift metric (accumulated churn
//!    over `min(Ω_anchor, Ω_now)`, where the anchor is Ω at the last
//!    full resolve) stays below [`DeltaConfig::fallback_threshold`], a
//!    single RatioGreedy augmentation pass over the residual events
//!    re-fills freed capacity (bounded work: the pass only considers
//!    non-full events and only ever adds assignments), and whatever
//!    utility it recovers pays the churn back down. Otherwise the
//!    engine falls back to a cold RatioGreedy solve, resets the churn
//!    accumulator and re-anchors Ω.
//!
//! Because the repair pass is *augmentation-stable* (re-running it on a
//! planning it just produced adds nothing), applying a mutation and its
//! exact inverse under the repair path restores the planning
//! byte-for-byte — the metamorphic suites assert this.

use std::collections::HashMap;

use usep_algos::{augment_events_with_ratio_greedy, solve_with_probe, Algorithm};
use usep_core::{Cost, EventId, Instance, PatchError, Planning, Schedule, UserId};
use usep_trace::{Counter, Probe};

use crate::mutation::{MuEntry, Mutation};

/// Histogram key for the per-mutation touched-entity count (exposed by
/// `usep-serve`'s metrics plane as `usep_delta_touched_entities`).
pub const TOUCHED_HISTOGRAM: &str = "delta.touched";

/// Tuning knobs for the engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeltaConfig {
    /// Fall back to a full resolve when `churn / Ω_anchor` exceeds
    /// this. `0.0` forces a fallback on any churn; `f64::INFINITY`
    /// pins the engine to the repair path (the metamorphic tests use
    /// this to exercise pure repairs).
    pub fallback_threshold: f64,
}

impl Default for DeltaConfig {
    fn default() -> DeltaConfig {
        DeltaConfig { fallback_threshold: 0.3 }
    }
}

/// Why a mutation was rejected. Rejected mutations leave the engine
/// exactly as it was.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaError {
    /// No live event with this stable id.
    UnknownEvent(u32),
    /// No live user with this stable id.
    UnknownUser(u32),
    /// The underlying instance patch was refused.
    Patch(PatchError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownEvent(id) => write!(f, "unknown stable event id {id}"),
            DeltaError::UnknownUser(id) => write!(f, "unknown stable user id {id}"),
            DeltaError::Patch(e) => write!(f, "instance patch refused: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<PatchError> for DeltaError {
    fn from(e: PatchError) -> DeltaError {
        DeltaError::Patch(e)
    }
}

/// How one mutation was absorbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairKind {
    /// Bounded repair: patch + release + one augmentation pass.
    Repaired,
    /// Drift exceeded the threshold; a cold solve replaced the planning.
    Fallback,
}

/// Per-mutation report.
#[derive(Clone, Copy, Debug)]
pub struct MutationOutcome {
    /// Repair or fallback.
    pub kind: RepairKind,
    /// Entities (events + users) the mutation structurally touched,
    /// plus assignments released and added — the bounded-work measure
    /// recorded to the [`TOUCHED_HISTOGRAM`].
    pub touched: usize,
    /// Assignments released by the mutation.
    pub evicted: usize,
    /// Assignments added by the repair pass (0 on fallback).
    pub added: usize,
    /// Drift `churn / Ω_anchor` *before* the repair-or-fallback
    /// decision (the value the decision was made on).
    pub drift: f64,
    /// Ω after absorbing the mutation.
    pub omega: f64,
}

/// Running totals across the engine's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Mutations absorbed.
    pub mutations: u64,
    /// Mutations absorbed via bounded repair.
    pub repairs: u64,
    /// Mutations that triggered a full resolve.
    pub fallbacks: u64,
    /// Assignments released across all mutations.
    pub evicted: u64,
    /// Assignments added by repair passes.
    pub added: u64,
}

impl DeltaStats {
    /// Fraction of mutations absorbed without a full resolve.
    pub fn repair_fraction(&self) -> f64 {
        if self.mutations == 0 {
            1.0
        } else {
            self.repairs as f64 / self.mutations as f64
        }
    }
}

/// The warm-state delta-solve engine. See the module docs for the
/// repair pipeline.
#[derive(Debug)]
pub struct DeltaEngine {
    cfg: DeltaConfig,
    inst: Instance,
    planning: Planning,
    /// dense event index → stable id (mirrors `inst.events` ordering).
    event_stable: Vec<u32>,
    /// stable event id → dense index.
    event_dense: HashMap<u32, EventId>,
    user_stable: Vec<u32>,
    user_dense: HashMap<u32, UserId>,
    next_event_id: u32,
    next_user_id: u32,
    /// `(stable_user, stable_event) → recency stamp`; higher = more
    /// recently assigned. Drives LIFO eviction on capacity shrink.
    stamps: HashMap<(u32, u32), u64>,
    seq: u64,
    /// Utility released and not yet recovered by repair passes since
    /// the last full resolve.
    churned: f64,
    /// Ω at the last full resolve — the drift denominator.
    omega_anchor: f64,
    stats: DeltaStats,
}

impl DeltaEngine {
    /// Builds warm state around `inst`: solves it cold with RatioGreedy
    /// and stamps the resulting assignments. Initial entities get
    /// stable ids `0..n` in dense order.
    pub fn new(inst: Instance, cfg: DeltaConfig, probe: &dyn Probe) -> DeltaEngine {
        let planning = solve_with_probe(Algorithm::RatioGreedy, &inst, probe);
        let nv = inst.num_events();
        let nu = inst.num_users();
        let mut engine = DeltaEngine {
            cfg,
            inst,
            planning,
            event_stable: (0..nv as u32).collect(),
            event_dense: (0..nv as u32).map(|i| (i, EventId(i))).collect(),
            user_stable: (0..nu as u32).collect(),
            user_dense: (0..nu as u32).map(|i| (i, UserId(i))).collect(),
            next_event_id: nv as u32,
            next_user_id: nu as u32,
            stamps: HashMap::new(),
            seq: 0,
            churned: 0.0,
            omega_anchor: 0.0,
            stats: DeltaStats::default(),
        };
        engine.restamp();
        engine.omega_anchor = engine.planning.omega(&engine.inst);
        engine
    }

    /// The live instance.
    pub fn instance(&self) -> &Instance {
        &self.inst
    }

    /// The current planning.
    pub fn planning(&self) -> &Planning {
        &self.planning
    }

    /// Current Ω.
    pub fn omega(&self) -> f64 {
        self.planning.omega(&self.inst)
    }

    /// Lifetime totals.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Current drift: accumulated surviving-user churn over
    /// `min(Ω_anchor, Ω_now)`. The `min` keeps the denominator honest
    /// when mutations shrink the instance — churn that looked small
    /// against the Ω of a richer past instance can dominate the Ω
    /// actually attainable now, and that is exactly when a full
    /// resolve pays for itself.
    pub fn drift(&self) -> f64 {
        if self.churned <= 0.0 {
            return 0.0;
        }
        let denom = self.omega_anchor.min(self.planning.omega(&self.inst));
        self.churned / denom.max(f64::MIN_POSITIVE)
    }

    /// Stable ids of live events, in dense order.
    pub fn live_events(&self) -> &[u32] {
        &self.event_stable
    }

    /// Stable ids of live users, in dense order.
    pub fn live_users(&self) -> &[u32] {
        &self.user_stable
    }

    /// Dense index of a stable event id.
    pub fn dense_event(&self, stable: u32) -> Result<EventId, DeltaError> {
        self.event_dense.get(&stable).copied().ok_or(DeltaError::UnknownEvent(stable))
    }

    /// Dense index of a stable user id.
    pub fn dense_user(&self, stable: u32) -> Result<UserId, DeltaError> {
        self.user_dense.get(&stable).copied().ok_or(DeltaError::UnknownUser(stable))
    }

    /// Absorbs one mutation: patch, release, then repair or fall back.
    pub fn apply(&mut self, m: &Mutation, probe: &dyn Probe) -> Result<MutationOutcome, DeltaError> {
        // Validate up front so a refused mutation leaves no partial
        // state behind (the release step below mutates the planning
        // before the patch runs).
        self.precheck(m)?;

        probe.count(Counter::DeltaMutation, 1);
        self.stats.mutations += 1;
        let touched;
        let mut evicted = 0usize;

        match m {
            Mutation::EventAdd { capacity, location, time, fee, mu } => {
                let col = self.dense_mu_col(mu)?;
                let v = self.inst.patch_add_event(*capacity, *location, *time, *fee, &col)?;
                let stable = self.next_event_id;
                self.next_event_id += 1;
                self.event_stable.push(stable);
                self.event_dense.insert(stable, v);
                // re-key the planning so its load vector covers the new event
                self.planning =
                    Planning::from_schedules(&self.inst, self.planning.schedules().to_vec());
                touched = 1;
            }
            Mutation::EventRemove { event } => {
                let v = self.dense_event(*event)?;
                evicted += self.release_attendees(v, 0, probe);
                let moved = self.inst.patch_remove_event(v)?;
                self.event_dense.remove(event);
                self.event_stable.swap_remove(v.index());
                let mut schedules = self.planning.schedules().to_vec();
                if let Some(old_dense) = moved {
                    // the old tail event moved into v's dense slot
                    let moved_stable = self.event_stable[v.index()];
                    self.event_dense.insert(moved_stable, v);
                    for s in &mut schedules {
                        if s.contains(old_dense) {
                            let remapped = s
                                .events()
                                .iter()
                                .map(|&e| if e == old_dense { v } else { e })
                                .collect();
                            *s = Schedule::from_events_unchecked(remapped);
                        }
                    }
                }
                self.planning = Planning::from_schedules(&self.inst, schedules);
                touched = 1 + evicted;
            }
            Mutation::CapacityChange { event, capacity } => {
                let v = self.dense_event(*event)?;
                evicted += self.release_attendees(v, *capacity, probe);
                self.inst.patch_set_capacity(v, *capacity)?;
                touched = 1 + evicted;
            }
            Mutation::UserArrive { location, budget, mu } => {
                let row = self.dense_mu_row(mu)?;
                let u = self.inst.patch_add_user(*location, Cost::new(*budget), &row)?;
                let stable = self.next_user_id;
                self.next_user_id += 1;
                self.user_stable.push(stable);
                self.user_dense.insert(stable, u);
                let mut schedules = self.planning.schedules().to_vec();
                schedules.push(Schedule::new());
                self.planning = Planning::from_schedules(&self.inst, schedules);
                // displacement potential: utility this arrival could
                // only unlock by swapping out a weaker incumbent of a
                // full event — a move the augmentation pass never
                // makes, so it must count toward drift or the engine
                // would sail blindly past a cold solve that reseats
                self.churned += self.displacement_potential(u);
                touched = 1;
            }
            Mutation::UserDepart { user } => {
                let u = self.dense_user(*user)?;
                // release their assignments; the freed capacity may be
                // reallocatable to other users, so this counts as churn
                // like any other release (the repair pass pays it back
                // down by whatever utility it recovers)
                let events: Vec<EventId> = self.planning.schedule(u).events().to_vec();
                for v in &events {
                    let mu = self.inst.mu(*v, u);
                    self.planning.unassign(u, *v);
                    self.note_release(u, *v, mu, probe);
                    evicted += 1;
                }
                let moved = self.inst.patch_remove_user(u)?;
                self.user_dense.remove(user);
                self.user_stable.swap_remove(u.index());
                if moved.is_some() {
                    self.user_dense.insert(self.user_stable[u.index()], u);
                }
                let mut schedules = self.planning.schedules().to_vec();
                schedules.swap_remove(u.index());
                self.planning = Planning::from_schedules(&self.inst, schedules);
                touched = 1 + evicted;
            }
            Mutation::MuUpdate { event, user, mu } => {
                let v = self.dense_event(*event)?;
                let u = self.dense_user(*user)?;
                let old = self.inst.mu(v, u);
                let new = f64::from(*mu);
                let was_assigned = self.planning.schedule(u).contains(v);
                if was_assigned && *mu <= 0.0 {
                    self.planning.unassign(u, v);
                    self.note_release(u, v, old, probe);
                    evicted = 1;
                }
                self.inst.patch_set_mu(v, u, new)?;
                if was_assigned && *mu > 0.0 && new < old {
                    // devaluation: the pair keeps its seat but the seat
                    // is now worth less — a reseating might hand it to
                    // a stronger candidate, so the lost value counts
                    // toward drift
                    self.churned += old - new;
                } else if !was_assigned
                    && new > old
                    && !self.planning.can_assign(&self.inst, u, v)
                {
                    // raising μ of an unassigned pair that an existing
                    // assignment blocks (capacity, conflict or budget):
                    // only a reseating realizes the gain, so the
                    // blocked share counts toward drift
                    self.churned += self.reseat_gain(u, v, new);
                }
                touched = 1 + evicted;
            }
        }

        let drift = self.drift();
        let outcome = if drift > self.cfg.fallback_threshold {
            self.full_resolve(probe);
            self.stats.evicted += evicted as u64;
            MutationOutcome {
                kind: RepairKind::Fallback,
                touched,
                evicted,
                added: 0,
                drift,
                omega: self.planning.omega(&self.inst),
            }
        } else {
            let (added, recovered) = self.augment_residual(probe);
            // recovered utility pays accumulated churn back down: churn
            // only persists when repairs fail to re-place what was
            // released, which is exactly when a full resolve will pay
            // for itself
            self.churned = (self.churned - recovered).max(0.0);
            self.stats.repairs += 1;
            self.stats.evicted += evicted as u64;
            self.stats.added += added as u64;
            probe.count(Counter::DeltaRepair, 1);
            MutationOutcome {
                kind: RepairKind::Repaired,
                touched: touched + added,
                evicted,
                added,
                drift,
                omega: self.planning.omega(&self.inst),
            }
        };
        probe.record(TOUCHED_HISTOGRAM, outcome.touched as f64);
        Ok(outcome)
    }

    /// Rejects a mutation before any state changes. Mirrors the checks
    /// the patch layer performs, plus stable-id resolution.
    fn precheck(&self, m: &Mutation) -> Result<(), DeltaError> {
        let check_entries_users = |entries: &[MuEntry]| -> Result<(), DeltaError> {
            for e in entries {
                self.dense_user(e.id)?;
                if !e.mu.is_finite() || !(0.0..=1.0).contains(&e.mu) {
                    return Err(PatchError::BadUtility(f64::from(e.mu)).into());
                }
            }
            Ok(())
        };
        let grid_only = || -> Result<(), DeltaError> {
            match self.inst.travel() {
                usep_core::TravelCost::Grid { .. } => Ok(()),
                usep_core::TravelCost::Explicit { .. } => Err(PatchError::ExplicitTravel.into()),
            }
        };
        match m {
            Mutation::EventAdd { capacity, fee, mu, .. } => {
                grid_only()?;
                if *capacity == 0 {
                    return Err(PatchError::ZeroCapacity.into());
                }
                if *fee == u32::MAX {
                    return Err(PatchError::InfiniteFee.into());
                }
                check_entries_users(mu)
            }
            Mutation::EventRemove { event } => {
                grid_only()?;
                self.dense_event(*event).map(|_| ())
            }
            Mutation::CapacityChange { event, capacity } => {
                self.dense_event(*event)?;
                if *capacity == 0 {
                    return Err(PatchError::ZeroCapacity.into());
                }
                Ok(())
            }
            Mutation::UserArrive { budget, mu, .. } => {
                grid_only()?;
                if *budget == u32::MAX {
                    return Err(PatchError::InfiniteBudget.into());
                }
                for e in mu {
                    self.dense_event(e.id)?;
                    if !e.mu.is_finite() || !(0.0..=1.0).contains(&e.mu) {
                        return Err(PatchError::BadUtility(f64::from(e.mu)).into());
                    }
                }
                Ok(())
            }
            Mutation::UserDepart { user } => {
                grid_only()?;
                self.dense_user(*user).map(|_| ())
            }
            Mutation::MuUpdate { event, user, mu } => {
                self.dense_event(*event)?;
                self.dense_user(*user)?;
                if !mu.is_finite() || !(0.0..=1.0).contains(mu) {
                    return Err(PatchError::BadUtility(f64::from(*mu)).into());
                }
                Ok(())
            }
        }
    }

    /// Sparse stable-id entries → dense μ column (one entry per user).
    fn dense_mu_col(&self, entries: &[MuEntry]) -> Result<Vec<f32>, DeltaError> {
        let mut col = vec![0.0f32; self.inst.num_users()];
        for e in entries {
            col[self.dense_user(e.id)?.index()] = e.mu;
        }
        Ok(col)
    }

    /// Sparse stable-id entries → dense μ row (one entry per event).
    fn dense_mu_row(&self, entries: &[MuEntry]) -> Result<Vec<f32>, DeltaError> {
        let mut row = vec![0.0f32; self.inst.num_events()];
        for e in entries {
            row[self.dense_event(e.id)?.index()] = e.mu;
        }
        Ok(row)
    }

    /// μ of event `v`'s weakest current attendee (∞ when empty).
    fn weakest_incumbent_mu(&self, v: EventId) -> f64 {
        let mut weakest = f64::INFINITY;
        for ui in 0..self.inst.num_users() {
            let u = UserId(ui as u32);
            if self.planning.schedule(u).contains(v) {
                let m = self.inst.mu(v, u);
                if m < weakest {
                    weakest = m;
                }
            }
        }
        weakest
    }

    /// Estimated utility a reseating could net from placing the
    /// currently blocked pair `(v, u)` worth `new`: the gain over the
    /// weakest incumbent when `v` is full, the gain over the best
    /// conflicting assignment in `u`'s schedule otherwise, and the
    /// full value when only budget blocks (a cold solve may drop
    /// cheaper events to afford it).
    fn reseat_gain(&self, u: UserId, v: EventId, new: f64) -> f64 {
        if self.planning.remaining_capacity(&self.inst, v) == 0 {
            let weakest = self.weakest_incumbent_mu(v);
            if weakest.is_finite() {
                return (new - weakest).max(0.0);
            }
        }
        let mut best_conflict = 0.0f64;
        for &w in self.planning.schedule(u).events() {
            if !self.inst.compatible(w, v) {
                best_conflict = best_conflict.max(self.inst.mu(w, u));
            }
        }
        if best_conflict > 0.0 {
            (new - best_conflict).max(0.0)
        } else {
            new
        }
    }

    /// Utility user `u` could add at **full** events by displacing the
    /// weakest incumbent — value only a reseating (full resolve) can
    /// realize, since the repair pass never removes assignments.
    fn displacement_potential(&self, u: UserId) -> f64 {
        // one pass to find each event's weakest incumbent
        let nv = self.inst.num_events();
        let mut min_mu = vec![f64::INFINITY; nv];
        for ui in 0..self.inst.num_users() {
            let attendee = UserId(ui as u32);
            for &v in self.planning.schedule(attendee).events() {
                let m = self.inst.mu(v, attendee);
                if m < min_mu[v.index()] {
                    min_mu[v.index()] = m;
                }
            }
        }
        let mut missed = 0.0;
        for v in self.inst.event_ids() {
            if self.planning.remaining_capacity(&self.inst, v) > 0 {
                continue; // the augmentation pass can reach this one
            }
            let mu_new = self.inst.mu(v, u);
            if mu_new > min_mu[v.index()] {
                missed += mu_new - min_mu[v.index()];
            }
        }
        missed
    }

    /// Unassigns attendees of `v` down to `keep` in LIFO stamp order
    /// (most recently assigned leave first). Returns the release count.
    fn release_attendees(&mut self, v: EventId, keep: u32, probe: &dyn Probe) -> usize {
        let load = self.planning.load(v);
        if load <= keep {
            return 0;
        }
        let sv = self.event_stable[v.index()];
        let mut attendees: Vec<(u64, UserId)> = Vec::new();
        for ui in 0..self.inst.num_users() {
            let u = UserId(ui as u32);
            if self.planning.schedule(u).contains(v) {
                let stamp = self.stamps.get(&(self.user_stable[ui], sv)).copied().unwrap_or(0);
                attendees.push((stamp, u));
            }
        }
        // newest stamps first; dense index breaks (impossible) ties
        attendees.sort_by(|a, b| b.cmp(a));
        let excess = (load - keep) as usize;
        for &(_, u) in attendees.iter().take(excess) {
            let mu = self.inst.mu(v, u);
            self.planning.unassign(u, v);
            self.note_release(u, v, mu, probe);
        }
        excess
    }

    /// Books the release of one assignment: churn accrues, the stamp
    /// is dropped, the eviction is counted.
    fn note_release(&mut self, u: UserId, v: EventId, mu: f64, probe: &dyn Probe) {
        self.churned += mu;
        self.stamps.remove(&(self.user_stable[u.index()], self.event_stable[v.index()]));
        probe.count(Counter::DeltaEvict, 1);
    }

    /// One RatioGreedy augmentation pass over every event with residual
    /// capacity, stamping whatever it adds. Returns the number of
    /// assignments added and the utility they recovered.
    fn augment_residual(&mut self, probe: &dyn Probe) -> (usize, f64) {
        let residual: Vec<EventId> = self
            .inst
            .event_ids()
            .filter(|&v| self.planning.remaining_capacity(&self.inst, v) > 0)
            .collect();
        if residual.is_empty() {
            return (0, 0.0);
        }
        let before = self.planning.clone();
        let omega_before = before.omega(&self.inst);
        let added = augment_events_with_ratio_greedy(&self.inst, &mut self.planning, &residual, probe);
        if added > 0 {
            for ui in 0..self.inst.num_users() {
                let u = UserId(ui as u32);
                let old = before.schedule(u).events();
                let new = self.planning.schedule(u).events();
                if new.len() == old.len() {
                    continue;
                }
                for &v in new {
                    if !old.contains(&v) {
                        self.seq += 1;
                        self.stamps.insert(
                            (self.user_stable[ui], self.event_stable[v.index()]),
                            self.seq,
                        );
                    }
                }
            }
        }
        let recovered = (self.planning.omega(&self.inst) - omega_before).max(0.0);
        (added, recovered)
    }

    /// Cold RatioGreedy solve over the live instance: replaces the
    /// planning, re-stamps every assignment, resets churn and
    /// re-anchors Ω.
    fn full_resolve(&mut self, probe: &dyn Probe) {
        probe.count(Counter::DeltaFallback, 1);
        self.stats.fallbacks += 1;
        self.planning = solve_with_probe(Algorithm::RatioGreedy, &self.inst, probe);
        self.restamp();
        self.churned = 0.0;
        self.omega_anchor = self.planning.omega(&self.inst);
    }

    /// Rebuilds the stamp table in the planning's canonical assignment
    /// order (user-major, schedule time order) — the deterministic
    /// baseline every replica converges to after a full resolve.
    fn restamp(&mut self) {
        self.stamps.clear();
        self.seq = 0;
        let pairs: Vec<(UserId, EventId)> = self.planning.assignments().collect();
        for (u, v) in pairs {
            self.seq += 1;
            self.stamps
                .insert((self.user_stable[u.index()], self.event_stable[v.index()]), self.seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_core::{InstanceBuilder, Point, TimeInterval};
    use usep_trace::NOOP;

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    fn fixture() -> Instance {
        let mut b = InstanceBuilder::new();
        b.event(2, Point::new(0, 0), iv(0, 10));
        b.event(1, Point::new(6, 0), iv(15, 25));
        b.event(2, Point::new(3, 3), iv(30, 40));
        let u0 = b.user(Point::new(1, 1), Cost::new(100));
        let u1 = b.user(Point::new(5, 1), Cost::new(100));
        for v in 0..3u32 {
            b.utility(EventId(v), u0, 0.4 + 0.1 * f64::from(v));
            b.utility(EventId(v), u1, 0.9 - 0.2 * f64::from(v));
        }
        b.build().unwrap()
    }

    fn engine() -> DeltaEngine {
        DeltaEngine::new(fixture(), DeltaConfig::default(), &NOOP)
    }

    #[test]
    fn warm_start_matches_the_cold_solver() {
        let inst = fixture();
        let cold = usep_algos::solve(Algorithm::RatioGreedy, &inst);
        let e = DeltaEngine::new(inst, DeltaConfig::default(), &NOOP);
        assert_eq!(*e.planning(), cold);
        assert!(e.planning().validate(e.instance()).is_ok());
        assert_eq!(e.drift(), 0.0);
    }

    #[test]
    fn event_add_is_repaired_by_augmentation() {
        let mut e = engine();
        let before = e.omega();
        let out = e
            .apply(
                &Mutation::EventAdd {
                    capacity: 2,
                    location: Point::new(2, 2),
                    time: iv(50, 60),
                    fee: 0,
                    mu: vec![MuEntry { id: 0, mu: 0.8 }, MuEntry { id: 1, mu: 0.7 }],
                },
                &NOOP,
            )
            .unwrap();
        assert_eq!(out.kind, RepairKind::Repaired);
        assert!(out.added >= 1, "a pure addition should only grow the planning");
        assert!(e.omega() > before);
        assert!(e.planning().validate(e.instance()).is_ok());
    }

    #[test]
    fn event_remove_releases_attendees_and_remaps_dense_ids() {
        let mut e = engine();
        e.apply(&Mutation::EventRemove { event: 0 }, &NOOP).unwrap();
        assert_eq!(e.instance().num_events(), 2);
        // stable ids 1 and 2 still resolve, 0 does not
        assert!(e.dense_event(1).is_ok());
        assert!(e.dense_event(2).is_ok());
        assert_eq!(e.dense_event(0), Err(DeltaError::UnknownEvent(0)));
        assert!(e.planning().validate(e.instance()).is_ok());
    }

    #[test]
    fn capacity_shrink_evicts_lifo_and_stays_valid() {
        let mut e = engine();
        // event stable 0 has capacity 2; shrink to 1
        let out =
            e.apply(&Mutation::CapacityChange { event: 0, capacity: 1 }, &NOOP).unwrap();
        let v = e.dense_event(0).unwrap();
        assert!(e.planning().load(v) <= 1);
        assert!(out.evicted <= 1);
        assert!(e.planning().validate(e.instance()).is_ok());
    }

    #[test]
    fn mu_zeroing_releases_an_assigned_pair() {
        let mut e = engine();
        let v = e.dense_event(1).unwrap();
        // find an assigned attendee of stable event 1, if any
        let attendee = (0..e.instance().num_users())
            .map(|i| UserId(i as u32))
            .find(|&u| e.planning().schedule(u).contains(v));
        if let Some(u) = attendee {
            let su = e.live_users()[u.index()];
            let out = e.apply(&Mutation::MuUpdate { event: 1, user: su, mu: 0.0 }, &NOOP).unwrap();
            assert_eq!(out.evicted, 1);
        }
        assert!(e.planning().validate(e.instance()).is_ok());
    }

    #[test]
    fn user_departure_releases_their_schedule() {
        let mut e = engine();
        let u = e.dense_user(1).unwrap();
        let had = e.planning().schedule(u).len();
        let out = e.apply(&Mutation::UserDepart { user: 1 }, &NOOP).unwrap();
        assert_eq!(out.evicted, had, "every assignment of the departing user is released");
        assert_eq!(e.instance().num_users(), 1);
        assert!(e.dense_user(0).is_ok());
        assert_eq!(e.dense_user(1), Err(DeltaError::UnknownUser(1)));
        assert!(e.planning().validate(e.instance()).is_ok());
    }

    #[test]
    fn zero_threshold_forces_fallback_on_churn() {
        let inst = fixture();
        let mut e = DeltaEngine::new(inst, DeltaConfig { fallback_threshold: 0.0 }, &NOOP);
        // removing an event with attendees churns > 0 → fallback
        let out = e.apply(&Mutation::EventRemove { event: 0 }, &NOOP).unwrap();
        if out.evicted > 0 {
            assert_eq!(out.kind, RepairKind::Fallback);
            assert_eq!(e.stats().fallbacks, 1);
        }
        // post-fallback the planning equals a cold solve of the live instance
        let cold = usep_algos::solve(Algorithm::RatioGreedy, e.instance());
        assert_eq!(*e.planning(), cold);
    }

    #[test]
    fn rejected_mutations_leave_the_engine_untouched() {
        let mut e = engine();
        let planning = e.planning().clone();
        let stats = e.stats();
        assert_eq!(
            e.apply(&Mutation::EventRemove { event: 99 }, &NOOP).unwrap_err(),
            DeltaError::UnknownEvent(99)
        );
        assert_eq!(
            e.apply(&Mutation::CapacityChange { event: 0, capacity: 0 }, &NOOP).unwrap_err(),
            DeltaError::Patch(PatchError::ZeroCapacity)
        );
        assert_eq!(
            e.apply(
                &Mutation::MuUpdate { event: 0, user: 0, mu: 1.5 },
                &NOOP
            )
            .unwrap_err(),
            DeltaError::Patch(PatchError::BadUtility(1.5))
        );
        assert_eq!(
            e.apply(
                &Mutation::EventAdd {
                    capacity: 1,
                    location: Point::ORIGIN,
                    time: iv(0, 1),
                    fee: 0,
                    mu: vec![MuEntry { id: 77, mu: 0.5 }],
                },
                &NOOP
            )
            .unwrap_err(),
            DeltaError::UnknownUser(77)
        );
        assert_eq!(*e.planning(), planning);
        assert_eq!(e.stats(), stats);
    }

    #[test]
    fn stable_ids_survive_interleaved_structural_churn() {
        let mut e = engine();
        e.apply(&Mutation::EventRemove { event: 1 }, &NOOP).unwrap();
        e.apply(
            &Mutation::EventAdd {
                capacity: 1,
                location: Point::new(9, 9),
                time: iv(70, 80),
                fee: 2,
                mu: vec![MuEntry { id: 0, mu: 0.6 }],
            },
            &NOOP,
        )
        .unwrap();
        // the new event got a fresh stable id (3), id 1 stays dead
        assert!(e.dense_event(3).is_ok());
        assert_eq!(e.dense_event(1), Err(DeltaError::UnknownEvent(1)));
        e.apply(&Mutation::UserArrive {
            location: Point::new(4, 4),
            budget: 60,
            mu: vec![MuEntry { id: 3, mu: 0.9 }, MuEntry { id: 2, mu: 0.3 }],
        }, &NOOP)
        .unwrap();
        assert!(e.dense_user(2).is_ok());
        assert!(e.planning().validate(e.instance()).is_ok());
        // μ landed on the right dense cells
        let v3 = e.dense_event(3).unwrap();
        let u2 = e.dense_user(2).unwrap();
        assert!((e.instance().mu(v3, u2) - 0.9).abs() < 1e-6);
    }
}
