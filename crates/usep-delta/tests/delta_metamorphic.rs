//! Metamorphic and determinism properties of the delta engine.
//!
//! The engine's repair pass is augmentation-stable: running it on a
//! planning it just produced adds nothing. Combined with the patch
//! layer's exact-inverse structural patches (append-at-tail /
//! swap-remove) this gives a strong metamorphic identity: applying a
//! mutation and its inverse on the repair path restores the *entire*
//! warm state — instance bytes and planning bytes — to what it was.
//! These tests pin that identity, plus bit-for-bit determinism of the
//! repair path across worker-pool sizes.

use usep_core::{Point, TimeInterval};
use usep_delta::{
    generate_trace, run_trace, no_extra, DeltaConfig, DeltaEngine, MuEntry, Mutation,
    RefereeConfig, RepairKind, TraceGenConfig,
};
use usep_trace::NOOP;

/// Repair-path-only engine: fallback disabled so every mutation takes
/// the bounded-repair route the metamorphic identity relies on.
fn repair_only(seed: u64) -> DeltaEngine {
    let trace = generate_trace(&TraceGenConfig { seed, mutations: 0, events: 7, users: 10 });
    DeltaEngine::new(trace.instance, DeltaConfig { fallback_threshold: f64::INFINITY }, &NOOP)
}

fn iv(a: i64, b: i64) -> TimeInterval {
    TimeInterval::new(a, b).unwrap()
}

#[test]
fn event_add_then_remove_restores_instance_and_planning() {
    for seed in 0..12u64 {
        let mut e = repair_only(seed);
        let inst_before = e.instance().clone();
        let planning_before = e.planning().clone();

        let mu: Vec<MuEntry> =
            e.live_users().iter().map(|&u| MuEntry { id: u, mu: 0.6 }).collect();
        let add = Mutation::EventAdd {
            capacity: 2,
            location: Point::new(3, 4),
            time: iv(200, 210), // conflict-free slot: pure augmentation
            fee: 0,
            mu,
        };
        let out = e.apply(&add, &NOOP).unwrap();
        assert_eq!(out.kind, RepairKind::Repaired, "seed {seed}");
        let new_stable = *e.live_events().last().unwrap();

        let out = e.apply(&Mutation::EventRemove { event: new_stable }, &NOOP).unwrap();
        assert_eq!(out.kind, RepairKind::Repaired, "seed {seed}");

        assert_eq!(*e.instance(), inst_before, "seed {seed}: instance not restored");
        assert_eq!(*e.planning(), planning_before, "seed {seed}: planning not restored");
        assert!(e.planning().validate(e.instance()).is_ok());
    }
}

#[test]
fn capacity_up_then_down_restores_planning() {
    for seed in 20..32u64 {
        let mut e = repair_only(seed);
        let stable = e.live_events()[0];
        let v = e.dense_event(stable).unwrap();
        let original = e.instance().event(v).capacity;

        let inst_before = e.instance().clone();
        let planning_before = e.planning().clone();

        e.apply(&Mutation::CapacityChange { event: stable, capacity: original + 3 }, &NOOP)
            .unwrap();
        e.apply(&Mutation::CapacityChange { event: stable, capacity: original }, &NOOP).unwrap();

        assert_eq!(*e.instance(), inst_before, "seed {seed}: instance not restored");
        // LIFO eviction removes exactly the assignments the up-repair
        // added; augmentation-stability means nothing else moves
        assert_eq!(*e.planning(), planning_before, "seed {seed}: planning not restored");
        assert!(e.planning().validate(e.instance()).is_ok());
    }
}

#[test]
fn user_arrive_then_depart_restores_instance_and_planning() {
    for seed in 40..48u64 {
        let mut e = repair_only(seed);
        let inst_before = e.instance().clone();
        let planning_before = e.planning().clone();

        let mu: Vec<MuEntry> =
            e.live_events().iter().map(|&v| MuEntry { id: v, mu: 0.5 }).collect();
        e.apply(&Mutation::UserArrive { location: Point::new(2, 2), budget: 90, mu }, &NOOP)
            .unwrap();
        let new_stable = *e.live_users().last().unwrap();
        e.apply(&Mutation::UserDepart { user: new_stable }, &NOOP).unwrap();

        assert_eq!(*e.instance(), inst_before, "seed {seed}: instance not restored");
        assert_eq!(*e.planning(), planning_before, "seed {seed}: planning not restored");
    }
}

#[test]
fn mu_zero_then_restore_keeps_planning_valid_and_omega_monotone() {
    // μ-zeroing is NOT an exact inverse pair: the repair pass may hand
    // the freed slot to a different pair, and greedy repairs don't undo
    // themselves — that irrecoverable churn is exactly what the drift
    // metric accumulates. The metamorphic property is therefore
    // weaker: validity after both steps, and Ω monotone from the
    // post-zeroing state once μ is restored (the restore touches an
    // unassigned cell, and the repair pass only ever adds).
    for seed in 60..66u64 {
        let mut e = repair_only(seed);
        // find an assigned pair
        let pair = e.live_users().iter().copied().find_map(|su| {
            let u = e.dense_user(su).unwrap();
            let events = e.planning().schedule(u).events();
            events.first().map(|&v| (su, e.live_events()[v.index()]))
        });
        let Some((su, sv)) = pair else { continue };
        let v = e.dense_event(sv).unwrap();
        let u = e.dense_user(su).unwrap();
        let old_mu = e.instance().mu(v, u);

        let out = e.apply(&Mutation::MuUpdate { event: sv, user: su, mu: 0.0 }, &NOOP).unwrap();
        assert_eq!(out.evicted, 1, "seed {seed}: the assigned pair must be released");
        assert!(e.planning().validate(e.instance()).is_ok(), "seed {seed}");
        assert!(!e.planning().schedule(u).contains(v), "seed {seed}: pair still assigned");
        assert!(e.drift() > 0.0, "seed {seed}: surviving-user eviction must accrue churn");
        let omega_after_zero = e.omega();

        e.apply(&Mutation::MuUpdate { event: sv, user: su, mu: old_mu as f32 }, &NOOP).unwrap();
        assert!(e.planning().validate(e.instance()).is_ok(), "seed {seed}");
        assert!(
            e.omega() + 1e-9 >= omega_after_zero,
            "seed {seed}: Ω regressed after restore {} -> {}",
            omega_after_zero,
            e.omega()
        );
    }
}

#[test]
fn repair_path_is_deterministic_across_thread_counts() {
    // The repair pass and the fallback solver both run on the
    // deterministic fork-join pool; replaying the same trace under 1
    // and 4 workers must produce byte-identical plannings.
    let trace = generate_trace(&TraceGenConfig { seed: 7, mutations: 35, events: 8, users: 12 });

    let run = |threads: usize| {
        usep_par::set_threads(threads);
        let mut e = DeltaEngine::new(trace.instance.clone(), DeltaConfig::default(), &NOOP);
        let mut outcomes = Vec::new();
        for m in &trace.mutations {
            let out = e.apply(m, &NOOP).unwrap();
            outcomes.push((out.kind, out.evicted, out.added));
        }
        usep_par::set_threads(0);
        (e.planning().clone(), e.instance().clone(), e.stats(), outcomes)
    };

    let (p1, i1, s1, o1) = run(1);
    let (p4, i4, s4, o4) = run(4);
    assert_eq!(i1, i4, "instances diverged across thread counts");
    assert_eq!(p1, p4, "plannings diverged across thread counts");
    assert_eq!(s1, s4, "stats diverged across thread counts");
    assert_eq!(o1, o4, "per-mutation outcomes diverged across thread counts");
}

#[test]
fn full_replay_is_deterministic_run_to_run() {
    let trace = generate_trace(&TraceGenConfig { seed: 9, mutations: 30, events: 6, users: 9 });
    let cfg = RefereeConfig::default();
    let a = run_trace(&trace, &cfg, &NOOP, &no_extra).unwrap();
    let b = run_trace(&trace, &cfg, &NOOP, &no_extra).unwrap();
    assert_eq!(a.final_omega.to_bits(), b.final_omega.to_bits());
    assert_eq!(a.repairs, b.repairs);
    assert_eq!(a.fallbacks, b.fallbacks);
}

#[test]
fn serialized_traces_replay_identically() {
    let trace = generate_trace(&TraceGenConfig { seed: 11, mutations: 20, events: 5, users: 7 });
    let json = serde_json::to_string(&trace).unwrap();
    let back: usep_delta::MutationTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(back.mutations, trace.mutations);
    let cfg = RefereeConfig::default();
    let a = run_trace(&trace, &cfg, &NOOP, &no_extra).unwrap();
    let b = run_trace(&back, &cfg, &NOOP, &no_extra).unwrap();
    assert_eq!(a.final_omega.to_bits(), b.final_omega.to_bits());
}
