//! Pull-based metrics registry with Prometheus text exposition.
//!
//! Metrics are registered once at service start as *closures* over the
//! live data structures (atomic cells, the trace sink, the admission
//! ledger); a scrape walks the registry and samples every closure, so
//! there is no push path to instrument and no background thread to
//! keep fresh. Rendering follows the Prometheus text format, version
//! 0.0.4: one `# HELP` / `# TYPE` pair per family, `_total`-suffixed
//! counters, and log₂ histograms re-exported as cumulative
//! `_bucket{le="..."}` ladders plus `_sum` / `_count`.

use std::sync::Arc;
use std::sync::Mutex;

use usep_trace::Histogram;

/// What a metric is, for the `# TYPE` line and rendering rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing count. Family names should end in
    /// `_total` by convention; the registry enforces it.
    Counter,
    /// Point-in-time value that may go up or down.
    Gauge,
    /// Log₂-bucketed distribution, rendered as a cumulative ladder.
    Histogram,
}

/// One sampled value, produced by a metric's source closure.
pub enum Sample {
    /// Counter or gauge value.
    Value(f64),
    /// Histogram snapshot (cloned out of the live sink).
    Hist(Histogram),
}

type Source = Box<dyn Fn() -> Sample + Send + Sync>;

struct Metric {
    name: String,
    help: String,
    kind: MetricKind,
    labels: Vec<(&'static str, String)>,
    source: Source,
}

/// The registry: a flat, insertion-ordered list of metric series.
///
/// Multiple series may share a family name (same name, different
/// labels); `render` groups them so HELP/TYPE appear once per family.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Vec<Metric>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == ':')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

/// Renders a value the way Prometheus expects: integers bare, floats
/// via shortest-roundtrip `Display`.
fn format_value(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf".to_string() } else { "-Inf".to_string() }
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers one series. Panics on malformed names, on counters not
    /// ending in `_total`, and on exact (name, labels) duplicates —
    /// registration happens once at service start, so misuse is a
    /// programming error worth failing loudly on.
    pub fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: Vec<(&'static str, String)>,
        source: Source,
    ) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        assert!(
            kind != MetricKind::Counter || name.ends_with("_total"),
            "counter {name:?} must end in _total"
        );
        let mut metrics = self.metrics.lock().unwrap_or_else(|p| p.into_inner());
        assert!(
            !metrics.iter().any(|m| m.name == name && m.labels == labels),
            "duplicate series {name:?} {labels:?}"
        );
        if let Some(prior) = metrics.iter().find(|m| m.name == name) {
            assert!(prior.kind == kind, "family {name:?} registered with two kinds");
        }
        metrics.push(Metric { name: name.to_string(), help: help.to_string(), kind, labels, source });
    }

    /// Registers a counter backed by an atomic cell and returns the
    /// cell; the serve layer increments it on the hot path.
    pub fn counter_cell(
        &self,
        name: &str,
        help: &str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<std::sync::atomic::AtomicU64> {
        let cell = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let read = cell.clone();
        self.register(
            name,
            help,
            MetricKind::Counter,
            labels,
            Box::new(move || Sample::Value(read.load(std::sync::atomic::Ordering::Relaxed) as f64)),
        );
        cell
    }

    /// Registers a counter sampled from a closure.
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: Vec<(&'static str, String)>,
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(name, help, MetricKind::Counter, labels, Box::new(move || Sample::Value(f() as f64)));
    }

    /// Registers a gauge sampled from a closure.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: Vec<(&'static str, String)>,
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.register(name, help, MetricKind::Gauge, labels, Box::new(move || Sample::Value(f())));
    }

    /// Registers a histogram family whose snapshot is pulled per scrape.
    pub fn histogram_fn(
        &self,
        name: &str,
        help: &str,
        labels: Vec<(&'static str, String)>,
        f: impl Fn() -> Histogram + Send + Sync + 'static,
    ) {
        self.register(name, help, MetricKind::Histogram, labels, Box::new(move || Sample::Hist(f())));
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.metrics.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Samples every source and renders the Prometheus text exposition.
    pub fn render(&self) -> String {
        let metrics = self.metrics.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::new();
        let mut seen_family: Vec<&str> = Vec::new();
        for m in metrics.iter() {
            if !seen_family.contains(&m.name.as_str()) {
                seen_family.push(&m.name);
                let kind = match m.kind {
                    MetricKind::Counter => "counter",
                    MetricKind::Gauge => "gauge",
                    MetricKind::Histogram => "histogram",
                };
                out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
                out.push_str(&format!("# TYPE {} {}\n", m.name, kind));
            }
            match (m.source)() {
                Sample::Value(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        m.name,
                        render_labels(&m.labels, None),
                        format_value(v)
                    ));
                }
                Sample::Hist(h) => {
                    for (le, cum) in h.cumulative_buckets() {
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            m.name,
                            render_labels(&m.labels, Some(("le", &format_value(le)))),
                            cum
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        m.name,
                        render_labels(&m.labels, Some(("le", "+Inf"))),
                        h.count()
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.name,
                        render_labels(&m.labels, None),
                        format_value(h.sum())
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.name,
                        render_labels(&m.labels, None),
                        h.count()
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn renders_counters_gauges_and_help_type_once_per_family() {
        let reg = MetricsRegistry::new();
        let c = reg.counter_cell("usep_requests_total", "Requests seen.", vec![]);
        c.store(7, Ordering::Relaxed);
        reg.gauge_fn("usep_queue_depth", "Jobs queued.", vec![], || 3.5);
        reg.counter_cell(
            "usep_shed_total",
            "Requests shed.",
            vec![("reason", "queue_full".to_string())],
        );
        reg.counter_cell(
            "usep_shed_total",
            "Requests shed.",
            vec![("reason", "memory_pressure".to_string())],
        );
        let text = reg.render();
        assert!(text.contains("# HELP usep_requests_total Requests seen.\n"));
        assert!(text.contains("# TYPE usep_requests_total counter\n"));
        assert!(text.contains("usep_requests_total 7\n"));
        assert!(text.contains("usep_queue_depth 3.5\n"));
        assert!(text.contains("usep_shed_total{reason=\"queue_full\"} 0\n"));
        assert!(text.contains("usep_shed_total{reason=\"memory_pressure\"} 0\n"));
        assert_eq!(text.matches("# TYPE usep_shed_total").count(), 1, "one TYPE per family");
    }

    #[test]
    fn renders_histograms_as_cumulative_ladders() {
        let reg = MetricsRegistry::new();
        reg.histogram_fn("usep_solve_ms", "Solve latency.", vec![], || {
            let mut h = Histogram::new();
            for v in [0.5, 3.0, 3.0, 100.0] {
                h.record(v);
            }
            h
        });
        let text = reg.render();
        assert!(text.contains("# TYPE usep_solve_ms histogram\n"));
        assert!(text.contains("usep_solve_ms_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("usep_solve_ms_bucket{le=\"4\"} 3\n"));
        assert!(text.contains("usep_solve_ms_bucket{le=\"128\"} 4\n"));
        assert!(text.contains("usep_solve_ms_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("usep_solve_ms_count 4\n"));
        assert!(text.contains("usep_solve_ms_sum 106.5\n"));
    }

    #[test]
    fn empty_histogram_renders_only_inf_bucket() {
        let reg = MetricsRegistry::new();
        reg.histogram_fn("usep_empty_ms", "Never recorded.", vec![], Histogram::new);
        let text = reg.render();
        assert!(text.contains("usep_empty_ms_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("usep_empty_ms_count 0\n"));
        assert!(text.contains("usep_empty_ms_sum 0\n"));
    }

    #[test]
    #[should_panic(expected = "must end in _total")]
    fn counters_must_end_in_total() {
        MetricsRegistry::new().counter_cell("usep_requests", "x", vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate series")]
    fn duplicate_series_are_rejected() {
        let reg = MetricsRegistry::new();
        reg.gauge_fn("usep_g", "x", vec![], || 0.0);
        reg.gauge_fn("usep_g", "x", vec![], || 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        MetricsRegistry::new().gauge_fn("Usep-Bad", "x", vec![], || 0.0);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.gauge_fn(
            "usep_g",
            "x",
            vec![("path", "a\"b\\c\nd".to_string())],
            || 1.0,
        );
        assert!(reg.render().contains(r#"usep_g{path="a\"b\\c\nd"} 1"#));
    }
}
