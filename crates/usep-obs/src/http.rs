//! Minimal HTTP/1.0 listener for the metrics plane.
//!
//! Scrapes are tiny, rare (once a second at most) and read-only, so a
//! full HTTP stack would be all liability: this server accepts a
//! connection, reads one `GET` request line, drains headers, routes on
//! the path, writes one `Connection: close` response, and hangs up.
//! The listener lives on its own address so a wedged solve socket
//! never takes the health check down with it (and vice versa).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hard ceiling on one connection's total lifetime. A scrape is one
/// tiny request and one bounded response; per-read timeouts alone are
/// not enough, because a slow-loris client dripping one byte per
/// timeout window resets them forever and holds its thread (and, for a
/// fleet health-checking many shards, the scraper's attention) hostage.
const CONN_DEADLINE: Duration = Duration::from_secs(5);
/// Cap on the request line and on each header line; scrape requests
/// are a few dozen bytes, so anything larger is hostile or broken.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Cap on the number of header lines drained before the blank line.
const MAX_HEADER_LINES: usize = 100;

/// One routed response.
pub struct Response {
    /// HTTP status code (200, 404, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` plain-text response.
    pub fn text(body: impl Into<String>) -> Response {
        Response { status: 200, content_type: "text/plain; version=0.0.4; charset=utf-8", body: body.into() }
    }

    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<String>) -> Response {
        Response { status: 200, content_type: "application/json", body: body.into() }
    }
}

/// Path router: returns `None` for unknown paths (rendered as 404).
pub type Handler = Box<dyn Fn(&str) -> Option<Response> + Send + Sync>;

/// A running metrics listener; shuts down when dropped or on
/// [`HttpHandle::shutdown`].
pub struct HttpHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // poke the blocking accept() so it observes the flag
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and serves `handler` until shutdown.
pub fn serve(addr: &str, handler: Handler) -> io::Result<HttpHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = stop.clone();
    let handler = Arc::new(handler);
    let accept_thread = std::thread::Builder::new()
        .name("usep-obs-http".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let handler = handler.clone();
                // scrape handling is quick; detach and let the stream
                // close on completion
                let _ = std::thread::Builder::new()
                    .name("usep-obs-conn".to_string())
                    .spawn(move || {
                        let _ = handle_connection(stream, &handler);
                    });
            }
        })?;
    Ok(HttpHandle { addr, stop, accept_thread: Some(accept_thread) })
}

/// One `read_line` bounded by the connection deadline: before every
/// read the socket's read timeout is shrunk to the time remaining, so
/// a client dripping bytes cannot extend its life past the deadline.
/// Also enforces the per-line size cap.
fn read_line_deadline(
    reader: &mut BufReader<TcpStream>,
    buf: &mut String,
    deadline: Instant,
) -> io::Result<usize> {
    let start_len = buf.len();
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "connection deadline exceeded",
            ));
        }
        reader.get_ref().set_read_timeout(Some(left))?;
        match reader.read_line(buf) {
            // full line (or EOF) read; count includes any partial bytes
            // accumulated across timed-out attempts
            Ok(_) => return Ok(buf.len() - start_len),
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                // partial bytes stay in `buf`; loop with less time left
            }
            Err(e) => return Err(e),
        }
        if buf.len() - start_len > MAX_LINE_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "request line too long"));
        }
    }
}

fn handle_connection(stream: TcpStream, handler: &Handler) -> io::Result<()> {
    let deadline = Instant::now() + CONN_DEADLINE;
    stream.set_write_timeout(Some(CONN_DEADLINE))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    read_line_deadline(&mut reader, &mut request_line, deadline)?;
    if request_line.len() > MAX_LINE_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "request line too long"));
    }
    // drain headers up to the blank line; bodies are not supported
    let mut header = String::new();
    for _ in 0..MAX_HEADER_LINES {
        header.clear();
        let n = read_line_deadline(&mut reader, &mut header, deadline)?;
        if n == 0 || header.trim_end().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method != "GET" {
        Response { status: 405, content_type: "text/plain; charset=utf-8", body: "method not allowed\n".to_string() }
    } else {
        match handler(path) {
            Some(r) => r,
            None => Response { status: 404, content_type: "text/plain; charset=utf-8", body: "not found\n".to_string() },
        }
    };
    write_response(stream, &response)
}

fn write_response(mut stream: TcpStream, r: &Response) -> io::Result<()> {
    let reason = match r.status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        r.status,
        reason,
        r.content_type,
        r.body.len()
    )?;
    stream.write_all(r.body.as_bytes())?;
    stream.flush()
}

/// Minimal scrape client: one `GET path` against `addr`, returning the
/// response body on any `2xx` status. Shared by `usep top` and tests.
pub fn get(addr: &str, path: &str, timeout: Duration) -> io::Result<String> {
    let sock_addr: SocketAddr = addr
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("bad address {addr:?}: {e}")))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing status code"))?;
    if !(200..300).contains(&status) {
        return Err(io::Error::other(format!("GET {path}: HTTP {status}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server() -> HttpHandle {
        serve(
            "127.0.0.1:0",
            Box::new(|path| match path {
                "/metrics" => Some(Response::text("usep_up 1\n")),
                "/healthz" => Some(Response::text("ok\n")),
                "/buildinfo" => Some(Response::json("{\"name\":\"usep\"}")),
                _ => None,
            }),
        )
        .unwrap()
    }

    #[test]
    fn routes_paths_and_serves_bodies_over_real_tcp() {
        let server = test_server();
        let addr = server.addr.to_string();
        let t = Duration::from_secs(5);
        assert_eq!(get(&addr, "/metrics", t).unwrap(), "usep_up 1\n");
        assert_eq!(get(&addr, "/healthz", t).unwrap(), "ok\n");
        assert_eq!(get(&addr, "/buildinfo", t).unwrap(), "{\"name\":\"usep\"}");
    }

    #[test]
    fn unknown_paths_404_and_non_get_405() {
        let server = test_server();
        let addr = server.addr.to_string();
        let t = Duration::from_secs(5);
        let err = get(&addr, "/nope", t).unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");

        let mut stream = TcpStream::connect(server.addr).unwrap();
        stream.set_read_timeout(Some(t)).unwrap();
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        BufReader::new(stream).read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 405"), "{raw}");
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server = test_server();
        let addr = server.addr.to_string();
        server.shutdown();
        let err = get(&addr, "/healthz", Duration::from_millis(500));
        assert!(err.is_err(), "listener must be closed after shutdown");
    }

    /// Regression: a client that connects and then stalls — sending
    /// nothing, or dripping a partial request line byte by byte — must
    /// neither block other scrapes nor hold its connection open past
    /// the deadline.
    #[test]
    fn stalled_scraper_cannot_wedge_the_listener() {
        let server = test_server();
        let addr = server.addr.to_string();
        let t = Duration::from_secs(5);

        // one client connects and hangs without sending a byte…
        let mut hanger = TcpStream::connect(server.addr).unwrap();
        // …another starts a request line it never finishes
        let mut dripper = TcpStream::connect(server.addr).unwrap();
        dripper.write_all(b"GET /metr").unwrap();
        dripper.flush().unwrap();

        // scrapes keep working while both are stalled
        for _ in 0..3 {
            assert_eq!(get(&addr, "/metrics", t).unwrap(), "usep_up 1\n");
        }

        // and the server hangs up on the stalled clients at the
        // deadline: their reads see EOF (or a reset) instead of
        // blocking forever
        let wait = CONN_DEADLINE + Duration::from_secs(3);
        let mut buf = [0u8; 64];
        for (name, stream) in [("hanging", &mut hanger), ("dripping", &mut dripper)] {
            stream.set_read_timeout(Some(wait)).unwrap();
            match stream.read(&mut buf) {
                Ok(0) => {} // clean FIN at the deadline
                Ok(n) => panic!("{name} client got {n} bytes instead of a hangup"),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    panic!("{name} client still open {wait:?} after connecting")
                }
                Err(_) => {} // reset also counts as a hangup
            }
        }

        // the listener is still healthy afterwards
        assert_eq!(get(&addr, "/healthz", t).unwrap(), "ok\n");
    }
}
