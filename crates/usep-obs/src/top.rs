//! The scrape-and-render side of `usep top`.
//!
//! `usep top` is a client of the metrics plane, not a privileged
//! observer: it issues `GET /metrics` like any Prometheus scraper,
//! parses the text exposition, and renders a one-screen summary —
//! qps, p50/p95/p99 solve latency (reconstructed from the cumulative
//! bucket ladder), shed rate, and the degradation mix. Keeping it on
//! the public scrape path means the endpoint stays honest: anything
//! `top` can show, any external scraper can collect.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::time::Duration;

use crate::http;

/// One parsed `/metrics` scrape: full series key (name plus labels) to
/// sampled value.
#[derive(Clone, Debug, Default)]
pub struct Scrape {
    series: BTreeMap<String, f64>,
}

/// Parses the Prometheus text exposition format (comments skipped).
pub fn parse_exposition(text: &str) -> Scrape {
    let mut series = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // value is the last whitespace-separated token; the series key
        // is everything before it (label values may contain spaces)
        let Some(split) = line.rfind(|c: char| c.is_ascii_whitespace()) else { continue };
        let (key, value) = (line[..split].trim_end(), line[split + 1..].trim());
        let value = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => match v.parse::<f64>() {
                Ok(x) => x,
                Err(_) => continue,
            },
        };
        series.insert(key.to_string(), value);
    }
    Scrape { series }
}

impl Scrape {
    /// Exact series lookup (`name` or `name{labels}`).
    pub fn value(&self, series: &str) -> Option<f64> {
        self.series.get(series).copied()
    }

    /// Number of parsed series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` when the scrape parsed no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Sum across every series of one family (any label combination).
    pub fn family_sum(&self, name: &str) -> f64 {
        let labeled = format!("{name}{{");
        self.series
            .iter()
            .filter(|(k, _)| *k == name || k.starts_with(&labeled))
            .map(|(_, v)| v)
            .sum()
    }

    /// `(label_value, value)` pairs for one family keyed by one label.
    pub fn by_label(&self, name: &str, label: &str) -> Vec<(String, f64)> {
        let prefix = format!("{name}{{");
        let mut out = Vec::new();
        for (k, v) in &self.series {
            if !k.starts_with(&prefix) {
                continue;
            }
            let needle = format!("{label}=\"");
            if let Some(start) = k.find(&needle) {
                let rest = &k[start + needle.len()..];
                if let Some(end) = rest.find('"') {
                    out.push((rest[..end].to_string(), *v));
                }
            }
        }
        out
    }

    /// Cumulative `(le, count)` ladder of one histogram family, sorted
    /// ascending, `+Inf` last.
    pub fn buckets(&self, name: &str) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let prefix = format!("{name}_bucket{{");
        for (k, v) in &self.series {
            if !k.starts_with(&prefix) {
                continue;
            }
            let Some(start) = k.find("le=\"") else { continue };
            let rest = &k[start + 4..];
            let Some(end) = rest.find('"') else { continue };
            let le = match &rest[..end] {
                "+Inf" => f64::INFINITY,
                s => match s.parse::<f64>() {
                    Ok(x) => x,
                    Err(_) => continue,
                },
            };
            out.push((le, *v as u64));
        }
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Nearest-rank quantile over a cumulative bucket ladder; returns
    /// the bucket's upper bound (the log-scale resolution limit).
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        let buckets = self.buckets(name);
        let total = buckets.last().map(|&(_, n)| n)?;
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        buckets.iter().find(|&&(_, cum)| cum >= rank).map(|&(le, _)| le)
    }
}

fn fmt_mib(bytes: f64) -> String {
    format!("{:.1}", bytes / (1024.0 * 1024.0))
}

fn fmt_quantile(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.0}"),
        Some(_) => ">2^64".to_string(),
        None => "-".to_string(),
    }
}

/// Renders the one-screen summary for one scrape, with rate deltas
/// against the previous scrape when there is one.
pub fn render_summary(addr: &str, cur: &Scrape, prev: Option<(&Scrape, Duration)>) -> String {
    let accepted = cur.family_sum("usep_serve_accepted_total");
    let requests = cur.family_sum("usep_serve_requests_total");
    let shed = cur.family_sum("usep_serve_shed_total");
    let failed = cur.family_sum("usep_serve_failed_total");
    let retried = cur.family_sum("usep_serve_retried_total");
    let replayed = cur.family_sum("usep_serve_replayed_total");
    let completed = cur.family_sum("usep_serve_completed_total");
    let uptime = cur.value("usep_uptime_seconds").unwrap_or(0.0);

    let (qps, d_completed, d_shed) = match prev {
        Some((p, dt)) if dt.as_secs_f64() > 0.0 => {
            let dc = completed - p.family_sum("usep_serve_completed_total");
            (dc / dt.as_secs_f64(), dc, shed - p.family_sum("usep_serve_shed_total"))
        }
        _ if uptime > 0.0 => (completed / uptime, completed, shed),
        _ => (0.0, completed, shed),
    };

    let shed_rate = if requests > 0.0 { 100.0 * shed / requests } else { 0.0 };

    let mut out = String::new();
    out.push_str(&format!("usep top — {addr} — uptime {uptime:.0}s\n"));
    out.push_str(&format!(
        "throughput   qps {:.1}   inflight {}   queue {}   ledger {}/{} MiB\n",
        qps,
        cur.value("usep_serve_inflight").unwrap_or(0.0) as u64,
        cur.value("usep_serve_queue_depth").unwrap_or(0.0) as u64,
        fmt_mib(cur.value("usep_serve_ledger_reserved_bytes").unwrap_or(0.0)),
        fmt_mib(cur.value("usep_serve_ledger_capacity_bytes").unwrap_or(0.0)),
    ));
    out.push_str(&format!(
        "requests     accepted {} (+{})   shed {} (+{}, {:.1}%)   failed {}   retried {}   replayed {}\n",
        accepted as u64, d_completed as u64, shed as u64, d_shed as u64, shed_rate,
        failed as u64, retried as u64, replayed as u64,
    ));
    out.push_str(&format!(
        "solve ms     p50 {}   p95 {}   p99 {}   (n={})\n",
        fmt_quantile(cur.quantile("usep_serve_solve_ms", 0.50)),
        fmt_quantile(cur.quantile("usep_serve_solve_ms", 0.95)),
        fmt_quantile(cur.quantile("usep_serve_solve_ms", 0.99)),
        cur.value("usep_serve_solve_ms_count").unwrap_or(0.0) as u64,
    ));
    let mut mix = cur.by_label("usep_serve_degraded_total", "executed");
    mix.retain(|(_, v)| *v > 0.0);
    let mix_total: f64 = mix.iter().map(|(_, v)| v).sum();
    if mix_total > 0.0 {
        mix.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let parts: Vec<String> = mix
            .iter()
            .map(|(algo, v)| format!("{algo} {:.0}%", 100.0 * v / mix_total))
            .collect();
        out.push_str(&format!("mix          {}\n", parts.join("  ")));
    } else {
        out.push_str("mix          (no completed solves yet)\n");
    }
    out
}

/// Polls `/metrics` at `addr` every `interval` and writes one summary
/// frame per poll; `iterations = 0` polls forever. When `clear` is
/// set, each frame starts with an ANSI clear-screen so the summary
/// redraws in place.
pub fn run(
    addr: &str,
    interval: Duration,
    iterations: u64,
    clear: bool,
    out: &mut dyn Write,
) -> io::Result<()> {
    let mut prev: Option<(Scrape, std::time::Instant)> = None;
    let mut n = 0u64;
    loop {
        let body = http::get(addr, "/metrics", Duration::from_secs(5))?;
        let now = std::time::Instant::now();
        let cur = parse_exposition(&body);
        let frame = render_summary(
            addr,
            &cur,
            prev.as_ref().map(|(s, t)| (s, now.duration_since(*t))),
        );
        if clear {
            write!(out, "\x1b[2J\x1b[H")?;
        }
        out.write_all(frame.as_bytes())?;
        out.flush()?;
        prev = Some((cur, now));
        n += 1;
        if iterations != 0 && n >= iterations {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# HELP usep_serve_accepted_total Requests admitted.
# TYPE usep_serve_accepted_total counter
usep_serve_accepted_total 90
usep_serve_requests_total 100
usep_serve_completed_total{status=\"complete\"} 80
usep_serve_completed_total{status=\"truncated\"} 6
usep_serve_failed_total{reason=\"panic\"} 4
usep_serve_shed_total{reason=\"queue_full\"} 7
usep_serve_shed_total{reason=\"memory_pressure\"} 3
usep_serve_degraded_total{executed=\"DeDPO\"} 60
usep_serve_degraded_total{executed=\"RatioGreedy\"} 20
usep_serve_inflight 2
usep_serve_queue_depth 5
usep_uptime_seconds 10
usep_serve_solve_ms_bucket{le=\"1\"} 10
usep_serve_solve_ms_bucket{le=\"2\"} 50
usep_serve_solve_ms_bucket{le=\"4\"} 80
usep_serve_solve_ms_bucket{le=\"+Inf\"} 86
usep_serve_solve_ms_sum 200.5
usep_serve_solve_ms_count 86
";

    #[test]
    fn parses_series_families_and_labels() {
        let s = parse_exposition(SAMPLE);
        assert_eq!(s.value("usep_serve_accepted_total"), Some(90.0));
        assert_eq!(s.family_sum("usep_serve_shed_total"), 10.0);
        assert_eq!(s.family_sum("usep_serve_completed_total"), 86.0);
        // family_sum must not swallow longer names sharing a prefix
        assert_eq!(s.family_sum("usep_serve_solve_ms_sum"), 200.5);
        let mix = s.by_label("usep_serve_degraded_total", "executed");
        assert_eq!(mix.len(), 2);
        assert!(mix.contains(&("DeDPO".to_string(), 60.0)));
    }

    #[test]
    fn quantiles_come_from_the_cumulative_ladder() {
        let s = parse_exposition(SAMPLE);
        // rank(0.5) = 43 → first cum ≥ 43 is le=2
        assert_eq!(s.quantile("usep_serve_solve_ms", 0.50), Some(2.0));
        assert_eq!(s.quantile("usep_serve_solve_ms", 0.90), Some(4.0));
        // the tail beyond the last finite bucket reports +Inf
        assert_eq!(s.quantile("usep_serve_solve_ms", 0.999), Some(f64::INFINITY));
        assert_eq!(s.quantile("usep_missing", 0.5), None);
    }

    #[test]
    fn renders_a_complete_frame() {
        let s = parse_exposition(SAMPLE);
        let frame = render_summary("127.0.0.1:9100", &s, None);
        assert!(frame.contains("uptime 10s"), "{frame}");
        assert!(frame.contains("qps 8.6"), "completed/uptime on first frame: {frame}");
        assert!(frame.contains("shed 10 (+10, 10.0%)"), "{frame}");
        assert!(frame.contains("p50 2"), "{frame}");
        assert!(frame.contains("DeDPO 75%"), "{frame}");
        assert!(frame.contains("RatioGreedy 25%"), "{frame}");
    }

    #[test]
    fn rates_use_deltas_between_scrapes() {
        let prev = parse_exposition(SAMPLE);
        let cur_text = SAMPLE
            .replace("usep_serve_completed_total{status=\"complete\"} 80", "usep_serve_completed_total{status=\"complete\"} 100")
            .replace("usep_serve_shed_total{reason=\"queue_full\"} 7", "usep_serve_shed_total{reason=\"queue_full\"} 9");
        let cur = parse_exposition(&cur_text);
        let frame = render_summary("x", &cur, Some((&prev, Duration::from_secs(2))));
        assert!(frame.contains("qps 10.0"), "20 completions / 2s: {frame}");
        assert!(frame.contains("(+2,"), "shed delta: {frame}");
    }
}
