//! Service observability plane for the USEP serve fleet.
//!
//! `usep-trace` (PR 1) instruments the solvers; this crate makes a
//! running *service* observable from the outside without attaching a
//! debugger or tailing JSONL traces:
//!
//! * [`MetricsRegistry`] — named gauges, monotonic counters and
//!   histograms backed by pull closures, rendered in the Prometheus
//!   text exposition format (`render`).
//! * [`http`] — a minimal HTTP/1.0 listener serving `GET /metrics`,
//!   `/healthz`, `/buildinfo` and `/flightrec` on a dedicated address,
//!   isolated from the solve protocol socket.
//! * [`FlightRecorder`] — a fixed-size lock-free ring buffer of the
//!   last N annotated events (admission decisions, guard trips,
//!   retries, panics) for post-mortem dumps without always-on JSONL
//!   cost.
//! * [`top`] — the scrape client + renderer behind `usep top`: polls
//!   `/metrics` and draws a one-screen qps / latency / shed / mix
//!   summary.
//!
//! Like every crate below the serve layer, `usep-obs` has no external
//! dependencies: the HTTP server and client are hand-rolled over
//! `std::net`, and JSON output reuses `usep-trace`'s value model.

#![forbid(unsafe_code)]

pub mod http;
mod recorder;
mod registry;
pub mod top;

pub use recorder::{FlightEvent, FlightRecorder};
pub use registry::{MetricKind, MetricsRegistry, Sample};
