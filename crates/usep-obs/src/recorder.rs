//! Flight recorder: a fixed-size ring buffer of annotated events.
//!
//! JSONL tracing answers "what happened?" at full fidelity but costs a
//! write per span; the flight recorder instead keeps only the last N
//! *notable* events (admission decisions, guard trips, retries,
//! panics) in memory, always on, and serializes them to JSON only when
//! someone asks — a `dump` protocol verb, the `/flightrec` endpoint,
//! or the automatic dump on panic/shutdown.
//!
//! Writers are wait-free on the ring cursor: a single atomic
//! `fetch_add` claims a slot, and the per-slot mutex is held only for
//! the event move, so two writers contend only when they land on the
//! same slot (i.e. the ring has already wrapped a full lap between
//! them). Readers snapshot every slot and order by sequence number; a
//! reader racing a writer on one slot sees either the old or the new
//! event, never a torn one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use usep_trace::json::Value;

/// One recorded event.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Global sequence number (total order across the ring).
    pub seq: u64,
    /// Milliseconds since the recorder was created.
    pub t_ms: u64,
    /// Event class, e.g. `"admit"`, `"shed"`, `"retry"`, `"panic"`.
    pub kind: &'static str,
    /// Request id the event belongs to, when there is one.
    pub request_id: Option<String>,
    /// Free-form human-readable annotation.
    pub detail: String,
}

impl FlightEvent {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("seq".to_string(), Value::U64(self.seq)),
            ("t_ms".to_string(), Value::U64(self.t_ms)),
            ("kind".to_string(), Value::Str(self.kind.to_string())),
        ];
        if let Some(id) = &self.request_id {
            fields.push(("request_id".to_string(), Value::Str(id.clone())));
        }
        fields.push(("detail".to_string(), Value::Str(self.detail.clone())));
        Value::Map(fields)
    }
}

/// Ring buffer of the last `capacity` events.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightEvent>>>,
    cursor: AtomicU64,
    epoch: Instant,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total number of events ever recorded (≥ events retained).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records one event, overwriting the oldest once full.
    pub fn record(&self, kind: &'static str, request_id: Option<&str>, detail: impl Into<String>) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let event = FlightEvent {
            seq,
            t_ms: self.epoch.elapsed().as_millis() as u64,
            kind,
            request_id: request_id.map(str::to_string),
            detail: detail.into(),
        };
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().unwrap_or_else(|p| p.into_inner()) = Some(event);
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out: Vec<FlightEvent> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).clone())
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Renders the retained events as one compact JSON line:
    /// `{"type":"flight_recorder","recorded":…,"capacity":…,"events":[…]}`.
    pub fn dump_json(&self) -> String {
        let events = self.events();
        Value::Map(vec![
            ("type".to_string(), Value::Str("flight_recorder".to_string())),
            ("recorded".to_string(), Value::U64(self.recorded())),
            ("capacity".to_string(), Value::U64(self.capacity() as u64)),
            (
                "events".to_string(),
                Value::Seq(events.iter().map(FlightEvent::to_json).collect()),
            ),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_wraps_at_capacity() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record("tick", Some(&format!("req-{i}")), format!("event {i}"));
        }
        assert_eq!(rec.recorded(), 10);
        let events = rec.events();
        assert_eq!(events.len(), 4, "ring keeps only the last 4");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest first, newest retained");
        assert_eq!(events[3].request_id.as_deref(), Some("req-9"));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let rec = FlightRecorder::new(0);
        rec.record("a", None, "x");
        rec.record("b", None, "y");
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "b");
    }

    #[test]
    fn dump_is_one_json_line_with_request_ids() {
        let rec = FlightRecorder::new(8);
        rec.record("admit", Some("job-1"), "queue_depth=0");
        rec.record("panic", Some("job-2"), "payload: \"boom\"");
        let dump = rec.dump_json();
        assert!(!dump.contains('\n'), "dump must be a single line");
        assert!(dump.starts_with("{\"type\":\"flight_recorder\""));
        assert!(dump.contains("\"recorded\":2"));
        assert!(dump.contains("\"request_id\":\"job-1\""));
        assert!(dump.contains("\"kind\":\"panic\""));
        assert!(dump.contains(r#"payload: \"boom\""#), "details are escaped: {dump}");
    }

    #[test]
    fn concurrent_writers_never_tear_events() {
        use std::sync::Arc;
        let rec = Arc::new(FlightRecorder::new(16));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        rec.record("w", Some(&format!("t{t}-{i}")), format!("thread {t} event {i}"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.recorded(), 400);
        let events = rec.events();
        assert_eq!(events.len(), 16);
        for e in &events {
            // id and detail always came from the same record() call
            let id = e.request_id.as_ref().unwrap();
            let (t, i) = id[1..].split_once('-').unwrap();
            assert_eq!(e.detail, format!("thread {t} event {i}"));
        }
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }
}
