//! Structured instrumentation for the USEP solvers.
//!
//! The paper's complexity arguments (Sections 4–6) are stated in terms
//! of a few discrete quantities — lazy-heap traffic, candidate
//! refreshes, DP cells visited, pseudo-event matrix size. This crate
//! gives those quantities names and a way to observe them without
//! perturbing the algorithms:
//!
//! * [`Probe`] — the interface solvers report through. Every method has
//!   a no-op default body, and call sites guard hot loops with
//!   [`Probe::enabled`], so an uninstrumented run ([`NoopProbe`])
//!   compiles down to nothing.
//! * [`Counter`] — the fixed registry of algorithm counters.
//! * [`TraceSink`] — the collecting implementation: atomic counters,
//!   monotonic phase spans, log-scale value histograms with
//!   p50/p95/p99 summaries, and an optional JSON-lines writer that
//!   emits one event per line plus a final summary record.
//!
//! The crate is dependency-free on purpose: it sits underneath
//! `usep-algos`, and serialization of counter snapshots into result
//! tables is owned by `usep-metrics`.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

mod hist;
pub mod json;

pub use hist::{Histogram, HistogramSummary};

/// The fixed registry of algorithm counters.
///
/// Each variant maps one-to-one onto a quantity in the paper's cost
/// model; the snake_case name (see [`Counter::name`]) is the stable
/// identifier used in traces and result tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Candidate pushed onto the ratio-greedy lazy heap.
    HeapPush,
    /// Candidate popped from the lazy heap (stale or live).
    HeapPop,
    /// Popped candidate discarded by generation-stamp lazy deletion.
    HeapPopStale,
    /// Event-side candidate list recomputed after an assignment.
    CandidateRefreshEvent,
    /// User-side candidate list recomputed after an assignment.
    CandidateRefreshUser,
    /// Dynamic-programming cell evaluated (DeDP/DeDPO inner loop).
    DpCellVisit,
    /// Dynamic-programming cell skipped by a dominance/feasibility prune.
    DpCellPruned,
    /// Bytes allocated for the literal pseudo-event utility matrix.
    PseudoMatrixBytes,
    /// Assignment added by the +RG augmentation pass.
    AugmentSwap,
    /// Candidate rejected because the event was at capacity.
    CapacityReject,
    /// Candidate rejected because the user's budget was exceeded.
    BudgetReject,
    /// Guard tripped on the wall-clock deadline (solve truncated).
    GuardDeadlineTrip,
    /// Guard tripped on the memory ceiling (solve truncated).
    GuardMemoryTrip,
    /// Guard tripped by cooperative cancellation (solve truncated).
    GuardCancelTrip,
    /// GuardedSolver fell back one step along DeDP → DeDPO → RatioGreedy.
    GuardFallback,
    /// Request admitted into the serve queue (journaled as accepted).
    ServeAccept,
    /// Request shed at admission (queue full or memory ledger refused).
    ServeShed,
    /// Serve-level retry: a memory-truncated attempt re-ran one tier
    /// down the degradation chain after backoff.
    ServeRetry,
    /// Solve panicked and was contained by the request's unwind fence.
    ServePanic,
    /// Accepted-but-incomplete request re-enqueued from the journal at
    /// server startup (`serve --resume`).
    ServeResume,
    /// Duplicate request id answered from the journaled completion
    /// cache without re-solving.
    ServeReplay,
    /// One planning audited by the independent constraint oracle
    /// (`usep-oracle`).
    OracleCheck,
    /// Constraint or cross-check violation reported by the oracle.
    OracleViolation,
    /// One shrink attempt executed by the oracle's failure minimizer.
    OracleMinimizeStep,
    /// One fork-join parallel section executed by `usep-par`. Counted
    /// once per section (not per worker or chunk), so snapshots stay
    /// identical across thread counts.
    ParSection,
    /// Request routed to a shard by the fleet router (first attempt).
    FleetRoute,
    /// Request moved to a fallback shard after its assigned shard
    /// failed (connection error, timeout, or an Overloaded shed).
    FleetFailover,
    /// Dead shard process restarted (with `--resume`) by the fleet
    /// supervisor.
    FleetRestart,
    /// Request refused by the router because no shard could take it
    /// (every preference exhausted or failover budget spent).
    FleetShed,
    /// Duplicate request id answered from the router's fleet-level
    /// completion cache without touching a shard.
    FleetReplay,
    /// Corrupt journal record detected by its CRC frame and skipped
    /// (quarantined) during replay instead of aborting the resume.
    JournalQuarantine,
    /// Journal snapshot+compaction executed (atomic tmp-file rename of
    /// the replayed state over the append-only history).
    JournalCompaction,
    /// Request shed with a typed `Failed` response because a journal
    /// append (accept or completion record) returned an I/O error.
    ServeJournalFail,
    /// One disk or network fault injected by the `usep-chaos` plan.
    ChaosFault,
    /// One seeded chaos scenario executed end to end.
    ChaosScenario,
    /// One typed mutation applied to a delta-solve engine.
    DeltaMutation,
    /// One mutation resolved by bounded repair (no full resolve).
    DeltaRepair,
    /// One drift-triggered fallback to a full cold resolve.
    DeltaFallback,
    /// One assignment evicted or unassigned during a delta repair.
    DeltaEvict,
    /// One `mutate`-family control verb handled by `usep-serve`.
    ServeMutate,
}

impl Counter {
    /// Every counter, in registry order.
    pub const ALL: [Counter; 40] = [
        Counter::HeapPush,
        Counter::HeapPop,
        Counter::HeapPopStale,
        Counter::CandidateRefreshEvent,
        Counter::CandidateRefreshUser,
        Counter::DpCellVisit,
        Counter::DpCellPruned,
        Counter::PseudoMatrixBytes,
        Counter::AugmentSwap,
        Counter::CapacityReject,
        Counter::BudgetReject,
        Counter::GuardDeadlineTrip,
        Counter::GuardMemoryTrip,
        Counter::GuardCancelTrip,
        Counter::GuardFallback,
        Counter::ServeAccept,
        Counter::ServeShed,
        Counter::ServeRetry,
        Counter::ServePanic,
        Counter::ServeResume,
        Counter::ServeReplay,
        Counter::OracleCheck,
        Counter::OracleViolation,
        Counter::OracleMinimizeStep,
        Counter::ParSection,
        Counter::FleetRoute,
        Counter::FleetFailover,
        Counter::FleetRestart,
        Counter::FleetShed,
        Counter::FleetReplay,
        Counter::JournalQuarantine,
        Counter::JournalCompaction,
        Counter::ServeJournalFail,
        Counter::ChaosFault,
        Counter::ChaosScenario,
        Counter::DeltaMutation,
        Counter::DeltaRepair,
        Counter::DeltaFallback,
        Counter::DeltaEvict,
        Counter::ServeMutate,
    ];

    /// The stable snake_case identifier used in traces and tables.
    pub fn name(self) -> &'static str {
        match self {
            Counter::HeapPush => "heap_push",
            Counter::HeapPop => "heap_pop",
            Counter::HeapPopStale => "heap_pop_stale",
            Counter::CandidateRefreshEvent => "candidate_refresh_event",
            Counter::CandidateRefreshUser => "candidate_refresh_user",
            Counter::DpCellVisit => "dp_cell_visit",
            Counter::DpCellPruned => "dp_cell_pruned",
            Counter::PseudoMatrixBytes => "pseudo_matrix_bytes",
            Counter::AugmentSwap => "augment_swap",
            Counter::CapacityReject => "capacity_reject",
            Counter::BudgetReject => "budget_reject",
            Counter::GuardDeadlineTrip => "guard_deadline_trip",
            Counter::GuardMemoryTrip => "guard_memory_trip",
            Counter::GuardCancelTrip => "guard_cancel_trip",
            Counter::GuardFallback => "guard_fallback",
            Counter::ServeAccept => "serve_accept",
            Counter::ServeShed => "serve_shed",
            Counter::ServeRetry => "serve_retry",
            Counter::ServePanic => "serve_panic",
            Counter::ServeResume => "serve_resume",
            Counter::ServeReplay => "serve_replay",
            Counter::OracleCheck => "oracle_check",
            Counter::OracleViolation => "oracle_violation",
            Counter::OracleMinimizeStep => "oracle_minimize_step",
            Counter::ParSection => "par_section",
            Counter::FleetRoute => "fleet_route",
            Counter::FleetFailover => "fleet_failover",
            Counter::FleetRestart => "fleet_restart",
            Counter::FleetShed => "fleet_shed",
            Counter::FleetReplay => "fleet_replay",
            Counter::JournalQuarantine => "journal_quarantined",
            Counter::JournalCompaction => "journal_compacted",
            Counter::ServeJournalFail => "serve_journal_fail",
            Counter::ChaosFault => "chaos_fault_injected",
            Counter::ChaosScenario => "chaos_scenario",
            Counter::DeltaMutation => "delta_mutation",
            Counter::DeltaRepair => "delta_repair",
            Counter::DeltaFallback => "delta_fallback",
            Counter::DeltaEvict => "delta_evict",
            Counter::ServeMutate => "serve_mutate",
        }
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The interface solvers report through.
///
/// All methods default to no-ops so `&NOOP` costs one virtual call per
/// site at most; call sites inside per-element loops should guard with
/// [`Probe::enabled`] first so the disabled path stays branch-only.
pub trait Probe: Sync {
    /// `true` when this probe records anything — hot loops may skip
    /// instrumentation work entirely when this is `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to `counter`.
    fn count(&self, counter: Counter, delta: u64) {
        let _ = (counter, delta);
    }

    /// Opens a named phase span. Spans nest LIFO within a solve.
    fn span_enter(&self, name: &'static str) {
        let _ = name;
    }

    /// Closes the innermost span named `name`.
    fn span_exit(&self, name: &'static str) {
        let _ = name;
    }

    /// Records one observation into the named log-scale histogram.
    fn record(&self, histogram: &'static str, value: f64) {
        let _ = (histogram, value);
    }

    /// Opens a span annotated with a request context. Defaults to the
    /// unscoped [`Probe::span_enter`], so sinks that don't understand
    /// request ids still aggregate the span normally.
    fn span_enter_scoped(&self, name: &'static str, ctx: Option<&RequestCtx>) {
        let _ = ctx;
        self.span_enter(name);
    }

    /// Closes a span opened by [`Probe::span_enter_scoped`].
    fn span_exit_scoped(&self, name: &'static str, ctx: Option<&RequestCtx>) {
        let _ = ctx;
        self.span_exit(name);
    }
}

/// Request-scoped tracing context, propagated from serve admission
/// through the degradation chain into parallel sections.
///
/// The context is deliberately tiny and cheap to clone: the id is a
/// shared `Arc<str>`, the deadline an absolute instant (so nested
/// layers need no budget arithmetic), and `attempt` counts degradation
/// tiers (0 = the originally requested algorithm).
#[derive(Clone, Debug)]
pub struct RequestCtx {
    /// Client-chosen request id, unique per admission.
    pub request_id: std::sync::Arc<str>,
    /// Absolute deadline for the whole request, if one exists.
    pub deadline: Option<Instant>,
    /// Zero-based attempt index along the degradation chain.
    pub attempt: u32,
}

impl RequestCtx {
    /// A context with the given id, no deadline, attempt 0.
    pub fn new(request_id: &str) -> RequestCtx {
        RequestCtx { request_id: std::sync::Arc::from(request_id), deadline: None, attempt: 0 }
    }

    /// The same request one tier further down the degradation chain.
    pub fn with_attempt(&self, attempt: u32) -> RequestCtx {
        RequestCtx { request_id: self.request_id.clone(), deadline: self.deadline, attempt }
    }

    /// Time left until the deadline; `None` when unbounded.
    pub fn remaining(&self) -> Option<std::time::Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// A [`Probe`] adapter that stamps every span from an inner solve with
/// one request's context.
///
/// Solver code takes `&dyn Probe` and knows nothing about requests;
/// the serve layer wraps its shared [`TraceSink`] in a `RequestProbe`
/// per admission (and per degradation tier), so every JSONL span event
/// produced under it carries the request id without any solver-side
/// plumbing.
pub struct RequestProbe<'a> {
    parent: &'a dyn Probe,
    ctx: RequestCtx,
}

impl<'a> RequestProbe<'a> {
    /// Wraps `parent` so spans carry `ctx`.
    pub fn new(parent: &'a dyn Probe, ctx: RequestCtx) -> RequestProbe<'a> {
        RequestProbe { parent, ctx }
    }

    /// The wrapped context.
    pub fn ctx(&self) -> &RequestCtx {
        &self.ctx
    }
}

impl Probe for RequestProbe<'_> {
    fn enabled(&self) -> bool {
        self.parent.enabled()
    }

    fn count(&self, counter: Counter, delta: u64) {
        self.parent.count(counter, delta);
    }

    fn span_enter(&self, name: &'static str) {
        self.parent.span_enter_scoped(name, Some(&self.ctx));
    }

    fn span_exit(&self, name: &'static str) {
        self.parent.span_exit_scoped(name, Some(&self.ctx));
    }

    fn span_enter_scoped(&self, name: &'static str, ctx: Option<&RequestCtx>) {
        self.parent.span_enter_scoped(name, ctx.or(Some(&self.ctx)));
    }

    fn span_exit_scoped(&self, name: &'static str, ctx: Option<&RequestCtx>) {
        self.parent.span_exit_scoped(name, ctx.or(Some(&self.ctx)));
    }

    fn record(&self, histogram: &'static str, value: f64) {
        self.parent.record(histogram, value);
    }
}

/// The probe that records nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// Per-worker counter accumulation for parallel sections.
///
/// [`TraceSink`]'s counters are atomics, so workers *could* increment
/// them directly — but a hot scan incrementing a shared cache line from
/// eight cores serializes on it. A parallel section instead gives each
/// worker a `LocalCounters`, accumulates into plain integers, and
/// flushes once into the shared probe when the worker finishes (or
/// stops on a guard trip), so the shared atomics see one contended
/// write per worker per section instead of one per element.
#[derive(Clone, Debug)]
pub struct LocalCounters {
    deltas: [u64; Counter::ALL.len()],
}

// hand-written: the derive needs `[u64; N]: Default`, which the stdlib
// only provides for N <= 32 and the counter registry outgrew that
impl Default for LocalCounters {
    fn default() -> LocalCounters {
        LocalCounters { deltas: [0; Counter::ALL.len()] }
    }
}

impl LocalCounters {
    /// A zeroed accumulator.
    pub fn new() -> LocalCounters {
        LocalCounters::default()
    }

    /// Adds `delta` to `counter` locally (no synchronization).
    pub fn count(&mut self, counter: Counter, delta: u64) {
        self.deltas[counter as usize] += delta;
    }

    /// Current local value of one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.deltas[counter as usize]
    }

    /// Flushes every non-zero delta into `probe` and zeroes the
    /// accumulator (so a retained worker state can be flushed again
    /// without double counting).
    pub fn flush_into(&mut self, probe: &dyn Probe) {
        for &c in Counter::ALL.iter() {
            let d = self.deltas[c as usize];
            if d > 0 {
                probe.count(c, d);
                self.deltas[c as usize] = 0;
            }
        }
    }
}

/// A shared no-op probe instance for default call paths.
pub static NOOP: NoopProbe = NoopProbe;

/// Convenience guard: runs a span over a closure.
pub fn with_span<T>(probe: &dyn Probe, name: &'static str, f: impl FnOnce() -> T) -> T {
    probe.span_enter(name);
    let out = f();
    probe.span_exit(name);
    out
}

/// Aggregate of one span name across a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanTotal {
    /// The span name.
    pub name: &'static str,
    /// Number of times the span was entered and exited.
    pub count: u64,
    /// Total nanoseconds across all completed instances.
    pub total_ns: u64,
}

struct SinkState {
    /// Open spans, innermost last: (name, start, seq of the enter event).
    open: Vec<(&'static str, Instant)>,
    totals: Vec<SpanTotal>,
    histograms: HashMap<&'static str, Histogram>,
    writer: Option<Box<dyn Write + Send>>,
}

/// The collecting [`Probe`]: atomic counters, phase spans, histograms,
/// and an optional JSON-lines emitter.
///
/// Counter updates are lock-free; spans, histograms and trace output
/// share one mutex, which solver phases touch rarely (per phase / per
/// observation, never per heap operation).
pub struct TraceSink {
    counters: [AtomicU64; Counter::ALL.len()],
    seq: AtomicU64,
    epoch: Instant,
    finished: std::sync::atomic::AtomicBool,
    state: Mutex<SinkState>,
}

impl Default for TraceSink {
    fn default() -> TraceSink {
        TraceSink::new()
    }
}

impl TraceSink {
    /// A sink that aggregates in memory without writing a trace.
    pub fn new() -> TraceSink {
        TraceSink {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
            finished: std::sync::atomic::AtomicBool::new(false),
            state: Mutex::new(SinkState {
                open: Vec::new(),
                totals: Vec::new(),
                histograms: HashMap::new(),
                writer: None,
            }),
        }
    }

    /// A sink that additionally emits JSON-lines events to `writer`.
    pub fn with_writer(writer: Box<dyn Write + Send>) -> TraceSink {
        let sink = TraceSink::new();
        sink.lock().writer = Some(writer);
        sink
    }

    /// A sink writing its trace to a (buffered) file at `path`.
    pub fn to_file(path: &std::path::Path) -> io::Result<TraceSink> {
        let file = std::fs::File::create(path)?;
        Ok(TraceSink::with_writer(Box::new(io::BufWriter::new(file))))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SinkState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Current value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Snapshot of all counters in registry order.
    pub fn counters(&self) -> Vec<(Counter, u64)> {
        Counter::ALL.iter().map(|&c| (c, self.counter(c))).collect()
    }

    /// Completed-span aggregates, in first-seen order.
    pub fn span_totals(&self) -> Vec<SpanTotal> {
        self.lock().totals.clone()
    }

    /// Percentile summary of a named histogram, `None` if it has no
    /// samples (or was never recorded).
    pub fn histogram_summary(&self, name: &str) -> Option<HistogramSummary> {
        self.lock().histograms.get(name).and_then(Histogram::summary)
    }

    /// Snapshot clone of a named histogram, for bucket-level exposition
    /// (the metrics registry re-exports these as cumulative buckets).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Names of all recorded histograms, sorted.
    pub fn histogram_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.lock().histograms.keys().map(|s| s.to_string()).collect();
        names.sort();
        names
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    fn emit(state: &mut SinkState, line: &str) {
        if let Some(w) = state.writer.as_mut() {
            // Trace output is best-effort; a full disk must not take the
            // solver down with it.
            let _ = writeln!(w, "{line}");
        }
    }

    /// Writes the final summary record (counters, span totals, histogram
    /// summaries) and flushes the writer. The summary is written at most
    /// once — later calls (and the drop-path safety net) only flush, so
    /// a trace never carries two summary records.
    pub fn finish(&self) -> io::Result<()> {
        if self.finished.swap(true, Ordering::SeqCst) {
            let mut state = self.lock();
            if let Some(w) = state.writer.as_mut() {
                w.flush()?;
            }
            return Ok(());
        }
        let counters = self.counters();
        let mut state = self.lock();

        let mut counter_fields: Vec<(String, json::Value)> = Vec::new();
        for (c, v) in counters {
            counter_fields.push((c.name().to_string(), json::Value::U64(v)));
        }

        let mut span_items: Vec<json::Value> = Vec::new();
        for t in &state.totals {
            span_items.push(json::Value::Map(vec![
                ("name".to_string(), json::Value::Str(t.name.to_string())),
                ("count".to_string(), json::Value::U64(t.count)),
                ("total_ns".to_string(), json::Value::U64(t.total_ns)),
            ]));
        }

        let mut hist_names: Vec<&&'static str> = state.histograms.keys().collect();
        hist_names.sort();
        let mut hist_fields: Vec<(String, json::Value)> = Vec::new();
        for name in hist_names.iter().map(|n| **n).collect::<Vec<_>>() {
            if let Some(s) = state.histograms[name].summary() {
                hist_fields.push((
                    name.to_string(),
                    json::Value::Map(vec![
                        ("count".to_string(), json::Value::U64(s.count)),
                        ("min".to_string(), json::Value::F64(s.min)),
                        ("max".to_string(), json::Value::F64(s.max)),
                        ("mean".to_string(), json::Value::F64(s.mean)),
                        ("p50".to_string(), json::Value::F64(s.p50)),
                        ("p95".to_string(), json::Value::F64(s.p95)),
                        ("p99".to_string(), json::Value::F64(s.p99)),
                    ]),
                ));
            }
        }

        let record = json::Value::Map(vec![
            ("type".to_string(), json::Value::Str("summary".to_string())),
            ("seq".to_string(), json::Value::U64(self.seq.load(Ordering::Relaxed))),
            ("counters".to_string(), json::Value::Map(counter_fields)),
            ("spans".to_string(), json::Value::Seq(span_items)),
            ("histograms".to_string(), json::Value::Map(hist_fields)),
        ]);
        Self::emit(&mut state, &record.render());
        if let Some(w) = state.writer.as_mut() {
            w.flush()?;
        }
        Ok(())
    }

    fn enter_impl(&self, name: &'static str, ctx: Option<&RequestCtx>) {
        let seq = self.next_seq();
        let now = Instant::now();
        let mut state = self.lock();
        state.open.push((name, now));
        let depth = state.open.len();
        if state.writer.is_some() {
            let mut fields = vec![
                ("type".to_string(), json::Value::Str("span_enter".to_string())),
                ("seq".to_string(), json::Value::U64(seq)),
                ("name".to_string(), json::Value::Str(name.to_string())),
                ("depth".to_string(), json::Value::U64(depth as u64)),
                (
                    "t_ns".to_string(),
                    json::Value::U64(now.duration_since(self.epoch).as_nanos() as u64),
                ),
            ];
            if let Some(ctx) = ctx {
                fields.push((
                    "request_id".to_string(),
                    json::Value::Str(ctx.request_id.to_string()),
                ));
                fields.push(("attempt".to_string(), json::Value::U64(u64::from(ctx.attempt))));
            }
            Self::emit(&mut state, &json::Value::Map(fields).render());
        }
    }

    fn exit_impl(&self, name: &'static str, ctx: Option<&RequestCtx>) {
        let seq = self.next_seq();
        let now = Instant::now();
        let mut state = self.lock();
        // Innermost matching span; tolerates (and closes past) mismatched
        // exits rather than panicking inside an algorithm.
        let Some(idx) = state.open.iter().rposition(|(n, _)| *n == name) else {
            return;
        };
        let (_, start) = state.open.remove(idx);
        let dur_ns = now.duration_since(start).as_nanos() as u64;
        match state.totals.iter_mut().find(|t| t.name == name) {
            Some(t) => {
                t.count += 1;
                t.total_ns += dur_ns;
            }
            None => state.totals.push(SpanTotal { name, count: 1, total_ns: dur_ns }),
        }
        if state.writer.is_some() {
            let mut fields = vec![
                ("type".to_string(), json::Value::Str("span_exit".to_string())),
                ("seq".to_string(), json::Value::U64(seq)),
                ("name".to_string(), json::Value::Str(name.to_string())),
                ("dur_ns".to_string(), json::Value::U64(dur_ns)),
                (
                    "t_ns".to_string(),
                    json::Value::U64(now.duration_since(self.epoch).as_nanos() as u64),
                ),
            ];
            if let Some(ctx) = ctx {
                fields.push((
                    "request_id".to_string(),
                    json::Value::Str(ctx.request_id.to_string()),
                ));
                fields.push(("attempt".to_string(), json::Value::U64(u64::from(ctx.attempt))));
            }
            Self::emit(&mut state, &json::Value::Map(fields).render());
        }
    }
}

impl Drop for TraceSink {
    /// Drop-path safety net: a sink dropped without an explicit
    /// [`TraceSink::finish`] — early return, panic unwind — still gets
    /// its summary record and flush, so readers never see a trace that
    /// ends mid-stream on a buffered half-written tail.
    fn drop(&mut self) {
        if !self.finished.load(Ordering::SeqCst) {
            let _ = self.finish();
        }
    }
}

impl Probe for TraceSink {
    fn enabled(&self) -> bool {
        true
    }

    fn count(&self, counter: Counter, delta: u64) {
        self.counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }

    fn span_enter(&self, name: &'static str) {
        self.enter_impl(name, None);
    }

    fn span_exit(&self, name: &'static str) {
        self.exit_impl(name, None);
    }

    fn span_enter_scoped(&self, name: &'static str, ctx: Option<&RequestCtx>) {
        self.enter_impl(name, ctx);
    }

    fn span_exit_scoped(&self, name: &'static str, ctx: Option<&RequestCtx>) {
        self.exit_impl(name, ctx);
    }

    fn record(&self, histogram: &'static str, value: f64) {
        let mut state = self.lock();
        state.histograms.entry(histogram).or_default().record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        let sink = TraceSink::new();
        sink.count(Counter::HeapPush, 3);
        sink.count(Counter::HeapPush, 2);
        sink.count(Counter::BudgetReject, 1);
        assert_eq!(sink.counter(Counter::HeapPush), 5);
        assert_eq!(sink.counter(Counter::BudgetReject), 1);
        assert_eq!(sink.counter(Counter::DpCellVisit), 0);
        let snap = sink.counters();
        assert_eq!(snap.len(), Counter::ALL.len());
        assert!(snap.contains(&(Counter::HeapPush, 5)));
    }

    #[test]
    fn counter_names_are_unique_and_snake_case() {
        let names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let sink = TraceSink::new();
        sink.span_enter("outer");
        sink.span_enter("inner");
        sink.span_exit("inner");
        sink.span_enter("inner");
        sink.span_exit("inner");
        sink.span_exit("outer");
        let totals = sink.span_totals();
        assert_eq!(totals.len(), 2);
        let inner = totals.iter().find(|t| t.name == "inner").unwrap();
        let outer = totals.iter().find(|t| t.name == "outer").unwrap();
        assert_eq!(inner.count, 2);
        assert_eq!(outer.count, 1);
        assert!(outer.total_ns >= inner.total_ns);
    }

    #[test]
    fn mismatched_span_exit_is_ignored() {
        let sink = TraceSink::new();
        sink.span_exit("never_opened");
        assert!(sink.span_totals().is_empty());
    }

    #[test]
    fn with_span_returns_closure_value() {
        let sink = TraceSink::new();
        let out = with_span(&sink, "phase", || 41 + 1);
        assert_eq!(out, 42);
        assert_eq!(sink.span_totals()[0].count, 1);
    }

    #[test]
    fn noop_probe_is_disabled_and_inert() {
        assert!(!NOOP.enabled());
        NOOP.count(Counter::HeapPop, 10);
        NOOP.span_enter("x");
        NOOP.span_exit("x");
        NOOP.record("h", 1.0);
    }

    #[test]
    fn jsonl_writer_emits_valid_lines_and_summary() {
        let buf = std::sync::Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = TraceSink::with_writer(Box::new(Shared(buf.clone())));
        with_span(&sink, "solve", || {
            sink.count(Counter::HeapPush, 7);
            sink.record("lat", 100.0);
        });
        sink.finish().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "enter + exit + summary: {text}");
        assert!(lines[0].contains("\"span_enter\""));
        assert!(lines[1].contains("\"span_exit\""));
        assert!(lines[2].contains("\"summary\""));
        assert!(lines[2].contains("\"heap_push\":7"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn local_counters_flush_once_and_reset() {
        let sink = TraceSink::new();
        let mut local = LocalCounters::new();
        local.count(Counter::DpCellVisit, 10);
        local.count(Counter::DpCellVisit, 5);
        local.count(Counter::HeapPush, 2);
        assert_eq!(local.get(Counter::DpCellVisit), 15);
        local.flush_into(&sink);
        assert_eq!(sink.counter(Counter::DpCellVisit), 15);
        assert_eq!(sink.counter(Counter::HeapPush), 2);
        // flushing again adds nothing: deltas were zeroed
        local.flush_into(&sink);
        assert_eq!(sink.counter(Counter::DpCellVisit), 15);
        local.count(Counter::HeapPush, 1);
        local.flush_into(&sink);
        assert_eq!(sink.counter(Counter::HeapPush), 3);
    }

    struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, b: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn dropping_an_unfinished_sink_still_writes_the_summary() {
        let buf = std::sync::Arc::new(Mutex::new(Vec::<u8>::new()));
        {
            let sink = TraceSink::with_writer(Box::new(SharedBuf(buf.clone())));
            sink.count(Counter::HeapPush, 3);
            // no finish(): the drop path must cover it
        }
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"summary\""), "drop must flush the summary: {text:?}");
        assert!(text.contains("\"heap_push\":3"));
    }

    #[test]
    fn finish_writes_the_summary_exactly_once() {
        let buf = std::sync::Arc::new(Mutex::new(Vec::<u8>::new()));
        let sink = TraceSink::with_writer(Box::new(SharedBuf(buf.clone())));
        sink.finish().unwrap();
        sink.finish().unwrap();
        drop(sink);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.matches("\"summary\"").count(), 1, "{text:?}");
    }

    #[test]
    fn drop_flush_survives_a_panic_unwind() {
        let buf = std::sync::Arc::new(Mutex::new(Vec::<u8>::new()));
        let buf2 = buf.clone();
        let _ = std::panic::catch_unwind(move || {
            let sink = TraceSink::with_writer(Box::new(SharedBuf(buf2)));
            sink.count(Counter::ServePanic, 1);
            panic!("boom");
        });
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"summary\""), "unwind must flush the summary: {text:?}");
        assert!(text.contains("\"serve_panic\":1"));
    }

    #[test]
    fn request_probe_stamps_spans_with_the_request_id() {
        let buf = std::sync::Arc::new(Mutex::new(Vec::<u8>::new()));
        let sink = TraceSink::with_writer(Box::new(SharedBuf(buf.clone())));
        let ctx = RequestCtx::new("req-42").with_attempt(2);
        let scoped = RequestProbe::new(&sink, ctx);
        with_span(&scoped, "solve", || {
            scoped.count(Counter::DpCellVisit, 5);
        });
        assert_eq!(sink.counter(Counter::DpCellVisit), 5, "counts pass through");
        assert_eq!(sink.span_totals()[0].name, "solve", "spans aggregate in the parent");
        sink.finish().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        for line in text.lines().filter(|l| l.contains("\"span_")) {
            assert!(line.contains("\"request_id\":\"req-42\""), "{line}");
            assert!(line.contains("\"attempt\":2"), "{line}");
        }
    }

    #[test]
    fn unscoped_spans_carry_no_request_id() {
        let buf = std::sync::Arc::new(Mutex::new(Vec::<u8>::new()));
        let sink = TraceSink::with_writer(Box::new(SharedBuf(buf.clone())));
        with_span(&sink, "solve", || {});
        sink.finish().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(!text.contains("request_id"));
    }

    #[test]
    fn request_ctx_remaining_tracks_the_deadline() {
        let mut ctx = RequestCtx::new("r");
        assert!(ctx.remaining().is_none());
        ctx.deadline = Some(Instant::now() + std::time::Duration::from_secs(60));
        let left = ctx.remaining().unwrap();
        assert!(left <= std::time::Duration::from_secs(60));
        assert!(left >= std::time::Duration::from_secs(59));
        ctx.deadline = Some(Instant::now() - std::time::Duration::from_secs(1));
        assert_eq!(ctx.remaining().unwrap(), std::time::Duration::ZERO);
    }

    #[test]
    fn histograms_reachable_through_probe_interface() {
        let sink = TraceSink::new();
        let probe: &dyn Probe = &sink;
        for v in [1.0, 2.0, 4.0, 1000.0] {
            probe.record("vals", v);
        }
        let s = sink.histogram_summary("vals").unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        assert_eq!(sink.histogram_names(), vec!["vals".to_string()]);
        assert!(sink.histogram_summary("missing").is_none());
    }
}
