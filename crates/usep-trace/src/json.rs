//! Minimal hand-rolled JSON rendering for trace records.
//!
//! `usep-trace` deliberately has no dependencies (it sits under the
//! algorithm crates), so the JSONL emitter carries its own tiny value
//! model. Output is compact single-line JSON; map keys here are trusted
//! identifiers but strings are escaped fully anyway.

/// A JSON value assembled by the trace emitter.
#[derive(Clone, Debug)]
pub enum Value {
    /// Unsigned integer (sequence numbers, counters, nanoseconds).
    U64(u64),
    /// Float (histogram statistics). Non-finite renders as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Renders as compact JSON (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::F64(x) => {
                if x.is_finite() {
                    // Display gives the shortest roundtrip form, but bare
                    // integers (e.g. "37") must stay floats for readers
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Seq(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_records_compactly() {
        let v = Value::Map(vec![
            ("type".to_string(), Value::Str("span".to_string())),
            ("ns".to_string(), Value::U64(1500)),
            ("stats".to_string(), Value::Seq(vec![Value::F64(0.5), Value::F64(f64::NAN)])),
        ]);
        assert_eq!(v.render(), r#"{"type":"span","ns":1500,"stats":[0.5,null]}"#);
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(v.render(), r#""a\"b\\c\nd\u0001""#);
    }
}
