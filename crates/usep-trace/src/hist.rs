//! Log-scale histogram with percentile summaries.
//!
//! Values are bucketed by the base-2 logarithm of their integer
//! magnitude: bucket 0 holds `[0, 1)`, bucket `i > 0` holds
//! `[2^(i-1), 2^i)`. That gives a fixed 65-slot footprint covering the
//! full `u64` range with ≤ 2× relative error on percentile estimates —
//! the standard trade-off for latency-style distributions. Estimates
//! are clamped to the observed `[min, max]`, so single-sample and
//! constant histograms report percentiles exactly.

/// Number of buckets: `[0,1)` plus one per power of two up to `2^64`.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of non-negative values.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Point summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Exact arithmetic mean.
    pub mean: f64,
    /// Median estimate (≤ 2× relative error, exact when constant).
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

fn bucket_of(value: f64) -> usize {
    if value.is_nan() || value < 1.0 {
        // negatives, NaN and [0, 1) all land in the first bucket
        return 0;
    }
    let v = if value >= u64::MAX as f64 { u64::MAX } else { value as u64 };
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Geometric midpoint of a bucket, the canonical point estimate for a
/// log-scale bin.
fn bucket_mid(bucket: usize) -> f64 {
    if bucket == 0 {
        return 0.5;
    }
    let lo = (1u128 << (bucket - 1)) as f64;
    let hi = (1u128 << bucket) as f64;
    (lo * hi).sqrt()
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation. Negative and non-finite values are
    /// clamped into the lowest bucket rather than dropped, so `count`
    /// always equals the number of calls.
    pub fn record(&mut self, value: f64) {
        let value = if value.is_finite() { value } else { 0.0 };
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        self.counts[bucket_of(value)] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of log₂ buckets every histogram carries.
    pub const NUM_BUCKETS: usize = BUCKETS;

    /// Inclusive upper bound of bucket `i`: bucket 0 covers `[0, 1)`,
    /// bucket `i > 0` covers `[2^(i-1), 2^i)`.
    pub fn bucket_upper_bound(bucket: usize) -> f64 {
        if bucket == 0 {
            1.0
        } else {
            (1u128 << bucket.min(BUCKETS - 1)) as f64
        }
    }

    /// Per-bucket counts; empty slice when nothing was recorded.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Cumulative `(upper_bound, count_le)` pairs for Prometheus-style
    /// exposition: one entry per bucket up to and including the last
    /// non-empty bucket (callers append the implicit `+Inf` bucket with
    /// [`Histogram::count`]). Empty when nothing was recorded.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let last = match self.counts.iter().rposition(|&n| n > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(last + 1);
        let mut seen = 0u64;
        for (b, &n) in self.counts.iter().enumerate().take(last + 1) {
            seen += n;
            out.push((Self::bucket_upper_bound(b), seen));
        }
        out
    }

    /// Folds `other` into `self`: bucket-wise count addition plus exact
    /// combination of count/sum/min/max. Used to aggregate per-shard
    /// histograms before cumulative-bucket exposition.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Estimates the `q`-quantile (`0 ≤ q ≤ 1`) by scanning cumulative
    /// bucket counts; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // rank of the target observation, 1-based nearest-rank
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_mid(b).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The percentile summary, `None` when no observations exist.
    pub fn summary(&self) -> Option<HistogramSummary> {
        if self.count == 0 {
            return None;
        }
        Some(HistogramSummary {
            count: self.count,
            min: self.min,
            max: self.max,
            mean: self.sum / self.count as f64,
            p50: self.quantile(0.50).expect("non-empty"),
            p95: self.quantile(0.95).expect("non-empty"),
            p99: self.quantile(0.99).expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_summary() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.summary().is_none());
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = Histogram::new();
        h.record(37.0);
        let s = h.summary().unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 37.0);
        assert_eq!(s.max, 37.0);
        assert_eq!(s.mean, 37.0);
        // clamping to [min, max] collapses the bucket estimate
        assert_eq!(s.p50, 37.0);
        assert_eq!(s.p95, 37.0);
        assert_eq!(s.p99, 37.0);
    }

    #[test]
    fn constant_stream_percentiles_are_exact() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(8.0);
        }
        let s = h.summary().unwrap();
        assert_eq!((s.p50, s.p95, s.p99), (8.0, 8.0, 8.0));
        assert_eq!(s.mean, 8.0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(0.99), 0);
        assert_eq!(bucket_of(1.0), 1);
        assert_eq!(bucket_of(1.5), 1);
        assert_eq!(bucket_of(2.0), 2);
        assert_eq!(bucket_of(3.0), 2);
        assert_eq!(bucket_of(4.0), 3);
        assert_eq!(bucket_of(u64::MAX as f64), BUCKETS - 1);
        assert_eq!(bucket_of(f64::INFINITY), BUCKETS - 1);
    }

    #[test]
    fn negative_and_nan_count_but_clamp_low() {
        let mut h = Histogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(2.0);
        let s = h.summary().unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, -5.0);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn percentiles_order_and_log_accuracy() {
        let mut h = Histogram::new();
        // 1..=1000 uniformly: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990
        for v in 1..=1000 {
            h.record(f64::from(v));
        }
        let s = h.summary().unwrap();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        // log₂ buckets promise ≤ 2× relative error
        assert!(s.p50 >= 250.0 && s.p50 <= 1000.0, "p50 {}", s.p50);
        assert!(s.p95 >= 475.0 && s.p95 <= 1000.0, "p95 {}", s.p95);
        assert!((s.mean - 500.5).abs() < 1e-9, "mean is exact: {}", s.mean);
    }

    #[test]
    fn max_bucket_overflow_saturates_without_losing_counts() {
        let mut h = Histogram::new();
        h.record(u64::MAX as f64);
        h.record(f64::INFINITY); // clamped to 0.0 by record()
        h.record(1e300);
        let s = h.summary().unwrap();
        assert_eq!(s.count, 3);
        // the top bucket holds both huge samples; quantiles stay finite
        assert_eq!(h.bucket_counts()[BUCKETS - 1], 2);
        assert!(s.p99.is_finite());
        assert!(s.p99 <= s.max);
        let cum = h.cumulative_buckets();
        assert_eq!(cum.len(), BUCKETS, "top bucket occupied → full ladder");
        assert_eq!(cum.last().unwrap().1, 3, "cumulative tail counts everything");
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_stop_at_last_occupied() {
        let mut h = Histogram::new();
        assert!(h.cumulative_buckets().is_empty());
        for v in [0.5, 3.0, 3.0, 100.0] {
            h.record(v);
        }
        let cum = h.cumulative_buckets();
        // 100 lands in [64, 128) = bucket 7, so the ladder has 8 rungs
        assert_eq!(cum.len(), 8);
        assert_eq!(cum[0], (1.0, 1));
        assert_eq!(cum[2], (4.0, 3), "le=4 covers 0.5 and both 3.0s");
        assert_eq!(*cum.last().unwrap(), (128.0, 4));
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1, "monotone: {w:?}");
        }
    }

    #[test]
    fn merge_combines_counts_extremes_and_buckets() {
        let mut a = Histogram::new();
        for v in [1.0, 2.0, 4.0] {
            a.record(v);
        }
        let mut b = Histogram::new();
        for v in [0.25, 512.0] {
            b.record(v);
        }
        a.merge(&b);
        let s = a.summary().unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 0.25);
        assert_eq!(s.max, 512.0);
        assert!((s.mean - (1.0 + 2.0 + 4.0 + 0.25 + 512.0) / 5.0).abs() < 1e-9);
        assert_eq!(a.cumulative_buckets().last().unwrap().1, 5);

        // merging an empty histogram is a no-op in both directions
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a.summary(), before.summary());
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty.summary(), before.summary());
    }

    #[test]
    fn quantile_extremes_hit_min_and_max_buckets() {
        let mut h = Histogram::new();
        h.record(1.0);
        for _ in 0..99 {
            h.record(1024.0);
        }
        // rank 1 at q=0 lands in the first sample's bucket [1, 2)
        let p0 = h.quantile(0.0).unwrap();
        assert!((1.0..2.0).contains(&p0), "p0 {p0}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((512.0..=1024.0).contains(&p99), "p99 {p99}");
    }
}
