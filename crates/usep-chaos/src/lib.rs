//! usep-chaos: deterministic fault injection for the USEP serve stack.
//!
//! Everything here is a pure function of a seed. The crate composes
//! three fault planes and one referee:
//!
//! - **Disk** — [`FaultyIo`] implements `usep_serve::JournalIo` over an
//!   in-memory volatile/durable disk model, injecting torn writes,
//!   ENOSPC, silent bit rot, lying fsyncs and latency from a
//!   [`FaultPlan`]. A power cycle erases everything never honestly
//!   fsynced.
//! - **Network** — [`ChaosProxy`] fronts any TCP listener and gives
//!   each connection a seeded fate: delay, drop, half-open, duplicate
//!   delivery.
//! - **Process** — scenarios crash server incarnations (power-cut +
//!   restart with `--resume`) and, in fleet mode, `SIGKILL` live shard
//!   workers mid-traffic.
//! - **Referee** — every scenario's answers are checked against the
//!   `usep-oracle` constraint oracle and the `usep-obs` reconciliation
//!   identities; a violation prints a replayable seed and a greedily
//!   minimized scenario spec.
//!
//! The entry points are [`scenario::run_scenario`] for one seeded
//! scenario, [`scenario::run_campaign`] for `usep chaos --scenarios N`,
//! and [`fleet::run_fleet_scenario`] for the whole-fleet simulation.

pub mod fleet;
pub mod io;
pub mod plan;
pub mod proxy;
pub mod scenario;

pub use fleet::{run_fleet_scenario, FleetScenarioOutcome, FleetScenarioSpec};
pub use io::FaultyIo;
pub use plan::{mix, ConnFault, DiskFault, DiskFaultConfig, FaultPlan, NetFaultConfig};
pub use proxy::ChaosProxy;
pub use scenario::{run_campaign, run_scenario, CampaignOutcome, ScenarioOutcome, ScenarioSpec};
