//! Seeded fault plans: every injected fault is a pure function of
//! `(seed, operation index)`, so a failing run replays from its seed
//! alone — the same discipline `usep-oracle`'s fuzz driver uses for
//! instance streams.
//!
//! Rates are per-mille (0–1000) rather than floats so plans serialize
//! exactly and two machines never disagree about a threshold.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// SplitMix64 — decorrelates per-operation draws from the master seed.
pub fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Disk-fault rates for a [`FaultyIo`](crate::io::FaultyIo), all
/// per-mille. Append faults (torn / ENOSPC / bit rot / latency) and
/// sync faults (dropped / failed) are drawn independently per
/// operation.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct DiskFaultConfig {
    /// A prefix of the appended bytes lands, then the write errors —
    /// the classic torn write.
    pub torn_write_per_mille: u64,
    /// The append fails with an injected ENOSPC; nothing lands.
    pub enospc_per_mille: u64,
    /// The append succeeds but one plan-chosen bit is flipped — silent
    /// corruption only the CRC frames can catch.
    pub bit_rot_per_mille: u64,
    /// The append sleeps a couple of milliseconds first (shakes thread
    /// interleavings without affecting bytes).
    pub latency_per_mille: u64,
    /// `sync` returns `Ok` *without* making anything durable — the
    /// lying fsync. The loss only materializes at the next power cut.
    pub dropped_sync_per_mille: u64,
    /// `sync` fails outright.
    pub failed_sync_per_mille: u64,
    /// The first N operations never fault, so a server can stamp its
    /// journal header and boot before the disk turns hostile.
    pub warmup_ops: u64,
}

impl DiskFaultConfig {
    /// A disk that never misbehaves (the scenario runner's baseline).
    pub fn clean() -> DiskFaultConfig {
        DiskFaultConfig::default()
    }

    /// Whether any rate is non-zero.
    pub fn is_hostile(&self) -> bool {
        self.torn_write_per_mille
            + self.enospc_per_mille
            + self.bit_rot_per_mille
            + self.latency_per_mille
            + self.dropped_sync_per_mille
            + self.failed_sync_per_mille
            > 0
    }
}

/// What one disk operation is told to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// Behave.
    None,
    /// Land a prefix, then error.
    TornWrite,
    /// Error without landing anything.
    Enospc,
    /// Land everything with one bit flipped, silently.
    BitRot,
    /// Sleep briefly, then behave.
    Latency,
    /// Ack the sync without making anything durable.
    DroppedSync,
    /// Fail the sync.
    FailedSync,
}

/// The per-operation decision engine one `FaultyIo` owns. Thread-safe:
/// the operation counter is atomic and every draw is pure in
/// `(seed, op)`.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    cfg: DiskFaultConfig,
    ops: AtomicU64,
}

impl FaultPlan {
    /// A plan drawing from `seed` at the rates in `cfg`.
    pub fn new(seed: u64, cfg: DiskFaultConfig) -> FaultPlan {
        FaultPlan { seed, cfg, ops: AtomicU64::new(0) }
    }

    /// The configured rates.
    pub fn config(&self) -> &DiskFaultConfig {
        &self.cfg
    }

    /// Claims the next operation index (1-based).
    fn next_op(&self) -> u64 {
        self.ops.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Operations decided so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Decides the fate of the next *append*. The draw walks the
    /// cumulative per-mille ranges torn → ENOSPC → bit rot → latency.
    pub fn next_append(&self) -> DiskFault {
        let op = self.next_op();
        if op <= self.cfg.warmup_ops {
            return DiskFault::None;
        }
        let r = mix(self.seed ^ op) % 1000;
        let mut edge = self.cfg.torn_write_per_mille;
        if r < edge {
            return DiskFault::TornWrite;
        }
        edge += self.cfg.enospc_per_mille;
        if r < edge {
            return DiskFault::Enospc;
        }
        edge += self.cfg.bit_rot_per_mille;
        if r < edge {
            return DiskFault::BitRot;
        }
        edge += self.cfg.latency_per_mille;
        if r < edge {
            return DiskFault::Latency;
        }
        DiskFault::None
    }

    /// Decides the fate of the next *sync*.
    pub fn next_sync(&self) -> DiskFault {
        let op = self.next_op();
        if op <= self.cfg.warmup_ops {
            return DiskFault::None;
        }
        let r = mix(self.seed ^ op) % 1000;
        let mut edge = self.cfg.dropped_sync_per_mille;
        if r < edge {
            return DiskFault::DroppedSync;
        }
        edge += self.cfg.failed_sync_per_mille;
        if r < edge {
            return DiskFault::FailedSync;
        }
        DiskFault::None
    }

    /// A deterministic auxiliary draw for fault *parameters* (which bit
    /// to rot, where to tear), keyed off the current op count so it
    /// replays with the plan.
    pub fn param(&self, salt: u64) -> u64 {
        mix(self.seed ^ self.ops.load(Ordering::SeqCst).wrapping_mul(0x9e37) ^ salt)
    }
}

/// Network-fault rates for a [`ChaosProxy`](crate::proxy::ChaosProxy),
/// drawn once per accepted connection.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct NetFaultConfig {
    /// Hold the connection this long before piping (a slow path, not a
    /// loss); `delay_ms` must exceed the prober's timeout to turn a
    /// delay into a failure.
    pub delay_per_mille: u64,
    /// Milliseconds a delayed connection waits.
    pub delay_ms: u64,
    /// Close the client connection immediately; nothing reaches the
    /// upstream.
    pub drop_per_mille: u64,
    /// Accept, read and discard the client's bytes, answer nothing,
    /// close after `half_open_hold_ms` — the half-open TCP peer.
    pub half_open_per_mille: u64,
    /// Milliseconds a half-open connection is held before closing.
    pub half_open_hold_ms: u64,
    /// Forward the client's first line twice (duplicate delivery — the
    /// exactly-once cache's natural enemy).
    pub duplicate_per_mille: u64,
}

impl NetFaultConfig {
    /// A proxy that only passes traffic through.
    pub fn clean() -> NetFaultConfig {
        NetFaultConfig::default()
    }

    /// Whether any rate is non-zero.
    pub fn is_hostile(&self) -> bool {
        self.delay_per_mille
            + self.drop_per_mille
            + self.half_open_per_mille
            + self.duplicate_per_mille
            > 0
    }

    /// Decides connection `n`'s fate under `seed`.
    pub fn decide(&self, seed: u64, n: u64) -> ConnFault {
        let r = mix(seed ^ n.wrapping_mul(0x5bd1_e995)) % 1000;
        let mut edge = self.delay_per_mille;
        if r < edge {
            return ConnFault::Delay(self.delay_ms);
        }
        edge += self.drop_per_mille;
        if r < edge {
            return ConnFault::Drop;
        }
        edge += self.half_open_per_mille;
        if r < edge {
            return ConnFault::HalfOpen(self.half_open_hold_ms);
        }
        edge += self.duplicate_per_mille;
        if r < edge {
            return ConnFault::Duplicate;
        }
        ConnFault::Passthrough
    }
}

/// What one proxied connection is told to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnFault {
    /// Pipe bytes both ways until EOF.
    Passthrough,
    /// Sleep this many milliseconds, then pipe.
    Delay(u64),
    /// Close immediately.
    Drop,
    /// Read and discard, answer nothing, close after this hold.
    HalfOpen(u64),
    /// Forward the first client line twice, then pipe.
    Duplicate,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_matches_the_oracle_fuzz_constants() {
        // same SplitMix64 as usep-oracle's fuzz driver: spot-check the
        // avalanche rather than the constants
        assert_ne!(mix(0), 0);
        assert_ne!(mix(1), mix(2));
        let a = mix(42);
        let b = mix(43);
        assert!(a != b && (a ^ b).count_ones() > 8, "consecutive seeds must decorrelate");
    }

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let cfg = DiskFaultConfig {
            torn_write_per_mille: 100,
            enospc_per_mille: 100,
            bit_rot_per_mille: 100,
            dropped_sync_per_mille: 100,
            failed_sync_per_mille: 100,
            ..DiskFaultConfig::default()
        };
        let a = FaultPlan::new(7, cfg);
        let b = FaultPlan::new(7, cfg);
        let fa: Vec<DiskFault> = (0..64).map(|_| a.next_append()).collect();
        let fb: Vec<DiskFault> = (0..64).map(|_| b.next_append()).collect();
        assert_eq!(fa, fb);
        assert!(fa.iter().any(|f| *f != DiskFault::None), "rates this high must fire");
    }

    #[test]
    fn warmup_ops_never_fault() {
        let cfg = DiskFaultConfig {
            enospc_per_mille: 1000,
            failed_sync_per_mille: 1000,
            warmup_ops: 4,
            ..DiskFaultConfig::default()
        };
        let plan = FaultPlan::new(1, cfg);
        assert_eq!(plan.next_append(), DiskFault::None);
        assert_eq!(plan.next_sync(), DiskFault::None);
        assert_eq!(plan.next_append(), DiskFault::None);
        assert_eq!(plan.next_sync(), DiskFault::None);
        assert_eq!(plan.next_append(), DiskFault::Enospc, "past warmup the rate applies");
    }

    #[test]
    fn conn_fault_rates_partition_the_draw() {
        let cfg = NetFaultConfig {
            delay_per_mille: 250,
            delay_ms: 5,
            drop_per_mille: 250,
            half_open_per_mille: 250,
            half_open_hold_ms: 5,
            duplicate_per_mille: 250,
        };
        let mut seen = std::collections::BTreeSet::new();
        for n in 0..256 {
            seen.insert(format!("{:?}", cfg.decide(99, n)));
        }
        assert!(seen.len() >= 4, "all fault classes should appear: {seen:?}");
        // and identical (seed, n) always decides identically
        assert_eq!(cfg.decide(99, 7), cfg.decide(99, 7));
    }
}
