//! Whole-fleet failure simulation: a real geo-sharded fleet (router +
//! shard child processes + supervisor), seeded mixed-city traffic, a
//! `SIGKILL` to a live shard mid-run, and the same referee discipline
//! as the single-server scenarios — every answer oracle-checked, every
//! id answered after the dust settles, and the fleet metrics identity
//! intact. This is the scenario runner the CI `fleet-smoke` job drives
//! through `usep chaos --fleet`.

use crate::plan::mix;
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use usep_core::Instance;
use usep_fleet::{Fleet, FleetConfig};
use usep_gen::{generate, SyntheticConfig};
use usep_obs::http;
use usep_obs::top::parse_exposition;
use usep_serve::{send_request, SolveRequest, Status};
use usep_trace::Probe;

const CITIES: [&str; 3] = ["vancouver", "auckland", "singapore"];
const CLIENT_TIMEOUT: Duration = Duration::from_secs(60);
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);
const QUIESCE_TIMEOUT: Duration = Duration::from_secs(90);

/// One whole-fleet scenario.
#[derive(Clone, Debug, Serialize)]
pub struct FleetScenarioSpec {
    /// Seed for traffic and instances.
    pub seed: u64,
    /// Distinct solve requests, spread round-robin over the cities.
    pub requests: u64,
    /// Shard worker processes.
    pub shards: usize,
    /// `SIGKILL` shard-0's worker a third of the way through traffic;
    /// the supervisor must restart it with `--resume` and no accepted
    /// id may be lost.
    pub kill: bool,
}

/// What the fleet scenario produced.
#[derive(Clone, Debug, Serialize)]
pub struct FleetScenarioOutcome {
    /// The spec that ran.
    pub spec: FleetScenarioSpec,
    /// Invariant breaches; empty means the fleet survived the scenario.
    pub violations: Vec<String>,
    /// Traffic-phase responses received.
    pub answered: u64,
    /// Shard restarts the supervisor performed.
    pub restarts: u64,
}

fn size_class(i: u64) -> SyntheticConfig {
    match i % 3 {
        0 => SyntheticConfig::tiny().with_events(4).with_users(3).with_capacity_mean(2),
        1 => SyntheticConfig::tiny().with_events(6).with_users(4).with_capacity_mean(2),
        _ => SyntheticConfig::tiny().with_events(8).with_users(6).with_capacity_mean(3),
    }
}

fn fleet_request(seed: u64, i: u64, inst: &Arc<Instance>) -> SolveRequest {
    SolveRequest {
        id: format!("fs{seed:x}-r{i}"),
        instance: Arc::clone(inst),
        algorithm: None,
        timeout_ms: Some(20_000),
        mem_budget_mb: None,
        city: Some(CITIES[(i % 3) as usize].to_string()),
    }
}

/// Sends with bounded retries: mid-kill a request may catch the router
/// between failover sweeps and come back `Overloaded`, or the
/// connection may die with the shard — both retryable. A typed terminal
/// answer ends the attempts.
fn send_with_retries(
    addr: std::net::SocketAddr,
    req: &SolveRequest,
    attempts: u32,
) -> Option<usep_serve::SolveResponse> {
    for attempt in 0..attempts {
        match send_request(addr, req, CLIENT_TIMEOUT) {
            Ok(resp) if matches!(resp.status, Status::Overloaded { .. }) => {
                std::thread::sleep(Duration::from_millis(100 << attempt.min(4)));
            }
            Ok(resp) => return Some(resp),
            Err(_) => std::thread::sleep(Duration::from_millis(100 << attempt.min(4))),
        }
    }
    None
}

/// Runs the whole-fleet scenario: start a real fleet from `program`
/// (the `usep` binary), drive seeded traffic, optionally murder a
/// shard mid-run, then audit. Errors only when the fleet cannot start
/// at all; everything after that becomes violations.
pub fn run_fleet_scenario(
    program: &str,
    spec: &FleetScenarioSpec,
    probe: &dyn Probe,
) -> std::io::Result<FleetScenarioOutcome> {
    let journal_dir = std::env::temp_dir().join(format!(
        "usep_chaos_fleet_{}_{:x}",
        std::process::id(),
        spec.seed
    ));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let result = run_in_dir(program, spec, probe, &journal_dir);
    let _ = std::fs::remove_dir_all(&journal_dir);
    result
}

fn run_in_dir(
    program: &str,
    spec: &FleetScenarioSpec,
    probe: &dyn Probe,
    journal_dir: &Path,
) -> std::io::Result<FleetScenarioOutcome> {
    let mut fleet = Fleet::start(FleetConfig {
        addr: "127.0.0.1:0".to_string(),
        metrics_addr: Some("127.0.0.1:0".to_string()),
        program: program.to_string(),
        shard_count: spec.shards.max(1),
        journal_dir: journal_dir.to_path_buf(),
        probe_interval: Duration::from_millis(200),
        probe_timeout: Duration::from_millis(400),
        ..FleetConfig::default()
    })?;
    let addr = fleet.addr();
    let maddr = fleet
        .metrics_addr()
        .expect("fleet scenario always runs a metrics listener")
        .to_string();

    let mut violations: Vec<String> = Vec::new();
    let mut answered = 0u64;
    let kill_at = spec.requests / 3;

    // -- traffic, with one murder in the middle ----------------------
    let mut instances: Vec<(String, Arc<Instance>)> = Vec::new();
    for i in 0..spec.requests {
        if spec.kill && i == kill_at && !fleet.kill_shard("shard-0") {
            violations.push("kill_shard(shard-0) found no managed shard".to_string());
        }
        let inst = Arc::new(generate(&size_class(i), mix(spec.seed ^ i ^ 0xF1EE)));
        let req = fleet_request(spec.seed, i, &inst);
        instances.push((req.id.clone(), Arc::clone(&inst)));
        if send_with_retries(addr, &req, 6).is_some() {
            answered += 1;
        }
    }

    // -- audit: after the dust settles, EVERY id must answer ---------
    for (i, (id, inst)) in instances.iter().enumerate() {
        let req = SolveRequest {
            id: id.clone(),
            instance: Arc::clone(inst),
            algorithm: None,
            timeout_ms: Some(20_000),
            mem_budget_mb: None,
            city: Some(CITIES[i % 3].to_string()),
        };
        match send_with_retries(addr, &req, 8) {
            None => violations.push(format!("id '{id}' never got an answer from the fleet")),
            Some(resp) => {
                if resp.id != *id {
                    violations.push(format!("fleet answered '{id}' with id '{}'", resp.id));
                }
                match &resp.status {
                    Status::Complete | Status::Truncated { .. } => {
                        if let Some(planning) = &resp.planning {
                            let report = usep_oracle::check_planning_with_omega(
                                inst, planning, resp.omega, probe,
                            );
                            if !report.is_valid() {
                                violations.push(format!(
                                    "oracle rejected fleet planning for '{id}': {report:?}"
                                ));
                            }
                        }
                    }
                    other => violations.push(format!(
                        "id '{id}' settled on a non-terminal status: {other:?}"
                    )),
                }
            }
        }
    }

    // -- fleet metrics identity --------------------------------------
    let deadline = Instant::now() + QUIESCE_TIMEOUT;
    let mut restarts = 0u64;
    let mut identity_ok = false;
    let mut last_detail = String::new();
    while Instant::now() < deadline {
        let Ok(text) = http::get(&maddr, "/metrics", SCRAPE_TIMEOUT) else {
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        let s = parse_exposition(&text);
        let requests = s.value("usep_fleet_requests_total").unwrap_or(f64::NAN);
        let replayed = s.value("usep_fleet_replayed_total").unwrap_or(f64::NAN);
        let rejected = s.value("usep_fleet_rejected_total").unwrap_or(f64::NAN);
        let shed = s.value("usep_fleet_shed_total").unwrap_or(f64::NAN);
        let completed = s.family_sum("usep_fleet_completed_total");
        let inflight = s.family_sum("usep_fleet_inflight");
        restarts = s.family_sum("usep_fleet_restarts_total") as u64;
        last_detail = format!(
            "requests {requests} = replayed {replayed} + rejected {rejected} + shed {shed} \
             + completed {completed} + inflight {inflight}"
        );
        // when a shard was killed, also wait for its supervised
        // restart to land: the router fails traffic over to the
        // surviving shards, so the request identity can balance while
        // the respawn is still reading the new child's banner
        if inflight == 0.0
            && requests == replayed + rejected + shed + completed
            && (!spec.kill || restarts >= 1)
        {
            identity_ok = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    if !identity_ok {
        violations.push(format!("fleet request identity never balanced: {last_detail}"));
    }
    if spec.kill && restarts == 0 {
        violations.push("shard-0 was SIGKILLed but the supervisor recorded no restart".to_string());
    }

    fleet.shutdown();
    probe.count(usep_trace::Counter::ChaosScenario, 1);
    Ok(FleetScenarioOutcome { spec: spec.clone(), violations, answered, restarts })
}
