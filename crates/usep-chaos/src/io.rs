//! `FaultyIo` — an in-memory disk model implementing
//! [`usep_serve::JournalIo`] with seeded fault injection.
//!
//! The model keeps two byte buffers: **volatile** (written but not yet
//! fsynced — the page cache) and **durable** (survives a power cut).
//! `append` lands in volatile; an honest `sync` moves volatile into
//! durable; a *lying* sync acks without moving anything — the loss only
//! becomes visible after [`FaultyIo::power_cycle`], exactly like real
//! hardware. `read` sees both buffers (the live filesystem view), so a
//! running server never notices a lying fsync; only its restarted
//! successor does.
//!
//! Faults are drawn per operation from a [`FaultPlan`], so every run is
//! a pure function of the seed. Injection counts are tracked for the
//! `chaos_fault_injected` trace counter.

use crate::plan::{DiskFault, DiskFaultConfig, FaultPlan};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use usep_serve::JournalIo;

#[derive(Debug, Default)]
struct Disk {
    durable: Vec<u8>,
    volatile: Vec<u8>,
    powered_off: bool,
}

/// The seeded hostile disk. Clone the `Arc` you wrap it in — the model
/// itself is shared state.
#[derive(Debug)]
pub struct FaultyIo {
    plan: FaultPlan,
    disk: Mutex<Disk>,
    injected: AtomicU64,
    torn: AtomicU64,
    enospc: AtomicU64,
    rotted: AtomicU64,
    lying_syncs: AtomicU64,
}

impl FaultyIo {
    /// A hostile disk drawing faults from `seed` at the rates in `cfg`.
    pub fn new(seed: u64, cfg: DiskFaultConfig) -> FaultyIo {
        FaultyIo {
            plan: FaultPlan::new(seed, cfg),
            disk: Mutex::new(Disk::default()),
            injected: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            enospc: AtomicU64::new(0),
            rotted: AtomicU64::new(0),
            lying_syncs: AtomicU64::new(0),
        }
    }

    /// A disk that behaves until told otherwise (clean plan).
    pub fn clean() -> FaultyIo {
        FaultyIo::new(0, DiskFaultConfig::clean())
    }

    /// A disk whose every post-warmup append fails with ENOSPC — the
    /// satellite regression fixture for journal-append shedding.
    pub fn always_enospc(warmup_ops: u64) -> FaultyIo {
        FaultyIo::new(
            0,
            DiskFaultConfig { enospc_per_mille: 1000, warmup_ops, ..DiskFaultConfig::clean() },
        )
    }

    /// Total faults injected so far (for `chaos_fault_injected`).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Lying-fsync count — acks whose bytes will vanish at the next
    /// power cut.
    pub fn lying_syncs(&self) -> u64 {
        self.lying_syncs.load(Ordering::SeqCst)
    }

    /// Bit-rot injections (silent single-bit flips).
    pub fn rotted(&self) -> u64 {
        self.rotted.load(Ordering::SeqCst)
    }

    /// Cuts power: every subsequent operation fails until
    /// [`Self::power_cycle`]. (The running server experiences a dead
    /// disk; its threads stay alive to be drained.)
    pub fn power_off(&self) {
        self.disk.lock().unwrap_or_else(|p| p.into_inner()).powered_off = true;
    }

    /// Restores power *across a crash*: the volatile buffer — every
    /// byte appended but never honestly fsynced, including everything a
    /// lying sync acked — is gone. This is the moment dropped syncs
    /// stop being hypothetical.
    pub fn power_cycle(&self) {
        let mut disk = self.disk.lock().unwrap_or_else(|p| p.into_inner());
        disk.volatile.clear();
        disk.powered_off = false;
    }

    /// The durable bytes alone — what a post-crash replay would see.
    pub fn durable_snapshot(&self) -> Vec<u8> {
        self.disk.lock().unwrap_or_else(|p| p.into_inner()).durable.clone()
    }

    fn count(&self, cell: &AtomicU64) {
        self.injected.fetch_add(1, Ordering::SeqCst);
        cell.fetch_add(1, Ordering::SeqCst);
    }

    fn dead_disk() -> io::Error {
        io::Error::other("injected power failure: disk is gone")
    }
}

impl JournalIo for FaultyIo {
    fn append(&self, bytes: &[u8]) -> io::Result<()> {
        let fault = self.plan.next_append();
        if fault == DiskFault::Latency {
            self.injected.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let mut disk = self.disk.lock().unwrap_or_else(|p| p.into_inner());
        if disk.powered_off {
            return Err(FaultyIo::dead_disk());
        }
        match fault {
            DiskFault::Enospc => {
                self.count(&self.enospc);
                Err(io::Error::other("ENOSPC: injected disk-full"))
            }
            DiskFault::TornWrite => {
                // a plan-chosen strict prefix lands, then the write dies
                self.count(&self.torn);
                let keep = (self.plan.param(0xA) as usize) % bytes.len().max(1);
                disk.volatile.extend_from_slice(&bytes[..keep]);
                Err(io::Error::new(io::ErrorKind::WriteZero, "torn write: injected"))
            }
            DiskFault::BitRot => {
                // everything lands, one bit flipped, and the call LIES
                // by succeeding — only a CRC can catch this
                self.count(&self.rotted);
                let mut rotted = bytes.to_vec();
                if !rotted.is_empty() {
                    let bit = (self.plan.param(0xB) as usize) % (rotted.len() * 8);
                    rotted[bit / 8] ^= 1 << (bit % 8);
                }
                disk.volatile.extend_from_slice(&rotted);
                Ok(())
            }
            _ => {
                disk.volatile.extend_from_slice(bytes);
                Ok(())
            }
        }
    }

    fn sync(&self) -> io::Result<()> {
        let fault = self.plan.next_sync();
        let mut disk = self.disk.lock().unwrap_or_else(|p| p.into_inner());
        if disk.powered_off {
            return Err(FaultyIo::dead_disk());
        }
        match fault {
            DiskFault::DroppedSync => {
                // Ok, but nothing becomes durable: the lying fsync
                self.count(&self.lying_syncs);
                Ok(())
            }
            DiskFault::FailedSync => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                Err(io::Error::other("fsync failed: injected"))
            }
            _ => {
                let pending = std::mem::take(&mut disk.volatile);
                disk.durable.extend_from_slice(&pending);
                Ok(())
            }
        }
    }

    fn read(&self) -> io::Result<Vec<u8>> {
        let disk = self.disk.lock().unwrap_or_else(|p| p.into_inner());
        if disk.powered_off {
            return Err(FaultyIo::dead_disk());
        }
        // the live filesystem view: durable plus not-yet-synced pages
        let mut all = disk.durable.clone();
        all.extend_from_slice(&disk.volatile);
        Ok(all)
    }

    fn replace(&self, bytes: &[u8]) -> io::Result<()> {
        // Compaction writes a tmp file, fsyncs it, renames. In the
        // model the ENOSPC rate can fail the staging write (old
        // contents fully intact — the atomic-rename contract's "crash
        // before rename" arm); otherwise the swap is atomic and
        // durable.
        let fault = self.plan.next_append();
        let mut disk = self.disk.lock().unwrap_or_else(|p| p.into_inner());
        if disk.powered_off {
            return Err(FaultyIo::dead_disk());
        }
        if fault == DiskFault::Enospc {
            self.count(&self.enospc);
            return Err(io::Error::other("ENOSPC: injected disk-full staging compaction"));
        }
        if fault == DiskFault::TornWrite {
            // crash before the rename: the tmp file is garbage, the old
            // journal is untouched — the atomic-rename contract's other arm
            self.count(&self.torn);
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected crash while staging compaction",
            ));
        }
        disk.durable = bytes.to_vec();
        disk.volatile.clear();
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        let disk = self.disk.lock().unwrap_or_else(|p| p.into_inner());
        if disk.powered_off {
            return Err(FaultyIo::dead_disk());
        }
        Ok((disk.durable.len() + disk.volatile.len()) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_path_round_trips() {
        let io = FaultyIo::clean();
        io.append(b"one\n").unwrap();
        assert_eq!(io.read().unwrap(), b"one\n", "unsynced bytes are visible live");
        io.sync().unwrap();
        io.append(b"two\n").unwrap();
        assert_eq!(io.read().unwrap(), b"one\ntwo\n");
        assert_eq!(io.len().unwrap(), 8);
        assert_eq!(io.injected(), 0);
    }

    #[test]
    fn power_cycle_loses_exactly_the_unsynced_suffix() {
        let io = FaultyIo::clean();
        io.append(b"synced\n").unwrap();
        io.sync().unwrap();
        io.append(b"lost\n").unwrap();
        io.power_off();
        assert!(io.append(b"x").is_err(), "dead disk takes nothing");
        assert!(io.read().is_err());
        io.power_cycle();
        assert_eq!(io.read().unwrap(), b"synced\n");
    }

    #[test]
    fn lying_sync_loss_materializes_only_at_the_power_cut() {
        let io = FaultyIo::new(
            3,
            DiskFaultConfig { dropped_sync_per_mille: 1000, ..DiskFaultConfig::clean() },
        );
        io.append(b"acked\n").unwrap();
        io.sync().unwrap(); // lies
        assert_eq!(io.lying_syncs(), 1);
        assert_eq!(io.read().unwrap(), b"acked\n", "the live view hides the lie");
        io.power_off();
        io.power_cycle();
        assert_eq!(io.read().unwrap(), b"", "the crash reveals it");
    }

    #[test]
    fn enospc_appends_land_nothing() {
        let io = FaultyIo::always_enospc(0);
        let err = io.append(b"doomed\n").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert_eq!(io.read().unwrap(), b"");
        assert_eq!(io.injected(), 1);
    }

    #[test]
    fn torn_write_lands_a_strict_prefix_and_errors() {
        let io = FaultyIo::new(
            5,
            DiskFaultConfig { torn_write_per_mille: 1000, ..DiskFaultConfig::clean() },
        );
        let err = io.append(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        let left = io.read().unwrap();
        assert!(left.len() < 10, "a torn write must not land everything");
        assert!(b"0123456789".starts_with(&left[..]), "what lands is a prefix");
    }

    #[test]
    fn bit_rot_flips_exactly_one_bit_and_lies_about_it() {
        let io = FaultyIo::new(
            9,
            DiskFaultConfig { bit_rot_per_mille: 1000, ..DiskFaultConfig::clean() },
        );
        let original = b"a perfectly innocent journal line\n";
        io.append(original).unwrap(); // Ok — the lie
        let stored = io.read().unwrap();
        assert_eq!(stored.len(), original.len());
        let differing: u32 =
            stored.iter().zip(original.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(differing, 1, "exactly one flipped bit");
        assert_eq!(io.rotted(), 1);
    }

    #[test]
    fn replace_is_atomic_and_clears_volatile() {
        let io = FaultyIo::clean();
        io.append(b"old\n").unwrap();
        io.sync().unwrap();
        io.append(b"unsynced\n").unwrap();
        io.replace(b"compacted\n").unwrap();
        assert_eq!(io.read().unwrap(), b"compacted\n");
        io.power_off();
        io.power_cycle();
        assert_eq!(io.read().unwrap(), b"compacted\n", "replace is durable");
    }

    #[test]
    fn same_seed_same_faults() {
        let cfg = DiskFaultConfig {
            torn_write_per_mille: 200,
            enospc_per_mille: 200,
            bit_rot_per_mille: 200,
            ..DiskFaultConfig::clean()
        };
        let run = |seed: u64| {
            let io = FaultyIo::new(seed, cfg);
            let mut log = Vec::new();
            for i in 0..32 {
                let line = format!("record-{i}\n");
                log.push(io.append(line.as_bytes()).is_ok());
                log.push(io.sync().is_ok());
            }
            (log, io.read().unwrap())
        };
        assert_eq!(run(77), run(77), "identical seed, identical history and bytes");
        assert_ne!(run(77).0, run(78).0, "different seed, different fault pattern");
    }
}
