//! `ChaosProxy` — an in-process TCP fault proxy.
//!
//! Sits between a client (the fleet router, a health prober, a test)
//! and one upstream listener, and gives each accepted connection a
//! seeded fate: pass it through, delay it past a prober's patience,
//! drop it cold, hold it half-open (bytes in, silence out), or
//! duplicate the first request line. Connection fates come from
//! [`NetFaultConfig::decide`] so a run replays from its seed, or from
//! an explicit script when a test wants full control of the order.

use crate::plan::{ConnFault, NetFaultConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

enum FaultSource {
    Seeded { seed: u64, cfg: NetFaultConfig },
    Scripted(Vec<ConnFault>),
}

impl FaultSource {
    fn decide(&self, n: u64) -> ConnFault {
        match self {
            FaultSource::Seeded { seed, cfg } => cfg.decide(*seed, n),
            FaultSource::Scripted(script) => {
                if script.is_empty() {
                    ConnFault::Passthrough
                } else {
                    script[(n as usize) % script.len()]
                }
            }
        }
    }
}

/// A running fault proxy. Dropping it stops the accept loop.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    faulted: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy in front of `upstream` whose per-connection fates
    /// are drawn from `(seed, cfg)`.
    pub fn start(upstream: SocketAddr, seed: u64, cfg: NetFaultConfig) -> std::io::Result<ChaosProxy> {
        ChaosProxy::spawn(upstream, FaultSource::Seeded { seed, cfg })
    }

    /// Starts a proxy whose connection fates cycle through an explicit
    /// script — deterministic tests pin the exact order of failures.
    pub fn scripted(upstream: SocketAddr, script: Vec<ConnFault>) -> std::io::Result<ChaosProxy> {
        ChaosProxy::spawn(upstream, FaultSource::Scripted(script))
    }

    fn spawn(upstream: SocketAddr, source: FaultSource) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let faulted = Arc::new(AtomicU64::new(0));
        let thread = {
            let stop = Arc::clone(&stop);
            let accepted = Arc::clone(&accepted);
            let faulted = Arc::clone(&faulted);
            std::thread::Builder::new().name("chaos-proxy".into()).spawn(move || {
                // short accept timeout so shutdown is prompt
                listener.set_nonblocking(false).ok();
                let mut n = 0u64;
                loop {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    listener
                        .set_nonblocking(true)
                        .expect("chaos proxy: toggling nonblocking accept");
                    let conn = listener.accept();
                    listener.set_nonblocking(false).ok();
                    let (client, _) = match conn {
                        Ok(pair) => pair,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                            continue;
                        }
                        Err(_) => return,
                    };
                    let fault = source.decide(n);
                    n += 1;
                    accepted.fetch_add(1, Ordering::SeqCst);
                    if fault != ConnFault::Passthrough {
                        faulted.fetch_add(1, Ordering::SeqCst);
                    }
                    std::thread::Builder::new()
                        .name(format!("chaos-conn-{n}"))
                        .spawn(move || handle_conn(client, upstream, fault))
                        .expect("chaos proxy: spawning connection thread");
                }
            })?
        };
        Ok(ChaosProxy { addr, stop, accepted, faulted, thread: Some(thread) })
    }

    /// The proxy's listen address — point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Connections given a non-passthrough fate.
    pub fn faulted(&self) -> u64 {
        self.faulted.load(Ordering::SeqCst)
    }

    /// Stops accepting; in-flight connection threads drain on their own.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // unblock a blocking accept by dialing ourselves
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(100));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_conn(client: TcpStream, upstream: SocketAddr, fault: ConnFault) {
    match fault {
        ConnFault::Drop => {
            let _ = client.shutdown(Shutdown::Both);
        }
        ConnFault::HalfOpen(hold_ms) => {
            // swallow the client's bytes, answer nothing, hang up late —
            // the peer that forces timeouts rather than clean errors
            client.set_read_timeout(Some(Duration::from_millis(hold_ms.max(1)))).ok();
            let mut sink = [0u8; 4096];
            let mut c = client;
            let deadline = std::time::Instant::now() + Duration::from_millis(hold_ms);
            while std::time::Instant::now() < deadline {
                match c.read(&mut sink) {
                    // even after the client stops talking, the socket
                    // stays hostage until the hold expires
                    Ok(0) | Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    Ok(_) => {}
                }
            }
            let _ = c.shutdown(Shutdown::Both);
        }
        ConnFault::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            pipe_both_ways(client, upstream, false);
        }
        ConnFault::Duplicate => pipe_both_ways(client, upstream, true),
        ConnFault::Passthrough => pipe_both_ways(client, upstream, false),
    }
}

/// Connects upstream and pipes bytes in both directions until either
/// side closes. With `duplicate_first_line`, the client's first
/// newline-terminated line is written upstream twice — duplicate
/// delivery without the client's knowledge.
fn pipe_both_ways(client: TcpStream, upstream: SocketAddr, duplicate_first_line: bool) {
    let up = match TcpStream::connect_timeout(&upstream, Duration::from_secs(5)) {
        Ok(s) => s,
        Err(_) => {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    let client_r = match client.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let up_r = match up.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // upstream → client on this thread's sibling; client → upstream here
    let down = std::thread::Builder::new()
        .name("chaos-pipe-down".into())
        .spawn(move || copy_until_eof(up_r, client))
        .ok();
    copy_client_to_upstream(client_r, up, duplicate_first_line);
    if let Some(t) = down {
        let _ = t.join();
    }
}

fn copy_until_eof(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 8192];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(k) => {
                if to.write_all(&buf[..k]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

fn copy_client_to_upstream(from: TcpStream, mut to: TcpStream, duplicate_first_line: bool) {
    let mut reader = BufReader::new(from);
    if duplicate_first_line {
        let mut line = String::new();
        if reader.read_line(&mut line).is_ok()
            && !line.is_empty()
            && (to.write_all(line.as_bytes()).is_err() || to.write_all(line.as_bytes()).is_err())
        {
            return;
        }
    }
    let mut buf = [0u8; 8192];
    loop {
        match reader.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(k) => {
                if to.write_all(&buf[..k]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    /// A tiny line-echo upstream for proxy tests.
    fn echo_upstream() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo upstream");
        let addr = listener.local_addr().expect("echo addr");
        let t = std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { return };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut out = stream;
                    let mut line = String::new();
                    while reader.read_line(&mut line).map(|k| k > 0).unwrap_or(false) {
                        if line.trim() == "quit" {
                            return; // kills the accept loop's owner thread only
                        }
                        if out.write_all(format!("echo:{line}").as_bytes()).is_err() {
                            return;
                        }
                        line.clear();
                    }
                });
            }
        });
        (addr, t)
    }

    fn roundtrip(addr: SocketAddr, msg: &str) -> std::io::Result<Vec<String>> {
        let mut s = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
        s.set_read_timeout(Some(Duration::from_millis(800)))?;
        s.write_all(msg.as_bytes())?;
        s.shutdown(Shutdown::Write)?;
        let mut lines = Vec::new();
        let mut reader = BufReader::new(s);
        let mut line = String::new();
        while reader.read_line(&mut line).map(|k| k > 0).unwrap_or(false) {
            lines.push(line.trim().to_string());
            line.clear();
        }
        Ok(lines)
    }

    #[test]
    fn passthrough_echoes_and_drop_returns_nothing() {
        let (up, _t) = echo_upstream();
        let mut proxy =
            ChaosProxy::scripted(up, vec![ConnFault::Passthrough, ConnFault::Drop]).expect("proxy");
        let ok = roundtrip(proxy.addr(), "hello\n").expect("passthrough conn");
        assert_eq!(ok, vec!["echo:hello"]);
        let dropped = roundtrip(proxy.addr(), "hello\n").unwrap_or_default();
        assert!(dropped.is_empty(), "dropped connection must answer nothing: {dropped:?}");
        assert_eq!(proxy.accepted(), 2);
        assert_eq!(proxy.faulted(), 1);
        proxy.shutdown();
    }

    #[test]
    fn duplicate_forwards_the_first_line_twice() {
        let (up, _t) = echo_upstream();
        let mut proxy = ChaosProxy::scripted(up, vec![ConnFault::Duplicate]).expect("proxy");
        let lines = roundtrip(proxy.addr(), "dup\n").expect("duplicate conn");
        assert_eq!(lines, vec!["echo:dup", "echo:dup"], "upstream must see the line twice");
        proxy.shutdown();
    }

    #[test]
    fn half_open_swallows_bytes_and_never_answers() {
        let (up, _t) = echo_upstream();
        let mut proxy = ChaosProxy::scripted(up, vec![ConnFault::HalfOpen(80)]).expect("proxy");
        let start = std::time::Instant::now();
        let lines = roundtrip(proxy.addr(), "anyone?\n").unwrap_or_default();
        assert!(lines.is_empty(), "half-open peer must stay silent: {lines:?}");
        assert!(start.elapsed() >= Duration::from_millis(40), "and must hold the socket a while");
        proxy.shutdown();
    }

    #[test]
    fn seeded_fates_replay_identically() {
        let cfg = NetFaultConfig {
            drop_per_mille: 500,
            ..NetFaultConfig::clean()
        };
        let fates = |seed: u64| -> Vec<bool> {
            let (up, _t) = echo_upstream();
            let mut proxy = ChaosProxy::start(up, seed, cfg).expect("proxy");
            let got: Vec<bool> = (0..12)
                .map(|i| {
                    !roundtrip(proxy.addr(), &format!("m{i}\n")).unwrap_or_default().is_empty()
                })
                .collect();
            proxy.shutdown();
            got
        };
        let a = fates(11);
        assert_eq!(a, fates(11), "same seed, same per-connection outcomes");
        assert!(a.iter().any(|ok| *ok) && a.iter().any(|ok| !ok), "rate 500 should mix outcomes");
    }
}
