//! The seeded scenario runner behind `usep chaos`.
//!
//! One scenario boots a real `usep-serve` server on a [`FaultyIo`]
//! disk, optionally fronts it with a [`ChaosProxy`], drives seeded
//! mixed-city traffic through it, optionally power-cuts the incarnation
//! mid-life and resumes a second one from the surviving journal — and
//! then **audits the wreckage**: every answer is re-requested twice and
//! checked against the `usep-oracle` constraint oracle, the
//! exactly-once cache is checked for split-brain answers, and the
//! serve metrics must still satisfy the reconciliation identities.
//!
//! Every fault is a pure function of the scenario seed, so a violation
//! is replayable from the printed seed alone; the campaign then greedily
//! minimizes the failing spec (fewer fault planes, fewer requests)
//! before emitting the repro report.

use crate::io::FaultyIo;
use crate::plan::{mix, DiskFaultConfig, NetFaultConfig};
use crate::proxy::ChaosProxy;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use usep_core::Instance;
use usep_gen::{generate, SyntheticConfig};
use usep_obs::http;
use usep_obs::top::parse_exposition;
use usep_serve::{send_request, JournalIo, ServeConfig, Server, SolveRequest, SolveResponse, Status};
use usep_trace::{Counter, Probe};

/// The cities seeded traffic cycles through (the fleet's default map).
const CITIES: [&str; 3] = ["vancouver", "auckland", "singapore"];

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);
const QUIESCE_TIMEOUT: Duration = Duration::from_secs(60);

/// One fully-described chaos scenario. Serializable, so a repro report
/// carries the exact spec that failed — but [`ScenarioSpec::from_seed`]
/// derives every field from the seed, so the seed alone suffices.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Master seed: fault plans, traffic, instances all derive from it.
    pub seed: u64,
    /// Distinct solve requests in the traffic phase.
    pub requests: u64,
    /// Extra duplicate sends interleaved into the traffic phase.
    pub duplicates: u64,
    /// Solver threads in the server under test.
    pub workers: usize,
    /// Disk-fault plane; `None` runs on an honest (but still
    /// crash-able) in-memory disk.
    pub disk: Option<DiskFaultConfig>,
    /// Network-fault plane; `None` sends traffic straight at the server.
    pub proxy: Option<NetFaultConfig>,
    /// Power-cut the first incarnation after traffic and resume a
    /// second one from whatever the disk durably kept.
    pub crash: bool,
    /// Panic inside the solve fence on every Nth solve.
    pub chaos_panic_every: Option<u64>,
}

impl ScenarioSpec {
    /// Derives a scenario from its seed — the mapping `usep chaos` uses
    /// for scenario `i` of a campaign. Every knob is an independent
    /// SplitMix64 draw, so nearby seeds give unrelated scenarios.
    pub fn from_seed(seed: u64) -> ScenarioSpec {
        let draw = |salt: u64| mix(seed ^ salt.wrapping_mul(0x9e37_79b9));
        let disk = if draw(1) % 2 == 0 {
            Some(DiskFaultConfig {
                torn_write_per_mille: 20 + draw(2) % 40,
                enospc_per_mille: 20 + draw(3) % 40,
                bit_rot_per_mille: 20 + draw(4) % 40,
                latency_per_mille: draw(5) % 60,
                dropped_sync_per_mille: 20 + draw(6) % 50,
                failed_sync_per_mille: draw(7) % 40,
                // the header stamp and boot happen before hostility
                warmup_ops: 3,
            })
        } else {
            None
        };
        let proxy = if draw(8) % 2 == 0 {
            Some(NetFaultConfig {
                delay_per_mille: 60 + draw(9) % 80,
                delay_ms: 10 + draw(10) % 40,
                drop_per_mille: 60 + draw(11) % 80,
                half_open_per_mille: 40 + draw(12) % 60,
                half_open_hold_ms: 20 + draw(13) % 60,
                duplicate_per_mille: 60 + draw(14) % 80,
            })
        } else {
            None
        };
        ScenarioSpec {
            seed,
            requests: 5 + draw(15) % 8,
            duplicates: draw(16) % 4,
            workers: 1 + (draw(17) % 3) as usize,
            disk,
            proxy,
            crash: draw(18) % 3 == 0,
            chaos_panic_every: if draw(19) % 4 == 0 { Some(2 + draw(20) % 3) } else { None },
        }
    }
}

/// What one scenario run produced.
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioOutcome {
    /// The spec that ran.
    pub spec: ScenarioSpec,
    /// Invariant breaches, empty on a clean run. Any entry means the
    /// seed reproduces a real bug (or a broken invariant).
    pub violations: Vec<String>,
    /// Traffic-phase responses actually received.
    pub answered: u64,
    /// Traffic-phase sends lost to the network plane (tolerated when a
    /// proxy is configured).
    pub send_errors: u64,
    /// Disk faults the plan injected.
    pub disk_faults: u64,
    /// Connections the proxy gave a hostile fate.
    pub net_faults: u64,
    /// Corrupt journal records quarantined on resume.
    pub quarantined: u64,
    /// Requests the second incarnation re-enqueued from the journal.
    pub resumed: u64,
}

/// The instance stream: the oracle fuzz driver's size classes, one per
/// request index, so scenarios sweep tiny through mid-size instances.
fn size_class(i: u64) -> SyntheticConfig {
    match i % 4 {
        0 => SyntheticConfig::tiny().with_events(4).with_users(3).with_capacity_mean(2),
        1 => SyntheticConfig::tiny().with_events(6).with_users(4).with_capacity_mean(2),
        2 => SyntheticConfig::tiny().with_events(8).with_users(6).with_capacity_mean(3),
        _ => SyntheticConfig::tiny().with_events(12).with_users(20).with_capacity_mean(4),
    }
}

fn request_for(spec: &ScenarioSpec, i: u64, inst: &Arc<Instance>) -> SolveRequest {
    SolveRequest {
        id: format!("s{:x}-r{i}", spec.seed),
        instance: Arc::clone(inst),
        algorithm: None,
        timeout_ms: Some(10_000),
        mem_budget_mb: None,
        city: Some(CITIES[(i % 3) as usize].to_string()),
    }
}

fn serve_config(spec: &ScenarioSpec, io: &Arc<FaultyIo>, resume: bool) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: spec.workers.max(1),
        journal_io: Some(Arc::clone(io) as Arc<dyn JournalIo>),
        resume,
        chaos_panic_every: spec.chaos_panic_every,
        metrics_addr: Some("127.0.0.1:0".to_string()),
        shard_id: Some("chaos-0".to_string()),
        ..ServeConfig::default()
    }
}

/// Two answers for the same id must be the same answer.
fn same_answer(a: &SolveResponse, b: &SolveResponse) -> bool {
    a.status.describe() == b.status.describe()
        && a.omega.to_bits() == b.omega.to_bits()
        && a.assignments == b.assignments
}

/// Waits until the server has nothing in flight and has processed at
/// least its resumed backlog. Returns the final exposition text, or the
/// timeout violation.
fn await_quiesce(maddr: &str, resumed: u64) -> Result<String, String> {
    let deadline = Instant::now() + QUIESCE_TIMEOUT;
    let mut last = String::new();
    while Instant::now() < deadline {
        if let Ok(text) = http::get(maddr, "/metrics", SCRAPE_TIMEOUT) {
            let s = parse_exposition(&text);
            let inflight = s.value("usep_serve_inflight").unwrap_or(f64::NAN);
            let processed = s.family_sum("usep_serve_completed_total")
                + s.family_sum("usep_serve_failed_total");
            if inflight == 0.0 && processed >= resumed as f64 {
                return Ok(text);
            }
            last = text;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    Err(format!("server never quiesced within {QUIESCE_TIMEOUT:?}; last scrape:\n{last}"))
}

/// Runs one scenario start to finish and audits it. Infallible by
/// design: anything unexpected becomes a violation string, because in a
/// chaos campaign an un-runnable scenario *is* a finding.
pub fn run_scenario(spec: &ScenarioSpec, probe: &dyn Probe) -> ScenarioOutcome {
    probe.count(Counter::ChaosScenario, 1);
    let mut violations: Vec<String> = Vec::new();
    let mut answered = 0u64;
    let mut send_errors = 0u64;

    // every scenario runs on the fault-injectable disk, even a "clean"
    // one — the crash plane needs the volatile/durable split
    let disk_cfg = spec
        .disk
        .map(|mut d| {
            d.warmup_ops = d.warmup_ops.max(3);
            d
        })
        .unwrap_or_else(DiskFaultConfig::clean);
    let faulty = Arc::new(FaultyIo::new(mix(spec.seed ^ 0xD15C), disk_cfg));

    let server = match Server::start(serve_config(spec, &faulty, false)) {
        Ok(s) => s,
        Err(e) => {
            return ScenarioOutcome {
                spec: spec.clone(),
                violations: vec![format!("first incarnation failed to start: {e}")],
                answered: 0,
                send_errors: 0,
                disk_faults: faulty.injected(),
                net_faults: 0,
                quarantined: 0,
                resumed: 0,
            }
        }
    };

    let mut proxy = match spec.proxy {
        Some(net) => match ChaosProxy::start(server.addr(), mix(spec.seed ^ 0x9E7), net) {
            Ok(p) => Some(p),
            Err(e) => {
                violations.push(format!("chaos proxy failed to start: {e}"));
                None
            }
        },
        None => None,
    };
    let target = proxy.as_ref().map(ChaosProxy::addr).unwrap_or_else(|| server.addr());

    // -- traffic phase, through whatever the network plane allows ----
    let mut instances: BTreeMap<String, Arc<Instance>> = BTreeMap::new();
    let mut ids: Vec<String> = Vec::new();
    for i in 0..spec.requests {
        let inst = Arc::new(generate(&size_class(i), mix(spec.seed ^ i ^ 0xA5A5)));
        let req = request_for(spec, i, &inst);
        instances.insert(req.id.clone(), inst);
        ids.push(req.id.clone());
        match send_request(target, &req, CLIENT_TIMEOUT) {
            Ok(resp) => {
                answered += 1;
                if resp.id != req.id {
                    violations.push(format!(
                        "response id '{}' does not echo request id '{}'",
                        resp.id, req.id
                    ));
                }
            }
            Err(e) => {
                send_errors += 1;
                if spec.proxy.is_none() {
                    // only the network plane may eat a connection; a
                    // hostile DISK must shed with a typed response
                    violations.push(format!("send failed without a proxy in the path: {e}"));
                }
            }
        }
        // interleave duplicate deliveries mid-traffic
        if i < spec.duplicates {
            let dup = request_for(spec, i, &instances[&ids[i as usize]]);
            if send_request(target, &dup, CLIENT_TIMEOUT).is_ok() {
                answered += 1;
            } else {
                send_errors += 1;
            }
        }
    }

    let net_faults = proxy.as_ref().map(ChaosProxy::faulted).unwrap_or(0);
    if let Some(p) = proxy.as_mut() {
        p.shutdown();
    }
    drop(proxy);

    // -- process plane: power-cut and resume -------------------------
    let server = if spec.crash {
        faulty.power_off();
        server.shutdown();
        server.wait();
        // the crash erases everything never honestly fsynced — lying
        // fsyncs stop being hypothetical here
        faulty.power_cycle();
        match Server::start(serve_config(spec, &faulty, true)) {
            Ok(s) => s,
            Err(e) => {
                violations.push(format!(
                    "second incarnation failed to resume from the surviving journal: {e}"
                ));
                probe.count(Counter::ChaosFault, faulty.injected() + net_faults);
                return ScenarioOutcome {
                    spec: spec.clone(),
                    violations,
                    answered,
                    send_errors,
                    disk_faults: faulty.injected(),
                    net_faults,
                    quarantined: 0,
                    resumed: 0,
                };
            }
        }
    } else {
        server
    };
    let resumed = server.resumed();
    let quarantined = server.counter(Counter::JournalQuarantine);
    let maddr = server.metrics_addr().expect("scenario servers always run metrics").to_string();

    // let the resumed backlog drain before auditing
    if let Err(v) = await_quiesce(&maddr, resumed) {
        violations.push(v);
    }

    // -- audit phase: every id re-requested twice, straight at the
    // server, and both answers cross-examined --------------------------
    for id in &ids {
        let inst = &instances[id];
        let req = SolveRequest {
            id: id.clone(),
            instance: Arc::clone(inst),
            algorithm: None,
            timeout_ms: Some(10_000),
            mem_budget_mb: None,
            city: None,
        };
        let first = send_request(server.addr(), &req, CLIENT_TIMEOUT);
        let second = send_request(server.addr(), &req, CLIENT_TIMEOUT);
        let (first, second) = match (first, second) {
            (Ok(a), Ok(b)) => (a, b),
            (a, b) => {
                violations.push(format!(
                    "audit re-send of '{id}' failed without a proxy in the path: {:?} / {:?}",
                    a.err(),
                    b.err()
                ));
                continue;
            }
        };
        for resp in [&first, &second] {
            if resp.id != *id {
                violations.push(format!("audit response for '{id}' carries id '{}'", resp.id));
            }
        }
        // a journal-unavailable shed is not cached (nothing completed),
        // so the second send may legitimately differ from it
        let first_was_shed = matches!(
            (&first.status, &first.planning),
            (Status::Failed { .. }, None) | (Status::Overloaded { .. }, _)
        );
        if !first_was_shed && !same_answer(&first, &second) {
            violations.push(format!(
                "split-brain answers for '{id}': {} ω={} a={} vs {} ω={} a={}",
                first.status.describe(),
                first.omega,
                first.assignments,
                second.status.describe(),
                second.omega,
                second.assignments,
            ));
        }
        // the constraint oracle referees every planning that came back
        for resp in [&first, &second] {
            if let Some(planning) = &resp.planning {
                let report =
                    usep_oracle::check_planning_with_omega(inst, planning, resp.omega, probe);
                if !report.is_valid() {
                    violations.push(format!(
                        "oracle rejected planning for '{id}' ({}): {report:?}",
                        resp.status.describe()
                    ));
                }
            }
        }
    }

    // -- reconciliation: the metrics ledger must still balance -------
    match await_quiesce(&maddr, resumed) {
        Err(v) => violations.push(v),
        Ok(text) => {
            let s = parse_exposition(&text);
            let val = |name: &str| s.value(name).unwrap_or(f64::NAN);
            let requests = val("usep_serve_requests_total");
            let accepted = val("usep_serve_accepted_total");
            let rejected = val("usep_serve_rejected_total");
            let replayed = val("usep_serve_replayed_total");
            let shed = s.family_sum("usep_serve_shed_total");
            let completed = s.family_sum("usep_serve_completed_total");
            let inflight = val("usep_serve_inflight");
            let by_reason = s.by_label("usep_serve_failed_total", "reason");
            let failed_of = |r: &str| {
                by_reason.iter().find(|(k, _)| k == r).map(|&(_, v)| v).unwrap_or(0.0)
            };
            let failed_solve = failed_of("panic") + failed_of("infeasible");
            let failed_journal = failed_of("journal");

            if inflight != 0.0 {
                violations.push(format!("inflight gauge stuck at {inflight} after quiesce"));
            }
            // accepted (+ journal-resumed) work is fully accounted for
            let processed = completed + failed_solve;
            if accepted + resumed as f64 != processed + inflight {
                violations.push(format!(
                    "acceptance ledger broke: accepted {accepted} + resumed {resumed} != \
                     completed {completed} + failed {failed_solve} + inflight {inflight}"
                ));
            }
            // every request line is typed exactly once; the only slack
            // allowed is accept-path journal sheds, and only when the
            // disk plane was actually hostile
            let slack = requests - (accepted + rejected + replayed + shed);
            if slack < 0.0 || slack > failed_journal {
                violations.push(format!(
                    "request ledger broke: requests {requests} vs accepted {accepted} + \
                     rejected {rejected} + replayed {replayed} + shed {shed} \
                     (slack {slack}, journal failures {failed_journal})"
                ));
            }
            if spec.disk.is_none() && slack != 0.0 {
                violations.push(format!(
                    "request ledger has slack {slack} with an honest disk"
                ));
            }
        }
    }

    server.shutdown();
    server.wait();
    probe.count(Counter::ChaosFault, faulty.injected() + net_faults);

    ScenarioOutcome {
        spec: spec.clone(),
        violations,
        answered,
        send_errors,
        disk_faults: faulty.injected(),
        net_faults,
        quarantined,
        resumed,
    }
}

/// A replayable description of a campaign failure: the seed, the spec
/// it derived, and the greedily minimized spec that still violates.
#[derive(Clone, Debug, Serialize)]
pub struct ReproReport {
    /// The campaign's master seed.
    pub master_seed: u64,
    /// Which scenario of the campaign failed (0-based).
    pub scenario_index: u64,
    /// The failing scenario's own seed (`mix(master ^ index)`).
    pub scenario_seed: u64,
    /// The spec as derived from the seed.
    pub spec: ScenarioSpec,
    /// The smallest spec the minimizer could still make fail.
    pub minimized: ScenarioSpec,
    /// The minimized run's violations.
    pub violations: Vec<String>,
}

/// What a whole campaign produced.
#[derive(Clone, Debug, Serialize)]
pub struct CampaignOutcome {
    /// The master seed the campaign ran under.
    pub master_seed: u64,
    /// Scenarios completed (including the failing one, if any).
    pub scenarios_run: u64,
    /// Faults injected across all planes and scenarios.
    pub total_faults: u64,
    /// Traffic-phase responses received across all scenarios.
    pub total_answered: u64,
    /// The first failure, minimized — `None` means a clean campaign.
    pub repro: Option<ReproReport>,
}

/// Greedy spec minimization: try dropping whole fault planes, then
/// shrinking the traffic, keeping each change only if the scenario
/// still violates. The result is the smallest repro the greedy walk
/// finds — the same discipline as `usep_oracle::minimize`, lifted from
/// instances to scenarios.
fn minimize_spec(
    spec: &ScenarioSpec,
    violations: Vec<String>,
    probe: &dyn Probe,
) -> (ScenarioSpec, Vec<String>) {
    let mut cur = spec.clone();
    let mut cur_violations = violations;
    let mut trials = 0;
    let mut try_candidate = |cand: ScenarioSpec,
                             cur: &mut ScenarioSpec,
                             cur_violations: &mut Vec<String>|
     -> bool {
        trials += 1;
        if trials > 16 {
            return false;
        }
        let outcome = run_scenario(&cand, probe);
        if outcome.violations.is_empty() {
            return false;
        }
        *cur = cand;
        *cur_violations = outcome.violations;
        true
    };

    if cur.proxy.is_some() {
        try_candidate(ScenarioSpec { proxy: None, ..cur.clone() }, &mut cur, &mut cur_violations);
    }
    if cur.disk.is_some() {
        try_candidate(ScenarioSpec { disk: None, ..cur.clone() }, &mut cur, &mut cur_violations);
    }
    if cur.crash {
        try_candidate(ScenarioSpec { crash: false, ..cur.clone() }, &mut cur, &mut cur_violations);
    }
    if cur.chaos_panic_every.is_some() {
        try_candidate(
            ScenarioSpec { chaos_panic_every: None, ..cur.clone() },
            &mut cur,
            &mut cur_violations,
        );
    }
    if cur.duplicates > 0 {
        try_candidate(ScenarioSpec { duplicates: 0, ..cur.clone() }, &mut cur, &mut cur_violations);
    }
    while cur.requests > 1 {
        let cand = ScenarioSpec { requests: cur.requests / 2, ..cur.clone() };
        if !try_candidate(cand, &mut cur, &mut cur_violations) {
            break;
        }
    }
    (cur, cur_violations)
}

/// Runs `scenarios` seeded scenarios; stops at the first violation,
/// minimizes it, and reports. Scenario `i` runs under seed
/// `mix(master_seed ^ i)` — replay any single one with
/// `usep chaos --scenario-seed <scenario_seed>` … or just rerun the
/// campaign, it is deterministic.
pub fn run_campaign(master_seed: u64, scenarios: u64, probe: &dyn Probe) -> CampaignOutcome {
    let mut total_faults = 0u64;
    let mut total_answered = 0u64;
    for i in 0..scenarios {
        let scenario_seed = mix(master_seed ^ i);
        let spec = ScenarioSpec::from_seed(scenario_seed);
        let outcome = run_scenario(&spec, probe);
        total_faults += outcome.disk_faults + outcome.net_faults;
        total_answered += outcome.answered;
        if !outcome.violations.is_empty() {
            eprintln!(
                "usep-chaos: scenario {i} (seed {scenario_seed:#x}) VIOLATED: {:?}",
                outcome.violations
            );
            let (minimized, violations) = minimize_spec(&spec, outcome.violations, probe);
            return CampaignOutcome {
                master_seed,
                scenarios_run: i + 1,
                total_faults,
                total_answered,
                repro: Some(ReproReport {
                    master_seed,
                    scenario_index: i,
                    scenario_seed,
                    spec,
                    minimized,
                    violations,
                }),
            };
        }
        if (i + 1) % 25 == 0 {
            eprintln!(
                "usep-chaos: {}/{scenarios} scenarios clean, {total_faults} faults injected",
                i + 1
            );
        }
    }
    CampaignOutcome {
        master_seed,
        scenarios_run: scenarios,
        total_faults,
        total_answered,
        repro: None,
    }
}
