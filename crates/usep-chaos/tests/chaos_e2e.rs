//! End-to-end chaos tests: the ENOSPC shed path (a failed journal
//! append must cost one request, not the connection), deterministic
//! proxy-driven health hysteresis, and seed-replayable scenarios.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use usep_chaos::{run_campaign, run_scenario, ChaosProxy, ConnFault, DiskFaultConfig, FaultyIo, ScenarioSpec};
use usep_fleet::{probe, Health, ShardState};
use usep_gen::{generate, SyntheticConfig};
use usep_obs::http;
use usep_obs::top::parse_exposition;
use usep_serve::{JournalIo, ServeConfig, Server, SolveRequest, SolveResponse, Status};
use usep_trace::{Counter, NoopProbe};

fn request(id: &str, seed: u64) -> SolveRequest {
    SolveRequest {
        id: id.to_string(),
        instance: Arc::new(generate(
            &SyntheticConfig::tiny().with_events(4).with_users(3).with_capacity_mean(2),
            seed,
        )),
        algorithm: None,
        timeout_ms: Some(10_000),
        mem_budget_mb: None,
        city: None,
    }
}

/// Satellite: a dead disk sheds the *request*, never the connection.
/// One TCP session sends many requests into an always-ENOSPC journal;
/// every one must come back as a typed `Failed` line on that same
/// session, the failure must be counted, and no admission slot may
/// leak (more requests than the queue holds all get the typed shed,
/// not `Overloaded`).
#[test]
fn enospc_journal_failure_sheds_the_request_not_the_connection() {
    // warmup 2 lets the generation header land; everything after fails
    let faulty = Arc::new(FaultyIo::always_enospc(2));
    let server = Server::start(ServeConfig {
        journal_io: Some(Arc::clone(&faulty) as Arc<dyn JournalIo>),
        metrics_addr: Some("127.0.0.1:0".to_string()),
        queue_capacity: 8,
        ..ServeConfig::default()
    })
    .unwrap();
    let maddr = server.metrics_addr().unwrap().to_string();

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // 3× the queue capacity: if the failed appends leaked their
    // admission tickets, the later requests would shed as Overloaded
    let n = 24;
    for i in 0..n {
        let line = serde_json::to_string(&request(&format!("enospc-{i}"), i)).unwrap();
        writeln!(stream, "{line}").unwrap();
        let mut resp_line = String::new();
        reader.read_line(&mut resp_line).expect("the connection must survive the dead disk");
        let resp: SolveResponse = serde_json::from_str(&resp_line).unwrap();
        assert_eq!(resp.id, format!("enospc-{i}"));
        match resp.status {
            Status::Failed { ref panic } => {
                assert!(panic.contains("journal unavailable"), "typed shed reason: {panic}")
            }
            other => panic!("request {i}: expected a journal-unavailable Failed, got {other:?}"),
        }
    }

    assert_eq!(server.counter(Counter::ServeJournalFail), n, "every shed was counted");
    let scrape = parse_exposition(&http::get(&maddr, "/metrics", Duration::from_secs(5)).unwrap());
    let by_reason = scrape.by_label("usep_serve_failed_total", "reason");
    let journal_fails =
        by_reason.iter().find(|(k, _)| k == "journal").map(|&(_, v)| v).unwrap_or(0.0);
    assert_eq!(journal_fails, n as f64);
    assert_eq!(scrape.value("usep_serve_accepted_total"), Some(0.0), "nothing was accepted");
    assert_eq!(scrape.value("usep_serve_inflight"), Some(0.0));
    // nothing was ever queued, so nothing solved
    assert_eq!(scrape.family_sum("usep_serve_completed_total"), 0.0);

    server.shutdown();
    server.wait();
}

/// Satellite: hysteresis under deterministic network faults. A
/// scripted proxy in front of the shard's health endpoint delays every
/// third-ish probe past its timeout; without the two-consecutive-
/// successes rule the shard would flap Suspect→Healthy→Suspect on the
/// lone good probes in between.
#[test]
fn delayed_probes_cannot_flap_health_through_a_scripted_proxy() {
    // the solve socket always connects — only the health endpoint is
    // behind the hostile network
    let solve_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let upstream = http::serve(
        "127.0.0.1:0",
        Box::new(|path| match path {
            "/healthz" => Some(http::Response::text("ok\n")),
            "/metrics" => Some(http::Response::text("usep_serve_queue_depth 0\n")),
            _ => None,
        }),
    )
    .unwrap();

    // per-connection fates, in accept order. A failed /healthz tick
    // consumes ONE proxy connection (the probe bails before /metrics);
    // a successful tick consumes TWO (/healthz then /metrics):
    //   tick 1: [Delay]           → probe fails   → Suspect
    //   tick 2: [Pass, Pass]      → one success   → must stay Suspect
    //   tick 3: [Delay]           → probe fails   → Suspect
    //   tick 4: [Pass, Pass]      → one success   → must stay Suspect
    //   tick 5: [Pass, Pass]      → second in a row → Healthy
    let delay = ConnFault::Delay(600);
    let pass = ConnFault::Passthrough;
    let mut proxy = ChaosProxy::scripted(
        upstream.addr(),
        vec![delay, pass, pass, delay, pass, pass, pass, pass],
    )
    .unwrap();

    let shard = ShardState::new("s0", solve_listener.local_addr().unwrap().to_string());
    shard.set_metrics_addr(Some(proxy.addr().to_string()));
    let timeout = Duration::from_millis(150);

    assert_eq!(shard.health(), Health::Healthy);
    probe(&shard, timeout);
    assert_eq!(shard.health(), Health::Suspect, "tick 1: delayed probe is a failure");
    probe(&shard, timeout);
    assert_eq!(shard.health(), Health::Suspect, "tick 2: a lone good probe must not flap");
    probe(&shard, timeout);
    assert_eq!(shard.health(), Health::Suspect, "tick 3: failure again (streak was reset)");
    probe(&shard, timeout);
    assert_eq!(shard.health(), Health::Suspect, "tick 4: first success of a new streak");
    probe(&shard, timeout);
    assert_eq!(shard.health(), Health::Healthy, "tick 5: sustained success recovers");

    assert_eq!(proxy.accepted(), 8, "the script consumed exactly the planned connections");
    proxy.shutdown();
    drop(upstream);
}

/// The flagship property: a scenario is a pure function of its seed.
/// Disk faults, a power-cut crash, a resume, duplicate traffic — run
/// it twice and every observable matches, and nothing violates.
#[test]
fn scenarios_replay_identically_from_their_seed() {
    let spec = ScenarioSpec {
        seed: 0xC0FFEE,
        requests: 6,
        duplicates: 2,
        workers: 2,
        disk: Some(DiskFaultConfig {
            torn_write_per_mille: 60,
            enospc_per_mille: 60,
            bit_rot_per_mille: 60,
            latency_per_mille: 0,
            dropped_sync_per_mille: 80,
            failed_sync_per_mille: 40,
            warmup_ops: 3,
        }),
        proxy: None, // the network plane is timing-dependent; keep the replay strict
        crash: true,
        chaos_panic_every: Some(3),
    };
    let a = run_scenario(&spec, &NoopProbe);
    let b = run_scenario(&spec, &NoopProbe);
    assert_eq!(a.violations, Vec::<String>::new(), "first run must be clean");
    assert_eq!(b.violations, Vec::<String>::new(), "second run must be clean");
    assert_eq!(a.answered, b.answered);
    assert_eq!(a.send_errors, b.send_errors);
    assert_eq!(a.disk_faults, b.disk_faults);
    assert_eq!(a.quarantined, b.quarantined);
    assert_eq!(a.resumed, b.resumed);
    assert!(a.disk_faults > 0, "a hostile plan at these rates must actually fire");
}

/// Specs derive deterministically from seeds, and a short seed sweep
/// exercises every fault plane.
#[test]
fn spec_derivation_is_deterministic_and_covers_the_planes() {
    let a = serde_json::to_string(&ScenarioSpec::from_seed(5)).unwrap();
    let b = serde_json::to_string(&ScenarioSpec::from_seed(5)).unwrap();
    assert_eq!(a, b);
    let specs: Vec<ScenarioSpec> = (0..32).map(ScenarioSpec::from_seed).collect();
    assert!(specs.iter().any(|s| s.disk.is_some()), "some scenario runs a hostile disk");
    assert!(specs.iter().any(|s| s.proxy.is_some()), "some scenario runs a hostile network");
    assert!(specs.iter().any(|s| s.crash), "some scenario power-cuts the server");
    assert!(specs.iter().any(|s| s.chaos_panic_every.is_some()), "some scenario panics solves");
    assert!(specs.iter().any(|s| s.disk.is_none() && s.proxy.is_none()), "and some are calm");
}

/// A miniature `usep chaos` campaign: seeded scenarios composing all
/// three fault planes, each refereed by the oracle and the metrics
/// identities — and zero violations to show for it.
#[test]
fn a_seeded_campaign_of_composed_scenarios_stays_clean() {
    let outcome = run_campaign(42, 4, &NoopProbe);
    assert_eq!(outcome.scenarios_run, 4);
    assert!(
        outcome.repro.is_none(),
        "campaign found a violation: {:?}",
        outcome.repro.map(|r| (r.scenario_seed, r.violations))
    );
    assert!(outcome.total_answered > 0, "traffic actually flowed");
}
