//! End-to-end crash test for the `{"verb":"mutate"}` delta-session
//! protocol: a live server absorbs half a seeded mutation trace
//! through its warm engine, the disk dies mid-stream (FaultyIo power
//! cut), the server is stopped, and a second server `--resume`s from
//! the same (power-cycled) journal. The resumed server must rebuild
//! the session's warm state exactly — journaled mutations replay
//! exactly-once, duplicate sends answer byte-identical cached
//! outcomes, and the post-resume planning matches both the pre-crash
//! state and an in-process shadow engine bit for bit.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use usep_chaos::FaultyIo;
use usep_delta::{generate_trace, DeltaConfig, DeltaEngine, Mutation, TraceGenConfig};
use usep_serve::{JournalIo, MutateResponse, ServeConfig, Server};
use usep_trace::{Counter, NOOP};

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn send(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> MutateResponse {
    writeln!(stream, "{line}").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    serde_json::from_str(&resp).unwrap_or_else(|e| panic!("bad response '{resp}': {e}"))
}

fn mutate_line(session: &str, id: &str, m: &Mutation) -> String {
    format!(
        r#"{{"verb":"mutate","session":"{session}","mutation_id":"{id}","mutation":{}}}"#,
        serde_json::to_string(m).unwrap()
    )
}

#[test]
fn mutate_sessions_survive_a_power_cut_with_exactly_once_replay() {
    let trace = generate_trace(&TraceGenConfig { seed: 1234, mutations: 24, events: 6, users: 9 });
    let open_line = format!(
        r#"{{"verb":"mutate","session":"s","open":{}}}"#,
        serde_json::to_string(&trace.instance).unwrap()
    );
    let split = 12;

    // the shadow: the same trace through an in-process engine with the
    // server's default config — the referee for every Ω the wire reports
    let mut shadow = DeltaEngine::new(trace.instance.clone(), DeltaConfig::default(), &NOOP);

    // ---- server A: honest disk, then a power cut mid-stream --------
    let disk = Arc::new(FaultyIo::clean());
    let server_a = Server::start(ServeConfig {
        journal_io: Some(Arc::clone(&disk) as Arc<dyn JournalIo>),
        ..ServeConfig::default()
    })
    .unwrap();
    let (mut stream, mut reader) = connect(server_a.addr());

    let opened = send(&mut stream, &mut reader, &open_line);
    assert!(opened.ok, "open failed: {:?}", opened.error);
    assert_eq!(opened.outcome.as_deref(), Some("opened"));
    assert_eq!(opened.omega.to_bits(), shadow.omega().to_bits(), "cold solves diverged");

    let mut responses_a = Vec::new();
    for (i, m) in trace.mutations[..split].iter().enumerate() {
        let resp = send(&mut stream, &mut reader, &mutate_line("s", &format!("m{i}"), m));
        assert!(resp.ok, "mutation m{i} rejected: {:?}", resp.error);
        let out = shadow.apply(m, &NOOP).unwrap();
        assert_eq!(resp.omega.to_bits(), out.omega.to_bits(), "m{i}: Ω diverged from shadow");
        assert_eq!(resp.evicted, out.evicted as u64, "m{i}");
        assert_eq!(resp.added, out.added as u64, "m{i}");
        responses_a.push(resp);
    }
    let pre_crash =
        send(&mut stream, &mut reader, r#"{"verb":"mutate","session":"s","query":true}"#);
    assert!(pre_crash.ok);
    assert_eq!(pre_crash.mutations, split as u64);

    // the disk dies: the next mutation must be shed with a typed
    // journal-unavailable rejection — NOT applied, NOT cached — and
    // the connection must survive
    disk.power_off();
    let shed = send(&mut stream, &mut reader, &mutate_line("s", "m12", &trace.mutations[split]));
    assert!(!shed.ok, "a dead disk must shed the mutation");
    assert!(
        shed.error.as_deref().unwrap_or("").contains("journal unavailable"),
        "typed shed reason, got {:?}",
        shed.error
    );
    let still_there =
        send(&mut stream, &mut reader, r#"{"verb":"mutate","session":"s","query":true}"#);
    assert_eq!(still_there.mutations, split as u64, "shed mutation must not have applied");

    drop(stream);
    server_a.shutdown();
    server_a.wait();

    // ---- power cycle + server B: --resume rebuilds the warm state --
    disk.power_cycle();
    let server_b = Server::start(ServeConfig {
        journal_io: Some(Arc::clone(&disk) as Arc<dyn JournalIo>),
        resume: true,
        ..ServeConfig::default()
    })
    .unwrap();
    let (mut stream, mut reader) = connect(server_b.addr());

    // every journaled mutation replayed through the rebuilt engine
    assert_eq!(
        server_b.counter(Counter::DeltaMutation),
        split as u64,
        "resume must re-apply exactly the journaled mutations"
    );

    // idempotent re-open: answered from the rebuilt live state, and
    // the planning matches the pre-crash snapshot exactly
    let reopened = send(&mut stream, &mut reader, &open_line);
    assert!(reopened.ok);
    assert_eq!(reopened.outcome.as_deref(), Some("replayed"));
    assert_eq!(reopened.omega.to_bits(), pre_crash.omega.to_bits());
    assert_eq!(reopened.assignments, pre_crash.assignments);
    assert_eq!(reopened.mutations, pre_crash.mutations);

    // exactly-once: a duplicate of a pre-crash mutation id answers the
    // byte-identical cached outcome without touching the engine
    let dup = send(&mut stream, &mut reader, &mutate_line("s", "m3", &trace.mutations[3]));
    assert_eq!(
        serde_json::to_string(&dup).unwrap(),
        serde_json::to_string(&responses_a[3]).unwrap(),
        "duplicate mutation must answer the cached pre-crash outcome verbatim"
    );
    assert!(server_b.counter(Counter::ServeReplay) >= 2, "re-open + duplicate both replayed");
    let after_dup =
        send(&mut stream, &mut reader, r#"{"verb":"mutate","session":"s","query":true}"#);
    assert_eq!(after_dup.mutations, split as u64, "the duplicate must not re-apply");

    // the mutation the dead disk shed never became durable, so the
    // retry gets its fresh chance now — then the rest of the trace
    for (i, m) in trace.mutations[split..].iter().enumerate() {
        let i = split + i;
        let resp = send(&mut stream, &mut reader, &mutate_line("s", &format!("m{i}"), m));
        assert!(resp.ok, "mutation m{i} rejected after resume: {:?}", resp.error);
        let out = shadow.apply(m, &NOOP).unwrap();
        assert_eq!(resp.omega.to_bits(), out.omega.to_bits(), "m{i}: Ω diverged from shadow");
    }
    assert_eq!(
        server_b.counter(Counter::ServeMutate),
        (trace.mutations.len() - split) as u64,
        "only the post-resume sends hit the live mutate path"
    );

    let final_state =
        send(&mut stream, &mut reader, r#"{"verb":"mutate","session":"s","query":true}"#);
    assert_eq!(final_state.mutations, trace.mutations.len() as u64);
    assert_eq!(final_state.omega.to_bits(), shadow.omega().to_bits());
    assert_eq!(final_state.assignments, shadow.planning().num_assignments() as u64);

    // closed sessions stay closed across a (graceful) restart
    let closed = send(&mut stream, &mut reader, r#"{"verb":"mutate","session":"s","close":true}"#);
    assert_eq!(closed.outcome.as_deref(), Some("closed"));
    drop(stream);
    server_b.shutdown();
    server_b.wait();

    let server_c = Server::start(ServeConfig {
        journal_io: Some(Arc::clone(&disk) as Arc<dyn JournalIo>),
        resume: true,
        ..ServeConfig::default()
    })
    .unwrap();
    let (mut stream, mut reader) = connect(server_c.addr());
    let gone = send(&mut stream, &mut reader, r#"{"verb":"mutate","session":"s","query":true}"#);
    assert!(!gone.ok, "a closed session must not be resurrected by resume");
    drop(stream);
    server_c.shutdown();
    server_c.wait();
}
