//! Property tests for the framed journal: no single-byte corruption is
//! ever silently accepted (every mutation is CRC-detected and
//! quarantined, the survivors are a subset of the original records),
//! and compaction interrupted at any point leaves the old or the new
//! journal fully intact — never a hybrid.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use usep_chaos::{DiskFaultConfig, FaultyIo};
use usep_serve::{
    compact_tmp_path, Journal, JournalIo, JournalRecord, JournalState, SolveRequest,
    SolveResponse, Status,
};

fn sample_request(i: u64) -> SolveRequest {
    SolveRequest {
        id: format!("req-{i}"),
        // the smallest legal instance keeps the exhaustive-bit-flip
        // sweep (8 × journal bytes replays) fast
        instance: Arc::new(usep_gen::generate(
            &usep_gen::SyntheticConfig::tiny().with_events(2).with_users(2).with_capacity_mean(1),
            7 + i,
        )),
        algorithm: None,
        timeout_ms: Some(1000),
        mem_budget_mb: None,
        city: None,
    }
}

fn sample_response(i: u64) -> SolveResponse {
    let mut r = SolveResponse::bare(format!("req-{i}"), Status::Complete);
    r.omega = 1.5 + i as f64;
    r.assignments = i;
    r
}

/// A journal with `accepts` accepted records, the first `completes` of
/// them completed, written through the real framing path.
fn build_journal(accepts: u64, completes: u64) -> Vec<u8> {
    let io = Arc::new(FaultyIo::clean());
    let journal =
        Journal::from_io(Arc::clone(&io) as Arc<dyn JournalIo>, Some("p0")).unwrap();
    for i in 0..accepts {
        journal.append(&JournalRecord::Accepted { request: sample_request(i) }).unwrap();
    }
    for i in 0..completes.min(accepts) {
        journal.append(&JournalRecord::Completed { response: sample_response(i) }).unwrap();
    }
    io.read().unwrap()
}

fn pending_set(state: &JournalState) -> BTreeSet<String> {
    state.pending.iter().map(|r| serde_json::to_string(r).unwrap()).collect()
}

fn completed_set(state: &JournalState) -> BTreeSet<String> {
    state.completed.values().map(|r| serde_json::to_string(r).unwrap()).collect()
}

/// Every request ever accepted into a [`build_journal`] log, serialized
/// the way [`pending_set`] serializes survivors. Quarantining a
/// *Completed* frame legitimately moves its request back to pending
/// (that is the exactly-once re-solve), so the pending bound is the
/// accepted set, not the original pending set.
fn accepted_set(accepts: u64) -> BTreeSet<String> {
    (0..accepts).map(|i| serde_json::to_string(&sample_request(i)).unwrap()).collect()
}

/// The mutated journal must never gain records: whatever replays is a
/// subset of what was genuinely written, and the damage is visibly
/// accounted for.
fn assert_no_silent_acceptance(
    accepts: u64,
    original: &JournalState,
    mutated: &JournalState,
    what: &str,
) {
    assert!(
        mutated.quarantined >= 1 || mutated.torn_tail,
        "{what}: corruption replayed without being quarantined or torn"
    );
    let (oa, oc) = (accepted_set(accepts), completed_set(original));
    for rec in pending_set(mutated) {
        assert!(oa.contains(&rec), "{what}: pending record was never accepted: {rec}");
    }
    for rec in completed_set(mutated) {
        assert!(oc.contains(&rec), "{what}: completed record not in the original journal: {rec}");
    }
}

/// Exhaustive: EVERY single-bit flip at EVERY byte position of a real
/// framed journal is detected. This is the provable arm — CRC32
/// detects all error bursts shorter than 32 bits, so a single flipped
/// byte can never slip through a frame.
#[test]
fn every_single_bit_flip_anywhere_is_detected() {
    let raw = build_journal(3, 2);
    let original = JournalState::replay_bytes(&raw);
    assert_eq!(original.quarantined, 0);
    assert!(!original.torn_tail);
    for pos in 0..raw.len() {
        for bit in 0..8 {
            let mut mutated = raw.clone();
            mutated[pos] ^= 1 << bit;
            let state = JournalState::replay_bytes(&mutated);
            assert_no_silent_acceptance(3, &original, &state, &format!("byte {pos} bit {bit}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized: arbitrary single-BYTE mutations (any xor mask, any
    /// position) over journals of varying shapes.
    #[test]
    fn random_single_byte_mutations_are_quarantined(
        accepts in 1u64..4,
        completes in 0u64..3,
        pos_seed in any::<u64>(),
        mask in any::<u8>(),
    ) {
        let mask = if mask == 0 { 0x40 } else { mask };
        let raw = build_journal(accepts, completes);
        let original = JournalState::replay_bytes(&raw);
        let pos = (pos_seed as usize) % raw.len();
        let mut mutated = raw.clone();
        mutated[pos] ^= mask;
        let state = JournalState::replay_bytes(&mutated);
        assert_no_silent_acceptance(
            accepts,
            &original,
            &state,
            &format!("byte {pos} xor {mask:#04x}"),
        );
    }

    /// A compaction torn at ANY byte (the file a non-atomic overwrite
    /// would have left behind) still replays infallibly and never
    /// invents records — and the staged-tmp-plus-rename protocol means
    /// no real crash can even expose such a file as the journal.
    #[test]
    fn a_torn_compacted_journal_never_invents_records(cut_seed in any::<u64>()) {
        let raw = build_journal(3, 1);
        let old = JournalState::replay_bytes(&raw);
        let new_raw = compacted_bytes(&raw, &old);
        let new = JournalState::replay_bytes(&new_raw);
        let cut = (cut_seed as usize) % new_raw.len();
        let torn = JournalState::replay_bytes(&new_raw[..cut]);
        for rec in pending_set(&torn) {
            prop_assert!(pending_set(&new).contains(&rec));
        }
        for rec in completed_set(&torn) {
            prop_assert!(completed_set(&new).contains(&rec));
        }
    }
}

/// Compacts `raw` (replayed as `state`) through the real `Journal`
/// path on a fresh in-memory disk and returns the compacted bytes.
fn compacted_bytes(raw: &[u8], state: &JournalState) -> Vec<u8> {
    let io = Arc::new(FaultyIo::clean());
    io.append(raw).unwrap();
    io.sync().unwrap();
    let journal = Journal::from_io(Arc::clone(&io) as Arc<dyn JournalIo>, Some("p0")).unwrap();
    journal.compact(state).unwrap();
    io.read().unwrap()
}

/// The atomic-rename invariant, walked stop-point by stop-point: at
/// every moment a crash could strike during `StdIo::replace` (tmp
/// created / tmp partial / tmp full but unrenamed / renamed), the
/// journal path replays as exactly the old state or exactly the new
/// state — never a blend, never an error.
#[test]
fn compaction_interrupted_at_every_stop_point_leaves_old_or_new_intact() {
    let dir = std::env::temp_dir()
        .join(format!("usep_chaos_compact_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("j.wal.jsonl");

    let raw = build_journal(3, 2);
    let old = JournalState::replay_bytes(&raw);
    let new_raw = compacted_bytes(&raw, &old);
    let new = JournalState::replay_bytes(&new_raw);
    assert_eq!(new.generation, old.generation + 1, "compaction bumps the generation");
    assert_eq!(completed_set(&new), completed_set(&old), "completions survive compaction");
    assert_eq!(pending_set(&new), pending_set(&old), "pending work survives compaction");
    assert!(new_raw.len() < raw.len(), "the snapshot is smaller than the log it replaces");

    let tmp = compact_tmp_path(&path);
    let stop_points: [(&str, Option<&[u8]>); 3] = [
        ("tmp created empty", Some(b"")),
        ("tmp half written", Some(&new_raw[..new_raw.len() / 2])),
        ("tmp fully written, not yet renamed", Some(&new_raw)),
    ];
    for (what, tmp_bytes) in stop_points {
        std::fs::write(&path, &raw).unwrap();
        if let Some(bytes) = tmp_bytes {
            std::fs::write(&tmp, bytes).unwrap();
        }
        let state = JournalState::replay(&path).unwrap();
        assert_eq!(pending_set(&state), pending_set(&old), "{what}: old journal intact");
        assert_eq!(completed_set(&state), completed_set(&old), "{what}: old journal intact");
        assert_eq!(state.generation, old.generation, "{what}: old generation intact");
        let _ = std::fs::remove_file(&tmp);
    }

    // the last stop point: rename happened, the tmp is gone
    std::fs::write(&path, &new_raw).unwrap();
    let state = JournalState::replay(&path).unwrap();
    assert_eq!(pending_set(&state), pending_set(&new));
    assert_eq!(completed_set(&state), completed_set(&new));
    assert_eq!(state.generation, new.generation);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A compaction whose staging write dies (injected ENOSPC / crash
/// during staging) reports the error and leaves the journal exactly as
/// it was.
#[test]
fn failed_compaction_staging_keeps_the_old_journal() {
    let raw = build_journal(2, 1);
    // warmup covers the initial bulk append+sync; the replace draws the
    // first hostile op
    let io = Arc::new(FaultyIo::new(
        1,
        DiskFaultConfig { enospc_per_mille: 1000, warmup_ops: 2, ..DiskFaultConfig::clean() },
    ));
    io.append(&raw).unwrap();
    io.sync().unwrap();
    let journal = Journal::from_io(Arc::clone(&io) as Arc<dyn JournalIo>, Some("p0")).unwrap();
    let old = JournalState::replay_bytes(&raw);
    let err = journal.compact(&old).unwrap_err();
    assert!(err.to_string().contains("ENOSPC"), "{err}");
    assert_eq!(io.read().unwrap(), raw, "a failed compaction must not touch the journal");
    let replayed = JournalState::replay_bytes(&io.read().unwrap());
    assert_eq!(completed_set(&replayed), completed_set(&old));
}

/// Exactly-once across the full lifecycle: corruption → quarantine →
/// compaction → replay. A rotted interior record is quarantined, the
/// compacted journal is rot-free, and every surviving completion still
/// answers with the same bytes.
#[test]
fn quarantine_then_compaction_preserves_exactly_once_answers() {
    let raw = build_journal(4, 3);
    let clean = JournalState::replay_bytes(&raw);

    // rot one byte inside the SECOND accepted record's frame
    let needle = b"req-1";
    let hit = raw
        .windows(needle.len())
        .position(|w| w == needle)
        .expect("journal contains the second request");
    let mut rotted = raw.clone();
    rotted[hit + 4] ^= 0x04; // '1' -> '5' inside the payload

    let state = JournalState::replay_bytes(&rotted);
    assert_eq!(state.quarantined, 1, "exactly the rotted record is quarantined");
    assert!(completed_set(&state).is_subset(&completed_set(&clean)));

    // compact the quarantined state and replay the snapshot
    let compacted = compacted_bytes(&rotted, &state);
    let replayed = JournalState::replay_bytes(&compacted);
    assert_eq!(replayed.quarantined, 0, "the snapshot carries no rot forward");
    assert!(!replayed.torn_tail);
    assert_eq!(
        completed_set(&replayed),
        completed_set(&state),
        "every completion answers with identical bytes after the full cycle"
    );
    assert_eq!(pending_set(&replayed), pending_set(&state));
    assert_eq!(replayed.generation, state.generation + 1);
}
