//! Shard process supervision: spawn, watch, restart-and-resume.
//!
//! Each shard is a child `usep serve` process with its own journal.
//! The supervisor parses the `listening`/`metrics` banner lines off
//! child stdout (so port-0 binds work), polls for unexpected exits,
//! and restarts a dead shard with `--resume true` after a capped
//! equal-jitter backoff ([`usep_serve::backoff`], seeded from the
//! shard name so restart schedules are deterministic per shard). The
//! restarted process replays its own journal — the shard-id stamp
//! guarantees it can never accidentally replay a sibling's — and the
//! router picks the new address up from the shared [`ShardState`].

use crate::health::ShardState;
use std::io::{self, BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use usep_serve::backoff::seed_from_id;
use usep_serve::RetryPolicy;
use usep_trace::Probe;

/// How to launch one shard process. `args` must include the journal
/// flags; the supervisor owns `--resume` — it strips any existing
/// occurrence and appends `--resume true` on every restart (the CLI
/// flag parser rejects duplicates, so leaving a stale one in would
/// wedge the shard in a failed-restart loop).
#[derive(Clone, Debug)]
pub struct ShardProcessSpec {
    /// Binary to execute (the `usep` CLI in production and tests).
    pub program: String,
    /// Arguments, e.g. `["serve", "--addr", "127.0.0.1:0", ...]`.
    pub args: Vec<String>,
}

/// Launches `spec` and reads the banner: `listening ADDR` and, when a
/// metrics listener is configured, `metrics ADDR`. Returns the child
/// and both addresses. Child stderr is inherited (shard logs interleave
/// with the router's own).
pub fn spawn_shard(spec: &ShardProcessSpec) -> io::Result<(Child, String, Option<String>)> {
    let mut child = Command::new(&spec.program)
        .args(&spec.args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let expect_metrics = spec.args.iter().any(|a| a == "--metrics-addr");
    let mut addr = None;
    let mut metrics = None;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            let status = child.wait();
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("shard exited before printing its banner (status {status:?})"),
            ));
        }
        if let Some(a) = line.trim().strip_prefix("listening ") {
            addr = Some(a.to_string());
        } else if let Some(m) = line.trim().strip_prefix("metrics ") {
            metrics = Some(m.to_string());
        }
        if addr.is_some() && (metrics.is_some() || !expect_metrics) {
            break;
        }
    }
    // keep draining stdout so the child can never block on a full pipe
    std::thread::Builder::new()
        .name("usep-fleet-drain".to_string())
        .spawn(move || {
            let mut sink = String::new();
            loop {
                sink.clear();
                match reader.read_line(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
        })?;
    Ok((child, addr.expect("checked above"), metrics))
}

struct Managed {
    shard: Arc<ShardState>,
    spec: ShardProcessSpec,
    child: Mutex<Child>,
}

/// Watches shard children and restarts the dead with `--resume`.
pub struct Supervisor {
    managed: Vec<Arc<Managed>>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Takes ownership of already-spawned children (paired with their
    /// shard state and respawn spec) and starts the watch loop.
    pub fn start(
        shards: Vec<(Arc<ShardState>, ShardProcessSpec, Child)>,
        retry: RetryPolicy,
        sink: Arc<usep_trace::TraceSink>,
    ) -> Supervisor {
        let managed: Vec<Arc<Managed>> = shards
            .into_iter()
            .map(|(shard, spec, child)| {
                Arc::new(Managed { shard, spec, child: Mutex::new(child) })
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_loop = Arc::clone(&stop);
        let watch: Vec<Arc<Managed>> = managed.clone();
        let thread = std::thread::Builder::new()
            .name("usep-fleet-supervisor".to_string())
            .spawn(move || {
                let mut attempts: Vec<u32> = vec![0; watch.len()];
                while !stop_loop.load(Ordering::SeqCst) {
                    for (i, m) in watch.iter().enumerate() {
                        let exited = {
                            let mut child = m.child.lock().unwrap_or_else(|p| p.into_inner());
                            matches!(child.try_wait(), Ok(Some(_)))
                        };
                        if !exited || stop_loop.load(Ordering::SeqCst) {
                            continue;
                        }
                        m.shard.mark_down();
                        attempts[i] = attempts[i].saturating_add(1);
                        let delay = retry.delay(attempts[i], seed_from_id(&m.shard.name));
                        eprintln!(
                            "usep-fleet: shard {} died; restart {} with --resume after {delay:?}",
                            m.shard.name, attempts[i]
                        );
                        std::thread::sleep(delay);
                        if stop_loop.load(Ordering::SeqCst) {
                            break;
                        }
                        let mut spec = m.spec.clone();
                        if let Some(at) = spec.args.iter().position(|a| a == "--resume") {
                            spec.args.drain(at..(at + 2).min(spec.args.len()));
                        }
                        spec.args.extend(["--resume".to_string(), "true".to_string()]);
                        match spawn_shard(&spec) {
                            Ok((child, addr, metrics)) => {
                                m.shard.set_addr(addr);
                                m.shard.set_metrics_addr(metrics);
                                m.shard.restarts.fetch_add(1, Ordering::SeqCst);
                                sink.count(usep_trace::Counter::FleetRestart, 1);
                                m.shard.mark_alive();
                                *m.child.lock().unwrap_or_else(|p| p.into_inner()) = child;
                                attempts[i] = 0;
                                eprintln!(
                                    "usep-fleet: shard {} resumed at {}",
                                    m.shard.name,
                                    m.shard.addr()
                                );
                            }
                            Err(e) => {
                                // stays Down; next poll retries with a
                                // longer (capped) backoff
                                eprintln!(
                                    "usep-fleet: restart of shard {} failed: {e}",
                                    m.shard.name
                                );
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            })
            .expect("spawn supervisor");
        Supervisor { managed, stop, thread: Some(thread) }
    }

    /// `SIGKILL`s the named shard's child process — the scenario
    /// runner's process-fault injector. The watch loop notices the exit
    /// on its next poll and restarts the shard with `--resume`, exactly
    /// as it would for an organic crash. Returns whether the shard name
    /// was known (the kill itself is fire-and-forget: a child that
    /// already exited is fine).
    pub fn kill_shard(&self, name: &str) -> bool {
        match self.managed.iter().find(|m| m.shard.name == name) {
            Some(m) => {
                let mut child = m.child.lock().unwrap_or_else(|p| p.into_inner());
                let _ = child.kill(); // SIGKILL on unix: no goodbye fsync
                true
            }
            None => false,
        }
    }

    /// Current child pids, by shard name — the chaos tests aim their
    /// `kill -9` with these.
    pub fn pids(&self) -> Vec<(String, u32)> {
        self.managed
            .iter()
            .map(|m| {
                let child = m.child.lock().unwrap_or_else(|p| p.into_inner());
                (m.shard.name.clone(), child.id())
            })
            .collect()
    }

    /// Stops the watch loop and kills every shard child.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        for m in &self.managed {
            let mut child = m.child.lock().unwrap_or_else(|p| p.into_inner());
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}
