//! The fleet's front door: a JSON-lines TCP listener speaking the
//! exact `usep-serve` protocol, forwarding each request to a shard
//! picked by the partition table and failing over when shards die.
//!
//! The robustness contract, in routing order:
//!
//! 1. **Dedup first.** A request id the fleet has already answered is
//!    replayed from the router's completion cache without touching a
//!    shard — the fleet-level mirror of the journal's duplicate replay.
//! 2. **Partition.** The primary shard is the request's city owner (or
//!    the rendezvous winner for unlabeled requests); the rest of the
//!    preference order is the deterministic failover chain.
//! 3. **Failover.** A connection error (shard died mid-solve), a
//!    forward timeout, or an `Overloaded` shed moves the request to the
//!    next shard in the preference order after a capped equal-jitter
//!    backoff ([`usep_serve::backoff`], seeded from the request id so
//!    retry schedules are deterministic per request). Known-`Down`
//!    shards are skipped on the first sweep and retried on the second —
//!    the supervisor may have resurrected them by then.
//! 4. **First completion wins.** Whatever terminal response comes back
//!    first is inserted into the completion cache; concurrent
//!    duplicates and late retries all answer with the cached winner, so
//!    a client can fire the same id at the fleet twice and never see
//!    two different answers — exactly-once at the fleet boundary, even
//!    across failover.
//! 5. **Shed loudly.** When every shard in every sweep is exhausted the
//!    router answers a typed `Overloaded` itself; no request ever dies
//!    silently inside the fleet.

use crate::health::{Health, ShardState};
use crate::metrics::FleetMetrics;
use crate::partition::PartitionTable;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use usep_serve::backoff::seed_from_id;
use usep_serve::{send_request, RetryPolicy, SolveRequest, SolveResponse, Status};
use usep_trace::{Counter, Probe, TraceSink};

/// Everything the router needs to run. Shards are index-aligned with
/// the partition table's shard list.
pub struct RouterConfig {
    /// Listen address for the fleet's solve socket (`0` port works).
    pub addr: String,
    /// The partition table (city map + rendezvous fallback).
    pub table: PartitionTable,
    /// Shared per-shard state, index-aligned with `table.shards()`.
    pub shards: Vec<Arc<ShardState>>,
    /// Backoff schedule between failover attempts.
    pub retry: RetryPolicy,
    /// Per-forward client timeout (connect + wait for the response
    /// line). Shard solves are bounded server-side, so this only has to
    /// cover the shard's own `max_timeout_ms` plus queueing.
    pub forward_timeout: Duration,
    /// Sweeps over the preference order before shedding. The first
    /// sweep skips known-`Down` shards; later sweeps try everything
    /// (the supervisor may have restarted a shard in the meantime).
    pub sweeps: u32,
    /// Fleet trace counters.
    pub sink: Arc<TraceSink>,
    /// Router-level metric cells (requests/replayed/rejected/shed).
    pub metrics: Arc<FleetMetrics>,
}

struct Inner {
    table: PartitionTable,
    shards: Vec<Arc<ShardState>>,
    retry: RetryPolicy,
    forward_timeout: Duration,
    sweeps: u32,
    sink: Arc<TraceSink>,
    metrics: Arc<FleetMetrics>,
    /// Fleet-level completion cache: request id → the first terminal
    /// response any shard produced for it.
    completed: Mutex<HashMap<String, SolveResponse>>,
}

/// A running router.
pub struct RouterHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound solve-socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. In-flight connections finish
    /// on their own detached threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Router entry point.
pub struct Router;

impl Router {
    /// Binds the router's solve socket and starts accepting.
    pub fn start(cfg: RouterConfig) -> std::io::Result<RouterHandle> {
        assert_eq!(
            cfg.table.len(),
            cfg.shards.len(),
            "partition table and shard states must be index-aligned"
        );
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            table: cfg.table,
            shards: cfg.shards,
            retry: cfg.retry,
            forward_timeout: cfg.forward_timeout,
            sweeps: cfg.sweeps.max(1),
            sink: cfg.sink,
            metrics: cfg.metrics,
            completed: Mutex::new(HashMap::new()),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("usep-fleet-router".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_accept.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let inner = Arc::clone(&inner);
                    let _ = std::thread::Builder::new()
                        .name("usep-fleet-conn".to_string())
                        .spawn(move || handle_connection(&inner, stream));
                }
            })?;
        Ok(RouterHandle { addr, stop, accept_thread: Some(accept_thread) })
    }
}

fn handle_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(inner, line.trim_end());
        let Ok(json) = serde_json::to_string(&response) else { return };
        if writeln!(writer, "{json}").and_then(|()| writer.flush()).is_err() {
            return;
        }
    }
}

fn handle_line(inner: &Arc<Inner>, line: &str) -> SolveResponse {
    // every line counts into requests_total, so the reconciliation
    // identity (requests = replayed + rejected + shed + Σ completed +
    // inflight) holds over *everything* the router read
    inner.metrics.requests.fetch_add(1, Ordering::Relaxed);
    match serde_json::from_str::<SolveRequest>(line) {
        Ok(request) => route(inner, &request),
        Err(e) => {
            // same convention as usep-serve: unparseable lines answer a
            // typed rejection with an empty id
            inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            SolveResponse::bare("", Status::Rejected { error: format!("fleet router: {e}") })
        }
    }
}

/// Routes one parsed request: dedup, then the failover sweeps.
fn route(inner: &Arc<Inner>, request: &SolveRequest) -> SolveResponse {
    // fleet-level duplicate replay, mirroring the journal's
    if let Some(hit) = inner.completed.lock().unwrap_or_else(|p| p.into_inner()).get(&request.id)
    {
        inner.metrics.replayed.fetch_add(1, Ordering::Relaxed);
        inner.sink.count(Counter::FleetReplay, 1);
        return hit.clone();
    }

    inner.sink.count(Counter::FleetRoute, 1);
    let pref = inner.table.preference(request.city.as_deref(), &request.id);
    let seed = seed_from_id(&request.id);
    let mut first_forward = true;
    let mut failures: u32 = 0;
    for sweep in 0..inner.sweeps {
        for &idx in &pref {
            let shard = &inner.shards[idx];
            // skip known-dead shards on the first sweep only; by the
            // second the supervisor may have resumed them, and trying
            // is the only way to find out
            if sweep == 0 && inner.sweeps > 1 && shard.health() == Health::Down {
                continue;
            }
            if first_forward {
                shard.routed.fetch_add(1, Ordering::Relaxed);
                first_forward = false;
            } else {
                inner.sink.count(Counter::FleetFailover, 1);
                std::thread::sleep(inner.retry.delay(failures, seed));
            }
            shard.inflight.fetch_add(1, Ordering::Relaxed);
            let result = send_request(shard.addr(), request, inner.forward_timeout);
            shard.inflight.fetch_sub(1, Ordering::Relaxed);
            match result {
                Ok(response) => {
                    shard.mark_alive();
                    if matches!(response.status, Status::Overloaded { .. }) {
                        // the shard is alive but full; move along
                        shard.failovers.fetch_add(1, Ordering::Relaxed);
                        failures = failures.saturating_add(1);
                        continue;
                    }
                    shard.completed.fetch_add(1, Ordering::Relaxed);
                    return complete(inner, &request.id, response);
                }
                Err(_) => {
                    // connection refused/reset or timed out: the shard
                    // is gone (or wedged); the router has first-hand
                    // evidence, no probe quorum needed
                    shard.mark_down();
                    shard.failovers.fetch_add(1, Ordering::Relaxed);
                    failures = failures.saturating_add(1);
                }
            }
        }
    }

    inner.metrics.shed.fetch_add(1, Ordering::Relaxed);
    inner.sink.count(Counter::FleetShed, 1);
    let queue_depth = inner
        .shards
        .iter()
        .map(|s| s.queue_depth.load(Ordering::Relaxed) as usize)
        .max()
        .unwrap_or(0);
    SolveResponse::bare(
        request.id.clone(),
        Status::Overloaded { queue_depth, reserved_bytes: 0 },
    )
}

/// First-completion-wins insert: whichever terminal response reached
/// the cache first is the fleet's answer for this id, now and forever.
/// Concurrent duplicates that both made it to a shard converge on the
/// same winner here.
fn complete(inner: &Arc<Inner>, id: &str, response: SolveResponse) -> SolveResponse {
    let mut cache = inner.completed.lock().unwrap_or_else(|p| p.into_inner());
    cache.entry(id.to_string()).or_insert(response).clone()
}
