//! The fleet's own observability plane: a `usep-obs` registry over the
//! router's counters and every shard's shared state, served on the
//! router's `--metrics-addr`.
//!
//! The reconciliation identity a scrape can check (the fleet-smoke CI
//! job does):
//!
//! ```text
//! usep_fleet_requests_total =
//!     usep_fleet_replayed_total
//!   + usep_fleet_rejected_total
//!   + usep_fleet_shed_total
//!   + Σ_shard usep_fleet_completed_total{shard=...}
//!   + (requests still inflight at scrape time)
//! ```
//!
//! Rejections answered directly by a shard (bad instance, unknown
//! algorithm) count into that shard's `completed` — from the router's
//! seat a typed rejection is a completed conversation, not a loss.

use crate::health::{Health, ShardState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use usep_obs::MetricsRegistry;
use usep_trace::{Counter, TraceSink};

/// Router-level cells plus the registry that exposes them.
pub struct FleetMetrics {
    /// The registry behind `/metrics`.
    pub registry: Arc<MetricsRegistry>,
    /// Request lines parsed as solve requests.
    pub requests: Arc<AtomicU64>,
    /// Duplicate ids answered from the router's completion cache.
    pub replayed: Arc<AtomicU64>,
    /// Unparseable request lines refused by the router itself.
    pub rejected: Arc<AtomicU64>,
    /// Requests refused because every shard was exhausted.
    pub shed: Arc<AtomicU64>,
}

impl FleetMetrics {
    /// Builds the registry over `shards` and the fleet trace counters
    /// in `sink`.
    pub fn new(shards: &[Arc<ShardState>], sink: Arc<TraceSink>) -> FleetMetrics {
        let registry = Arc::new(MetricsRegistry::new());
        let started = std::time::Instant::now();
        registry.gauge_fn(
            "usep_uptime_seconds",
            "Seconds since the fleet router started.",
            vec![],
            move || started.elapsed().as_secs_f64(),
        );
        registry.gauge_fn(
            "usep_fleet_shards",
            "Shards in the partition table.",
            vec![],
            {
                let n = shards.len();
                move || n as f64
            },
        );

        let requests = registry.counter_cell(
            "usep_fleet_requests_total",
            "Request lines read at the router (parseable or not).",
            vec![],
        );
        let replayed = registry.counter_cell(
            "usep_fleet_replayed_total",
            "Duplicate ids answered from the router's completion cache.",
            vec![],
        );
        let rejected = registry.counter_cell(
            "usep_fleet_rejected_total",
            "Request lines the router refused before forwarding (parse errors).",
            vec![],
        );
        let shed = registry.counter_cell(
            "usep_fleet_shed_total",
            "Requests refused because every shard in the preference order was exhausted.",
            vec![],
        );

        for shard in shards {
            let label = |s: &Arc<ShardState>| vec![("shard", s.name.clone())];
            let s = Arc::clone(shard);
            registry.counter_fn(
                "usep_fleet_routed_total",
                "Requests whose first forward went to this shard.",
                label(shard),
                move || s.routed.load(Ordering::Relaxed),
            );
            let s = Arc::clone(shard);
            registry.counter_fn(
                "usep_fleet_completed_total",
                "Requests this shard answered terminally (any typed status).",
                label(shard),
                move || s.completed.load(Ordering::Relaxed),
            );
            let s = Arc::clone(shard);
            registry.counter_fn(
                "usep_fleet_failovers_total",
                "Requests moved away from this shard after a failure or shed.",
                label(shard),
                move || s.failovers.load(Ordering::Relaxed),
            );
            let s = Arc::clone(shard);
            registry.counter_fn(
                "usep_fleet_restarts_total",
                "Supervised restart-and-resume cycles of this shard.",
                label(shard),
                move || s.restarts.load(Ordering::Relaxed),
            );
            let s = Arc::clone(shard);
            registry.gauge_fn(
                "usep_fleet_inflight",
                "Requests the router holds open against this shard right now.",
                label(shard),
                move || s.inflight.load(Ordering::Relaxed) as f64,
            );
            let s = Arc::clone(shard);
            registry.gauge_fn(
                "usep_fleet_shard_healthy",
                "1 when the shard's last probe or forward succeeded, else 0.",
                label(shard),
                move || f64::from(s.health() == Health::Healthy),
            );
            let s = Arc::clone(shard);
            registry.gauge_fn(
                "usep_fleet_shard_queue_depth",
                "Queue depth last scraped from the shard's own /metrics.",
                label(shard),
                move || s.queue_depth.load(Ordering::Relaxed) as f64,
            );
        }

        // the fleet slice of the trace-counter registry, one series per
        // fleet counter, mirroring how usep-serve exposes its slice
        for c in [
            Counter::FleetRoute,
            Counter::FleetFailover,
            Counter::FleetRestart,
            Counter::FleetShed,
            Counter::FleetReplay,
        ] {
            let sink = Arc::clone(&sink);
            registry.counter_fn(
                "usep_trace_events_total",
                "usep-trace counter totals observed by the fleet router.",
                vec![("counter", c.name().to_string())],
                move || sink.counter(c),
            );
        }

        FleetMetrics { registry, requests, replayed, rejected, shed }
    }
}
