//! Shard health: connection probes, `/healthz` checks, and the shared
//! per-shard state the router, supervisor and metrics plane all read.
//!
//! A shard is `Healthy` until a probe fails, `Suspect` after one
//! failure, and `Down` after two consecutive failures (one flaky
//! connect — a full accept backlog during a load spike — must not
//! trigger a restart). The router additionally marks a shard `Down`
//! synchronously when a forwarded request hits a connection error, so
//! failover never waits for the next probe tick.
//!
//! Recovery is asymmetric (hysteresis): *probe* evidence promotes a
//! non-`Healthy` shard back to `Healthy` only after **two** consecutive
//! successful probes, so one delayed probe under network faults cannot
//! flap a shard Healthy→Suspect→Healthy across consecutive ticks.
//! *Direct* evidence — a forwarded request completing, or the
//! supervisor handing over a freshly restarted child — still restores
//! `Healthy` instantly via [`ShardState::mark_alive`].

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use usep_obs::top::parse_exposition;

/// Probe verdict / router-observed liveness for one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// Last probe (or forward) succeeded.
    Healthy,
    /// One probe failed; one more makes it `Down`.
    Suspect,
    /// Probes keep failing or a forward hit a connection error; the
    /// router skips it and the supervisor restarts it.
    Down,
}

impl Health {
    fn from_u8(v: u8) -> Health {
        match v {
            0 => Health::Healthy,
            1 => Health::Suspect,
            _ => Health::Down,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Health::Healthy => 0,
            Health::Suspect => 1,
            Health::Down => 2,
        }
    }
}

/// Shared mutable state for one shard. The router reads it on every
/// request, the health monitor and supervisor write it; everything is
/// atomics or short-lived locks.
#[derive(Debug)]
pub struct ShardState {
    /// Stable shard name (also the journal stamp).
    pub name: String,
    /// Solve-socket address; the supervisor rewrites it after a
    /// restart (port 0 binds move).
    addr: Mutex<String>,
    /// Metrics listener address, when the shard exposes one.
    metrics_addr: Mutex<Option<String>>,
    health: AtomicU32,
    consecutive_failures: AtomicU32,
    /// Successful probes since the last failure; probe-driven recovery
    /// needs two of them (hysteresis against probe flap).
    consecutive_successes: AtomicU32,
    /// Last queue depth scraped from the shard's `/metrics`.
    pub queue_depth: AtomicU64,
    /// Requests the router currently has outstanding against this shard.
    pub inflight: AtomicU64,
    /// Requests whose *first* forward went to this shard.
    pub routed: AtomicU64,
    /// Requests routed here (first choice or failover) that completed.
    pub completed: AtomicU64,
    /// Failovers *away* from this shard.
    pub failovers: AtomicU64,
    /// Supervisor restarts of this shard.
    pub restarts: AtomicU64,
}

impl ShardState {
    /// A fresh, healthy shard at `addr`.
    pub fn new(name: impl Into<String>, addr: impl Into<String>) -> ShardState {
        ShardState {
            name: name.into(),
            addr: Mutex::new(addr.into()),
            metrics_addr: Mutex::new(None),
            health: AtomicU32::new(0),
            consecutive_failures: AtomicU32::new(0),
            consecutive_successes: AtomicU32::new(0),
            queue_depth: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
        }
    }

    /// Current solve-socket address.
    pub fn addr(&self) -> String {
        self.addr.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Points the shard at a new solve address (after a restart).
    pub fn set_addr(&self, addr: impl Into<String>) {
        *self.addr.lock().unwrap_or_else(|p| p.into_inner()) = addr.into();
    }

    /// Current metrics address, if the shard exposes one.
    pub fn metrics_addr(&self) -> Option<String> {
        self.metrics_addr.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Records the shard's metrics listener address.
    pub fn set_metrics_addr(&self, addr: Option<String>) {
        *self.metrics_addr.lock().unwrap_or_else(|p| p.into_inner()) = addr;
    }

    /// Current health verdict.
    pub fn health(&self) -> Health {
        Health::from_u8(self.health.load(Ordering::SeqCst) as u8)
    }

    /// Direct evidence of life (a forward completed, the supervisor
    /// just handed over a restarted child): back to `Healthy` at once.
    pub fn mark_alive(&self) {
        self.consecutive_failures.store(0, Ordering::SeqCst);
        self.consecutive_successes.store(2, Ordering::SeqCst);
        self.health.store(Health::Healthy.as_u8().into(), Ordering::SeqCst);
    }

    /// A probe succeeded. Weaker evidence than [`Self::mark_alive`]:
    /// a non-`Healthy` shard is promoted back to `Healthy` only on the
    /// *second* consecutive success, so a single probe that merely got
    /// lucky between injected delays cannot flap the state machine
    /// Suspect→Healthy→Suspect tick after tick.
    pub fn mark_probe_ok(&self) {
        self.consecutive_failures.store(0, Ordering::SeqCst);
        let streak = self.consecutive_successes.fetch_add(1, Ordering::SeqCst) + 1;
        if self.health() == Health::Healthy || streak >= 2 {
            self.health.store(Health::Healthy.as_u8().into(), Ordering::SeqCst);
        }
    }

    /// A probe failed: `Suspect` on the first, `Down` from the second.
    pub fn mark_probe_failed(&self) {
        self.consecutive_successes.store(0, Ordering::SeqCst);
        let fails = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        let next = if fails >= 2 { Health::Down } else { Health::Suspect };
        self.health.store(next.as_u8().into(), Ordering::SeqCst);
    }

    /// A forwarded request hit a connection error: straight to `Down`
    /// (the router has direct evidence, no second opinion needed).
    pub fn mark_down(&self) {
        self.consecutive_successes.store(0, Ordering::SeqCst);
        self.consecutive_failures.fetch_add(1, Ordering::SeqCst);
        self.health.store(Health::Down.as_u8().into(), Ordering::SeqCst);
    }
}

/// One probe round against one shard: TCP connect to the solve socket,
/// then `/healthz` + a `/metrics` queue-depth sample when the shard
/// has a metrics listener. Updates the shard's health state.
pub fn probe(shard: &ShardState, timeout: Duration) {
    let addr = shard.addr();
    let Ok(sock) = addr.parse::<SocketAddr>() else {
        shard.mark_probe_failed();
        return;
    };
    match TcpStream::connect_timeout(&sock, timeout) {
        Ok(stream) => drop(stream),
        Err(_) => {
            shard.mark_probe_failed();
            return;
        }
    }
    if let Some(maddr) = shard.metrics_addr() {
        if usep_obs::http::get(&maddr, "/healthz", timeout).is_err() {
            shard.mark_probe_failed();
            return;
        }
        if let Ok(body) = usep_obs::http::get(&maddr, "/metrics", timeout) {
            if let Some(depth) = parse_exposition(&body).value("usep_serve_queue_depth") {
                shard.queue_depth.store(depth.max(0.0) as u64, Ordering::Relaxed);
            }
        }
    }
    shard.mark_probe_ok();
}

/// Background monitor probing every shard each `interval`.
pub struct HealthMonitor {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HealthMonitor {
    /// Spawns the probe loop over `shards`.
    pub fn spawn(
        shards: Vec<Arc<ShardState>>,
        interval: Duration,
        probe_timeout: Duration,
    ) -> HealthMonitor {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_loop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("usep-fleet-health".to_string())
            .spawn(move || {
                while !stop_loop.load(Ordering::SeqCst) {
                    for shard in &shards {
                        probe(shard, probe_timeout);
                    }
                    // short sleep slices so shutdown is prompt
                    let mut left = interval;
                    while !left.is_zero() && !stop_loop.load(Ordering::SeqCst) {
                        let step = left.min(Duration::from_millis(50));
                        std::thread::sleep(step);
                        left = left.saturating_sub(step);
                    }
                }
            })
            .expect("spawn health monitor");
        HealthMonitor { stop, thread: Some(thread) }
    }

    /// Stops and joins the probe loop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_degrades_on_consecutive_failures_and_recovers() {
        let s = ShardState::new("s0", "127.0.0.1:1"); // nothing listens on port 1
        assert_eq!(s.health(), Health::Healthy);
        probe(&s, Duration::from_millis(100));
        assert_eq!(s.health(), Health::Suspect, "one failure is only suspicion");
        probe(&s, Duration::from_millis(100));
        assert_eq!(s.health(), Health::Down, "two consecutive failures");
        s.mark_alive();
        assert_eq!(s.health(), Health::Healthy);
    }

    #[test]
    fn probe_succeeds_against_a_real_listener() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let s = ShardState::new("s0", listener.local_addr().unwrap().to_string());
        s.mark_probe_failed();
        probe(&s, Duration::from_millis(500));
        assert_eq!(s.health(), Health::Suspect, "one good probe is not yet recovery");
        probe(&s, Duration::from_millis(500));
        assert_eq!(s.health(), Health::Healthy, "two consecutive good probes recover");
    }

    #[test]
    fn single_good_probe_cannot_flap_a_suspect_shard_healthy() {
        let s = ShardState::new("s0", "127.0.0.1:1");
        // alternate fail/ok — the pattern one delayed probe under
        // network faults produces tick after tick
        s.mark_probe_failed();
        assert_eq!(s.health(), Health::Suspect);
        s.mark_probe_ok();
        assert_eq!(s.health(), Health::Suspect, "no Healthy on a lone success");
        s.mark_probe_failed();
        assert_eq!(s.health(), Health::Suspect, "streak reset: still only one failure in a row");
        s.mark_probe_ok();
        s.mark_probe_ok();
        assert_eq!(s.health(), Health::Healthy, "sustained success recovers");
        // a healthy shard stays healthy on every further success
        s.mark_probe_ok();
        assert_eq!(s.health(), Health::Healthy);
        // direct evidence still restores instantly
        s.mark_down();
        assert_eq!(s.health(), Health::Down);
        s.mark_alive();
        assert_eq!(s.health(), Health::Healthy);
    }

    #[test]
    fn router_evidence_marks_down_immediately() {
        let s = ShardState::new("s0", "127.0.0.1:1");
        s.mark_down();
        assert_eq!(s.health(), Health::Down);
    }
}
