//! Request → shard assignment: city partition first, rendezvous hash
//! for everything else.
//!
//! Travel budgets make USEP naturally partitionable by city — a
//! Vancouver attendee is never assigned to a Singapore event — so the
//! primary partition is an explicit `city → shard` map. Requests with
//! no city label (or a city nobody claimed) fall back to **rendezvous
//! (highest-random-weight) hashing** on the request id: each shard gets
//! a deterministic per-key weight `h(key, shard)`, and the preference
//! order is shards by descending weight. Rendezvous hashing gives the
//! property the failover story needs for free: removing one of N
//! shards reassigns *only* the keys whose top choice was that shard
//! (~K/N of them), because every other key's maximum-weight shard is
//! untouched — there is no ring to rebalance and no K/2 cascade.
//!
//! Everything here is a pure function of the configuration and the
//! key, so a restarted router computes identical assignments — the
//! determinism the per-shard journals rely on.

use std::collections::BTreeMap;

/// SplitMix64 — the same deterministic mixer the rest of the workspace
/// uses for seeds and jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a string — stable across platforms, runs, and restarts
/// (`DefaultHasher` is documented to be none of those).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The rendezvous weight of `shard` for `key`: mix the two hashes so
/// each (key, shard) pair draws an independent-looking value.
fn weight(key: &str, shard: &str) -> u64 {
    splitmix64(fnv1a(key) ^ fnv1a(shard).rotate_left(32))
}

/// The fleet's partition table: shard names plus the explicit
/// city → shard assignments.
#[derive(Clone, Debug)]
pub struct PartitionTable {
    shards: Vec<String>,
    /// Lowercased city name → index into `shards`.
    cities: BTreeMap<String, usize>,
}

impl PartitionTable {
    /// Builds a table over `shards` (names must be unique and
    /// non-empty). `cities` maps city names to owning shard names;
    /// unknown shard names are an error.
    pub fn new(
        shards: Vec<String>,
        cities: &[(String, String)],
    ) -> Result<PartitionTable, String> {
        if shards.is_empty() {
            return Err("partition table needs at least one shard".into());
        }
        let mut seen = std::collections::BTreeSet::new();
        for s in &shards {
            if s.is_empty() {
                return Err("shard names must be non-empty".into());
            }
            if !seen.insert(s.clone()) {
                return Err(format!("duplicate shard name '{s}'"));
            }
        }
        let mut map = BTreeMap::new();
        for (city, shard) in cities {
            let idx = shards
                .iter()
                .position(|s| s == shard)
                .ok_or_else(|| format!("city '{city}' assigned to unknown shard '{shard}'"))?;
            map.insert(city.to_lowercase(), idx);
        }
        Ok(PartitionTable { shards, cities: map })
    }

    /// Shard names, in index order.
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the table is empty (it never is — `new` rejects that —
    /// but clippy insists `len` has a partner).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard index a city is explicitly assigned to, if any.
    pub fn city_owner(&self, city: &str) -> Option<usize> {
        self.cities.get(&city.to_lowercase()).copied()
    }

    /// The primary shard for a request: its city's owner when the city
    /// is mapped, otherwise the rendezvous winner for the key.
    pub fn assign(&self, city: Option<&str>, key: &str) -> usize {
        self.preference(city, key)[0]
    }

    /// The full failover order for a request: every shard exactly once,
    /// starting with the primary. City-owned requests start at their
    /// city's shard and continue in rendezvous order over the rest;
    /// unlabeled requests are pure rendezvous order. Deterministic for
    /// a given table — a restarted router produces the same order.
    pub fn preference(&self, city: Option<&str>, key: &str) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        // sort by descending weight; ties (only possible with colliding
        // hashes) break on index so the order is still total
        order.sort_by_key(|&i| (std::cmp::Reverse(weight(key, &self.shards[i])), i));
        if let Some(owner) = city.and_then(|c| self.city_owner(c)) {
            order.retain(|&i| i != owner);
            order.insert(0, owner);
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> PartitionTable {
        let shards = (0..n).map(|i| format!("shard-{i}")).collect();
        PartitionTable::new(shards, &[]).unwrap()
    }

    #[test]
    fn construction_rejects_bad_tables() {
        assert!(PartitionTable::new(vec![], &[]).is_err());
        assert!(PartitionTable::new(vec!["a".into(), "a".into()], &[]).is_err());
        assert!(PartitionTable::new(vec!["".into()], &[]).is_err());
        assert!(PartitionTable::new(
            vec!["a".into()],
            &[("vancouver".into(), "ghost".into())]
        )
        .is_err());
    }

    #[test]
    fn city_assignment_is_explicit_and_case_insensitive() {
        let t = PartitionTable::new(
            vec!["s0".into(), "s1".into(), "s2".into()],
            &[("Vancouver".into(), "s1".into()), ("auckland".into(), "s2".into())],
        )
        .unwrap();
        for key in ["r1", "r2", "anything"] {
            assert_eq!(t.assign(Some("vancouver"), key), 1);
            assert_eq!(t.assign(Some("VANCOUVER"), key), 1);
            assert_eq!(t.assign(Some("Auckland"), key), 2);
        }
        // unknown city falls back to the hash, whatever that picks
        let idx = t.assign(Some("atlantis"), "r1");
        assert_eq!(idx, t.assign(None, "r1"));
    }

    #[test]
    fn preference_is_a_permutation_starting_at_the_primary() {
        let t = PartitionTable::new(
            vec!["s0".into(), "s1".into(), "s2".into(), "s3".into()],
            &[("singapore".into(), "s3".into())],
        )
        .unwrap();
        for key in ["a", "b", "c", "d", "e"] {
            for city in [None, Some("singapore"), Some("unknown")] {
                let pref = t.preference(city, key);
                let mut sorted = pref.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1, 2, 3], "not a permutation: {pref:?}");
                assert_eq!(pref[0], t.assign(city, key));
            }
            assert_eq!(t.preference(Some("singapore"), key)[0], 3);
        }
    }

    #[test]
    fn hash_assignment_spreads_keys() {
        let t = table(4);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[t.assign(None, &format!("req-{i}"))] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (150..400).contains(&c),
                "shard {i} got {c}/1000 keys — distribution badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_keys() {
        // the rendezvous property, checked directly: keys whose primary
        // was NOT the removed shard keep their assignment
        let full = table(5);
        let reduced = PartitionTable::new(
            (0..5).filter(|&i| i != 2).map(|i| format!("shard-{i}")).collect(),
            &[],
        )
        .unwrap();
        let mut moved = 0;
        for i in 0..1000 {
            let key = format!("req-{i}");
            let before = full.assign(None, &key);
            let after = &reduced.shards()[reduced.assign(None, &key)];
            if before == 2 {
                moved += 1; // had to move somewhere
            } else {
                assert_eq!(
                    &full.shards()[before],
                    after,
                    "key {key} moved although its shard survived"
                );
            }
        }
        // ~1/5 of the keys lived on the removed shard
        assert!((100..350).contains(&moved), "moved {moved}/1000");
    }
}
