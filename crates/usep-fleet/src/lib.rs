//! Geo-sharded serve fleet for USEP.
//!
//! One `usep-serve` process survives its own crashes (PR 4's journal),
//! but a planning platform for millions of users needs to survive the
//! *machine*: this crate turns N independent serve processes into a
//! fleet behind a single front door, built from the same
//! zero-dependency substrate (`std::net`, JSON lines) as everything
//! else in the workspace.
//!
//! * **Partitioning** ([`partition`]) — travel budgets make USEP
//!   naturally geo-partitionable: a Vancouver attendee never joins a
//!   Singapore event, so requests labeled with a city go to that city's
//!   shard. Unlabeled requests fall back to rendezvous
//!   (highest-random-weight) hashing on the request id, which moves
//!   only ~K/N keys when a shard leaves the set. Assignment is a pure
//!   function of the table — a restarted router routes identically.
//! * **Health** ([`health`]) — per-shard shared state fed by a probe
//!   loop (TCP connect + `usep-obs` `/healthz` + queue-depth scrape)
//!   and by the router's own forwarding outcomes. One flaky probe makes
//!   a shard `Suspect`; two make it `Down`; a failed forward is direct
//!   evidence and marks it `Down` immediately.
//! * **Routing + failover** ([`router`]) — the front door speaks the
//!   exact `usep-serve` protocol. Failed forwards move down the
//!   deterministic preference order with capped equal-jitter backoff
//!   ([`usep_serve::backoff`]); a fleet-level completion cache answers
//!   duplicate ids and makes first-completion-wins the law across
//!   failover, so no client ever sees two answers for one id.
//! * **Supervision** ([`supervisor`]) — each shard owns a journal
//!   stamped with its shard id. When a shard dies the supervisor
//!   restarts it with `--resume`; the stamp guarantees a shard can
//!   never resume a sibling's journal, and the restarted process
//!   re-solves exactly the requests it had accepted but not completed.
//! * **Fleet metrics** ([`metrics`]) — a `usep-obs` registry over
//!   router counters and per-shard gauges (health, inflight, queue
//!   depth, failovers, restarts), served on the fleet's own
//!   `--metrics-addr` with the reconciliation identity
//!   `requests = replayed + rejected + shed + Σ completed + inflight`.
//! * **Assembly** ([`fleet`]) — [`Fleet::start`] behind
//!   `usep serve fleet`: spawn shards, build the table, start router,
//!   monitor, supervisor and metrics listener; one handle tears it all
//!   down.

#![forbid(unsafe_code)]

pub mod fleet;
pub mod health;
pub mod metrics;
pub mod partition;
pub mod router;
pub mod supervisor;

pub use fleet::{default_city_map, Fleet, FleetConfig, FleetHandle, DEFAULT_CITIES};
pub use health::{probe, Health, HealthMonitor, ShardState};
pub use metrics::FleetMetrics;
pub use partition::PartitionTable;
pub use router::{Router, RouterConfig, RouterHandle};
pub use supervisor::{spawn_shard, ShardProcessSpec, Supervisor};
