//! Fleet assembly: spawn the shards, start the router, watch both.
//!
//! [`Fleet::start`] is the one call behind `usep serve fleet`: it
//! launches N `usep serve` child processes (each a fleet *worker* with
//! its own `--shard-id`-stamped journal and optional metrics listener),
//! builds the partition table, and wires up the four long-lived
//! threads — the router accept loop, the health monitor, the shard
//! supervisor, and the fleet's own `/metrics` HTTP listener.

use crate::health::{HealthMonitor, ShardState};
use crate::metrics::FleetMetrics;
use crate::partition::PartitionTable;
use crate::router::{Router, RouterConfig, RouterHandle};
use crate::supervisor::{spawn_shard, ShardProcessSpec, Supervisor};
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use usep_serve::RetryPolicy;
use usep_trace::{json, TraceSink};

/// The three simulated Meetup cities `usep-gen` clusters instances
/// around; the default city map spreads them round-robin over shards.
pub const DEFAULT_CITIES: [&str; 3] = ["vancouver", "auckland", "singapore"];

/// Round-robin assignment of the default cities over `shards` — the
/// city map used when the operator does not hand one in.
pub fn default_city_map(shards: &[String]) -> Vec<(String, String)> {
    DEFAULT_CITIES
        .iter()
        .enumerate()
        .map(|(i, city)| (city.to_string(), shards[i % shards.len()].clone()))
        .collect()
}

/// Everything `Fleet::start` needs.
pub struct FleetConfig {
    /// Router solve-socket listen address (port 0 works).
    pub addr: String,
    /// Fleet `/metrics` listener address; `None` disables it.
    pub metrics_addr: Option<String>,
    /// Binary to run shards with (the `usep` CLI).
    pub program: String,
    /// Number of shard workers to launch.
    pub shard_count: usize,
    /// Directory for the per-shard journals
    /// (`<dir>/shard-<i>.wal.jsonl`); created if missing.
    pub journal_dir: PathBuf,
    /// Explicit city → shard-name assignments; empty means
    /// [`default_city_map`] over the spawned shards.
    pub cities: Vec<(String, String)>,
    /// Extra arguments appended to every shard's `serve` invocation
    /// (worker counts, chaos knobs, …).
    pub shard_args: Vec<String>,
    /// Give each shard its own `--metrics-addr 127.0.0.1:0` listener so
    /// the health monitor can probe `/healthz` and scrape queue depth.
    pub shard_metrics: bool,
    /// Pass `--resume true` to the *initial* shard spawn — the restart
    /// path after a whole-fleet crash with surviving journals.
    pub resume: bool,
    /// Health-probe cadence.
    pub probe_interval: Duration,
    /// Per-probe connect/scrape timeout.
    pub probe_timeout: Duration,
    /// Router per-forward timeout.
    pub forward_timeout: Duration,
    /// Backoff schedule shared by router failover and supervisor
    /// restarts.
    pub retry: RetryPolicy,
    /// Router sweeps over the preference order before shedding.
    pub sweeps: u32,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            addr: "127.0.0.1:7979".to_string(),
            metrics_addr: None,
            program: "usep".to_string(),
            shard_count: 3,
            journal_dir: PathBuf::from("fleet-journals"),
            cities: Vec::new(),
            shard_args: Vec::new(),
            shard_metrics: true,
            resume: false,
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_millis(500),
            forward_timeout: Duration::from_secs(120),
            retry: RetryPolicy::default(),
            sweeps: 2,
        }
    }
}

/// A running fleet: router + shards + watchers. Dropping it shuts
/// everything down and kills the shard children.
pub struct FleetHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shards: Vec<Arc<ShardState>>,
    sink: Arc<TraceSink>,
    router: Option<RouterHandle>,
    supervisor: Option<Supervisor>,
    monitor: Option<HealthMonitor>,
    http: Option<usep_obs::http::HttpHandle>,
}

impl FleetHandle {
    /// The router's bound solve-socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fleet's bound `/metrics` address, when configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Shared per-shard state (health, addresses, counters).
    pub fn shards(&self) -> &[Arc<ShardState>] {
        &self.shards
    }

    /// The fleet's trace sink (fleet_* counters).
    pub fn sink(&self) -> &TraceSink {
        &self.sink
    }

    /// Current shard child pids, by shard name — chaos tests aim their
    /// `kill -9` with these.
    pub fn pids(&self) -> Vec<(String, u32)> {
        self.supervisor.as_ref().map(Supervisor::pids).unwrap_or_default()
    }

    /// `SIGKILL`s the named shard's worker process (the scenario
    /// runner's process fault). The supervisor restarts it with
    /// `--resume` on its next poll. Returns whether the name matched a
    /// managed shard.
    pub fn kill_shard(&self, name: &str) -> bool {
        self.supervisor.as_ref().is_some_and(|s| s.kill_shard(name))
    }

    /// Stops the router, the watchers and every shard child.
    pub fn shutdown(&mut self) {
        if let Some(mut r) = self.router.take() {
            r.shutdown();
        }
        if let Some(mut m) = self.monitor.take() {
            m.shutdown();
        }
        if let Some(mut s) = self.supervisor.take() {
            s.shutdown();
        }
        if let Some(mut h) = self.http.take() {
            h.shutdown();
        }
    }
}

impl Drop for FleetHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Fleet entry point.
pub struct Fleet;

impl Fleet {
    /// Launches the shards, starts the router and watchers, and returns
    /// the running fleet's handle.
    pub fn start(cfg: FleetConfig) -> io::Result<FleetHandle> {
        if cfg.shard_count == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a fleet needs at least one shard",
            ));
        }
        std::fs::create_dir_all(&cfg.journal_dir)?;

        let names: Vec<String> = (0..cfg.shard_count).map(|i| format!("shard-{i}")).collect();
        let cities = if cfg.cities.is_empty() { default_city_map(&names) } else { cfg.cities.clone() };
        let table = PartitionTable::new(names.clone(), &cities)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;

        // spawn every shard before starting any watcher, so a failed
        // launch tears the half-built fleet down cleanly
        let mut shards: Vec<Arc<ShardState>> = Vec::with_capacity(cfg.shard_count);
        let mut children = Vec::with_capacity(cfg.shard_count);
        for name in &names {
            let journal = cfg.journal_dir.join(format!("{name}.wal.jsonl"));
            let mut args = vec![
                "serve".to_string(),
                "--addr".to_string(),
                "127.0.0.1:0".to_string(),
                "--shard-id".to_string(),
                name.clone(),
                "--journal".to_string(),
                journal.to_string_lossy().into_owned(),
            ];
            if cfg.shard_metrics {
                args.extend(["--metrics-addr".to_string(), "127.0.0.1:0".to_string()]);
            }
            args.extend(cfg.shard_args.iter().cloned());
            if cfg.resume {
                args.extend(["--resume".to_string(), "true".to_string()]);
            }
            let spec = ShardProcessSpec { program: cfg.program.clone(), args };
            let (child, addr, metrics) = spawn_shard(&spec).map_err(|e| {
                for (_, _, mut c) in std::mem::take(&mut children) {
                    let _ = kill_and_wait(&mut c);
                }
                io::Error::new(e.kind(), format!("launching {name}: {e}"))
            })?;
            let shard = Arc::new(ShardState::new(name.clone(), addr));
            shard.set_metrics_addr(metrics);
            shards.push(Arc::clone(&shard));
            children.push((shard, spec, child));
        }

        let sink = Arc::new(TraceSink::new());
        let metrics = Arc::new(FleetMetrics::new(&shards, Arc::clone(&sink)));

        let router = Router::start(RouterConfig {
            addr: cfg.addr.clone(),
            table,
            shards: shards.clone(),
            retry: cfg.retry,
            forward_timeout: cfg.forward_timeout,
            sweeps: cfg.sweeps,
            sink: Arc::clone(&sink),
            metrics: Arc::clone(&metrics),
        })?;
        let addr = router.addr();

        let http = match &cfg.metrics_addr {
            Some(maddr) => {
                Some(usep_obs::http::serve(maddr, metrics_routes(&metrics, &shards, addr))?)
            }
            None => None,
        };
        let metrics_addr = http.as_ref().map(|h| h.addr());

        let monitor =
            HealthMonitor::spawn(shards.clone(), cfg.probe_interval, cfg.probe_timeout);
        let supervisor = Supervisor::start(children, cfg.retry, Arc::clone(&sink));

        Ok(FleetHandle {
            addr,
            metrics_addr,
            shards,
            sink,
            router: Some(router),
            supervisor: Some(supervisor),
            monitor: Some(monitor),
            http: Some(http).flatten(),
        })
    }
}

fn kill_and_wait(child: &mut std::process::Child) -> io::Result<()> {
    child.kill()?;
    child.wait().map(|_| ())
}

fn metrics_routes(
    metrics: &Arc<FleetMetrics>,
    shards: &[Arc<ShardState>],
    solve_addr: SocketAddr,
) -> usep_obs::http::Handler {
    let registry = Arc::clone(&metrics.registry);
    let buildinfo = json::Value::Map(vec![
        ("service".to_string(), json::Value::Str("usep-fleet".to_string())),
        ("version".to_string(), json::Value::Str(env!("CARGO_PKG_VERSION").to_string())),
        ("solve_addr".to_string(), json::Value::Str(solve_addr.to_string())),
        ("shards".to_string(), json::Value::U64(shards.len() as u64)),
        (
            "shard_names".to_string(),
            json::Value::Str(
                shards.iter().map(|s| s.name.as_str()).collect::<Vec<_>>().join(","),
            ),
        ),
    ])
    .render();
    Box::new(move |path| match path {
        "/metrics" => Some(usep_obs::http::Response::text(registry.render())),
        "/healthz" => Some(usep_obs::http::Response::text("ok\n")),
        "/buildinfo" => Some(usep_obs::http::Response::json(buildinfo.clone())),
        _ => None,
    })
}
