//! Router integration: city routing, failover away from a dead shard,
//! fleet-level duplicate replay, shedding when every shard is gone, and
//! the metrics reconciliation identity — all against real in-process
//! `usep-serve` servers.

use std::sync::Arc;
use std::time::Duration;
use usep_fleet::{FleetMetrics, PartitionTable, Router, RouterConfig, ShardState};
use usep_serve::{send_request, RetryPolicy, ServeConfig, SolveRequest, SolveResponse, Status};
use usep_trace::{Counter, TraceSink};

fn request(id: &str, city: Option<&str>, seed: u64) -> SolveRequest {
    SolveRequest {
        id: id.to_string(),
        instance: std::sync::Arc::new(usep_gen::generate(
            &usep_gen::SyntheticConfig::tiny().with_events(5).with_users(12),
            seed,
        )),
        algorithm: None,
        timeout_ms: Some(10_000),
        mem_budget_mb: None,
        city: city.map(String::from),
    }
}

/// Starts one in-process shard server with a shard id (no journal —
/// journal semantics have their own tests).
fn shard_server(shard_id: &str) -> usep_serve::ServerHandle {
    usep_serve::Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        shard_id: Some(shard_id.to_string()),
        ..ServeConfig::default()
    })
    .expect("start shard server")
}

struct TestFleet {
    shards: Vec<Arc<ShardState>>,
    sink: Arc<TraceSink>,
    metrics: Arc<FleetMetrics>,
    router: usep_fleet::RouterHandle,
}

/// Router over three shard slots: `shard-0` points at a dead address,
/// `shard-1`/`shard-2` at the two live servers. Vancouver is owned by
/// the dead shard, so every Vancouver request exercises failover.
fn test_fleet(live: &[&usep_serve::ServerHandle]) -> TestFleet {
    let mut shards = vec![Arc::new(ShardState::new("shard-0", "127.0.0.1:1"))];
    for (i, server) in live.iter().enumerate() {
        shards.push(Arc::new(ShardState::new(
            format!("shard-{}", i + 1),
            server.addr().to_string(),
        )));
    }
    let table = PartitionTable::new(
        shards.iter().map(|s| s.name.clone()).collect(),
        &[("vancouver".to_string(), "shard-0".to_string())],
    )
    .unwrap();
    let sink = Arc::new(TraceSink::new());
    let metrics = Arc::new(FleetMetrics::new(&shards, Arc::clone(&sink)));
    let router = Router::start(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        table,
        shards: shards.clone(),
        retry: RetryPolicy { base: Duration::from_millis(1), cap: Duration::from_millis(5) },
        forward_timeout: Duration::from_secs(30),
        sweeps: 2,
        sink: Arc::clone(&sink),
        metrics: Arc::clone(&metrics),
    })
    .expect("start router");
    TestFleet { shards, sink, metrics, router }
}

#[test]
fn city_requests_fail_over_from_a_dead_shard_and_complete() {
    let a = shard_server("shard-1");
    let b = shard_server("shard-2");
    let fleet = test_fleet(&[&a, &b]);
    let addr = fleet.router.addr();

    // vancouver's owner is dead: the router must fail over and still
    // return a complete, shard-stamped planning
    let resp = send_request(addr, &request("van-1", Some("vancouver"), 7), secs(60)).unwrap();
    assert_eq!(resp.status, Status::Complete, "{resp:?}");
    let shard = resp.shard.as_deref().expect("response must carry the solving shard's stamp");
    assert!(shard == "shard-1" || shard == "shard-2", "unexpected shard {shard}");
    assert!(resp.planning.is_some());
    assert!(
        fleet.sink.counter(Counter::FleetFailover) >= 1,
        "failover away from the dead city owner must be counted"
    );
    assert_eq!(fleet.sink.counter(Counter::FleetRoute), 1);

    // the dead shard is now marked Down from first-hand evidence, so a
    // second vancouver request skips it without paying the connect
    assert_eq!(fleet.shards[0].health(), usep_fleet::Health::Down);
    let resp = send_request(addr, &request("van-2", Some("vancouver"), 8), secs(60)).unwrap();
    assert_eq!(resp.status, Status::Complete);

    // unlabeled requests rendezvous-hash to some live shard
    let resp = send_request(addr, &request("free-1", None, 9), secs(60)).unwrap();
    assert_eq!(resp.status, Status::Complete);

    a.shutdown();
    b.shutdown();
}

#[test]
fn duplicate_ids_replay_the_first_completion_without_a_second_solve() {
    let a = shard_server("shard-1");
    let b = shard_server("shard-2");
    let fleet = test_fleet(&[&a, &b]);
    let addr = fleet.router.addr();

    let first = send_request(addr, &request("dup-1", None, 11), secs(60)).unwrap();
    assert_eq!(first.status, Status::Complete);
    let completed_before: u64 =
        fleet.shards.iter().map(|s| s.completed.load(std::sync::atomic::Ordering::Relaxed)).sum();

    // same id again — even with a different city label — must answer
    // byte-identically from the router's cache, touching no shard
    let mut dup = request("dup-1", Some("vancouver"), 11);
    dup.timeout_ms = Some(9_999);
    let second = send_request(addr, &dup, secs(60)).unwrap();
    assert_eq!(serde_json::to_string(&second).unwrap(), serde_json::to_string(&first).unwrap());
    let completed_after: u64 =
        fleet.shards.iter().map(|s| s.completed.load(std::sync::atomic::Ordering::Relaxed)).sum();
    assert_eq!(completed_before, completed_after, "replay must not touch a shard");
    assert_eq!(fleet.sink.counter(Counter::FleetReplay), 1);
    assert_eq!(fleet.metrics.replayed.load(std::sync::atomic::Ordering::Relaxed), 1);

    a.shutdown();
    b.shutdown();
}

#[test]
fn all_shards_dead_sheds_with_a_typed_response_and_reconciles() {
    let a = shard_server("shard-1");
    let b = shard_server("shard-2");
    let fleet = test_fleet(&[&a, &b]);
    let addr = fleet.router.addr();

    // one good request first, so the identity has a completion in it
    let ok = send_request(addr, &request("pre-1", None, 13), secs(60)).unwrap();
    assert_eq!(ok.status, Status::Complete);

    // kill everything; the router must shed loudly, not hang or drop
    a.shutdown();
    b.shutdown();
    let resp = send_request(addr, &request("doomed-1", None, 14), secs(60)).unwrap();
    assert!(
        matches!(resp.status, Status::Overloaded { .. }),
        "exhausted fleet must answer a typed shed: {resp:?}"
    );
    assert_eq!(fleet.sink.counter(Counter::FleetShed), 1);

    // a malformed line is rejected by the router itself
    let garbage = raw_line(&addr.to_string(), "this is not json\n");
    let parsed: SolveResponse = serde_json::from_str(garbage.trim()).unwrap();
    assert!(matches!(parsed.status, Status::Rejected { .. }), "{parsed:?}");

    // reconciliation identity over everything this test sent:
    // requests = replayed + rejected + shed + Σ completed (+ inflight=0)
    use std::sync::atomic::Ordering::Relaxed;
    let requests = fleet.metrics.requests.load(Relaxed);
    let replayed = fleet.metrics.replayed.load(Relaxed);
    let rejected = fleet.metrics.rejected.load(Relaxed);
    let shed = fleet.metrics.shed.load(Relaxed);
    let completed: u64 = fleet.shards.iter().map(|s| s.completed.load(Relaxed)).sum();
    let inflight: u64 = fleet.shards.iter().map(|s| s.inflight.load(Relaxed)).sum();
    assert_eq!(requests, 3, "every line read counts, parseable or not");
    assert_eq!(rejected, 1);
    assert_eq!(requests, replayed + rejected + shed + completed + inflight);

    // and the registry exposes the same numbers
    let exposition = fleet.metrics.registry.render();
    assert!(exposition.contains("usep_fleet_requests_total 3"), "{exposition}");
    assert!(exposition.contains("usep_fleet_shed_total 1"), "{exposition}");
}

fn secs(s: u64) -> Duration {
    Duration::from_secs(s)
}

/// Writes one raw line to the router and reads one line back.
fn raw_line(addr: &str, line: &str) -> String {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(secs(30))).unwrap();
    stream.write_all(line.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    reply
}
