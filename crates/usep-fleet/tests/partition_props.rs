//! Property tests for the router's partition function — the two
//! guarantees the fleet's failover and journal story lean on:
//!
//! 1. **Stability under shard-set changes**: removing one of N shards
//!    reassigns *only* the keys whose primary was the removed shard
//!    (~K/N of them); every other key keeps its shard, so a shrink
//!    never stampedes the surviving journals.
//! 2. **Determinism across router restarts**: assignment is a pure
//!    function of the table — a freshly built router (same shards, any
//!    city-map insertion order) routes every key and every city
//!    identically.

use proptest::prelude::*;
use usep_fleet::PartitionTable;

fn shard_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("shard-{i}")).collect()
}

proptest! {
    /// Removing one shard moves only that shard's own keys; the rest
    /// keep their assignment (by *name* — indexes shift on removal).
    #[test]
    fn removing_one_shard_strands_no_other_key(
        n in 2usize..8,
        removed in 0usize..8,
        raw_keys in prop::collection::vec(any::<u64>(), 1..60),
    ) {
        let removed = removed % n;
        let full = PartitionTable::new(shard_names(n), &[]).unwrap();
        let survivors: Vec<String> = shard_names(n)
            .into_iter()
            .filter(|s| s != &format!("shard-{removed}"))
            .collect();
        let reduced = PartitionTable::new(survivors, &[]).unwrap();
        let keys: Vec<String> = raw_keys.iter().map(|v| format!("req-{v:x}")).collect();
        for key in &keys {
            let before = &full.shards()[full.assign(None, key)];
            let after = &reduced.shards()[reduced.assign(None, key)];
            if before != &format!("shard-{removed}") {
                prop_assert_eq!(before, after);
            }
        }
    }

    /// A restarted router — a freshly constructed table over the same
    /// shards, with the city map fed in any order — computes identical
    /// primaries and identical full failover orders.
    #[test]
    fn assignment_is_deterministic_across_restarts(
        n in 1usize..8,
        raw_keys in prop::collection::vec(any::<u64>(), 1..40),
        city_count in 0usize..4,
        reverse_city_order in any::<bool>(),
    ) {
        let names = shard_names(n);
        let mut cities: Vec<(String, String)> = (0..city_count)
            .map(|c| (format!("city-{c}"), names[c % n].clone()))
            .collect();
        let first = PartitionTable::new(names.clone(), &cities).unwrap();
        if reverse_city_order {
            cities.reverse();
        }
        let restarted = PartitionTable::new(names, &cities).unwrap();
        let keys: Vec<String> = raw_keys.iter().map(|v| format!("req-{v:x}")).collect();
        for key in &keys {
            for city in [None, Some("city-0"), Some("city-1"), Some("unmapped")] {
                let city = city.filter(|c| *c != "city-0" || city_count > 0);
                prop_assert_eq!(
                    first.preference(city, key),
                    restarted.preference(city, key)
                );
            }
        }
    }

    /// A mapped city always lands on its owner, for every key.
    #[test]
    fn city_owner_always_wins(
        n in 1usize..8,
        owner in 0usize..8,
        raw_keys in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        let owner = owner % n;
        let names = shard_names(n);
        let table = PartitionTable::new(
            names.clone(),
            &[("vancouver".to_string(), names[owner].clone())],
        )
        .unwrap();
        let keys: Vec<String> = raw_keys.iter().map(|v| format!("req-{v:x}")).collect();
        for key in &keys {
            prop_assert_eq!(table.assign(Some("vancouver"), key), owner);
            prop_assert_eq!(table.assign(Some("VANCOUVER"), key), owner);
        }
    }
}
