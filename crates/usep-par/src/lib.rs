//! Deterministic fork-join parallelism for the USEP solver hot paths.
//!
//! The paper's scalability figures (Figs. 2–4) measure running time as
//! the headline axis, and the hot paths they exercise — RatioGreedy's
//! `O(|U|·|V|)` heap seeding and incident-pair refreshes, the per-user
//! DPs of the capacity-relaxed bound, local-search move evaluation,
//! experiment fan-out — are all embarrassingly parallel *scans* whose
//! results feed a sequential commit step. This crate supplies exactly
//! that shape and nothing more:
//!
//! * [`par_map`] / [`par_map_init`] — a scoped fork-join map over a
//!   slice. Work is distributed as contiguous index chunks through a
//!   `crossbeam::channel`, each worker owns optional per-worker state
//!   (a scratch DP workspace, a local trace-counter block), and results
//!   are merged **by item index**, so the output is bit-identical to a
//!   sequential run of the same closure regardless of thread count or
//!   scheduling. The closure must be a pure function of `(index, item)`
//!   and its own worker state for that guarantee to mean anything;
//!   every call site in this workspace reads shared solver state
//!   immutably during the map and applies effects in index order
//!   afterwards.
//! * [`resolve_threads`] / [`set_threads`] — the thread-count
//!   resolution chain: explicit per-call value, then the process-global
//!   override (set once from `--threads`), then the `USEP_THREADS`
//!   environment variable, then [`std::thread::available_parallelism`].
//!
//! # Guard integration
//!
//! Every worker polls [`Guard::checkpoint`] once per chunk, before
//! computing it. [`Guard`] is `Sync` and its trip is sticky, so one
//! tripped worker stops the whole pool within a chunk's worth of work.
//! Items whose chunk was never computed come back as `None`; callers
//! treat computed items as the usable prefix and keep the planning
//! constraint-valid, exactly as the sequential truncation paths do.
//! On a completed (untripped) run every slot is `Some` and the
//! `Vec<Option<R>>` unwraps losslessly.
//!
//! # No external dependencies
//!
//! Built on `std::thread::scope` via the vendored `crossbeam` adapter;
//! no rayon, no thread-pool daemon, no global state beyond one atomic
//! for the `--threads` override. Spawning a handful of OS threads per
//! parallel section costs microseconds, which is noise against the
//! millisecond-scale sections it pays for — and keeps every section's
//! lifetime lexically scoped, so borrowing the instance and planning
//! from the caller's stack needs no `Arc`.

#![forbid(unsafe_code)]

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use usep_guard::Guard;
use usep_trace::{Counter, Probe};

/// Process-global thread-count override; 0 means "not set".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets (or with `0` clears) the process-global thread-count override.
/// Sits between an explicit per-call count and `USEP_THREADS` in the
/// resolution chain; the CLI's `--threads` flag lands here.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The current process-global override, if any.
pub fn global_threads() -> Option<usize> {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Resolves a thread count: `explicit` > [`set_threads`] override >
/// `USEP_THREADS` env var > [`std::thread::available_parallelism`].
/// Always at least 1; malformed or zero values fall through to the
/// next link in the chain (with a one-time stderr warning for a set
/// but unusable `USEP_THREADS`, so a typo'd environment doesn't
/// silently change the parallelism).
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&n| n > 0)
        .or_else(global_threads)
        .or_else(env_threads)
        .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
        .unwrap_or(1)
}

/// `USEP_THREADS`, when set to a usable (positive integer) value.
/// An unusable value warns once per process and falls through.
fn env_threads() -> Option<usize> {
    let raw = std::env::var("USEP_THREADS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: ignoring invalid USEP_THREADS='{raw}' \
                     (expected a positive integer); using the next link \
                     in the resolution chain"
                );
            });
            None
        }
    }
}

/// Shorthand for [`resolve_threads`]`(None)`: the thread count every
/// hot path uses unless a caller passes one explicitly.
pub fn current_threads() -> usize {
    resolve_threads(None)
}

/// Chunk length for `n` items across `threads` workers: 4 chunks per
/// worker for load balance (scan costs per item are uneven — users
/// differ in candidate counts), never below 1.
fn chunk_len(n: usize, threads: usize) -> usize {
    n.div_ceil(threads * 4).max(1)
}

/// Maps `f` over `items` on `threads` workers and returns the results
/// in item order. See [`par_map_init`] for the full contract; this is
/// the stateless form.
pub fn par_map<T, R, F>(threads: usize, items: &[T], guard: &Guard, f: F) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_init(threads, items, guard, || (), |(), i, item| f(i, item), |()| ())
}

/// Maps `f` over `items` on `threads` workers with per-worker state.
///
/// Each worker calls `init` once to build its state `S` (a scratch
/// workspace, a local counter block), threads it through every `f`
/// call it executes, and hands it to `drain` when done — which is
/// where per-worker trace counters merge into the session sink.
/// `drain` also runs for workers that stopped on a guard trip, so no
/// counts are lost on truncation.
///
/// Results are placed by item index: `out[i]` is `Some(f(state, i,
/// &items[i]))` when item `i`'s chunk was computed and `None` when a
/// guard trip stopped the pool first. On a run where the guard never
/// trips, every slot is `Some` and the output is bit-identical to
/// `items.iter().enumerate().map(…)` with a single state.
///
/// `threads <= 1`, few items, or an inactive single chunk run inline
/// on the caller's thread with the same chunked checkpoint cadence, so
/// sequential and parallel runs see guard checkpoints at the same
/// rate.
///
/// # Panics
///
/// A panic inside `f` re-raises on the calling thread with the
/// original payload (the first panicking chunk in index order wins,
/// deterministically at every thread count); remaining workers stop
/// within one chunk and the pool never hangs. The panicking worker's
/// state is dropped without `drain`, since the panic may have left it
/// mid-update.
pub fn par_map_init<T, R, S, I, F, D>(
    threads: usize,
    items: &[T],
    guard: &Guard,
    init: I,
    f: F,
    drain: D,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    D: Fn(S) + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    let chunk = chunk_len(n, threads);

    if threads == 1 {
        let mut state = init();
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        for start in (0..n).step_by(chunk) {
            if guard.checkpoint() {
                break;
            }
            for (i, item) in items.iter().enumerate().skip(start).take(chunk) {
                out.push(Some(f(&mut state, i, item)));
            }
        }
        out.resize_with(n, || None);
        drain(state);
        return out;
    }

    let (tx, rx) = crossbeam::channel::unbounded::<usize>();
    for start in (0..n).step_by(chunk) {
        let _ = tx.send(start);
    }
    drop(tx);

    // A panic inside `f` must reach the caller as a panic with the
    // original payload, never as a hung channel or a poisoned scope.
    // Each worker catches its chunk's panic, poisons the pool so idle
    // workers stop dequeuing, and reports the payload with its chunk
    // start; the driving thread re-raises the panic of the *lowest*
    // chunk index. Chunks are dequeued in index order, so that is the
    // first panic a sequential run of the same closure would hit (at
    // chunk granularity) — deterministic at every thread count.
    let poisoned = AtomicBool::new(false);
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(n, || None);
    let worker_results = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let rx = rx.clone();
                let (init, f, drain) = (&init, &f, &drain);
                let poisoned = &poisoned;
                s.spawn(move |_| {
                    let mut state = Some(init());
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut panicked: Option<(usize, Box<dyn Any + Send>)> = None;
                    while let Ok(start) = rx.recv() {
                        if poisoned.load(Ordering::Relaxed) || guard.checkpoint() {
                            break;
                        }
                        let st = state.as_mut().expect("state lives until a panic");
                        let attempt = catch_unwind(AssertUnwindSafe(|| {
                            for (i, item) in items.iter().enumerate().skip(start).take(chunk) {
                                local.push((i, f(st, i, item)));
                            }
                        }));
                        if let Err(payload) = attempt {
                            poisoned.store(true, Ordering::Relaxed);
                            panicked = Some((start, payload));
                            // the panic may have left the worker state
                            // mid-update; drop it without draining
                            state = None;
                            break;
                        }
                    }
                    if let Some(st) = state {
                        drain(st);
                    }
                    (local, panicked)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("usep-par workers contain panics via catch_unwind"))
            .collect::<Vec<_>>()
    })
    .expect("scope itself cannot fail");

    let mut first_panic: Option<(usize, Box<dyn Any + Send>)> = None;
    for (local, panicked) in worker_results {
        if let Some((start, payload)) = panicked {
            if first_panic.as_ref().is_none_or(|&(s, _)| start < s) {
                first_panic = Some((start, payload));
            }
        }
        for (i, r) in local {
            out[i] = Some(r);
        }
    }
    if let Some((_, payload)) = first_panic {
        resume_unwind(payload);
    }
    out
}

/// [`par_map_init`] wrapped in an observable section: the whole
/// fork-join runs inside a span named `section` on `probe`, one
/// [`Counter::ParSection`] tick is counted, and each worker records its
/// busy time into the `par.worker_ms` histogram when it drains.
///
/// Request-scoped observability falls out of the probe argument: when
/// the serve layer passes a `RequestProbe`, the section's span events
/// carry that request's id, so a slow parallel scan is attributable to
/// the request that ran it. Determinism is preserved — the span and
/// section counter are caller-side (thread-count-independent), and the
/// per-worker histogram feeds summaries only, never counter snapshots.
#[allow(clippy::too_many_arguments)]
pub fn par_map_section<T, R, S, I, F, D>(
    threads: usize,
    section: &'static str,
    probe: &dyn Probe,
    items: &[T],
    guard: &Guard,
    init: I,
    f: F,
    drain: D,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    D: Fn(S) + Sync,
{
    struct Timed<S> {
        inner: S,
        started: std::time::Instant,
    }
    probe.span_enter(section);
    probe.count(Counter::ParSection, 1);
    let out = par_map_init(
        threads,
        items,
        guard,
        || Timed { inner: init(), started: std::time::Instant::now() },
        |t, i, item| f(&mut t.inner, i, item),
        |t| {
            if probe.enabled() {
                probe.record("par.worker_ms", t.started.elapsed().as_secs_f64() * 1e3);
            }
            drain(t.inner);
        },
    );
    probe.span_exit(section);
    out
}

/// [`par_map`] that panics on guard-trip holes: for call sites with an
/// inactive (or absent) guard where truncation is impossible, this
/// unwraps the `Option` layer.
pub fn par_map_complete<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(threads, items, Guard::none(), f)
        .into_iter()
        .map(|r| r.expect("no guard was active, so no item can be missing"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use usep_guard::{SolveBudget, TruncationReason};

    /// Serializes tests that touch process-global state (the override
    /// atomic and the environment).
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn resolution_chain_precedence() {
        let _g = GLOBAL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        std::env::set_var("USEP_THREADS", "3");
        set_threads(0);
        assert_eq!(resolve_threads(Some(7)), 7);
        assert_eq!(resolve_threads(None), 3);
        set_threads(5);
        assert_eq!(resolve_threads(None), 5);
        assert_eq!(resolve_threads(Some(2)), 2);
        set_threads(0);
        std::env::set_var("USEP_THREADS", "zebra");
        let fallback = resolve_threads(None);
        assert!(fallback >= 1, "malformed env falls through to hardware");
        std::env::remove_var("USEP_THREADS");
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn par_map_matches_sequential_at_all_thread_counts() {
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 3 + i as u64).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got: Vec<u64> = par_map(threads, &items, Guard::none(), |i, x| x * 3 + i as u64)
                .into_iter()
                .map(Option::unwrap)
                .collect();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_oversized_thread_counts_are_safe() {
        let out = par_map(8, &[] as &[u32], Guard::none(), |_, x| *x);
        assert!(out.is_empty());
        let out = par_map_complete(100, &[1u32, 2], |_, x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn tripped_guard_computes_nothing() {
        let budget = SolveBudget::unlimited().with_chaos_trip(0, TruncationReason::Cancelled);
        let guard = Guard::new(&budget);
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 4] {
            let out = par_map(threads, &items, &guard, |_, x| *x);
            assert!(out.iter().all(Option::is_none), "threads={threads}");
        }
    }

    #[test]
    fn mid_run_trip_leaves_holes_but_keeps_computed_results_correct() {
        let items: Vec<u32> = (0..1000).collect();
        for threads in [1, 4] {
            let budget =
                SolveBudget::unlimited().with_chaos_trip(2, TruncationReason::Deadline);
            let guard = Guard::new(&budget);
            let out = par_map(threads, &items, &guard, |_, x| x * 2);
            assert!(guard.is_tripped());
            let computed = out.iter().flatten().count();
            assert!(computed < items.len(), "threads={threads}: trip must truncate");
            for (i, r) in out.iter().enumerate() {
                if let Some(v) = r {
                    assert_eq!(*v, items[i] * 2);
                }
            }
        }
    }

    #[test]
    fn per_worker_state_inits_and_drains_once_per_worker() {
        use std::sync::atomic::AtomicU64;
        let inits = AtomicU64::new(0);
        let drained_total = AtomicU64::new(0);
        let items: Vec<u64> = (0..256).collect();
        let out = par_map_init(
            4,
            &items,
            Guard::none(),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |acc, _, x| {
                *acc += x;
                *x
            },
            |acc| {
                drained_total.fetch_add(acc, Ordering::Relaxed);
            },
        );
        assert_eq!(out.iter().flatten().copied().collect::<Vec<_>>(), items);
        assert_eq!(inits.load(Ordering::Relaxed), 4, "one state per worker");
        assert_eq!(drained_total.load(Ordering::Relaxed), items.iter().sum::<u64>());
    }

    #[test]
    fn worker_panic_propagates_payload_to_caller() {
        let items: Vec<u32> = (0..500).collect();
        for threads in [1, 2, 4, 16] {
            let result = catch_unwind(AssertUnwindSafe(|| {
                par_map(threads, &items, Guard::none(), |_, x| {
                    if *x == 97 {
                        panic!("boom at {x}");
                    }
                    *x * 2
                })
            }));
            let payload = result.expect_err("panic must propagate");
            let msg = payload.downcast_ref::<String>().expect("String payload");
            assert_eq!(msg, "boom at 97", "threads={threads}");
        }
    }

    #[test]
    fn first_panicking_chunk_wins_deterministically() {
        // every item from 100 on panics; the propagated payload must be
        // the lowest-index one at every thread count, every run
        let items: Vec<u32> = (0..400).collect();
        for threads in [1, 3, 8] {
            for _ in 0..5 {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    par_map(threads, &items, Guard::none(), |_, x| {
                        if *x >= 100 {
                            panic!("panic item {x}");
                        }
                        *x
                    })
                }));
                let payload = result.expect_err("panic must propagate");
                let msg = payload.downcast_ref::<String>().expect("String payload");
                assert_eq!(msg, "panic item 100", "threads={threads}");
            }
        }
    }

    #[test]
    fn panic_skips_drain_for_the_panicking_worker_only() {
        use std::sync::atomic::AtomicU64;
        let inits = AtomicU64::new(0);
        let drains = AtomicU64::new(0);
        let items: Vec<u64> = (0..256).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_init(
                4,
                &items,
                Guard::none(),
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                },
                |(), _, x| {
                    if *x == 3 {
                        panic!("die");
                    }
                    *x
                },
                |()| {
                    drains.fetch_add(1, Ordering::Relaxed);
                },
            )
        }));
        assert!(result.is_err());
        let inited = inits.load(Ordering::Relaxed);
        let drained = drains.load(Ordering::Relaxed);
        assert_eq!(drained, inited - 1, "exactly the panicking worker skips drain");
    }

    #[test]
    fn par_map_section_spans_count_and_time_workers() {
        use usep_trace::{RequestCtx, RequestProbe, TraceSink};
        let sink = TraceSink::new();
        let scoped = RequestProbe::new(&sink, RequestCtx::new("req-7"));
        let items: Vec<u64> = (0..300).collect();
        for threads in [1, 4] {
            let out = par_map_section(
                threads,
                "par.scan",
                &scoped,
                &items,
                Guard::none(),
                || 0u64,
                |acc, _, x| {
                    *acc += 1;
                    x * 2
                },
                |_| {},
            );
            assert_eq!(out.iter().flatten().count(), items.len(), "threads={threads}");
        }
        assert_eq!(sink.counter(Counter::ParSection), 2, "one tick per section, not per worker");
        let span = sink.span_totals().iter().find(|t| t.name == "par.scan").cloned().unwrap();
        assert_eq!(span.count, 2);
        // 1-thread run records 1 worker, 4-thread run records 4
        assert_eq!(sink.histogram_summary("par.worker_ms").unwrap().count, 5);
    }

    #[test]
    fn chunk_len_is_positive_and_covers() {
        for n in [1usize, 2, 7, 100, 1000] {
            for t in [1usize, 2, 8, 64] {
                let c = chunk_len(n, t);
                assert!(c >= 1);
                assert!((0..n).step_by(c).count() * c >= n);
            }
        }
    }
}
