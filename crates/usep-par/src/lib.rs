//! Deterministic fork-join parallelism for the USEP solver hot paths.
//!
//! The paper's scalability figures (Figs. 2–4) measure running time as
//! the headline axis, and the hot paths they exercise — RatioGreedy's
//! `O(|U|·|V|)` heap seeding and incident-pair refreshes, the per-user
//! DPs of the capacity-relaxed bound, local-search move evaluation,
//! experiment fan-out — are all embarrassingly parallel *scans* whose
//! results feed a sequential commit step. This crate supplies exactly
//! that shape and nothing more:
//!
//! * [`par_map`] / [`par_map_init`] — a scoped fork-join map over a
//!   slice. Work is distributed as contiguous index chunks through a
//!   `crossbeam::channel`, each worker owns optional per-worker state
//!   (a scratch DP workspace, a local trace-counter block), and results
//!   are merged **by item index**, so the output is bit-identical to a
//!   sequential run of the same closure regardless of thread count or
//!   scheduling. The closure must be a pure function of `(index, item)`
//!   and its own worker state for that guarantee to mean anything;
//!   every call site in this workspace reads shared solver state
//!   immutably during the map and applies effects in index order
//!   afterwards.
//! * [`resolve_threads`] / [`set_threads`] — the thread-count
//!   resolution chain: explicit per-call value, then the process-global
//!   override (set once from `--threads`), then the `USEP_THREADS`
//!   environment variable, then [`std::thread::available_parallelism`].
//!
//! # Guard integration
//!
//! Every worker polls [`Guard::checkpoint`] once per chunk, before
//! computing it. [`Guard`] is `Sync` and its trip is sticky, so one
//! tripped worker stops the whole pool within a chunk's worth of work.
//! Items whose chunk was never computed come back as `None`; callers
//! treat computed items as the usable prefix and keep the planning
//! constraint-valid, exactly as the sequential truncation paths do.
//! On a completed (untripped) run every slot is `Some` and the
//! `Vec<Option<R>>` unwraps losslessly.
//!
//! # No external dependencies
//!
//! Built on `std::thread::scope` via the vendored `crossbeam` adapter;
//! no rayon, no thread-pool daemon, no global state beyond one atomic
//! for the `--threads` override. Spawning a handful of OS threads per
//! parallel section costs microseconds, which is noise against the
//! millisecond-scale sections it pays for — and keeps every section's
//! lifetime lexically scoped, so borrowing the instance and planning
//! from the caller's stack needs no `Arc`.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use usep_guard::Guard;

/// Process-global thread-count override; 0 means "not set".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets (or with `0` clears) the process-global thread-count override.
/// Sits between an explicit per-call count and `USEP_THREADS` in the
/// resolution chain; the CLI's `--threads` flag lands here.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The current process-global override, if any.
pub fn global_threads() -> Option<usize> {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Resolves a thread count: `explicit` > [`set_threads`] override >
/// `USEP_THREADS` env var > [`std::thread::available_parallelism`].
/// Always at least 1; malformed or zero values fall through to the
/// next link in the chain.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&n| n > 0)
        .or_else(global_threads)
        .or_else(|| {
            std::env::var("USEP_THREADS").ok().and_then(|s| s.trim().parse().ok()).filter(|&n| n > 0)
        })
        .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
        .unwrap_or(1)
}

/// Shorthand for [`resolve_threads`]`(None)`: the thread count every
/// hot path uses unless a caller passes one explicitly.
pub fn current_threads() -> usize {
    resolve_threads(None)
}

/// Chunk length for `n` items across `threads` workers: 4 chunks per
/// worker for load balance (scan costs per item are uneven — users
/// differ in candidate counts), never below 1.
fn chunk_len(n: usize, threads: usize) -> usize {
    n.div_ceil(threads * 4).max(1)
}

/// Maps `f` over `items` on `threads` workers and returns the results
/// in item order. See [`par_map_init`] for the full contract; this is
/// the stateless form.
pub fn par_map<T, R, F>(threads: usize, items: &[T], guard: &Guard, f: F) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_init(threads, items, guard, || (), |(), i, item| f(i, item), |()| ())
}

/// Maps `f` over `items` on `threads` workers with per-worker state.
///
/// Each worker calls `init` once to build its state `S` (a scratch
/// workspace, a local counter block), threads it through every `f`
/// call it executes, and hands it to `drain` when done — which is
/// where per-worker trace counters merge into the session sink.
/// `drain` also runs for workers that stopped on a guard trip, so no
/// counts are lost on truncation.
///
/// Results are placed by item index: `out[i]` is `Some(f(state, i,
/// &items[i]))` when item `i`'s chunk was computed and `None` when a
/// guard trip stopped the pool first. On a run where the guard never
/// trips, every slot is `Some` and the output is bit-identical to
/// `items.iter().enumerate().map(…)` with a single state.
///
/// `threads <= 1`, few items, or an inactive single chunk run inline
/// on the caller's thread with the same chunked checkpoint cadence, so
/// sequential and parallel runs see guard checkpoints at the same
/// rate.
pub fn par_map_init<T, R, S, I, F, D>(
    threads: usize,
    items: &[T],
    guard: &Guard,
    init: I,
    f: F,
    drain: D,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    D: Fn(S) + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    let chunk = chunk_len(n, threads);

    if threads == 1 {
        let mut state = init();
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        for start in (0..n).step_by(chunk) {
            if guard.checkpoint() {
                break;
            }
            for (i, item) in items.iter().enumerate().skip(start).take(chunk) {
                out.push(Some(f(&mut state, i, item)));
            }
        }
        out.resize_with(n, || None);
        drain(state);
        return out;
    }

    let (tx, rx) = crossbeam::channel::unbounded::<usize>();
    for start in (0..n).step_by(chunk) {
        let _ = tx.send(start);
    }
    drop(tx);

    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(n, || None);
    let worker_results = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let rx = rx.clone();
                let (init, f, drain) = (&init, &f, &drain);
                s.spawn(move |_| {
                    let mut state = init();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    while let Ok(start) = rx.recv() {
                        if guard.checkpoint() {
                            break;
                        }
                        for (i, item) in items.iter().enumerate().skip(start).take(chunk) {
                            local.push((i, f(&mut state, i, item)));
                        }
                    }
                    drain(state);
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("usep-par worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("scope itself cannot fail");

    for (i, r) in worker_results.into_iter().flatten() {
        out[i] = Some(r);
    }
    out
}

/// [`par_map`] that panics on guard-trip holes: for call sites with an
/// inactive (or absent) guard where truncation is impossible, this
/// unwraps the `Option` layer.
pub fn par_map_complete<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(threads, items, Guard::none(), f)
        .into_iter()
        .map(|r| r.expect("no guard was active, so no item can be missing"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use usep_guard::{SolveBudget, TruncationReason};

    /// Serializes tests that touch process-global state (the override
    /// atomic and the environment).
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn resolution_chain_precedence() {
        let _g = GLOBAL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        std::env::set_var("USEP_THREADS", "3");
        set_threads(0);
        assert_eq!(resolve_threads(Some(7)), 7);
        assert_eq!(resolve_threads(None), 3);
        set_threads(5);
        assert_eq!(resolve_threads(None), 5);
        assert_eq!(resolve_threads(Some(2)), 2);
        set_threads(0);
        std::env::set_var("USEP_THREADS", "zebra");
        let fallback = resolve_threads(None);
        assert!(fallback >= 1, "malformed env falls through to hardware");
        std::env::remove_var("USEP_THREADS");
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn par_map_matches_sequential_at_all_thread_counts() {
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 3 + i as u64).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got: Vec<u64> = par_map(threads, &items, Guard::none(), |i, x| x * 3 + i as u64)
                .into_iter()
                .map(Option::unwrap)
                .collect();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_oversized_thread_counts_are_safe() {
        let out = par_map(8, &[] as &[u32], Guard::none(), |_, x| *x);
        assert!(out.is_empty());
        let out = par_map_complete(100, &[1u32, 2], |_, x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn tripped_guard_computes_nothing() {
        let budget = SolveBudget::unlimited().with_chaos_trip(0, TruncationReason::Cancelled);
        let guard = Guard::new(&budget);
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 4] {
            let out = par_map(threads, &items, &guard, |_, x| *x);
            assert!(out.iter().all(Option::is_none), "threads={threads}");
        }
    }

    #[test]
    fn mid_run_trip_leaves_holes_but_keeps_computed_results_correct() {
        let items: Vec<u32> = (0..1000).collect();
        for threads in [1, 4] {
            let budget =
                SolveBudget::unlimited().with_chaos_trip(2, TruncationReason::Deadline);
            let guard = Guard::new(&budget);
            let out = par_map(threads, &items, &guard, |_, x| x * 2);
            assert!(guard.is_tripped());
            let computed = out.iter().flatten().count();
            assert!(computed < items.len(), "threads={threads}: trip must truncate");
            for (i, r) in out.iter().enumerate() {
                if let Some(v) = r {
                    assert_eq!(*v, items[i] * 2);
                }
            }
        }
    }

    #[test]
    fn per_worker_state_inits_and_drains_once_per_worker() {
        use std::sync::atomic::AtomicU64;
        let inits = AtomicU64::new(0);
        let drained_total = AtomicU64::new(0);
        let items: Vec<u64> = (0..256).collect();
        let out = par_map_init(
            4,
            &items,
            Guard::none(),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |acc, _, x| {
                *acc += x;
                *x
            },
            |acc| {
                drained_total.fetch_add(acc, Ordering::Relaxed);
            },
        );
        assert_eq!(out.iter().flatten().copied().collect::<Vec<_>>(), items);
        assert_eq!(inits.load(Ordering::Relaxed), 4, "one state per worker");
        assert_eq!(drained_total.load(Ordering::Relaxed), items.iter().sum::<u64>());
    }

    #[test]
    fn chunk_len_is_positive_and_covers() {
        for n in [1usize, 2, 7, 100, 1000] {
            for t in [1usize, 2, 8, 64] {
                let c = chunk_len(n, t);
                assert!(c >= 1);
                assert!((0..n).step_by(c).count() * c >= n);
            }
        }
    }
}
