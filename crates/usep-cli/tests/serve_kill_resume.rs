//! Crash/recovery against the real binary: SIGKILL a server mid-solve,
//! restart with `--resume`, and prove the journal contract — no
//! accepted request is lost, no completed request is re-solved.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use usep_gen::{generate, SyntheticConfig};
use usep_serve::{send_request, JournalState, SolveRequest, Status};

fn usep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_usep"))
}

/// Spawns `usep serve` with the given extra flags and returns the child
/// plus the address it printed on stdout.
fn spawn_server(wal: &std::path::Path, extra: &[&str]) -> (Child, String) {
    let mut cmd = usep();
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--journal", wal.to_str().unwrap()])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn usep serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .to_string();
    (child, addr)
}

fn victim_request() -> SolveRequest {
    SolveRequest {
        id: "victim".to_string(),
        instance: std::sync::Arc::new(generate(
            &SyntheticConfig::tiny().with_events(6).with_users(24).with_capacity_mean(4),
            77,
        )),
        algorithm: None,
        timeout_ms: Some(30_000),
        mem_budget_mb: None,
        city: None,
    }
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn sigkill_mid_solve_then_resume_completes_without_resolving() {
    let dir = std::env::temp_dir().join(format!("usep_kill_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("wal.jsonl");

    // Phase 1: a server whose every solve stalls 10 s inside the solve
    // path, guaranteeing the SIGKILL lands mid-solve.
    let (mut server_a, addr_a) = spawn_server(&wal, &["--chaos-delay-ms", "10000"]);

    // Fire the victim request from a throwaway thread; its client times
    // out — all that matters is that the server fsyncs the accept.
    let req = victim_request();
    let fire = {
        let req = req.clone();
        let addr = addr_a.clone();
        std::thread::spawn(move || {
            let _ = send_request(&addr, &req, Duration::from_millis(1500));
        })
    };
    wait_for(
        || std::fs::read_to_string(&wal).is_ok_and(|t| t.contains("Accepted")),
        "the accept record to reach the journal",
    );
    // the accept is durable and the solve is inside its 10 s stall: kill
    server_a.kill().expect("SIGKILL server A");
    server_a.wait().unwrap();
    fire.join().unwrap();

    let state = JournalState::replay(&wal).unwrap();
    assert_eq!(state.pending.len(), 1, "the accepted solve is owed after the crash");
    assert_eq!(state.pending[0].id, "victim");
    assert!(state.completed.is_empty());

    // Phase 2: restart with --resume and let it drain the owed solve,
    // then exit 0 on its own via --max-requests.
    let (mut server_b, _) = spawn_server(&wal, &["--resume", "true", "--max-requests", "1"]);
    let status = server_b.wait().expect("server B exit status");
    assert!(status.success(), "drain server must exit 0, got {status:?}");

    let state = JournalState::replay(&wal).unwrap();
    assert!(state.pending.is_empty(), "no accepted request may be lost");
    let done = &state.completed["victim"];
    assert_eq!(done.status, Status::Complete, "{done:?}");
    done.planning.as_ref().unwrap().validate(&req.instance).unwrap();

    // Phase 3: a third server answers a duplicate of the completed id
    // from the journal, without re-solving it.
    let completions_before = std::fs::read_to_string(&wal)
        .unwrap()
        .matches("Completed")
        .count();
    let (mut server_c, addr_c) = spawn_server(&wal, &["--resume", "true"]);
    let dup = send_request(&addr_c, &req, Duration::from_secs(30)).unwrap();
    assert_eq!(dup.status, Status::Complete);
    assert_eq!(dup.omega, done.omega, "replayed answer must be the journaled one");
    let completions_after = std::fs::read_to_string(&wal)
        .unwrap()
        .matches("Completed")
        .count();
    assert_eq!(
        completions_after, completions_before,
        "a completed request must never be re-solved or re-journaled"
    );
    server_c.kill().unwrap();
    server_c.wait().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
