//! Fleet-level chaos e2e against the real binary: SIGKILL a shard
//! mid-solve under ≥ 50 concurrent mixed-city requests and prove the
//! fleet contract —
//!
//! * zero lost requests: every client gets a terminal typed response;
//! * zero duplicate completions: one answer per id, and replaying an id
//!   returns the identical cached answer without a second solve;
//! * the supervisor restarts the dead shard with `--resume` from its
//!   own shard-stamped journal and the journal drains;
//! * every returned planning passes independent `usep-oracle`
//!   validation against its instance.

#![cfg(unix)]

use std::collections::HashSet;
use std::sync::atomic::Ordering::Relaxed;
use std::time::{Duration, Instant};
use usep_fleet::{Fleet, FleetConfig};
use usep_serve::{send_request, JournalState, SolveRequest, Status};
use usep_trace::Counter;

const REQUESTS: usize = 60;
const CITIES: [Option<&str>; 4] = [Some("vancouver"), Some("auckland"), Some("singapore"), None];

fn request(i: usize) -> SolveRequest {
    SolveRequest {
        id: format!("chaos-{i:02}"),
        instance: std::sync::Arc::new(usep_gen::generate(
            &usep_gen::SyntheticConfig::tiny().with_events(5).with_users(12),
            1000 + i as u64,
        )),
        algorithm: None,
        timeout_ms: Some(10_000),
        mem_budget_mb: None,
        city: CITIES[i % CITIES.len()].map(String::from),
    }
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn sigkill_one_shard_under_concurrent_load_loses_and_duplicates_nothing() {
    let journal_dir =
        std::env::temp_dir().join(format!("usep-fleet-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);

    let mut fleet = Fleet::start(FleetConfig {
        addr: "127.0.0.1:0".to_string(),
        metrics_addr: Some("127.0.0.1:0".to_string()),
        program: env!("CARGO_BIN_EXE_usep").to_string(),
        shard_count: 3,
        journal_dir: journal_dir.clone(),
        // every solve stalls 150 ms, so the kill is guaranteed to land
        // while requests are inflight on the victim
        shard_args: vec!["--chaos-delay-ms".into(), "150".into(), "--workers".into(), "2".into()],
        probe_interval: Duration::from_millis(200),
        forward_timeout: Duration::from_secs(60),
        sweeps: 2,
        ..FleetConfig::default()
    })
    .expect("start fleet");
    let addr = fleet.addr();

    // vancouver's owner under the default round-robin city map
    let victim = "shard-0";
    let victim_pid = fleet
        .pids()
        .into_iter()
        .find(|(name, _)| name == victim)
        .map(|(_, pid)| pid)
        .expect("victim pid");

    // fire all clients concurrently
    let clients: Vec<_> = (0..REQUESTS)
        .map(|i| {
            std::thread::spawn(move || {
                let req = request(i);
                let resp = send_request(addr, &req, Duration::from_secs(120));
                (req, resp)
            })
        })
        .collect();

    // let the queues fill, then SIGKILL the victim mid-solve
    std::thread::sleep(Duration::from_millis(300));
    let killed = std::process::Command::new("kill")
        .args(["-9", &victim_pid.to_string()])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -9 {victim_pid} failed");

    // ── zero lost requests, all plannings oracle-valid ──────────────
    let mut ids = HashSet::new();
    let mut responses = Vec::new();
    for client in clients {
        let (req, resp) = client.join().expect("client thread panicked");
        let resp = resp.unwrap_or_else(|e| panic!("request {} lost: {e}", req.id));
        assert_eq!(resp.status, Status::Complete, "request {}: {:?}", req.id, resp.status);
        assert_eq!(resp.id, req.id);
        assert!(ids.insert(resp.id.clone()), "duplicate response id {}", resp.id);
        let planning = resp.planning.as_ref().unwrap_or_else(|| panic!("{} no planning", resp.id));
        let report =
            usep_oracle::check_planning_with_omega(&req.instance, planning, resp.omega, &usep_trace::NOOP);
        assert!(report.is_valid(), "request {} failed the oracle: {:?}", req.id, report.violations);
        responses.push((req, resp));
    }
    assert_eq!(ids.len(), REQUESTS, "every request answered exactly once");

    // the kill landed mid-run: the router must have moved inflight
    // requests away from the victim
    assert!(
        fleet.sink().counter(Counter::FleetFailover) >= 1,
        "no failover counted — the kill landed too late to matter"
    );
    assert_eq!(fleet.sink().counter(Counter::FleetShed), 0, "nothing may be shed");

    // ── supervised restart-and-resume from the victim's own journal ─
    let victim_state = fleet.shards().iter().find(|s| s.name == victim).unwrap().clone();
    wait_for(|| victim_state.restarts.load(Relaxed) >= 1, "supervisor restart of the victim");
    assert!(fleet.sink().counter(Counter::FleetRestart) >= 1);

    // the journal is stamped with the victim's shard id and replays for
    // it (and only it)
    let wal = journal_dir.join(format!("{victim}.wal.jsonl"));
    let state = JournalState::replay_expecting(&wal, victim).expect("replay victim journal");
    assert_eq!(state.shard_id.as_deref(), Some(victim));
    assert!(
        JournalState::replay_expecting(&wal, "shard-1").is_err(),
        "a sibling must not be able to resume the victim's journal"
    );

    // the resumed shard re-solves its orphaned accepts until the
    // journal owes nothing
    wait_for(
        || JournalState::replay(&wal).map(|s| s.pending.is_empty()).unwrap_or(false),
        "resumed shard to drain its journal",
    );

    // ── exactly-once across failover: replays return the cached answer
    for (req, original) in responses.iter().take(8) {
        let replay = send_request(addr, req, Duration::from_secs(60)).unwrap();
        assert_eq!(
            serde_json::to_string(&replay).unwrap(),
            serde_json::to_string(original).unwrap(),
            "replay of {} diverged from the first completion",
            req.id
        );
    }
    assert!(fleet.sink().counter(Counter::FleetReplay) >= 8);

    // ── router-side reconciliation: every parsed request is accounted
    // for in exactly one bucket, and the fleet /metrics agrees ────────
    let requests_total = REQUESTS as u64 + 8;
    let completed: u64 = fleet.shards().iter().map(|s| s.completed.load(Relaxed)).sum();
    let inflight: u64 = fleet.shards().iter().map(|s| s.inflight.load(Relaxed)).sum();
    assert_eq!(inflight, 0);
    assert_eq!(requests_total, 8 + completed, "replayed + completed must cover all requests");
    let scrape = usep_obs::http::get(
        &fleet.metrics_addr().unwrap().to_string(),
        "/metrics",
        Duration::from_secs(5),
    )
    .expect("scrape fleet /metrics");
    let parsed = usep_obs::top::parse_exposition(&scrape);
    assert_eq!(parsed.value("usep_fleet_requests_total"), Some(requests_total as f64));
    assert_eq!(parsed.value("usep_fleet_replayed_total"), Some(8.0));
    assert_eq!(parsed.value("usep_fleet_shed_total"), Some(0.0));
    assert_eq!(parsed.value("usep_fleet_rejected_total"), Some(0.0));

    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&journal_dir);
}
