//! `usep` — command-line event-participant planner.
//!
//! ```text
//! usep gen   --events 50 --users 500 [--capacity-mean 50] [--cr 0.25]
//!            [--fb 2] [--mu uniform|normal|power-0.5|power-4]
//!            [--seed 42] --out instance.json
//! usep city  --name singapore [--fb 2] [--seed 42] --out instance.json
//! usep solve --instance instance.json --algorithm dedpo
//!            [--local-search 3] [--out plan.json]
//!            [--timeout-ms N] [--mem-budget-mb N] [--threads N]
//! usep stats --instance instance.json [--plan plan.json]
//! usep validate --instance instance.json --plan plan.json
//! usep verify [--instance instance.json | --fuzz 500] [--seed 42]
//!             [--metamorphic-every 5] [--repro-out repro.json]
//! usep delta [--fuzz 300 | --trace-in repro.json] [--seed 42]
//!            [--mutations 40] [--events 8] [--users 12]
//!            [--drift-bound 0.3] [--min-repair-fraction 0.9]
//!            [--repro-out repro.json]
//! usep bound --instance instance.json [--plan plan.json] [--threads N]
//! usep serve --addr 127.0.0.1:7878 [--workers N] [--queue N]
//!            [--journal wal.jsonl] [--resume true] [--max-requests N]
//!            [--metrics-addr 127.0.0.1:9187] [--flightrec N]
//! usep request --addr 127.0.0.1:7878 --instance instance.json --id job-1
//!              [--algorithm dedpo] [--timeout-ms N] [--mem-budget-mb N]
//! usep top   --addr 127.0.0.1:9187 [--interval-ms 1000]
//!            [--iterations N] [--clear true]
//! usep dump  --addr 127.0.0.1:7878
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        // 0 = success; EXIT_TRUNCATED (3) = a budgeted solve returned a
        // valid but truncated planning
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
