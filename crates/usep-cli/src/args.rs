//! Tiny flag parser: `--key value` pairs after a subcommand, with typed
//! accessors and unknown-flag detection.

use std::collections::BTreeMap;

/// Parsed `--key value` flags.
#[derive(Debug, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Flags {
    /// Parses `argv` (everything after the subcommand) into flags.
    pub fn parse(argv: &[String]) -> Result<Flags, String> {
        let mut values = BTreeMap::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("expected a --flag, got '{a}'"));
            };
            let Some(v) = it.next() else {
                return Err(format!("missing value for --{key}"));
            };
            if values.insert(key.to_string(), v.clone()).is_some() {
                return Err(format!("duplicate flag --{key}"));
            }
        }
        Ok(Flags { values, consumed: std::cell::RefCell::new(Vec::new()) })
    }

    /// Raw string flag.
    pub fn get(&self, key: &str) -> Option<String> {
        self.consumed.borrow_mut().push(key.to_string());
        self.values.get(key).cloned()
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<String, String> {
        self.get(key).ok_or_else(|| format!("missing required --{key}"))
    }

    /// Typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{key} '{v}': {e}")),
        }
    }

    /// Errors on any flag that no accessor asked about (typo guard).
    pub fn reject_unknown(&self) -> Result<(), String> {
        let consumed = self.consumed.borrow();
        for k in self.values.keys() {
            if !consumed.iter().any(|c| c == k) {
                return Err(format!("unknown flag --{k}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let f = Flags::parse(&argv(&["--events", "50", "--seed", "7"])).unwrap();
        assert_eq!(f.require("events").unwrap(), "50");
        assert_eq!(f.get_or::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(f.get_or::<u64>("absent", 9).unwrap(), 9);
        f.reject_unknown().unwrap();
    }

    #[test]
    fn rejects_missing_value() {
        assert!(Flags::parse(&argv(&["--events"])).is_err());
    }

    #[test]
    fn rejects_positional() {
        assert!(Flags::parse(&argv(&["events", "50"])).is_err());
    }

    #[test]
    fn rejects_duplicates() {
        assert!(Flags::parse(&argv(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        let f = Flags::parse(&argv(&["--evnts", "50"])).unwrap();
        let _ = f.get("events");
        assert!(f.reject_unknown().is_err());
    }

    #[test]
    fn typed_parse_errors_are_reported() {
        let f = Flags::parse(&argv(&["--seed", "abc"])).unwrap();
        let e = f.get_or::<u64>("seed", 0).unwrap_err();
        assert!(e.contains("bad --seed"));
    }
}
