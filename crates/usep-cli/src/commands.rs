//! Subcommand implementations.

use crate::args::Flags;
use std::path::Path;
use std::time::Duration;
use usep_algos::{bounds, local_search, Algorithm, GuardedSolver, SolveBudget};
use usep_core::{Instance, Planning, PlanningStats};
use usep_gen::{generate, generate_city, CityConfig, Spread, SyntheticConfig, UtilityDistribution};
use usep_oracle::FuzzConfig;
use usep_trace::{Counter, Probe, TraceSink, NOOP};

/// Exit code for a solve that hit its budget and returned a truncated
/// (but constraint-valid) planning. Distinct from 0 (complete) and
/// 1 (error) so scripts can tell the three apart.
pub const EXIT_TRUNCATED: u8 = 3;

const HELP: &str = "usep — utility-aware social event-participant planning (SIGMOD'15)

SUBCOMMANDS:
    gen       generate a synthetic instance (Table-7 knobs)
    city      generate a simulated Meetup city instance (Table 6)
    solve     run a planning algorithm on an instance
              (--timeout-ms N / --mem-budget-mb N bound the solve; a
              truncated solve prints its outcome and exits with code 3;
              --threads N spreads the parallel solver sections over N
              worker threads — results are bit-identical at any count)
    stats     print instance / planning statistics
    validate  check a planning against all four USEP constraints
    verify    run the independent verification oracle: every solver, the
              guarded chain and the serve path differentially checked
              against a from-scratch validator, exact optima (small
              instances) and relaxation bounds, plus the metamorphic
              suite (--instance FILE for one instance, or --fuzz N
              --seed S for a seeded campaign; --repro-out FILE writes a
              minimized JSON repro of the first violation; exits 0 only
              when no violations were found)
    bound     print upper bounds on the optimal Ω (and the gap of a plan)
    convert   convert an instance between JSON and the compact binary format
    plan-user print the DP-optimal personal itinerary for one user
              (--instance FILE --user N; ignores capacities, Alg. 2)
    serve     run the batch solve service (TCP, one JSON object per line;
              --addr HOST:PORT, --workers N, --queue N, --max-bytes N,
              --max-timeout-ms N, --journal FILE, --resume true,
              --max-requests N to drain-and-exit; panics are contained
              per request, overload is shed with a typed response, and
              accepted work survives a crash via the journal;
              --metrics-addr HOST:PORT serves Prometheus-text /metrics,
              /healthz, /buildinfo and /flightrec on a second port, and
              --flightrec N sizes the flight-recorder ring)
    serve fleet
              run the geo-sharded serve fleet: a router front-end
              (same JSON-lines protocol) over N supervised `serve`
              shard children, each with its own --shard-id-stamped
              journal under --journal-dir; city-labeled requests go to
              their city's shard (--cities \"vancouver=shard-0,...\",
              default round-robin over the three usep-gen cities),
              unlabeled ones by rendezvous hash; dead shards are failed
              over with backoff and restarted with --resume from their
              own journal; duplicate ids answer from the router's
              first-completion-wins cache (--addr HOST:PORT,
              --shards N, --metrics-addr HOST:PORT for fleet /metrics,
              --forward-timeout-ms N, --sweeps N, plus shard
              passthrough knobs --workers/--queue/--max-timeout-ms/
              --chaos-*)
    request   submit one instance to a running server (--addr HOST:PORT
              --instance FILE --id KEY; prints the response JSON; exits
              0 on complete, 3 on truncated, 1 otherwise; --city NAME
              labels the request for fleet routing, --fleet true
              defaults the address to the fleet router's port)
    delta     run the incremental-replanning harness: --fuzz N replays N
              seeded mutation traces (event add/remove, capacity change,
              user arrive/depart, μ updates) through the warm delta
              engine, with the independent oracle validator re-checking
              the planning after every single mutation and the
              differential referee holding Ω within --drift-bound of a
              cold solve (--seed S, --mutations M, --events E,
              --users U size the traces; --min-repair-fraction X fails
              the run if fewer than X of all mutations were absorbed by
              bounded repair; --repro-out FILE writes a kind-preserving
              minimized JSON repro of the first failing trace).
              --trace-in FILE instead replays one saved trace — e.g. a
              repro a failing campaign wrote — under the same referee
    chaos     run the deterministic fault-injection campaign: N seeded
              scenarios composing disk faults (torn writes, lying
              fsyncs, bit rot, ENOSPC), a hostile network proxy,
              power-cut crashes and injected panics over a live server,
              each refereed by the verification oracle and the metrics
              reconciliation identities (--scenarios N --seed S;
              --repro-out FILE writes a minimized JSON repro of the
              first violation; exits 0 only when every scenario is
              clean). --scenario-seed S replays exactly one scenario
              from the seed a failing campaign printed. --fleet true
              instead runs a whole-fleet scenario — router, shard
              children, a mid-run SIGKILL — with --requests N
              --shards K --kill true|false
    top       live service summary from a /metrics endpoint
              (--addr HOST:PORT of --metrics-addr; --interval-ms N,
              --iterations N [0 = forever], --clear true; shows qps,
              p50/p95/p99 solve latency, shed rate, degradation mix)
    dump      dump a running server's flight recorder (--addr HOST:PORT
              of the *solve* listener; prints the last-N annotated
              events as one JSON line)

Common flags: --instance FILE, --plan FILE, --out FILE, --seed N,
--algorithm ratiogreedy|dedp|dedpo|dedpo+rg|degreedy|degreedy+rg|baseline,
--local-search N (solve), --threads N (solve, bound; defaults to the
USEP_THREADS environment variable, then the machine's core count).
See the crate docs for the full flag list.

Tracing (solve): --trace-out FILE writes a JSON-lines trace (span and
counter events, one JSON object per line, final 'summary' record);
--trace-summary true prints the counter/span summary to stderr.";

/// Dispatches a parsed command line. Returns the process exit code on
/// success (`0`, or [`EXIT_TRUNCATED`] for a budget-truncated solve).
pub fn dispatch(argv: &[String]) -> Result<u8, String> {
    let Some((cmd, rest)) = argv.split_first() else {
        println!("{HELP}");
        return Ok(0);
    };
    // `serve fleet` is the one two-token subcommand; peel the word off
    // before the flag parser sees it
    if cmd == "serve" && rest.first().is_some_and(|a| a == "fleet") {
        return cmd_serve_fleet(&Flags::parse(&rest[1..])?).map(|()| 0);
    }
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "gen" => cmd_gen(&flags).map(|()| 0),
        "city" => cmd_city(&flags).map(|()| 0),
        "solve" => cmd_solve(&flags),
        "stats" => cmd_stats(&flags).map(|()| 0),
        "validate" => cmd_validate(&flags).map(|()| 0),
        "verify" => cmd_verify(&flags).map(|()| 0),
        "delta" => cmd_delta(&flags).map(|()| 0),
        "chaos" => cmd_chaos(&flags).map(|()| 0),
        "bound" => cmd_bound(&flags).map(|()| 0),
        "convert" => cmd_convert(&flags).map(|()| 0),
        "plan-user" => cmd_plan_user(&flags).map(|()| 0),
        "serve" => cmd_serve(&flags).map(|()| 0),
        "request" => cmd_request(&flags),
        "top" => cmd_top(&flags).map(|()| 0),
        "dump" => cmd_dump(&flags).map(|()| 0),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(0)
        }
        other => Err(format!("unknown subcommand '{other}' (try 'usep help')")),
    }
}

/// Installs `--threads N` as the process-global worker count for the
/// parallel solver sections. Absent, the resolution falls through to
/// `USEP_THREADS` and then the machine's core count; plannings are
/// bit-identical at every setting.
fn apply_threads_flag(flags: &Flags) -> Result<(), String> {
    if let Some(t) = flags.get("threads") {
        let n: usize = t.parse().map_err(|e| format!("bad --threads '{t}': {e}"))?;
        if n == 0 {
            return Err("--threads must be at least 1".into());
        }
        usep_par::set_threads(n);
    }
    Ok(())
}

fn parse_mu(s: &str) -> Result<UtilityDistribution, String> {
    match s {
        "uniform" => Ok(UtilityDistribution::Uniform),
        "normal" => Ok(UtilityDistribution::Normal { mean: 0.5, std: 0.25 }),
        "power-0.5" => Ok(UtilityDistribution::Power { exponent: 0.5 }),
        "power-4" => Ok(UtilityDistribution::Power { exponent: 4.0 }),
        other => Err(format!("unknown --mu '{other}' (uniform|normal|power-0.5|power-4)")),
    }
}

fn parse_spread(s: &str) -> Result<Spread, String> {
    match s {
        "uniform" => Ok(Spread::Uniform),
        "normal" => Ok(Spread::Normal),
        other => Err(format!("unknown spread '{other}' (uniform|normal)")),
    }
}

fn load_instance(flags: &Flags) -> Result<Instance, String> {
    let path = flags.require("instance")?;
    load_instance_path(&path)
}

/// Loads an instance from JSON or the compact binary format, sniffing
/// the `USEP` magic so either extension works.
///
/// The binary decoder re-validates through `InstanceBuilder`; the JSON
/// path deserializes structurally and trusts its input, so the loaded
/// instance is passed through [`Instance::validate`] here — otherwise a
/// hand-edited file can smuggle in NaN utilities, zero capacities or an
/// infinite budget and panic (or silently corrupt) a solve later.
fn load_instance_path(path: &str) -> Result<Instance, String> {
    let raw = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    if raw.starts_with(b"USEP") {
        return usep_core::codec::decode(&raw).map_err(|e| format!("parse {path}: {e}"));
    }
    let text = String::from_utf8(raw).map_err(|e| format!("read {path}: {e}"))?;
    let inst: Instance = serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))?;
    inst.validate().map_err(|e| format!("invalid instance {path}: {e}"))?;
    Ok(inst)
}

fn load_plan(path: &str) -> Result<Planning, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn write_json<T: serde::Serialize>(value: &T, path: &str) -> Result<(), String> {
    let json = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    if let Some(dir) = Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))
}

fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let cfg = SyntheticConfig {
        num_events: flags.get_or("events", 100usize)?,
        num_users: flags.get_or("users", 5000usize)?,
        mu_dist: parse_mu(&flags.get("mu").unwrap_or_else(|| "uniform".into()))?,
        capacity_mean: flags.get_or("capacity-mean", 50u32)?,
        capacity_dist: parse_spread(
            &flags.get("capacity-dist").unwrap_or_else(|| "uniform".into()),
        )?,
        budget_factor: flags.get_or("fb", 2.0f64)?,
        budget_dist: parse_spread(&flags.get("budget-dist").unwrap_or_else(|| "uniform".into()))?,
        conflict_ratio: flags.get_or("cr", 0.25f64)?,
        grid: flags.get_or("grid", 100i32)?,
        duration: (30, 120),
        time_per_unit: flags.get_or("time-per-unit", 0u32)?,
    };
    let seed = flags.get_or("seed", 42u64)?;
    let out = flags.require("out")?;
    flags.reject_unknown()?;
    let inst = generate(&cfg, seed);
    write_json(&inst, &out)?;
    eprintln!(
        "wrote {out}: |V|={} |U|={} cr={:.3}",
        inst.num_events(),
        inst.num_users(),
        inst.conflict_ratio()
    );
    Ok(())
}

fn cmd_city(flags: &Flags) -> Result<(), String> {
    let name = flags.get("name").unwrap_or_else(|| "singapore".into());
    let mut cfg = match name.as_str() {
        "vancouver" => CityConfig::vancouver(),
        "auckland" => CityConfig::auckland(),
        "singapore" => CityConfig::singapore(),
        other => return Err(format!("unknown --name '{other}'")),
    };
    cfg.budget_factor = flags.get_or("fb", 2.0f64)?;
    let seed = flags.get_or("seed", 42u64)?;
    let out = flags.require("out")?;
    flags.reject_unknown()?;
    let inst = generate_city(&cfg, seed);
    write_json(&inst, &out)?;
    eprintln!("wrote {out}: {} with |V|={} |U|={}", cfg.name, inst.num_events(), inst.num_users());
    Ok(())
}

fn cmd_solve(flags: &Flags) -> Result<u8, String> {
    let inst = load_instance(flags)?;
    let algo_name = flags.get("algorithm").unwrap_or_else(|| "dedpo".into());
    let algo = Algorithm::parse(&algo_name)
        .ok_or_else(|| format!("unknown --algorithm '{algo_name}'"))?;
    let ls_rounds = flags.get_or("local-search", 0usize)?;
    let timeout_ms = flags.get("timeout-ms").map(|s| s.parse::<u64>()).transpose()
        .map_err(|e| format!("bad --timeout-ms: {e}"))?;
    let mem_budget_mb = flags.get("mem-budget-mb").map(|s| s.parse::<usize>()).transpose()
        .map_err(|e| format!("bad --mem-budget-mb: {e}"))?;
    let out = flags.get("out");
    let trace_out = flags.get("trace-out");
    let trace_summary = flags.get_or("trace-summary", false)?;
    apply_threads_flag(flags)?;
    flags.reject_unknown()?;

    let mut budget = SolveBudget::unlimited();
    if let Some(ms) = timeout_ms {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(mb) = mem_budget_mb {
        budget = budget.with_memory_ceiling(mb.saturating_mul(1024 * 1024));
    }

    let sink: Option<TraceSink> = match &trace_out {
        Some(path) => {
            Some(TraceSink::to_file(Path::new(path)).map_err(|e| format!("open {path}: {e}"))?)
        }
        None if trace_summary => Some(TraceSink::new()),
        None => None,
    };
    let probe: &dyn Probe = match &sink {
        Some(s) => s,
        None => &NOOP,
    };

    let t0 = std::time::Instant::now();
    let mut report = GuardedSolver::new(algo, budget).solve_with_probe(&inst, probe);
    let solve_secs = t0.elapsed().as_secs_f64();
    let mut plan = std::mem::replace(&mut report.planning, Planning::empty(&inst));
    // local search only polishes complete solves: after a truncation
    // there is no time (or memory) left to spend
    let improved = if ls_rounds > 0 && report.outcome.is_complete() {
        local_search::improve(&inst, &mut plan, ls_rounds)
    } else {
        0
    };
    plan.validate(&inst).map_err(|e| format!("solver bug — infeasible planning: {e}"))?;
    println!(
        "{}: Ω = {:.4}, {} assignments, {:.3}s{}",
        report.executed.name(),
        plan.omega(&inst),
        plan.num_assignments(),
        solve_secs,
        if ls_rounds > 0 {
            format!(", local search applied {improved} moves")
        } else {
            String::new()
        }
    );
    if report.degraded() {
        let trail: Vec<&str> = report.fallbacks.iter().map(|a| a.name()).collect();
        eprintln!(
            "degraded: {} → {} (abandoned: {})",
            report.requested.name(),
            report.executed.name(),
            trail.join(", ")
        );
    }
    if !report.outcome.is_complete() {
        eprintln!("outcome: {}", report.outcome);
    }
    if let Some(out) = out {
        write_json(&plan, &out)?;
        eprintln!("wrote {out}");
    }
    if let Some(sink) = &sink {
        sink.finish().map_err(|e| format!("write trace: {e}"))?;
        if let Some(path) = &trace_out {
            eprintln!("wrote trace {path}");
        }
        if trace_summary {
            print_trace_summary(sink);
        }
    }
    Ok(if report.outcome.is_complete() { 0 } else { EXIT_TRUNCATED })
}

/// Human-readable counter/span/histogram summary on stderr, mirroring
/// the trace file's final `summary` record.
fn print_trace_summary(sink: &TraceSink) {
    eprintln!("trace counters:");
    for (c, v) in sink.counters() {
        if v > 0 {
            eprintln!("  {c} = {v}");
        }
    }
    let spans = sink.span_totals();
    if !spans.is_empty() {
        eprintln!("trace spans:");
        for t in spans {
            eprintln!("  {} x{} {:.3} ms", t.name, t.count, t.total_ns as f64 / 1e6);
        }
    }
    for name in sink.histogram_names() {
        if let Some(s) = sink.histogram_summary(&name) {
            eprintln!(
                "trace histogram {name}: n={} min={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
                s.count, s.min, s.p50, s.p95, s.p99, s.max
            );
        }
    }
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    let inst = load_instance(flags)?;
    let plan_path = flags.get("plan");
    flags.reject_unknown()?;
    println!("instance:");
    println!("  |V| = {}, |U| = {}", inst.num_events(), inst.num_users());
    println!("  conflict ratio = {:.3}", inst.conflict_ratio());
    let cap_mean = inst.events().iter().map(|e| f64::from(e.capacity)).sum::<f64>()
        / inst.num_events().max(1) as f64;
    let b_mean = inst.users().iter().map(|u| f64::from(u.budget.value())).sum::<f64>()
        / inst.num_users().max(1) as f64;
    println!("  mean capacity = {cap_mean:.1}, mean budget = {b_mean:.1}");
    println!("  total utility mass = {:.1}", inst.total_utility_mass());
    if let Some(p) = plan_path {
        let plan = load_plan(&p)?;
        println!("\nplanning:\n{}", PlanningStats::compute(&inst, &plan));
        let f = usep_core::FairnessStats::compute(&inst, &plan);
        println!(
            "fairness: Jain {:.3}, served {:.1}%, min/median/p90 served Ω_u = {:.3}/{:.3}/{:.3}",
            f.jain_index,
            100.0 * f.served_fraction,
            f.min_served,
            f.median_served,
            f.p90_served
        );
    }
    Ok(())
}

fn cmd_validate(flags: &Flags) -> Result<(), String> {
    let inst = load_instance(flags)?;
    let plan = load_plan(&flags.require("plan")?)?;
    flags.reject_unknown()?;
    match plan.validate(&inst) {
        Ok(()) => {
            println!(
                "planning is feasible: Ω = {:.4}, {} assignments",
                plan.omega(&inst),
                plan.num_assignments()
            );
            Ok(())
        }
        Err(e) => Err(format!("planning violates constraints: {e}")),
    }
}

/// `usep verify`: the independent verification oracle, over one
/// instance file or a seeded fuzz campaign. Violations are printed as
/// JSON findings (one per line) and turn the exit code non-zero, so a
/// CI job is just `usep verify --fuzz 500 --seed 42`.
fn cmd_verify(flags: &Flags) -> Result<(), String> {
    let instance_path = flags.get("instance");
    let fuzz_count = flags.get("fuzz").map(|s| s.parse::<u64>()).transpose()
        .map_err(|e| format!("bad --fuzz: {e}"))?;
    let seed = flags.get_or("seed", 42u64)?;
    let metamorphic_every = flags.get_or("metamorphic-every", 5u64)?;
    let repro_out = flags.get("repro-out");
    flags.reject_unknown()?;
    let sink = TraceSink::new();

    let (label, findings, repro) = match (instance_path, fuzz_count) {
        (Some(path), None) => {
            let inst = load_instance_path(&path)?;
            let mut findings = usep_oracle::verify_instance(&inst, &sink);
            findings.extend(usep_oracle::run_metamorphic(&inst, seed, &sink));
            // only minimize when there is something to reproduce
            let repro = if findings.is_empty() {
                None
            } else {
                let minimal = usep_oracle::minimize(
                    &inst,
                    |i| !usep_oracle::verify_instance(i, &NOOP).is_empty(),
                    &sink,
                );
                serde_json::to_string(&minimal).ok()
            };
            let findings = findings
                .into_iter()
                .map(|f| serde_json::to_string(&f).map_err(|e| e.to_string()))
                .collect::<Result<Vec<_>, _>>()?;
            (path, findings, repro)
        }
        (None, Some(count)) => {
            let report =
                usep_oracle::run_fuzz(&FuzzConfig { count, seed, metamorphic_every }, &sink);
            eprintln!(
                "fuzz: {} instances verified, {} through the metamorphic suite",
                report.instances, report.metamorphic_runs
            );
            let findings = report
                .findings
                .iter()
                .map(|f| {
                    serde_json::to_string(&f.finding)
                        .map(|j| format!("instance #{} (seed {}): {j}", f.index, f.instance_seed))
                        .map_err(|e| e.to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            (format!("fuzz --seed {seed}"), findings, report.repro)
        }
        _ => return Err("verify needs exactly one of --instance FILE or --fuzz N".into()),
    };

    let checks = sink.counter(Counter::OracleCheck);
    if findings.is_empty() {
        println!("{label}: verified clean — {checks} oracle checks, 0 violations");
        return Ok(());
    }
    for f in &findings {
        println!("{f}");
    }
    if let Some(json) = repro {
        if let Some(out) = repro_out {
            std::fs::write(&out, json).map_err(|e| format!("write {out}: {e}"))?;
            eprintln!("wrote minimized repro {out}");
        }
    }
    Err(format!("{label}: {} violation(s) found after {checks} oracle checks", findings.len()))
}

/// `usep delta`: the incremental-replanning harness. `--fuzz N` runs N
/// seeded mutation traces through the warm [`usep_delta::DeltaEngine`]
/// with the oracle's independent constraint validator re-checking the
/// planning after every mutation; `--trace-in FILE` replays one saved
/// trace (typically a minimized repro from a failing campaign). CI is
/// `usep delta --fuzz 300 --seed 42 --min-repair-fraction 0.9`.
fn cmd_delta(flags: &Flags) -> Result<(), String> {
    use usep_delta::{DeltaFuzzConfig, MutationTrace, RefereeConfig};

    let trace_in = flags.get("trace-in");
    let fuzz = flags
        .get("fuzz")
        .map(|s| s.parse::<usize>())
        .transpose()
        .map_err(|e| format!("bad --fuzz: {e}"))?;
    let seed = flags.get_or("seed", 42u64)?;
    let mutations = flags.get_or("mutations", 40usize)?;
    let events = flags.get_or("events", 8usize)?;
    let users = flags.get_or("users", 12usize)?;
    let referee = RefereeConfig {
        drift_bound: flags.get_or("drift-bound", RefereeConfig::default().drift_bound)?,
        ..RefereeConfig::default()
    };
    let min_repair = flags
        .get("min-repair-fraction")
        .map(|s| s.parse::<f64>())
        .transpose()
        .map_err(|e| format!("bad --min-repair-fraction: {e}"))?;
    let repro_out = flags.get("repro-out");
    flags.reject_unknown()?;
    let sink = TraceSink::new();

    match (trace_in, fuzz) {
        (Some(path), None) => {
            let json =
                std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
            let trace: MutationTrace =
                serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))?;
            let report =
                usep_delta::run_trace(&trace, &referee, &sink, &usep_oracle::oracle_step_check)
                    .map_err(|f| {
                        format!("{path}: step {} failed ({:?}): {}", f.step, f.kind, f.detail)
                    })?;
            println!(
                "{path}: {} mutations clean — {} bounded repairs / {} full resolves, \
                 final Ω {:.4} (cold {:.4}), worst Ω ratio {:.4}",
                report.steps,
                report.repairs,
                report.fallbacks,
                report.final_omega,
                report.final_omega_cold,
                report.min_omega_ratio
            );
            Ok(())
        }
        (None, Some(traces)) => {
            let cfg = DeltaFuzzConfig { traces, seed, mutations, events, users, referee };
            let report = usep_oracle::run_oracle_delta_fuzz(&cfg, &sink);
            println!(
                "delta fuzz --seed {seed}: {} traces, {} mutations — {:.1}% bounded repair \
                 ({} repairs / {} full resolves), worst Ω ratio {:.4}",
                report.traces,
                report.steps,
                100.0 * report.repair_fraction(),
                report.repairs,
                report.fallbacks,
                report.min_omega_ratio
            );
            if !report.findings.is_empty() {
                for f in &report.findings {
                    println!(
                        "trace seed {}: step {} failed ({:?}): {} — minimized to {} mutation(s)",
                        f.seed,
                        f.failure.step,
                        f.failure.kind,
                        f.failure.detail,
                        f.minimized.mutations.len()
                    );
                }
                if let Some(out) = repro_out {
                    let json = serde_json::to_string(&report.findings[0].minimized)
                        .map_err(|e| e.to_string())?;
                    std::fs::write(&out, json).map_err(|e| format!("write {out}: {e}"))?;
                    eprintln!("wrote minimized repro {out} (replay: usep delta --trace-in {out})");
                }
                return Err(format!("delta fuzz: {} failing trace(s)", report.findings.len()));
            }
            if let Some(floor) = min_repair {
                if report.repair_fraction() < floor {
                    return Err(format!(
                        "delta fuzz: bounded-repair fraction {:.3} below the --min-repair-fraction \
                         floor {floor} — the engine is falling back to full resolves too often",
                        report.repair_fraction()
                    ));
                }
            }
            Ok(())
        }
        _ => Err("delta needs exactly one of --trace-in FILE or --fuzz N".into()),
    }
}

/// `usep chaos`: the deterministic fault-injection campaign. Seeded
/// scenarios compose disk, network and process faults over a live
/// server (or, with `--fleet true`, a real sharded fleet), every
/// answer is oracle-checked and every metrics identity audited; the
/// first violation is minimized and printed as a replayable repro.
/// CI is just `usep chaos --scenarios 200 --seed 42`.
fn cmd_chaos(flags: &Flags) -> Result<(), String> {
    if flags.get_or("fleet", false)? {
        return cmd_chaos_fleet(flags);
    }
    let seed = flags.get_or("seed", 42u64)?;
    let scenarios = flags.get_or("scenarios", 200u64)?;
    let scenario_seed = flags.get("scenario-seed").map(|s| s.parse::<u64>()).transpose()
        .map_err(|e| format!("bad --scenario-seed: {e}"))?;
    let repro_out = flags.get("repro-out");
    flags.reject_unknown()?;
    let sink = TraceSink::new();

    // replay mode: one scenario, from the exact seed a failing
    // campaign printed — no campaign arithmetic in between
    if let Some(s) = scenario_seed {
        let spec = usep_chaos::ScenarioSpec::from_seed(s);
        eprintln!(
            "replaying scenario seed {s:#x}: {}",
            serde_json::to_string(&spec).map_err(|e| e.to_string())?
        );
        let outcome = usep_chaos::run_scenario(&spec, &sink);
        println!("{}", serde_json::to_string(&outcome).map_err(|e| e.to_string())?);
        return if outcome.violations.is_empty() {
            eprintln!(
                "scenario clean: {} answers refereed, {} disk + {} net faults injected",
                outcome.answered, outcome.disk_faults, outcome.net_faults
            );
            Ok(())
        } else {
            Err(format!("scenario seed {s:#x}: {} violation(s)", outcome.violations.len()))
        };
    }

    let outcome = usep_chaos::run_campaign(seed, scenarios, &sink);
    let checks = sink.counter(Counter::OracleCheck);
    match outcome.repro {
        None => {
            println!(
                "chaos --seed {seed}: {} scenarios clean — {} faults injected, \
                 {} answers, {checks} oracle checks",
                outcome.scenarios_run, outcome.total_faults, outcome.total_answered
            );
            Ok(())
        }
        Some(repro) => {
            let json = serde_json::to_string_pretty(&repro).map_err(|e| e.to_string())?;
            println!("{json}");
            if let Some(out) = repro_out {
                std::fs::write(&out, &json).map_err(|e| format!("write {out}: {e}"))?;
                eprintln!("wrote minimized repro {out}");
            }
            Err(format!(
                "scenario #{} violated {} invariant(s); replay with: \
                 usep chaos --scenario-seed {}",
                repro.scenario_index,
                repro.violations.len(),
                repro.scenario_seed
            ))
        }
    }
}

/// `usep chaos --fleet true`: one whole-fleet failure scenario — this
/// binary respawned as router + shard children, seeded mixed-city
/// traffic, a mid-run `SIGKILL`, and the fleet metrics identity as the
/// referee. Replaces the old hand-rolled fleet-smoke kill script.
fn cmd_chaos_fleet(flags: &Flags) -> Result<(), String> {
    let spec = usep_chaos::FleetScenarioSpec {
        seed: flags.get_or("seed", 42u64)?,
        requests: flags.get_or("requests", 24u64)?,
        shards: flags.get_or("shards", 3usize)?,
        kill: flags.get_or("kill", true)?,
    };
    flags.reject_unknown()?;
    let program = std::env::current_exe()
        .map_err(|e| format!("cannot locate the usep binary for shard spawns: {e}"))?
        .to_string_lossy()
        .into_owned();
    let sink = TraceSink::new();
    let outcome = usep_chaos::run_fleet_scenario(&program, &spec, &sink)
        .map_err(|e| format!("start fleet scenario: {e}"))?;
    println!("{}", serde_json::to_string(&outcome).map_err(|e| e.to_string())?);
    if outcome.violations.is_empty() {
        eprintln!(
            "fleet scenario clean: {} answers, {} shard restart(s), \
             {} oracle checks",
            outcome.answered,
            outcome.restarts,
            sink.counter(Counter::OracleCheck)
        );
        Ok(())
    } else {
        Err(format!(
            "fleet scenario --seed {}: {} violation(s)",
            spec.seed,
            outcome.violations.len()
        ))
    }
}

fn cmd_bound(flags: &Flags) -> Result<(), String> {
    let inst = load_instance(flags)?;
    let plan_path = flags.get("plan");
    apply_threads_flag(flags)?;
    flags.reject_unknown()?;
    let cap = bounds::capacity_relaxed_bound(&inst);
    let bud = bounds::budget_relaxed_bound(&inst);
    println!("upper bounds on Ω(A*):");
    println!("  capacity-relaxed = {cap:.4}");
    println!("  budget-relaxed   = {bud:.4}");
    println!("  best             = {:.4}", cap.min(bud));
    if let Some(p) = plan_path {
        let plan = load_plan(&p)?;
        let omega = plan.omega(&inst);
        println!(
            "plan Ω = {omega:.4} → at least {:.1}% of optimal",
            100.0 * omega / cap.min(bud).max(f64::MIN_POSITIVE)
        );
    }
    Ok(())
}

fn cmd_plan_user(flags: &Flags) -> Result<(), String> {
    use usep_algos::optimal_user_schedule;
    use usep_core::{EventId, Schedule, UserId};
    let inst = load_instance(flags)?;
    let uid: u32 = flags.require("user")?.parse().map_err(|e| format!("bad --user: {e}"))?;
    flags.reject_unknown()?;
    if uid as usize >= inst.num_users() {
        return Err(format!("user {uid} out of range (|U| = {})", inst.num_users()));
    }
    let u = UserId(uid);
    let cands: Vec<(EventId, f64)> = inst
        .event_ids()
        .map(|v| (v, inst.mu(v, u)))
        .filter(|&(_, m)| m > 0.0)
        .collect();
    let (events, score) = optimal_user_schedule(&inst, u, &cands);
    let sched = Schedule::from_time_ordered(&inst, events);
    print!("{}", sched.describe(&inst, u));
    println!("(capacity-free optimum: Ω = {score:.3} over {} candidate events)", cands.len());
    Ok(())
}

/// `usep serve`: runs the batch solve service until killed, or until
/// `--max-requests N` completions drain (then exits 0 — the shape the
/// crash-recovery scripts use to finish a dead server's journal).
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let algo_name = flags.get("algorithm").unwrap_or_else(|| "dedpo".into());
    let default_algorithm = Algorithm::parse(&algo_name)
        .ok_or_else(|| format!("unknown --algorithm '{algo_name}'"))?;
    let max_requests = flags.get("max-requests").map(|s| s.parse::<u64>()).transpose()
        .map_err(|e| format!("bad --max-requests: {e}"))?;
    let max_mem_budget_bytes = flags.get("max-mem-budget-mb").map(|s| s.parse::<usize>())
        .transpose()
        .map_err(|e| format!("bad --max-mem-budget-mb: {e}"))?
        .map(|mb| mb.saturating_mul(1024 * 1024));
    let chaos_trip = flags.get("chaos-trip").map(|s| s.parse::<u64>()).transpose()
        .map_err(|e| format!("bad --chaos-trip: {e}"))?;
    let chaos_panic_every = flags.get("chaos-panic-every").map(|s| s.parse::<u64>()).transpose()
        .map_err(|e| format!("bad --chaos-panic-every: {e}"))?;
    let cfg = usep_serve::ServeConfig {
        addr: flags.get("addr").unwrap_or_else(|| "127.0.0.1:7878".into()),
        workers: flags.get_or("workers", 2usize)?,
        queue_capacity: flags.get_or("queue", 64usize)?,
        max_reserved_bytes: flags.get_or("max-bytes", 256usize * 1024 * 1024)?,
        max_timeout_ms: flags.get_or("max-timeout-ms", 30_000u64)?,
        max_mem_budget_bytes,
        default_algorithm,
        journal: flags.get("journal").map(std::path::PathBuf::from),
        resume: flags.get_or("resume", false)?,
        max_requests,
        chaos_trip,
        chaos_panic_every,
        chaos_delay_ms: flags.get_or("chaos-delay-ms", 0u64)?,
        metrics_addr: flags.get("metrics-addr"),
        flight_recorder_capacity: flags.get_or("flightrec", 256usize)?,
        shard_id: flags.get("shard-id"),
        ..usep_serve::ServeConfig::default()
    };
    flags.reject_unknown()?;
    let server = usep_serve::Server::start(cfg).map_err(|e| format!("start server: {e}"))?;
    // the bound address on stdout, so scripts using port 0 can find it
    println!("listening {}", server.addr());
    if let Some(maddr) = server.metrics_addr() {
        println!("metrics {maddr}");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if server.resumed() > 0 {
        eprintln!("resumed {} journaled request(s)", server.resumed());
    }
    server.wait();
    eprintln!("server drained; exiting");
    Ok(())
}

/// `usep serve fleet`: runs the geo-sharded fleet — router front-end,
/// N supervised `usep serve` shard children with per-shard journals,
/// health probes and a fleet `/metrics` listener — until killed.
fn cmd_serve_fleet(flags: &Flags) -> Result<(), String> {
    let shard_count = flags.get_or("shards", 3usize)?;
    let cities = match flags.get("cities") {
        None => Vec::new(),
        Some(spec) => parse_city_map(&spec)?,
    };
    // knobs forwarded verbatim to every shard's own `serve` invocation
    let mut shard_args = Vec::new();
    for passthrough in [
        "workers",
        "queue",
        "max-bytes",
        "max-timeout-ms",
        "max-mem-budget-mb",
        "algorithm",
        "chaos-trip",
        "chaos-panic-every",
        "chaos-delay-ms",
    ] {
        if let Some(v) = flags.get(passthrough) {
            shard_args.extend([format!("--{passthrough}"), v]);
        }
    }
    let program = std::env::current_exe()
        .map_err(|e| format!("cannot locate the usep binary for shard spawns: {e}"))?
        .to_string_lossy()
        .into_owned();
    let cfg = usep_fleet::FleetConfig {
        addr: flags.get("addr").unwrap_or_else(|| "127.0.0.1:7979".into()),
        metrics_addr: flags.get("metrics-addr"),
        program,
        shard_count,
        journal_dir: std::path::PathBuf::from(
            flags.get("journal-dir").unwrap_or_else(|| "fleet-journals".into()),
        ),
        cities,
        shard_args,
        shard_metrics: flags.get_or("shard-metrics", true)?,
        resume: flags.get_or("resume", false)?,
        probe_interval: Duration::from_millis(flags.get_or("probe-interval-ms", 500u64)?),
        probe_timeout: Duration::from_millis(flags.get_or("probe-timeout-ms", 500u64)?),
        forward_timeout: Duration::from_millis(flags.get_or("forward-timeout-ms", 120_000u64)?),
        sweeps: flags.get_or("sweeps", 2u32)?,
        ..usep_fleet::FleetConfig::default()
    };
    flags.reject_unknown()?;
    let fleet = usep_fleet::Fleet::start(cfg).map_err(|e| format!("start fleet: {e}"))?;
    // same banner contract as `serve`, so scripts using port 0 work
    println!("listening {}", fleet.addr());
    if let Some(maddr) = fleet.metrics_addr() {
        println!("metrics {maddr}");
    }
    for shard in fleet.shards() {
        println!("shard {} {}", shard.name, shard.addr());
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    // the fleet runs until the process is killed; the supervisor keeps
    // shards alive, the router keeps routing
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Parses `--cities "vancouver=shard-0,auckland=shard-1"`.
fn parse_city_map(spec: &str) -> Result<Vec<(String, String)>, String> {
    spec.split(',')
        .filter(|p| !p.trim().is_empty())
        .map(|pair| {
            pair.split_once('=')
                .map(|(c, s)| (c.trim().to_string(), s.trim().to_string()))
                .ok_or_else(|| format!("bad --cities entry '{pair}' (want city=shard-name)"))
        })
        .collect()
}

/// `usep request`: one solve against a running server. Exit code
/// mirrors `solve`: 0 complete, [`EXIT_TRUNCATED`] truncated, error
/// (1) for failed / overloaded / rejected outcomes.
fn cmd_request(flags: &Flags) -> Result<u8, String> {
    // --fleet retargets the default address at the fleet router's
    // default port; an explicit --addr always wins
    let fleet = flags.get_or("fleet", false)?;
    let default_addr = if fleet { "127.0.0.1:7979" } else { "127.0.0.1:7878" };
    let addr = flags.get("addr").unwrap_or_else(|| default_addr.into());
    let id = flags.require("id")?;
    let instance = load_instance(flags)?;
    let request = usep_serve::SolveRequest {
        id,
        instance: std::sync::Arc::new(instance),
        algorithm: flags.get("algorithm"),
        timeout_ms: flags.get("timeout-ms").map(|s| s.parse()).transpose()
            .map_err(|e| format!("bad --timeout-ms: {e}"))?,
        mem_budget_mb: flags.get("mem-budget-mb").map(|s| s.parse()).transpose()
            .map_err(|e| format!("bad --mem-budget-mb: {e}"))?,
        city: flags.get("city"),
    };
    let client_timeout = Duration::from_millis(flags.get_or("client-timeout-ms", 120_000u64)?);
    flags.reject_unknown()?;
    let response = usep_serve::send_request(&addr, &request, client_timeout)
        .map_err(|e| format!("request to {addr}: {e}"))?;
    println!("{}", serde_json::to_string(&response).map_err(|e| e.to_string())?);
    eprintln!(
        "{}: {} (Ω = {:.4}, {} assignments, {} retries)",
        response.id,
        response.status.describe(),
        response.omega,
        response.assignments,
        response.retries
    );
    match response.status {
        usep_serve::Status::Complete => Ok(0),
        usep_serve::Status::Truncated { .. } => Ok(EXIT_TRUNCATED),
        other => Err(format!("server answered: {}", other.describe())),
    }
}

/// `usep top`: polls a server's `/metrics` endpoint and renders a
/// one-screen service summary (qps, latency quantiles, shed rate,
/// degradation mix) per poll.
fn cmd_top(flags: &Flags) -> Result<(), String> {
    let addr = flags.get("addr").unwrap_or_else(|| "127.0.0.1:9187".into());
    let interval = Duration::from_millis(flags.get_or("interval-ms", 1000u64)?);
    let iterations = flags.get_or("iterations", 0u64)?;
    let clear = flags.get_or("clear", false)?;
    flags.reject_unknown()?;
    let mut stdout = std::io::stdout();
    usep_obs::top::run(&addr, interval, iterations, clear, &mut stdout)
        .map_err(|e| format!("top {addr}: {e}"))
}

/// `usep dump`: asks a running server (on its *solve* port) for its
/// flight-recorder contents and prints the JSON line.
fn cmd_dump(flags: &Flags) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write as _};
    let addr = flags.get("addr").unwrap_or_else(|| "127.0.0.1:7878".into());
    let timeout = Duration::from_millis(flags.get_or("client-timeout-ms", 10_000u64)?);
    flags.reject_unknown()?;
    let mut stream =
        std::net::TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    writeln!(stream, "{{\"verb\":\"dump\"}}").map_err(|e| format!("send to {addr}: {e}"))?;
    stream.flush().map_err(|e| e.to_string())?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).map_err(|e| format!("read from {addr}: {e}"))?;
    print!("{line}");
    Ok(())
}

fn cmd_convert(flags: &Flags) -> Result<(), String> {
    let inst = load_instance(flags)?;
    let out = flags.require("out")?;
    flags.reject_unknown()?;
    let before = std::fs::metadata(flags.require("instance").expect("checked")).map(|m| m.len());
    if out.ends_with(".json") {
        write_json(&inst, &out)?;
    } else {
        std::fs::write(&out, usep_core::codec::encode(&inst))
            .map_err(|e| format!("write {out}: {e}"))?;
    }
    let after = std::fs::metadata(&out).map(|m| m.len());
    if let (Ok(b), Ok(a)) = (before, after) {
        eprintln!("wrote {out} ({b} → {a} bytes)");
    } else {
        eprintln!("wrote {out}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unknown_subcommand_rejected() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn help_succeeds() {
        assert!(dispatch(&argv(&["help"])).is_ok());
        assert!(dispatch(&argv(&[])).is_ok());
    }

    #[test]
    fn gen_solve_validate_bound_pipeline() {
        let dir = std::env::temp_dir().join(format!("usep_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.json");
        let plan = dir.join("plan.json");
        let inst_s = inst.to_str().unwrap();
        let plan_s = plan.to_str().unwrap();

        dispatch(&argv(&[
            "gen", "--events", "10", "--users", "20", "--capacity-mean", "3", "--seed", "1",
            "--out", inst_s,
        ]))
        .unwrap();
        dispatch(&argv(&[
            "solve", "--instance", inst_s, "--algorithm", "dedpo+rg", "--local-search", "2",
            "--out", plan_s,
        ]))
        .unwrap();
        dispatch(&argv(&["validate", "--instance", inst_s, "--plan", plan_s])).unwrap();
        dispatch(&argv(&["stats", "--instance", inst_s, "--plan", plan_s])).unwrap();
        dispatch(&argv(&["bound", "--instance", inst_s, "--plan", plan_s])).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn convert_roundtrip_binary_and_back() {
        let dir = std::env::temp_dir().join(format!("usep_cli_conv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let json1 = dir.join("a.json");
        let bin = dir.join("a.usep");
        let json2 = dir.join("b.json");
        dispatch(&argv(&[
            "gen", "--events", "8", "--users", "12", "--seed", "2", "--out",
            json1.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&argv(&[
            "convert", "--instance", json1.to_str().unwrap(), "--out", bin.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&argv(&[
            "convert", "--instance", bin.to_str().unwrap(), "--out", json2.to_str().unwrap(),
        ]))
        .unwrap();
        let a: usep_core::Instance =
            serde_json::from_str(&std::fs::read_to_string(&json1).unwrap()).unwrap();
        let b: usep_core::Instance =
            serde_json::from_str(&std::fs::read_to_string(&json2).unwrap()).unwrap();
        assert_eq!(a, b);
        // binary is denser than JSON
        assert!(std::fs::metadata(&bin).unwrap().len() < std::fs::metadata(&json1).unwrap().len());
        // binary instances are directly solvable
        dispatch(&argv(&["solve", "--instance", bin.to_str().unwrap(), "--algorithm", "degreedy"]))
            .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plan_user_prints_itinerary() {
        let dir = std::env::temp_dir().join(format!("usep_cli_pu_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.json");
        dispatch(&argv(&[
            "gen", "--events", "6", "--users", "4", "--seed", "9", "--out",
            inst.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&argv(&["plan-user", "--instance", inst.to_str().unwrap(), "--user", "2"]))
            .unwrap();
        let e = dispatch(&argv(&["plan-user", "--instance", inst.to_str().unwrap(), "--user", "9"]))
            .unwrap_err();
        assert!(e.contains("out of range"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn city_generation() {
        let dir = std::env::temp_dir().join(format!("usep_cli_city_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("city.json");
        dispatch(&argv(&[
            "city", "--name", "auckland", "--seed", "3", "--out", inst.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(inst.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn solve_trace_out_emits_valid_jsonl_with_summary() {
        let dir = std::env::temp_dir().join(format!("usep_cli_trace_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.json");
        let trace = dir.join("run.jsonl");
        let inst_s = inst.to_str().unwrap();
        let trace_s = trace.to_str().unwrap();
        dispatch(&argv(&[
            "gen", "--events", "10", "--users", "15", "--capacity-mean", "3", "--seed", "4",
            "--out", inst_s,
        ]))
        .unwrap();
        dispatch(&argv(&[
            "solve", "--instance", inst_s, "--algorithm", "ratiogreedy", "--trace-out", trace_s,
            "--trace-summary", "true",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "spans + summary expected, got {} lines", lines.len());
        for line in &lines {
            let _: serde::Content =
                serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSONL line {line}: {e}"));
        }
        let last = lines.last().unwrap();
        assert!(last.contains("\"type\":\"summary\""), "last line must be the summary: {last}");
        assert!(last.contains("\"heap_push\""), "summary lists the counter registry");
        // every non-summary record is a span event for this solver
        for line in &lines[..lines.len() - 1] {
            assert!(
                line.contains("\"span_enter\"") || line.contains("\"span_exit\""),
                "unexpected record {line}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn expired_timeout_exits_truncated() {
        let dir = std::env::temp_dir().join(format!("usep_cli_to_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.json");
        let inst_s = inst.to_str().unwrap();
        dispatch(&argv(&[
            "gen", "--events", "8", "--users", "30", "--seed", "7", "--out", inst_s,
        ]))
        .unwrap();
        // a zero deadline expires before the first attempt starts: the
        // planning is empty-but-valid and the exit code flags truncation
        let code = dispatch(&argv(&[
            "solve", "--instance", inst_s, "--algorithm", "dedpo", "--timeout-ms", "0",
        ]))
        .unwrap();
        assert_eq!(code, EXIT_TRUNCATED);
        // an unbudgeted solve of the same instance exits 0
        let code =
            dispatch(&argv(&["solve", "--instance", inst_s, "--algorithm", "dedpo"])).unwrap();
        assert_eq!(code, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_mem_budget_degrades_but_completes() {
        let dir = std::env::temp_dir().join(format!("usep_cli_mb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.json");
        let inst_s = inst.to_str().unwrap();
        dispatch(&argv(&[
            "gen", "--events", "6", "--users", "10", "--seed", "5", "--out", inst_s,
        ]))
        .unwrap();
        // a 0 MB ceiling forces the chain down to RatioGreedy, which
        // charges no allocations and completes — exit code stays 0
        let code = dispatch(&argv(&[
            "solve", "--instance", inst_s, "--algorithm", "dedp", "--mem-budget-mb", "0",
        ]))
        .unwrap();
        assert_eq!(code, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_instance_rejected_on_load() {
        let dir = std::env::temp_dir().join(format!("usep_cli_val_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        let bad = dir.join("bad.json");
        dispatch(&argv(&[
            "gen", "--events", "4", "--users", "6", "--seed", "11", "--out",
            good.to_str().unwrap(),
        ]))
        .unwrap();
        // graft an extra utility entry: |mu| no longer equals |V|·|U|
        let text = std::fs::read_to_string(&good).unwrap();
        assert!(text.contains("\"mu\": ["), "serialized shape changed: {text}");
        std::fs::write(&bad, text.replacen("\"mu\": [", "\"mu\": [9.0,", 1)).unwrap();
        let e = dispatch(&argv(&["solve", "--instance", bad.to_str().unwrap()])).unwrap_err();
        assert!(e.contains("invalid instance"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_single_instance_reports_clean() {
        let dir = std::env::temp_dir().join(format!("usep_cli_ver_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.json");
        let inst_s = inst.to_str().unwrap();
        dispatch(&argv(&[
            "gen", "--events", "5", "--users", "4", "--capacity-mean", "2", "--seed", "3",
            "--out", inst_s,
        ]))
        .unwrap();
        assert_eq!(dispatch(&argv(&["verify", "--instance", inst_s])).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_fuzz_campaign_reports_clean() {
        assert_eq!(dispatch(&argv(&["verify", "--fuzz", "8", "--seed", "42"])).unwrap(), 0);
    }

    #[test]
    fn verify_requires_exactly_one_mode() {
        let e = dispatch(&argv(&["verify"])).unwrap_err();
        assert!(e.contains("exactly one"), "{e}");
        let e = dispatch(&argv(&["verify", "--fuzz", "2", "--instance", "x.json"])).unwrap_err();
        assert!(e.contains("exactly one"), "{e}");
    }

    #[test]
    fn top_and_dump_run_against_a_live_server() {
        let cfg = usep_serve::ServeConfig {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..usep_serve::ServeConfig::default()
        };
        let server = usep_serve::Server::start(cfg).unwrap();
        let addr = server.addr().to_string();
        let maddr = server.metrics_addr().unwrap().to_string();

        dispatch(&argv(&["top", "--addr", &maddr, "--iterations", "1"])).unwrap();
        dispatch(&argv(&["dump", "--addr", &addr])).unwrap();

        // unreachable endpoints fail with a readable error, not a hang
        let e = dispatch(&argv(&["dump", "--addr", "127.0.0.1:1"])).unwrap_err();
        assert!(e.contains("connect"), "{e}");

        server.shutdown();
        server.wait();
    }

    #[test]
    fn typo_flags_are_rejected() {
        let e = dispatch(&argv(&["gen", "--evnts", "10", "--out", "/tmp/x.json"])).unwrap_err();
        assert!(e.contains("unknown flag"), "{e}");
    }

    #[test]
    fn bad_algorithm_rejected() {
        let dir = std::env::temp_dir().join(format!("usep_cli_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.json");
        dispatch(&argv(&[
            "gen", "--events", "3", "--users", "3", "--seed", "1", "--out",
            inst.to_str().unwrap(),
        ]))
        .unwrap();
        let e = dispatch(&argv(&[
            "solve", "--instance", inst.to_str().unwrap(), "--algorithm", "quantum",
        ]))
        .unwrap_err();
        assert!(e.contains("unknown --algorithm"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
