//! Dependency-free SVG line plots.
//!
//! The experiment harness emits CSVs for external plotting, but a
//! self-contained reproduction should also produce *figures*. This
//! module renders a [`ResultTable`] panel as an SVG line chart (one
//! series per algorithm, markers, legend, optional log-scale y axis —
//! the scale the paper uses for its running-time plots).

use crate::table::ResultTable;
use std::fmt::Write as _;

/// Categorical palette (colorblind-safe Okabe–Ito variant).
const PALETTE: [&str; 8] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#56B4E9", "#E69F00", "#000000", "#999999",
];

const WIDTH: f64 = 800.0;
const HEIGHT: f64 = 500.0;
const MARGIN_L: f64 = 80.0;
const MARGIN_R: f64 = 190.0; // room for the legend
const MARGIN_T: f64 = 50.0;
const MARGIN_B: f64 = 60.0;

/// A line chart with one series per named column.
#[derive(Clone, Debug)]
pub struct LinePlot {
    title: String,
    x_label: String,
    y_label: String,
    log_y: bool,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl LinePlot {
    /// An empty plot.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> LinePlot {
        LinePlot {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Switches the y axis to log scale (non-positive values are
    /// dropped from log-scaled series).
    pub fn log_y(mut self) -> LinePlot {
        self.log_y = true;
        self
    }

    /// Adds a named series.
    pub fn series(mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> LinePlot {
        self.series.push((name.into(), points));
        self
    }

    /// Builds a plot from a figure panel table. X values are parsed as
    /// numbers where possible, otherwise positioned by row index.
    pub fn from_table(table: &ResultTable, y_label: &str, log_y: bool) -> LinePlot {
        let xs: Vec<f64> = table
            .rows
            .iter()
            .enumerate()
            .map(|(i, (x, _))| x.parse::<f64>().unwrap_or(i as f64))
            .collect();
        let mut plot = LinePlot::new(table.title.clone(), table.x_label.clone(), y_label);
        if log_y {
            plot = plot.log_y();
        }
        for (ci, name) in table.columns.iter().enumerate() {
            let pts = table
                .rows
                .iter()
                .zip(&xs)
                .map(|((_, vals), &x)| (x, vals[ci]))
                .collect();
            plot = plot.series(name.clone(), pts);
        }
        plot
    }

    fn y_transform(&self, y: f64) -> Option<f64> {
        if self.log_y {
            if y > 0.0 {
                Some(y.log10())
            } else {
                None
            }
        } else {
            Some(y)
        }
    }

    /// Renders the chart as a standalone SVG document.
    pub fn render_svg(&self) -> String {
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;

        // data ranges over transformed coordinates
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (_, pts) in &self.series {
            for &(x, y) in pts {
                if let Some(ty) = self.y_transform(y) {
                    if x.is_finite() && ty.is_finite() {
                        xs.push(x);
                        ys.push(ty);
                    }
                }
            }
        }
        let (x0, x1) = span(&xs);
        let (y0, y1) = span(&ys);
        let sx = move |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * plot_w;
        let sy = move |ty: f64| MARGIN_T + plot_h - (ty - y0) / (y1 - y0) * plot_h;

        let mut svg = String::with_capacity(16 * 1024);
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        );
        let _ = writeln!(svg, r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#);
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="28" font-size="15" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            escape(&self.title)
        );

        // gridlines + ticks
        for (ty, label) in self.y_ticks(y0, y1) {
            let y = sy(ty);
            let _ = writeln!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#e0e0e0"/>"##,
                MARGIN_L + plot_w
            );
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{label}</text>"#,
                MARGIN_L - 8.0,
                y + 4.0
            );
        }
        for (tx, label) in ticks(x0, x1, 6) {
            let x = sx(tx);
            let _ = writeln!(
                svg,
                r##"<line x1="{x:.1}" y1="{MARGIN_T}" x2="{x:.1}" y2="{:.1}" stroke="#f0f0f0"/>"##,
                MARGIN_T + plot_h
            );
            let _ = writeln!(
                svg,
                r#"<text x="{x:.1}" y="{:.1}" font-size="11" text-anchor="middle">{label}</text>"#,
                MARGIN_T + plot_h + 18.0
            );
        }
        // axes
        let _ = writeln!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#606060"/>"##
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="13" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 14.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            svg,
            r#"<text x="20" y="{:.1}" font-size="13" text-anchor="middle" transform="rotate(-90 20 {:.1})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&format!("{}{}", self.y_label, if self.log_y { " (log)" } else { "" }))
        );

        // series
        for (si, (name, pts)) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let mut path = String::new();
            let mut markers = String::new();
            for &(x, y) in pts {
                let Some(ty) = self.y_transform(y) else { continue };
                if !x.is_finite() || !ty.is_finite() {
                    continue;
                }
                let (px, py) = (sx(x), sy(ty));
                let _ = write!(path, "{}{px:.1},{py:.1}", if path.is_empty() { "" } else { " " });
                let _ = writeln!(
                    markers,
                    r#"<circle cx="{px:.1}" cy="{py:.1}" r="3.5" fill="{color}"/>"#
                );
            }
            if !path.is_empty() {
                let _ = writeln!(
                    svg,
                    r#"<polyline points="{path}" fill="none" stroke="{color}" stroke-width="1.8"/>"#
                );
                svg.push_str(&markers);
            }
            // legend entry
            let ly = MARGIN_T + 14.0 + si as f64 * 20.0;
            let lx = MARGIN_L + plot_w + 16.0;
            let _ = writeln!(
                svg,
                r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2.5"/>"#,
                lx + 22.0
            );
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="12">{}</text>"#,
                lx + 28.0,
                ly + 4.0,
                escape(name)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }

    fn y_ticks(&self, y0: f64, y1: f64) -> Vec<(f64, String)> {
        if self.log_y {
            // decade ticks
            let lo = y0.floor() as i64;
            let hi = y1.ceil() as i64;
            let decades: Vec<(f64, String)> = (lo..=hi)
                .filter(|d| (*d as f64) >= y0 - 1e-9 && (*d as f64) <= y1 + 1e-9)
                .map(|d| (d as f64, format_tick(10f64.powi(d as i32))))
                .collect();
            if decades.len() >= 2 {
                return decades;
            }
            // the whole range sits inside one decade: linear ticks in
            // log space, labelled with the actual values
            ticks(y0, y1, 5)
                .into_iter()
                .map(|(t, _)| (t, format_tick(10f64.powf(t))))
                .collect()
        } else {
            ticks(y0, y1, 6)
        }
    }
}

/// A padded (min, max) span that is never degenerate.
fn span(vals: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in vals {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 1.0);
    }
    if (hi - lo).abs() < 1e-12 {
        (lo - 0.5, hi + 0.5)
    } else {
        let pad = (hi - lo) * 0.05;
        (lo - pad, hi + pad)
    }
}

/// Roughly `n` round-number ticks covering `[lo, hi]`.
fn ticks(lo: f64, hi: f64, n: usize) -> Vec<(f64, String)> {
    let raw = (hi - lo) / n as f64;
    let mag = 10f64.powf(raw.abs().log10().floor());
    let step = [1.0, 2.0, 2.5, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|&s| s >= raw)
        .unwrap_or(mag * 10.0);
    let mut t = (lo / step).ceil() * step;
    let mut out = Vec::new();
    while t <= hi + 1e-12 && out.len() < 20 {
        out.push((t, format_tick(t)));
        t += step;
    }
    out
}

fn format_tick(v: f64) -> String {
    let a = v.abs();
    if v == 0.0 {
        "0".to_string()
    } else if !(1e-3..1e6).contains(&a) {
        format!("{v:.0e}")
    } else if a >= 100.0 || v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> ResultTable {
        let mut t = ResultTable::new(
            "Figure 2(e): time vs |V|",
            "|V|",
            vec!["RatioGreedy".into(), "DeDPO".into()],
        );
        t.push_row("20", vec![0.01, 0.05]);
        t.push_row("100", vec![0.08, 0.22]);
        t.push_row("500", vec![0.25, 5.5]);
        t
    }

    #[test]
    fn renders_valid_svg_with_all_series() {
        let svg = LinePlot::from_table(&sample_table(), "seconds", false).render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("RatioGreedy"));
        assert!(svg.contains("DeDPO"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn log_scale_drops_nonpositive_points() {
        let plot = LinePlot::new("t", "x", "y")
            .log_y()
            .series("a", vec![(1.0, 0.0), (2.0, 10.0), (3.0, 100.0)]);
        let svg = plot.render_svg();
        // the zero point is dropped: 2 markers remain
        assert_eq!(svg.matches("<circle").count(), 2);
        assert!(svg.contains("(log)"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn constant_series_does_not_degenerate() {
        let plot = LinePlot::new("t", "x", "y").series("a", vec![(0.0, 5.0), (1.0, 5.0)]);
        let svg = plot.render_svg();
        assert!(svg.contains("<polyline"));
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn empty_plot_renders() {
        let svg = LinePlot::new("empty", "x", "y").render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn non_numeric_x_labels_fall_back_to_indices() {
        let mut t = ResultTable::new("cities", "city", vec!["Ω".into()]);
        t.push_row("Vancouver", vec![1.0]);
        t.push_row("Auckland", vec![2.0]);
        let svg = LinePlot::from_table(&t, "omega", false).render_svg();
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn titles_are_escaped() {
        let svg = LinePlot::new("a < b & c", "x", "y").render_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn log_ticks_inside_one_decade_still_appear() {
        // values between 2 and 8: log range (0.3, 0.9) has no decade tick
        let plot = LinePlot::new("t", "x", "y")
            .log_y()
            .series("a", vec![(0.0, 2.0), (1.0, 8.0)]);
        let svg = plot.render_svg();
        // at least two y tick labels must be present (text-anchor="end")
        let labels = svg.matches("text-anchor=\"end\"").count();
        assert!(labels >= 2, "only {labels} y tick labels in a one-decade log plot");
    }

    #[test]
    fn tick_generation_is_sane() {
        let ts = ticks(0.0, 10.0, 6);
        assert!(!ts.is_empty() && ts.len() <= 12);
        for w in ts.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        let ts = ticks(0.001, 0.002, 6);
        assert!(!ts.is_empty());
    }

    #[test]
    fn format_tick_ranges() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(5.0), "5");
        assert_eq!(format_tick(1500.0), "1500");
        assert_eq!(format_tick(2_500_000.0), "2e6"); // {:.0e} floors the mantissa at 2.5
        assert_eq!(format_tick(0.25), "0.25");
    }
}
