//! Multi-seed ensemble evaluation.
//!
//! The paper plots one run per configuration; instance noise is left
//! unquantified. This module runs an algorithm over many seeds of the
//! same configuration — in parallel over the `usep-par` fork-join pool,
//! since Ω is timing-independent — and reports mean/std/min/max, giving
//! the experiment tables error bars.

use serde::{Deserialize, Serialize};
use usep_algos::Algorithm;
use usep_core::Instance;

/// Summary statistics of Ω over an ensemble of seeds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ensemble {
    /// Algorithm legend name.
    pub algorithm: String,
    /// Number of seeds evaluated.
    pub runs: usize,
    /// Mean Ω.
    pub mean: f64,
    /// Sample standard deviation of Ω (0 for a single run).
    pub std: f64,
    /// Smallest Ω observed.
    pub min: f64,
    /// Largest Ω observed.
    pub max: f64,
}

/// Evaluates `algorithm` on `make(seed)` for every seed, spreading the
/// independent runs over `threads` worker threads. Every planning is
/// validated before its Ω is admitted.
///
/// # Panics
/// Panics if `seeds` is empty, `threads` is zero, or any solver output
/// is infeasible (a bug).
pub fn evaluate<F>(algorithm: Algorithm, seeds: &[u64], threads: usize, make: F) -> Ensemble
where
    F: Fn(u64) -> Instance + Sync,
{
    assert!(!seeds.is_empty(), "need at least one seed");
    assert!(threads > 0, "need at least one thread");
    let omegas: Vec<f64> = usep_par::par_map_complete(threads, seeds, |_, &seed| {
        let inst = make(seed);
        let plan = usep_algos::solve(algorithm, &inst);
        plan.validate(&inst)
            .unwrap_or_else(|e| panic!("{algorithm} infeasible on seed {seed}: {e}"));
        plan.omega(&inst)
    });

    let n = omegas.len() as f64;
    let mean = omegas.iter().sum::<f64>() / n;
    let var = if omegas.len() > 1 {
        omegas.iter().map(|o| (o - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    Ensemble {
        algorithm: algorithm.name().to_string(),
        runs: omegas.len(),
        mean,
        std: var.sqrt(),
        min: omegas.iter().cloned().fold(f64::INFINITY, f64::min),
        max: omegas.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_gen::{generate, SyntheticConfig};

    fn mk(seed: u64) -> Instance {
        generate(&SyntheticConfig::tiny().with_users(15), seed)
    }

    #[test]
    fn ensemble_statistics_are_consistent() {
        let seeds: Vec<u64> = (0..8).collect();
        let e = evaluate(Algorithm::DeGreedy, &seeds, 4, mk);
        assert_eq!(e.runs, 8);
        assert!(e.min <= e.mean && e.mean <= e.max);
        assert!(e.std >= 0.0);
        assert_eq!(e.algorithm, "DeGreedy");
    }

    #[test]
    fn parallel_matches_serial() {
        let seeds: Vec<u64> = (0..6).collect();
        let par = evaluate(Algorithm::DeDPO, &seeds, 3, mk);
        let ser = evaluate(Algorithm::DeDPO, &seeds, 1, mk);
        assert_eq!(par, ser, "thread count must not affect results");
    }

    #[test]
    fn single_seed_has_zero_std() {
        let e = evaluate(Algorithm::RatioGreedy, &[7], 2, mk);
        assert_eq!(e.runs, 1);
        assert_eq!(e.std, 0.0);
        assert_eq!(e.min, e.max);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_rejected() {
        let _ = evaluate(Algorithm::DeGreedy, &[], 2, mk);
    }
}
