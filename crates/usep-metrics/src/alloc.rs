//! Counting global allocator.
//!
//! Wraps the system allocator and keeps two atomic counters: the live
//! byte count and its high-water mark. The experiments binary registers
//! it with `#[global_allocator]`; libraries only read the counters (all
//! reads degrade gracefully to zero when the allocator is not
//! registered).
//!
//! The paper measures per-algorithm memory consumption; we report the
//! *peak live bytes above the pre-run baseline*, which isolates the
//! algorithm's working set from the input data — matching the paper's
//! observation that "all the algorithms consume only very little memory
//! in addition to the memory taken up by input data" except DeDP.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`GlobalAlloc`] wrapper around the system allocator that maintains
/// live/peak byte counters.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: usep_metrics::CountingAllocator = usep_metrics::CountingAllocator;
/// ```
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            track_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
            track_alloc(new_size);
        }
        p
    }
}

fn track_alloc(size: usize) {
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    // lock-free high-water mark
    let mut peak = PEAK.load(Ordering::Relaxed);
    while now > peak {
        match PEAK.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

/// Live heap bytes right now (0 unless the allocator is registered).
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark since process start or the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live count.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Runs `f` and returns its result together with the peak heap growth
/// (in bytes) above the live baseline at entry. Single-threaded
/// measurements only — concurrent allocations would be attributed to `f`.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = current_bytes();
    reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the allocator is not registered in unit tests (registering a
    // global allocator is a binary-level decision), so the counters stay
    // at zero; these tests cover the bookkeeping API surface.

    #[test]
    fn counters_are_consistent_without_registration() {
        let c = current_bytes();
        reset_peak();
        assert_eq!(peak_bytes(), c);
        let (v, growth) = measure_peak(|| vec![0u8; 1 << 16].len());
        assert_eq!(v, 1 << 16);
        // growth is 0 when unregistered, ≥ 64 KiB when registered
        assert!(growth == 0 || growth >= 1 << 16);
    }

    #[test]
    fn track_alloc_updates_peak() {
        // exercise the internal high-water logic directly
        let before_peak = peak_bytes();
        track_alloc(123);
        assert!(peak_bytes() >= before_peak);
        CURRENT.fetch_sub(123, std::sync::atomic::Ordering::Relaxed);
    }
}
