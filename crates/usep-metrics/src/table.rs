//! Figure-shaped result tables.
//!
//! Each panel of the paper's Figures 2–4 is a family of series (one per
//! algorithm) over an x-axis (the varied parameter). [`ResultTable`]
//! holds exactly that and renders to aligned markdown (for
//! EXPERIMENTS.md) and CSV (for plotting).

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One figure panel: `rows[i].1[j]` is the value of series
/// `columns[j]` at x-value `rows[i].0`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResultTable {
    /// Panel title, e.g. `"Figure 2(a): utility vs |V|"`.
    pub title: String,
    /// X-axis label, e.g. `"|V|"`.
    pub x_label: String,
    /// Series names (algorithm legend names).
    pub columns: Vec<String>,
    /// `(x, series values)` rows in x order.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl ResultTable {
    /// An empty table with the given shape.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        columns: Vec<String>,
    ) -> ResultTable {
        ResultTable { title: title.into(), x_label: x_label.into(), columns, rows: Vec::new() }
    }

    /// Appends a row; `values` must match the column count.
    pub fn push_row(&mut self, x: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((x.into(), values));
    }

    /// Renders as a GitHub-flavored markdown table, preceded by the
    /// title.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = write!(out, "| {} |", self.x_label);
        for c in &self.columns {
            let _ = write!(out, " {c} |");
        }
        out.push('\n');
        let _ = write!(out, "|---|");
        for _ in &self.columns {
            let _ = write!(out, "---|");
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            let _ = write!(out, "| {x} |");
            for v in vals {
                let _ = write!(out, " {} |", fmt_value(*v));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as CSV with an `x` header column.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", csv_escape(&self.x_label));
        for c in &self.columns {
            let _ = write!(out, ",{}", csv_escape(c));
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            let _ = write!(out, "{}", csv_escape(x));
            for v in vals {
                let _ = write!(out, ",{v}");
            }
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Parses a table back from its [`to_csv`](ResultTable::to_csv)
    /// rendering (title is not stored in CSV; supply one).
    pub fn from_csv(title: impl Into<String>, csv: &str) -> Result<ResultTable, String> {
        let mut lines = csv.lines();
        let header = lines.next().ok_or("empty CSV")?;
        let mut cols = split_csv_line(header);
        if cols.is_empty() {
            return Err("empty header".into());
        }
        let x_label = cols.remove(0);
        let mut table = ResultTable::new(title, x_label, cols);
        for (li, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = split_csv_line(line);
            if fields.len() != table.columns.len() + 1 {
                return Err(format!(
                    "row {} has {} fields, expected {}",
                    li + 2,
                    fields.len(),
                    table.columns.len() + 1
                ));
            }
            let x = fields.remove(0);
            let values = fields
                .iter()
                .map(|f| f.parse::<f64>().map_err(|e| format!("row {}: {e}", li + 2)))
                .collect::<Result<Vec<f64>, String>>()?;
            table.push_row(x, values);
        }
        Ok(table)
    }
}

/// Splits one CSV line, honoring double-quote escaping.
fn split_csv_line(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => quoted = !quoted,
            ',' if !quoted => out.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    out.push(cur);
    out
}

/// Human-oriented number formatting: integers plainly, small values with
/// more precision, large values with thousands of separators omitted.
fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        return v.to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultTable {
        let mut t = ResultTable::new(
            "Figure 2(a): utility vs |V|",
            "|V|",
            vec!["RatioGreedy".into(), "DeDPO".into()],
        );
        t.push_row("20", vec![100.0, 120.5]);
        t.push_row("50", vec![210.25, 260.0]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.contains("### Figure 2(a)"));
        assert!(md.contains("| |V| | RatioGreedy | DeDPO |"));
        assert!(md.contains("| 20 | 100 | 120.5 |"));
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "|V|,RatioGreedy,DeDPO");
        assert_eq!(lines.next().unwrap(), "20,100,120.5");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = sample();
        t.push_row("100", vec![1.0]);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_value(5.0), "5");
        assert_eq!(fmt_value(1234.56), "1234.6");
        assert_eq!(fmt_value(0.1234), "0.123");
        assert_eq!(fmt_value(0.0001234), "1.23e-4");
    }

    #[test]
    fn write_csv_to_disk() {
        let dir = std::env::temp_dir().join("usep_table_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.csv");
        sample().write_csv(&p).unwrap();
        let back = std::fs::read_to_string(&p).unwrap();
        assert!(back.starts_with("|V|,"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: ResultTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn csv_roundtrip() {
        let t = sample();
        let back = ResultTable::from_csv(t.title.clone(), &t.to_csv()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn csv_roundtrip_with_quoted_fields() {
        let mut t = ResultTable::new("q", "x, y", vec!["a\"b".into()]);
        t.push_row("1", vec![2.5]);
        let back = ResultTable::from_csv("q", &t.to_csv()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn from_csv_rejects_ragged_rows() {
        let e = ResultTable::from_csv("t", "x,a\n1,2,3\n").unwrap_err();
        assert!(e.contains("row 2"));
    }

    #[test]
    fn from_csv_rejects_non_numeric() {
        assert!(ResultTable::from_csv("t", "x,a\n1,two\n").is_err());
    }

    #[test]
    fn split_csv_line_cases() {
        assert_eq!(split_csv_line("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_csv_line("\"a,b\",c"), vec!["a,b", "c"]);
        assert_eq!(split_csv_line("\"a\"\"b\""), vec!["a\"b"]);
        assert_eq!(split_csv_line(""), vec![""]);
    }
}
