//! Single-run measurement: one algorithm, one instance, three metrics.

use crate::alloc::measure_peak;
use crate::timer::time;
use serde::{Deserialize, Serialize};
use usep_algos::{Algorithm, GuardedSolver, SolveBudget};
use usep_core::Instance;
use usep_trace::TraceSink;

/// One measured algorithm run (the three quantities every panel of
/// Figures 2–4 plots, plus the algorithm-counter snapshot from
/// `usep-trace`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Algorithm legend name.
    pub algorithm: String,
    /// Total utility score `Ω(A)`.
    pub omega: f64,
    /// Wall-clock running time in seconds.
    pub seconds: f64,
    /// Peak heap growth during the run, in bytes (0 when the counting
    /// allocator is not registered).
    pub peak_bytes: usize,
    /// Number of event-user assignments in the returned planning.
    pub assignments: usize,
    /// Algorithm counters in registry order, as `(name, value)` pairs
    /// (see `usep_trace::Counter`). Empty when deserialized from results
    /// recorded before counters existed.
    #[serde(default)]
    pub counters: Vec<(String, u64)>,
    /// How the solve ended: `"complete"` or `"truncated:<reason>"`
    /// (see `usep_guard::SolveOutcome::describe`). Empty in records
    /// written before budgets existed — treat as complete.
    #[serde(default)]
    pub outcome: String,
    /// Algorithms abandoned by the degradation chain before the one
    /// whose planning was measured (empty for unguarded runs and
    /// legacy records).
    #[serde(default)]
    pub fallbacks: Vec<String>,
}

/// Runs `algorithm` on `inst`, validating the output planning and
/// capturing Ω, wall-clock time, peak heap growth and the full
/// algorithm-counter snapshot.
///
/// # Panics
/// Panics if the algorithm returns an infeasible planning — that is a
/// bug, and experiments must not silently report numbers from one.
pub fn run_measured(algorithm: Algorithm, inst: &Instance) -> Measurement {
    let sink = TraceSink::new();
    let ((planning, dur), peak) =
        measure_peak(|| time(|| usep_algos::solve_with_probe(algorithm, inst, &sink)));
    planning
        .validate(inst)
        .unwrap_or_else(|e| panic!("{algorithm} returned an infeasible planning: {e}"));
    Measurement {
        algorithm: algorithm.name().to_string(),
        omega: planning.omega(inst),
        seconds: dur.as_secs_f64(),
        peak_bytes: peak,
        assignments: planning.num_assignments(),
        counters: sink.counters().into_iter().map(|(c, v)| (c.name().to_string(), v)).collect(),
        outcome: "complete".to_string(),
        fallbacks: Vec::new(),
    }
}

/// [`run_measured`] under a [`SolveBudget`]: the solve runs through the
/// [`GuardedSolver`] degradation chain, and the measurement records the
/// outcome tag, any fallbacks taken, and — in `algorithm` — the
/// algorithm that actually produced the planning.
///
/// Truncated plannings are still validated: a guard trip must never
/// yield an infeasible result.
pub fn run_measured_guarded(
    algorithm: Algorithm,
    inst: &Instance,
    budget: &SolveBudget,
) -> Measurement {
    let sink = TraceSink::new();
    let solver = GuardedSolver::new(algorithm, budget.clone());
    let ((report, dur), peak) = measure_peak(|| time(|| solver.solve_with_probe(inst, &sink)));
    report
        .planning
        .validate(inst)
        .unwrap_or_else(|e| panic!("{algorithm} returned an infeasible planning: {e}"));
    Measurement {
        algorithm: report.executed.name().to_string(),
        omega: report.planning.omega(inst),
        seconds: dur.as_secs_f64(),
        peak_bytes: peak,
        assignments: report.planning.num_assignments(),
        counters: sink.counters().into_iter().map(|(c, v)| (c.name().to_string(), v)).collect(),
        outcome: report.outcome.describe(),
        fallbacks: report.fallbacks.iter().map(|a| a.name().to_string()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_gen::{generate, SyntheticConfig};

    #[test]
    fn measures_all_algorithms_on_a_tiny_instance() {
        let inst = generate(&SyntheticConfig::tiny(), 5);
        for a in Algorithm::PAPER_SET {
            let m = run_measured(a, &inst);
            assert_eq!(m.algorithm, a.name());
            assert!(m.omega >= 0.0);
            assert!(m.seconds >= 0.0);
            assert_eq!(m.counters.len(), usep_trace::Counter::ALL.len());
            assert!(m.counters.iter().any(|&(_, v)| v > 0), "{a}: all counters zero");
        }
    }

    #[test]
    fn dedp_and_dedpo_agree_on_omega() {
        let inst = generate(&SyntheticConfig::tiny().with_users(20), 9);
        let a = run_measured(Algorithm::DeDP, &inst);
        let b = run_measured(Algorithm::DeDPO, &inst);
        assert!((a.omega - b.omega).abs() < 1e-9);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn serde_roundtrip() {
        let m = Measurement {
            algorithm: "DeDPO".into(),
            omega: 12.5,
            seconds: 0.25,
            peak_bytes: 1024,
            assignments: 30,
            counters: vec![("dp_cell_visit".to_string(), 420)],
            outcome: "truncated:deadline".into(),
            fallbacks: vec!["DeDP".into()],
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: Measurement = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        // counter- and outcome-free records from before those fields
        // existed still load
        let legacy = r#"{"algorithm":"DeDPO","omega":1.0,"seconds":0.1,
                         "peak_bytes":0,"assignments":2}"#;
        let old: Measurement = serde_json::from_str(legacy).unwrap();
        assert!(old.counters.is_empty());
        assert!(old.outcome.is_empty());
        assert!(old.fallbacks.is_empty());
    }

    #[test]
    fn guarded_run_records_outcome_and_fallbacks() {
        let inst = generate(&SyntheticConfig::tiny(), 5);
        let unlimited = run_measured_guarded(Algorithm::DeDPO, &inst, &SolveBudget::unlimited());
        assert_eq!(unlimited.outcome, "complete");
        assert!(unlimited.fallbacks.is_empty());

        // a 1-byte ceiling forces DeDPO's DP table reservation to fail
        // and the chain to land on RatioGreedy
        let tight = SolveBudget::unlimited().with_memory_ceiling(1);
        let m = run_measured_guarded(Algorithm::DeDPO, &inst, &tight);
        assert_eq!(m.algorithm, "RatioGreedy");
        assert_eq!(m.fallbacks, vec!["DeDPO".to_string()]);
        assert_eq!(m.outcome, "complete");
    }
}
