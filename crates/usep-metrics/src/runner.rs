//! Single-run measurement: one algorithm, one instance, three metrics.

use crate::alloc::measure_peak;
use crate::timer::time;
use serde::{Deserialize, Serialize};
use usep_algos::Algorithm;
use usep_core::Instance;
use usep_trace::TraceSink;

/// One measured algorithm run (the three quantities every panel of
/// Figures 2–4 plots, plus the algorithm-counter snapshot from
/// `usep-trace`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Algorithm legend name.
    pub algorithm: String,
    /// Total utility score `Ω(A)`.
    pub omega: f64,
    /// Wall-clock running time in seconds.
    pub seconds: f64,
    /// Peak heap growth during the run, in bytes (0 when the counting
    /// allocator is not registered).
    pub peak_bytes: usize,
    /// Number of event-user assignments in the returned planning.
    pub assignments: usize,
    /// Algorithm counters in registry order, as `(name, value)` pairs
    /// (see `usep_trace::Counter`). Empty when deserialized from results
    /// recorded before counters existed.
    #[serde(default)]
    pub counters: Vec<(String, u64)>,
}

/// Runs `algorithm` on `inst`, validating the output planning and
/// capturing Ω, wall-clock time, peak heap growth and the full
/// algorithm-counter snapshot.
///
/// # Panics
/// Panics if the algorithm returns an infeasible planning — that is a
/// bug, and experiments must not silently report numbers from one.
pub fn run_measured(algorithm: Algorithm, inst: &Instance) -> Measurement {
    let sink = TraceSink::new();
    let ((planning, dur), peak) =
        measure_peak(|| time(|| usep_algos::solve_with_probe(algorithm, inst, &sink)));
    planning
        .validate(inst)
        .unwrap_or_else(|e| panic!("{algorithm} returned an infeasible planning: {e}"));
    Measurement {
        algorithm: algorithm.name().to_string(),
        omega: planning.omega(inst),
        seconds: dur.as_secs_f64(),
        peak_bytes: peak,
        assignments: planning.num_assignments(),
        counters: sink.counters().into_iter().map(|(c, v)| (c.name().to_string(), v)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_gen::{generate, SyntheticConfig};

    #[test]
    fn measures_all_algorithms_on_a_tiny_instance() {
        let inst = generate(&SyntheticConfig::tiny(), 5);
        for a in Algorithm::PAPER_SET {
            let m = run_measured(a, &inst);
            assert_eq!(m.algorithm, a.name());
            assert!(m.omega >= 0.0);
            assert!(m.seconds >= 0.0);
            assert_eq!(m.counters.len(), usep_trace::Counter::ALL.len());
            assert!(m.counters.iter().any(|&(_, v)| v > 0), "{a}: all counters zero");
        }
    }

    #[test]
    fn dedp_and_dedpo_agree_on_omega() {
        let inst = generate(&SyntheticConfig::tiny().with_users(20), 9);
        let a = run_measured(Algorithm::DeDP, &inst);
        let b = run_measured(Algorithm::DeDPO, &inst);
        assert!((a.omega - b.omega).abs() < 1e-9);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn serde_roundtrip() {
        let m = Measurement {
            algorithm: "DeDPO".into(),
            omega: 12.5,
            seconds: 0.25,
            peak_bytes: 1024,
            assignments: 30,
            counters: vec![("dp_cell_visit".to_string(), 420)],
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: Measurement = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        // counter-free records from before the field existed still load
        let legacy = r#"{"algorithm":"DeDPO","omega":1.0,"seconds":0.1,
                         "peak_bytes":0,"assignments":2}"#;
        let old: Measurement = serde_json::from_str(legacy).unwrap();
        assert!(old.counters.is_empty());
    }
}
