//! Measurement substrate for the USEP experiments.
//!
//! The paper reports three metrics per algorithm and parameter setting:
//! total utility score Ω, running time, and memory consumption. This
//! crate provides the plumbing to reproduce all three:
//!
//! * [`alloc`] — a counting [`GlobalAlloc`](std::alloc::GlobalAlloc)
//!   wrapper tracking live and peak bytes (the stand-in for the paper's
//!   Windows working-set measurements). Binaries opt in with
//!   `#[global_allocator]`.
//! * [`timer`] — wall-clock helpers.
//! * [`runner`] — runs one algorithm on one instance and captures all
//!   three metrics as a [`Measurement`].
//! * [`table`] — figure-shaped result tables with CSV and markdown
//!   output.

#![warn(missing_docs)]

pub mod alloc;
pub mod ensemble;
pub mod plot;
pub mod runner;
pub mod table;
pub mod timer;

pub use alloc::CountingAllocator;
pub use ensemble::{evaluate as evaluate_ensemble, Ensemble};
pub use plot::LinePlot;
pub use runner::{run_measured, run_measured_guarded, Measurement};
pub use table::ResultTable;
pub use usep_algos::{CancelToken, SolveBudget, SolveOutcome, TruncationReason};
