//! Wall-clock timing helpers.

use std::time::{Duration, Instant};

/// Runs `f`, returning its result and the elapsed wall-clock time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// A simple accumulating stopwatch, for timing phases across iterations.
#[derive(Debug, Default)]
pub struct Stopwatch {
    total: Duration,
    started: Option<Instant>,
}

impl Stopwatch {
    /// A stopped stopwatch at zero.
    pub fn new() -> Stopwatch {
        Stopwatch::default()
    }

    /// Starts (or restarts) the current lap.
    pub fn start(&mut self) {
        self.started = Some(Instant::now());
    }

    /// Stops the current lap, adding it to the total. No-op if not
    /// running.
    pub fn stop(&mut self) {
        if let Some(s) = self.started.take() {
            self.total += s.elapsed();
        }
    }

    /// Total accumulated time (excluding a currently running lap).
    pub fn total(&self) -> Duration {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_something() {
        let (v, d) = time(|| {
            let mut x = 0u64;
            for i in 0..10_000 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert_eq!(v, 49_995_000);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn stopwatch_accumulates() {
        let mut sw = Stopwatch::new();
        assert_eq!(sw.total(), Duration::ZERO);
        sw.start();
        std::hint::black_box((0..1000).sum::<u64>());
        sw.stop();
        let t1 = sw.total();
        sw.start();
        std::hint::black_box((0..1000).sum::<u64>());
        sw.stop();
        assert!(sw.total() >= t1);
    }

    #[test]
    fn stop_without_start_is_noop() {
        let mut sw = Stopwatch::new();
        sw.stop();
        assert_eq!(sw.total(), Duration::ZERO);
    }
}
