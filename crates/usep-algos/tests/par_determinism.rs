//! The core contract of `usep-par`: thread count is invisible in every
//! output. Solvers, local search and the relaxation bounds must produce
//! **byte-identical** results at 1, 2 and 8 threads — on this suite's
//! instances the parallel seeding / refresh / move-evaluation paths are
//! genuinely exercised (sizes cross the `MIN_PAR_ITEMS` threshold), so
//! a scheduling-dependent reduction or commit order would fail here.
//!
//! The thread count is a process-global override, so every test holds
//! `THREADS_LOCK` while flipping it and restores the default before
//! releasing.

use proptest::prelude::*;
use std::sync::Mutex;
use usep_algos::{
    bounds, local_search, solve, solve_guarded, Algorithm, Guard, GuardedSolver, SolveBudget,
    TruncationReason,
};
use usep_core::{Instance, Planning};
use usep_gen::{generate, SyntheticConfig};
use usep_trace::{TraceSink, NOOP};

static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the global thread override pinned to `n`, restoring
/// the unset default afterwards. Callers must hold [`THREADS_LOCK`].
fn at_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    usep_par::set_threads(n);
    let r = f();
    usep_par::set_threads(0);
    r
}

/// An instance big enough that RatioGreedy's seed/refresh scans and the
/// local-search rounds all take their parallel paths.
fn large_instance(seed: u64) -> Instance {
    generate(
        &SyntheticConfig::tiny().with_events(40).with_users(64).with_capacity_mean(4),
        seed,
    )
}

#[test]
fn all_solvers_identical_across_thread_counts() {
    let _g = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    for seed in [11u64, 12, 13] {
        let inst = large_instance(seed);
        for a in Algorithm::PAPER_SET {
            let sequential = at_threads(1, || solve(a, &inst));
            for threads in [2usize, 8] {
                let parallel = at_threads(threads, || solve(a, &inst));
                assert_eq!(
                    parallel, sequential,
                    "{a} seed {seed}: planning differs at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn local_search_identical_across_thread_counts() {
    let _g = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    for seed in [21u64, 22] {
        let inst = large_instance(seed);
        let base = solve(Algorithm::DeGreedy, &inst);
        let polish = |threads: usize| {
            at_threads(threads, || {
                let mut p = base.clone();
                let moves = local_search::improve(&inst, &mut p, 5);
                (p, moves)
            })
        };
        let (seq_p, seq_moves) = polish(1);
        for threads in [2usize, 8] {
            let (par_p, par_moves) = polish(threads);
            assert_eq!(par_p, seq_p, "seed {seed}: planning differs at {threads} threads");
            assert_eq!(par_moves, seq_moves, "seed {seed}: move count differs");
        }
    }
}

#[test]
fn bounds_bit_identical_across_thread_counts() {
    let _g = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    for seed in [31u64, 32] {
        let inst = large_instance(seed);
        let seq = at_threads(1, || bounds::capacity_relaxed_bound(&inst));
        for threads in [2usize, 8] {
            let par = at_threads(threads, || bounds::capacity_relaxed_bound(&inst));
            // f64 sums are order-sensitive; the reduction must preserve
            // user-id order exactly, so this is ==, not approx
            assert!(
                par == seq,
                "seed {seed}: bound {par} != {seq} at {threads} threads"
            );
        }
    }
}

/// Fifty seeded instances through the guarded solve path: the planning
/// AND the complete trace-counter snapshot must be identical at 1 and 4
/// threads. Counters catch divergence that equal plannings can mask —
/// e.g. a parallel section doing different work per thread count but
/// converging on the same output by luck.
#[test]
fn guarded_plannings_and_counter_snapshots_identical_1_vs_4_threads() {
    let _g = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    for seed in 0..50u64 {
        // cycle through all six solvers across the seed sweep
        let algo = Algorithm::PAPER_SET[(seed % Algorithm::PAPER_SET.len() as u64) as usize];
        let inst = large_instance(100 + seed);
        let run = |threads: usize| {
            at_threads(threads, || {
                let sink = TraceSink::new();
                let report =
                    GuardedSolver::new(algo, SolveBudget::unlimited()).solve_with_probe(&inst, &sink);
                (report.planning, report.executed, report.fallbacks, sink.counters())
            })
        };
        let (p1, e1, f1, c1) = run(1);
        let (p4, e4, f4, c4) = run(4);
        assert_eq!(p1, p4, "{algo} seed {seed}: planning differs at 4 threads");
        assert_eq!(e1, e4, "{algo} seed {seed}: executed tier differs");
        assert_eq!(f1, f4, "{algo} seed {seed}: fallback trail differs");
        assert_eq!(c1, c4, "{algo} seed {seed}: trace-counter snapshot differs");
        // the runs above go through the flat SoA view; the forced
        // object-path solve must land on the byte-identical planning
        let object = at_threads(4, || {
            usep_core::with_object_path(|| {
                GuardedSolver::new(algo, SolveBudget::unlimited()).solve(&inst).planning
            })
        });
        assert_eq!(p1, object, "{algo} seed {seed}: SoA planning differs from object path");
    }
}

/// A guard trip landing inside a parallel section must still yield a
/// constraint-valid planning: computed chunks form a usable prefix and
/// uncomputed ones are simply absent, never half-applied.
#[test]
fn chaos_trip_mid_parallel_section_yields_valid_prefix() {
    let _g = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let inst = large_instance(41);
    at_threads(4, || {
        for algo in [Algorithm::RatioGreedy, Algorithm::DeDPORG, Algorithm::DeGreedyRG] {
            let complete = solve(algo, &inst);
            // step through trip points densely enough to land both
            // inside and between the parallel sections
            for k in (0u64..60).chain((60..400).step_by(17)) {
                let budget =
                    SolveBudget::unlimited().with_chaos_trip(k, TruncationReason::Deadline);
                let guard = Guard::new(&budget);
                let gs = solve_guarded(algo, &inst, &guard, &NOOP);
                gs.planning.validate(&inst).unwrap_or_else(|e| {
                    panic!("{algo} tripped at checkpoint {k}: infeasible planning: {e}")
                });
                if gs.outcome.is_complete() {
                    assert_eq!(gs.planning, complete, "{algo} at {k}: complete but different");
                } else {
                    assert!(
                        gs.planning.omega(&inst) <= complete.omega(&inst) + 1e-9,
                        "{algo} at {k}: truncated Ω beats the complete solve"
                    );
                }
            }
        }
    });
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (1usize..40, 1usize..64, 1u32..6, any::<u64>()).prop_map(|(nv, nu, cap, seed)| {
        generate(
            &SyntheticConfig::tiny().with_events(nv).with_users(nu).with_capacity_mean(cap),
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random instances, every paper solver: plannings are identical at
    /// 1, 2 and 8 threads (and so is a local-search polish on top).
    #[test]
    fn solve_is_thread_count_invariant(inst in arb_instance(), ai in 0usize..7) {
        let _g = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let algo = Algorithm::PAPER_SET[ai % Algorithm::PAPER_SET.len()];
        let runs: Vec<Planning> = [1usize, 2, 8]
            .iter()
            .map(|&t| at_threads(t, || {
                let mut p = solve(algo, &inst);
                local_search::improve(&inst, &mut p, 2);
                p
            }))
            .collect();
        prop_assert!(runs[0] == runs[1], "{} differs at 2 threads", algo);
        prop_assert!(runs[0] == runs[2], "{} differs at 8 threads", algo);
    }
}
