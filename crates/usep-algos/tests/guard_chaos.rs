//! Chaos mode: trip the guard at *every* checkpoint a solver ever
//! reaches, and prove the anytime contract each time — the returned
//! planning is constraint-valid, the outcome tag is accurate, and a
//! complete outcome means the planning is the one an unguarded solve
//! produces.

use proptest::prelude::*;
use usep_algos::{solve, solve_guarded, Algorithm, Guard, SolveBudget, TruncationReason};
use usep_core::Instance;
use usep_gen::{generate, SyntheticConfig};
use usep_trace::NOOP;

const INTERRUPTIBLE: [Algorithm; 6] = [
    Algorithm::RatioGreedy,
    Algorithm::DeDP,
    Algorithm::DeDPO,
    Algorithm::DeDPORG,
    Algorithm::DeGreedy,
    Algorithm::DeGreedyRG,
];

/// Recomputes Ω from first principles: per-user schedule utilities,
/// summed. Guards must never leave a planning whose cached structure
/// disagrees with a from-scratch recount.
fn recompute_omega(inst: &Instance, planning: &usep_core::Planning) -> f64 {
    inst.user_ids()
        .map(|u| {
            planning
                .schedule(u)
                .events()
                .iter()
                .map(|&v| inst.mu(v, u))
                .sum::<f64>()
        })
        .sum()
}

/// Runs `algo` with the sentinel budget that counts checkpoints without
/// tripping, returning how many the solver polls on this instance.
fn count_checkpoints(algo: Algorithm, inst: &Instance) -> u64 {
    let budget = SolveBudget::unlimited().with_chaos_trip(u64::MAX, TruncationReason::Deadline);
    let guard = Guard::new(&budget);
    let gs = solve_guarded(algo, inst, &guard, &NOOP);
    assert!(gs.outcome.is_complete(), "{algo}: sentinel must not trip");
    guard.checkpoints()
}

#[test]
fn every_checkpoint_is_a_safe_stopping_point() {
    let inst = generate(&SyntheticConfig::tiny().with_events(5).with_users(8), 77);
    for algo in INTERRUPTIBLE {
        let reference = solve(algo, &inst);
        let total = count_checkpoints(algo, &inst);
        assert!(total > 0, "{algo}: no checkpoints polled — guard not threaded");
        for k in 0..=total {
            let reason = match k % 3 {
                0 => TruncationReason::Deadline,
                1 => TruncationReason::MemoryCeiling,
                _ => TruncationReason::Cancelled,
            };
            let budget = SolveBudget::unlimited().with_chaos_trip(k, reason);
            let guard = Guard::new(&budget);
            let gs = solve_guarded(algo, &inst, &guard, &NOOP);

            gs.planning
                .validate(&inst)
                .unwrap_or_else(|e| panic!("{algo} tripped at {k}/{total}: infeasible: {e}"));
            let omega = gs.planning.omega(&inst);
            let recounted = recompute_omega(&inst, &gs.planning);
            assert!(
                (omega - recounted).abs() < 1e-9,
                "{algo} at {k}: Ω cache {omega} != recount {recounted}"
            );
            // the outcome tag must mirror the guard state exactly
            assert_eq!(gs.outcome.is_complete(), !guard.is_tripped(), "{algo} at {k}");
            if gs.outcome.is_complete() {
                assert_eq!(
                    gs.planning, reference,
                    "{algo} at {k}: complete outcome but planning differs from unguarded"
                );
            } else {
                assert_eq!(gs.outcome.reason(), Some(reason), "{algo} at {k}: wrong reason");
                assert!(
                    omega <= reference.omega(&inst) + 1e-9,
                    "{algo} at {k}: truncated Ω {omega} beats complete Ω"
                );
            }
        }
    }
}

#[test]
fn cancellation_mid_solve_yields_valid_prefix() {
    use usep_algos::CancelToken;
    let inst = generate(&SyntheticConfig::tiny().with_events(8).with_users(20), 5);
    for algo in INTERRUPTIBLE {
        let token = CancelToken::new();
        token.cancel(); // cancelled before the solve even starts
        let budget = SolveBudget::unlimited().with_cancel(token);
        let guard = Guard::new(&budget);
        let gs = solve_guarded(algo, &inst, &guard, &NOOP);
        assert_eq!(gs.outcome.reason(), Some(TruncationReason::Cancelled), "{algo}");
        assert!(gs.planning.validate(&inst).is_ok(), "{algo}");
    }
}

#[test]
fn non_interruptible_solvers_report_complete_under_any_guard() {
    // the default trait path ignores the guard and never lies about it
    let inst = generate(&SyntheticConfig::tiny(), 3);
    for algo in [Algorithm::SingleEventGreedy, Algorithm::UtilityGreedy] {
        let budget = SolveBudget::unlimited().with_chaos_trip(0, TruncationReason::Deadline);
        let guard = Guard::new(&budget);
        let gs = solve_guarded(algo, &inst, &guard, &NOOP);
        assert!(gs.outcome.is_complete(), "{algo}");
        assert_eq!(gs.planning, solve(algo, &inst), "{algo}");
    }
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (1usize..10, 1usize..16, 1u32..6, any::<u64>()).prop_map(|(nv, nu, cap, seed)| {
        generate(
            &SyntheticConfig::tiny().with_events(nv).with_users(nu).with_capacity_mean(cap),
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Guarded solves with a random chaos trip point are always
    /// constraint-valid, their Ω survives recomputation, and the tag is
    /// truthful: complete ⇔ identical to the unguarded planning.
    #[test]
    fn guarded_outputs_always_valid(inst in arb_instance(), k in 0u64..500, ai in 0usize..6) {
        let algo = INTERRUPTIBLE[ai];
        let budget = SolveBudget::unlimited().with_chaos_trip(k, TruncationReason::Deadline);
        let guard = Guard::new(&budget);
        let gs = solve_guarded(algo, &inst, &guard, &NOOP);
        prop_assert!(gs.planning.validate(&inst).is_ok(), "{} at {}", algo, k);
        let omega = gs.planning.omega(&inst);
        let recounted = recompute_omega(&inst, &gs.planning);
        prop_assert!((omega - recounted).abs() < 1e-9);
        if gs.outcome.is_complete() {
            prop_assert_eq!(gs.planning, solve(algo, &inst));
        }
    }

    /// The unguarded path through the guarded machinery (the shared
    /// `Guard::none()`) is bit-for-bit the legacy solve — and the shared
    /// guard never sticks a trip.
    #[test]
    fn unguarded_path_unchanged(inst in arb_instance(), ai in 0usize..6) {
        let algo = INTERRUPTIBLE[ai];
        let gs = solve_guarded(algo, &inst, Guard::none(), &NOOP);
        prop_assert!(gs.outcome.is_complete());
        prop_assert!(!Guard::none().is_tripped());
        prop_assert_eq!(gs.planning, solve(algo, &inst));
    }
}
