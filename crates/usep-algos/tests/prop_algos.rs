//! Property tests over the full algorithm suite, driven by the
//! Table-7 synthetic generator.

use proptest::prelude::*;
use usep_algos::{solve, Algorithm};
use usep_gen::{generate, SyntheticConfig, UtilityDistribution};

fn arb_config() -> impl Strategy<Value = SyntheticConfig> {
    (
        1usize..15,  // events
        1usize..25,  // users
        1u32..8,     // capacity mean
        0u8..=4,     // conflict ratio index
        0u8..3,      // mu distribution
        prop::sample::select(vec![0.5, 1.0, 2.0, 5.0]),
    )
        .prop_map(|(nv, nu, cap, cri, mui, fb)| {
            let cr = [0.0, 0.25, 0.5, 0.75, 1.0][cri as usize];
            let mu = match mui {
                0 => UtilityDistribution::Uniform,
                1 => UtilityDistribution::Normal { mean: 0.5, std: 0.25 },
                _ => UtilityDistribution::Power { exponent: 0.5 },
            };
            SyntheticConfig::tiny()
                .with_events(nv)
                .with_users(nu)
                .with_capacity_mean(cap)
                .with_conflict_ratio(cr)
                .with_budget_factor(fb)
                .with_mu_dist(mu)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every solver returns a planning satisfying all four constraints on
    /// every generated instance.
    #[test]
    fn all_solvers_always_feasible(cfg in arb_config(), seed in any::<u64>()) {
        let inst = generate(&cfg, seed);
        for a in Algorithm::PAPER_SET {
            let p = solve(a, &inst);
            if let Err(e) = p.validate(&inst) {
                prop_assert!(false, "{} infeasible: {}", a, e);
            }
        }
    }

    /// The optimized DeDPO is plan-for-plan identical to the literal
    /// DeDP (Lemma 2).
    #[test]
    fn dedp_equals_dedpo(cfg in arb_config(), seed in any::<u64>()) {
        let inst = generate(&cfg, seed);
        prop_assert_eq!(solve(Algorithm::DeDP, &inst), solve(Algorithm::DeDPO, &inst));
    }

    /// The +RG pass never loses utility, and never breaks feasibility.
    #[test]
    fn rg_augmentation_monotone(cfg in arb_config(), seed in any::<u64>()) {
        let inst = generate(&cfg, seed);
        let d = solve(Algorithm::DeGreedy, &inst).omega(&inst);
        let drg = solve(Algorithm::DeGreedyRG, &inst).omega(&inst);
        prop_assert!(drg >= d - 1e-9, "DeGreedy+RG {} < DeGreedy {}", drg, d);
        let o = solve(Algorithm::DeDPO, &inst).omega(&inst);
        let org = solve(Algorithm::DeDPORG, &inst).omega(&inst);
        prop_assert!(org >= o - 1e-9, "DeDPO+RG {} < DeDPO {}", org, o);
    }

    /// Ω is bounded by the total utility mass, and non-negative.
    #[test]
    fn omega_bounds(cfg in arb_config(), seed in any::<u64>()) {
        let inst = generate(&cfg, seed);
        let mass = inst.total_utility_mass();
        for a in Algorithm::PAPER_SET {
            let o = solve(a, &inst).omega(&inst);
            prop_assert!((0.0..=mass + 1e-6).contains(&o), "{}: Ω = {}", a, o);
        }
    }

    /// With conflict ratio 1 every user attends at most one event.
    #[test]
    fn full_conflict_means_singleton_schedules(
        nv in 1usize..10,
        nu in 1usize..15,
        seed in any::<u64>(),
    ) {
        let cfg = SyntheticConfig::tiny().with_events(nv).with_users(nu).with_conflict_ratio(1.0);
        let inst = generate(&cfg, seed);
        for a in Algorithm::PAPER_SET {
            let p = solve(a, &inst);
            for u in inst.user_ids() {
                prop_assert!(p.schedule(u).len() <= 1, "{}: multi-event under cr=1", a);
            }
        }
    }

    /// Capacity-1 instances never assign an event twice.
    #[test]
    fn unit_capacities_respected(nv in 1usize..8, nu in 2usize..12, seed in any::<u64>()) {
        let cfg = SyntheticConfig::tiny().with_events(nv).with_users(nu).with_capacity_mean(1);
        let inst = generate(&cfg, seed);
        for a in Algorithm::PAPER_SET {
            let p = solve(a, &inst);
            for v in inst.event_ids() {
                prop_assert!(p.load(v) <= 1);
            }
        }
    }

    /// Local search keeps any solver's planning feasible and never
    /// reduces Ω, and the relaxation bound dominates everything.
    #[test]
    fn local_search_and_bounds_invariants(cfg in arb_config(), seed in any::<u64>()) {
        let inst = generate(&cfg, seed);
        let ub = usep_algos::bounds::best_upper_bound(&inst);
        for a in [Algorithm::RatioGreedy, Algorithm::DeGreedy, Algorithm::DeDPO] {
            let mut p = solve(a, &inst);
            let before = p.omega(&inst);
            prop_assert!(before <= ub + 1e-6, "{}: Ω {} > bound {}", a, before, ub);
            usep_algos::local_search::improve(&inst, &mut p, 3);
            prop_assert!(p.validate(&inst).is_ok(), "{} + LS infeasible", a);
            prop_assert!(p.omega(&inst) >= before - 1e-9);
            prop_assert!(p.omega(&inst) <= ub + 1e-6);
        }
    }

    /// The max-min solver is feasible and never serves fewer users than
    /// zero... more usefully: its minimum served utility is achieved by
    /// assignments that all respect the constraints.
    #[test]
    fn maxmin_feasibility(cfg in arb_config(), seed in any::<u64>()) {
        use usep_algos::{MaxMinGreedy, Solver};
        let inst = generate(&cfg, seed);
        let p = MaxMinGreedy.solve(&inst);
        prop_assert!(p.validate(&inst).is_ok());
        // water-filling is maximal: no user can still be improved
        for u in inst.user_ids() {
            for v in inst.event_ids() {
                prop_assert!(
                    !p.can_assign(&inst, u, v),
                    "maxmin left an assignable pair ({v}, {u})"
                );
            }
        }
    }
}
