//! Every paper algorithm must report its work through `solve_with_probe`:
//! identical plannings to `solve`, plus non-zero counters in the
//! registry entries its complexity model is stated in.

use usep_algos::{solve, solve_with_probe, Algorithm, Counter, TraceSink};
use usep_gen::{generate, SyntheticConfig};

#[test]
fn paper_algorithms_report_nonzero_counters_and_identical_plannings() {
    let inst = generate(&SyntheticConfig::tiny(), 7);
    for a in Algorithm::PAPER_SET {
        let sink = TraceSink::new();
        let traced = solve_with_probe(a, &inst, &sink);
        assert_eq!(traced, solve(a, &inst), "{a}: the probe must not steer the planning");
        let total: u64 = sink.counters().iter().map(|&(_, v)| v).sum();
        assert!(total > 0, "{a} reported no counter activity at all");

        match a {
            Algorithm::RatioGreedy => {
                assert!(sink.counter(Counter::HeapPush) > 0, "{a}: no heap pushes");
                assert!(sink.counter(Counter::CandidateRefreshEvent) > 0);
                assert!(sink.counter(Counter::CandidateRefreshUser) > 0);
            }
            Algorithm::DeDP => {
                assert!(sink.counter(Counter::PseudoMatrixBytes) > 0, "{a}: matrix unreported");
                assert!(sink.counter(Counter::DpCellVisit) > 0, "{a}: no DP cells");
            }
            Algorithm::DeDPO | Algorithm::DeDPORG => {
                assert!(sink.counter(Counter::DpCellVisit) > 0, "{a}: no DP cells");
                assert_eq!(sink.counter(Counter::PseudoMatrixBytes), 0, "{a} has no matrix");
            }
            Algorithm::DeGreedy | Algorithm::DeGreedyRG => {
                assert!(sink.counter(Counter::HeapPush) > 0, "{a}: no heap pushes");
                assert!(sink.counter(Counter::DpCellVisit) == 0, "{a} runs no DP");
            }
            _ => unreachable!("not in PAPER_SET"),
        }

        let spans = sink.span_totals();
        let has_augment = spans.iter().any(|t| t.name == "augment_rg");
        let wants_augment = matches!(a, Algorithm::DeDPORG | Algorithm::DeGreedyRG);
        assert_eq!(has_augment, wants_augment, "{a}: augment_rg span mismatch");
    }
}

#[test]
fn dedp_and_dedpo_report_identical_dp_work() {
    // Lemma 2: same candidate sets per user, hence byte-identical DP
    // traffic between the literal-matrix and select-array variants.
    let inst = generate(&SyntheticConfig::tiny().with_users(15), 3);
    let (a, b) = (TraceSink::new(), TraceSink::new());
    let pa = solve_with_probe(Algorithm::DeDP, &inst, &a);
    let pb = solve_with_probe(Algorithm::DeDPO, &inst, &b);
    assert_eq!(pa, pb);
    assert_eq!(a.counter(Counter::DpCellVisit), b.counter(Counter::DpCellVisit));
    assert_eq!(a.counter(Counter::DpCellPruned), b.counter(Counter::DpCellPruned));
}
