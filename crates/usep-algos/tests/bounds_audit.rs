//! Soundness audit of the relaxation bounds against the exhaustive
//! optimum: on 200 seeded small instances, `capacity_relaxed_bound`
//! (and the budget relaxation) must always sit at or above `OPT`. A
//! bound below the optimum would silently corrupt every "% of optimal"
//! figure the experiments and the verification oracle report.

use usep_algos::{bounds, exact};
use usep_gen::{generate, SyntheticConfig};

/// Float slack: both sides sum the same `f32` utilities as `f64`, so
/// only association noise can separate them.
const EPS: f64 = 1e-9;

#[test]
fn capacity_relaxed_bound_upper_bounds_exact_on_200_seeds() {
    let mut checked = 0;
    for seed in 0..200u64 {
        // rotate through small shapes (all within the exact solver's
        // caps), including full-conflict instances where the capacity
        // relaxation is loosest
        let cfg = match seed % 4 {
            0 => SyntheticConfig::tiny().with_events(4).with_users(3).with_capacity_mean(2),
            1 => SyntheticConfig::tiny().with_events(5).with_users(4).with_capacity_mean(2),
            2 => SyntheticConfig::tiny().with_events(6).with_users(5).with_capacity_mean(3),
            _ => SyntheticConfig::tiny()
                .with_events(6)
                .with_users(4)
                .with_capacity_mean(1)
                .with_conflict_ratio(1.0),
        };
        let inst = generate(&cfg, seed);
        let (_, opt) = exact::optimal_planning(&inst);
        let cap = bounds::capacity_relaxed_bound(&inst);
        assert!(
            cap >= opt - EPS,
            "seed {seed}: capacity-relaxed bound {cap} below OPT {opt}"
        );
        let bud = bounds::budget_relaxed_bound(&inst);
        assert!(
            bud >= opt - EPS,
            "seed {seed}: budget-relaxed bound {bud} below OPT {opt}"
        );
        checked += 1;
    }
    assert_eq!(checked, 200);
}
