//! Planning algorithms for the USEP problem (She, Tong, Chen — SIGMOD 2015).
//!
//! The paper proposes one heuristic and a two-step approximation
//! framework, all implemented here:
//!
//! | Algorithm | Paper | Guarantee | Notes |
//! |-----------|-------|-----------|-------|
//! | [`RatioGreedy`] | Alg. 1 | none | global utility/cost-ratio greedy over event-user pairs |
//! | [`DeDP`] | Alg. 2+3 | ½-approx | decomposed dynamic programming; stores the full `μ^r` pseudo-event matrix (memory-hungry, kept literal on purpose) |
//! | [`DeDPO`] | Alg. 4 | ½-approx | DeDP with the `select` array of Lemma 2 — identical output, much less memory |
//! | [`DeDPO`]`+RG` | §4.3.2 | ½-approx | DeDPO followed by a RatioGreedy pass over residual capacity |
//! | [`DeGreedy`] | Alg. 5 | none | the two-step framework with a per-user greedy instead of the DP |
//! | [`DeGreedy`]`+RG` | §4.4 | none | DeGreedy plus the RatioGreedy pass |
//!
//! All solvers are deterministic and return feasible plannings
//! (`Planning::validate` always passes on their output).
//!
//! The [`exact`] module hosts brute-force reference solvers used by the
//! test suite to verify optimality of the per-user DP and the
//! ½-approximation bound, and [`baseline`] a single-event-per-user
//! assignment in the spirit of the SEO problem the paper contrasts with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod baseline;
pub mod bounds;
pub mod dedp;
pub mod degreedy;
pub mod exact;
pub mod guarded;
pub mod local_search;
pub mod maxmin;
pub mod ratio_greedy;

pub use augment::{augment_events_with_ratio_greedy, augment_with_ratio_greedy};
pub use baseline::{SingleEventGreedy, UtilityGreedy};
pub use bounds::best_upper_bound;
pub use dedp::{optimal_user_schedule, DeDP, DeDPO};
pub use degreedy::DeGreedy;
pub use guarded::{GuardedReport, GuardedSolver};
pub use local_search::WithLocalSearch;
pub use maxmin::MaxMinGreedy;
pub use ratio_greedy::RatioGreedy;

use usep_core::{Instance, Planning};
pub use usep_guard::{CancelToken, Guard, SolveBudget, SolveOutcome, TruncationReason};
pub use usep_trace::{Counter, NoopProbe, Probe, TraceSink, NOOP};

/// The result of a budget-supervised solve: the planning (always
/// constraint-valid, possibly a prefix of the unguarded result) plus
/// the [`SolveOutcome`] tag saying whether the budget cut it short.
#[derive(Debug)]
pub struct GuardedSolve {
    /// The planning built before the guard tripped (or the complete
    /// planning when it never did).
    pub planning: Planning,
    /// Whether the solve ran to its natural end.
    pub outcome: SolveOutcome,
}

/// Reads the final outcome off `guard` and mirrors a truncation into
/// the matching trace counter. Solvers call this once, on exit from
/// their guarded path.
pub(crate) fn finish_guarded(guard: &Guard, probe: &dyn Probe) -> SolveOutcome {
    let outcome = guard.outcome();
    if let Some(reason) = outcome.reason() {
        let counter = match reason {
            TruncationReason::Deadline => Counter::GuardDeadlineTrip,
            TruncationReason::MemoryCeiling => Counter::GuardMemoryTrip,
            TruncationReason::Cancelled => Counter::GuardCancelTrip,
        };
        probe.count(counter, 1);
    }
    outcome
}

/// A USEP planning algorithm: takes an instance, returns a feasible
/// planning.
///
/// `solve` and `solve_with_probe` default to each other (like
/// `PartialEq::eq`/`ne`): instrumented solvers implement
/// `solve_with_probe` and get `solve` for free, plain solvers implement
/// `solve` and silently ignore any probe. Implement at least one.
pub trait Solver {
    /// Short display name (matches the paper's figure legends).
    fn name(&self) -> &'static str;

    /// Computes a feasible planning for `inst`.
    fn solve(&self, inst: &Instance) -> Planning {
        self.solve_with_probe(inst, &NOOP)
    }

    /// Computes a feasible planning, reporting counters, spans and
    /// histogram observations through `probe` along the way. The planning
    /// returned is identical to [`Solver::solve`]'s — probes observe,
    /// they never steer.
    fn solve_with_probe(&self, inst: &Instance, probe: &dyn Probe) -> Planning {
        let _ = probe;
        self.solve(inst)
    }

    /// Computes a planning under the supervision of `guard`, stopping
    /// at the next checkpoint once the guard trips and returning the
    /// best-so-far **constraint-valid** planning tagged with the
    /// outcome.
    ///
    /// The default ignores the guard and reports
    /// [`SolveOutcome::Complete`] — correct for solvers whose work is
    /// not anytime-shaped (exact search, one-shot baselines). The
    /// interruptible solvers ([`RatioGreedy`], [`DeDP`], [`DeDPO`],
    /// [`DeGreedy`]) override it and poll the guard from their hot
    /// loops.
    fn solve_guarded(&self, inst: &Instance, guard: &Guard, probe: &dyn Probe) -> GuardedSolve {
        let _ = guard;
        GuardedSolve {
            planning: self.solve_with_probe(inst, probe),
            outcome: SolveOutcome::Complete,
        }
    }
}

/// The six algorithms evaluated in the paper's experiments, plus two
/// baselines: the single-event (SEO-style) assignment the paper argues
/// against, and the utility-only greedy that ablates Eq. (2)'s
/// `inc_cost` denominator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Alg. 1 — global ratio-greedy heuristic.
    RatioGreedy,
    /// Alg. 3 — decomposed DP with the literal `μ^r` matrix.
    DeDP,
    /// Alg. 4 — decomposed DP with the `select` array.
    DeDPO,
    /// DeDPO followed by the RatioGreedy augmentation pass.
    DeDPORG,
    /// Two-step framework with the per-user greedy (Alg. 5).
    DeGreedy,
    /// DeGreedy followed by the RatioGreedy augmentation pass.
    DeGreedyRG,
    /// One event per user, by descending utility (SEO-style comparison
    /// baseline; not part of the paper's six).
    SingleEventGreedy,
    /// Multi-event greedy by utility alone — the Eq. (2) ablation
    /// (RatioGreedy without the `inc_cost` denominator).
    UtilityGreedy,
}

impl Algorithm {
    /// The six algorithms of the paper's evaluation, in legend order.
    pub const PAPER_SET: [Algorithm; 6] = [
        Algorithm::RatioGreedy,
        Algorithm::DeDP,
        Algorithm::DeDPO,
        Algorithm::DeDPORG,
        Algorithm::DeGreedy,
        Algorithm::DeGreedyRG,
    ];

    /// The scalable subset used in the paper's Figure 4 (DeDP is excluded
    /// there for its memory footprint).
    pub const SCALABLE_SET: [Algorithm; 5] = [
        Algorithm::RatioGreedy,
        Algorithm::DeDPO,
        Algorithm::DeDPORG,
        Algorithm::DeGreedy,
        Algorithm::DeGreedyRG,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::RatioGreedy => "RatioGreedy",
            Algorithm::DeDP => "DeDP",
            Algorithm::DeDPO => "DeDPO",
            Algorithm::DeDPORG => "DeDPO+RG",
            Algorithm::DeGreedy => "DeGreedy",
            Algorithm::DeGreedyRG => "DeGreedy+RG",
            Algorithm::SingleEventGreedy => "SingleEvent",
            Algorithm::UtilityGreedy => "UtilityGreedy",
        }
    }

    /// Parses a figure-legend name (case-insensitive, `+rg` suffixes
    /// accepted).
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s.to_ascii_lowercase().as_str() {
            "ratiogreedy" | "rg" => Some(Algorithm::RatioGreedy),
            "dedp" => Some(Algorithm::DeDP),
            "dedpo" => Some(Algorithm::DeDPO),
            "dedpo+rg" | "dedporg" => Some(Algorithm::DeDPORG),
            "degreedy" => Some(Algorithm::DeGreedy),
            "degreedy+rg" | "degreedyrg" => Some(Algorithm::DeGreedyRG),
            "singleevent" | "baseline" => Some(Algorithm::SingleEventGreedy),
            "utilitygreedy" => Some(Algorithm::UtilityGreedy),
            _ => None,
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs `algorithm` on `inst`.
pub fn solve(algorithm: Algorithm, inst: &Instance) -> Planning {
    solve_with_probe(algorithm, inst, &NOOP)
}

/// Runs `algorithm` on `inst`, reporting instrumentation through
/// `probe` (see the `usep-trace` crate). With [`NOOP`] this is exactly
/// [`solve`].
pub fn solve_with_probe(algorithm: Algorithm, inst: &Instance, probe: &dyn Probe) -> Planning {
    match algorithm {
        Algorithm::RatioGreedy => RatioGreedy.solve_with_probe(inst, probe),
        Algorithm::DeDP => DeDP::new().solve_with_probe(inst, probe),
        Algorithm::DeDPO => DeDPO::new().solve_with_probe(inst, probe),
        Algorithm::DeDPORG => DeDPO::new().with_augment().solve_with_probe(inst, probe),
        Algorithm::DeGreedy => DeGreedy::new().solve_with_probe(inst, probe),
        Algorithm::DeGreedyRG => DeGreedy::new().with_augment().solve_with_probe(inst, probe),
        Algorithm::SingleEventGreedy => SingleEventGreedy.solve_with_probe(inst, probe),
        Algorithm::UtilityGreedy => UtilityGreedy.solve_with_probe(inst, probe),
    }
}

/// Runs `algorithm` on `inst` under `guard`, dispatching to the
/// solver's [`Solver::solve_guarded`] implementation. For fallback
/// orchestration on top of this, see [`GuardedSolver`].
pub fn solve_guarded(
    algorithm: Algorithm,
    inst: &Instance,
    guard: &Guard,
    probe: &dyn Probe,
) -> GuardedSolve {
    match algorithm {
        Algorithm::RatioGreedy => RatioGreedy.solve_guarded(inst, guard, probe),
        Algorithm::DeDP => DeDP::new().solve_guarded(inst, guard, probe),
        Algorithm::DeDPO => DeDPO::new().solve_guarded(inst, guard, probe),
        Algorithm::DeDPORG => DeDPO::new().with_augment().solve_guarded(inst, guard, probe),
        Algorithm::DeGreedy => DeGreedy::new().solve_guarded(inst, guard, probe),
        Algorithm::DeGreedyRG => DeGreedy::new().with_augment().solve_guarded(inst, guard, probe),
        Algorithm::SingleEventGreedy => SingleEventGreedy.solve_guarded(inst, guard, probe),
        Algorithm::UtilityGreedy => UtilityGreedy.solve_guarded(inst, guard, probe),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names_roundtrip_through_parse() {
        for a in Algorithm::PAPER_SET {
            assert_eq!(Algorithm::parse(a.name()), Some(a));
        }
        assert_eq!(Algorithm::parse("baseline"), Some(Algorithm::SingleEventGreedy));
        assert_eq!(Algorithm::parse("nope"), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Algorithm::DeDPORG.to_string(), "DeDPO+RG");
    }
}
