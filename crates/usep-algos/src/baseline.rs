//! Single-event-per-user baseline.
//!
//! The paper motivates USEP against prior event-organization work
//! (\[19\]'s SEO and \[26\]) that assigns **at most one event per user** and
//! ignores travel between events. This baseline reproduces that regime
//! inside our constraint model: pairs are taken by descending utility
//! (ties by cheaper round trip, then ids), each user receives at most one
//! event, and the round trip must fit the budget. Comparing its Ω against
//! the USEP algorithms quantifies the value of multi-event planning.

use crate::Solver;
use usep_core::{EventId, Instance, Planning, UserId};

/// Greedy one-event-per-user assignment (SEO-style comparison baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct SingleEventGreedy;

impl Solver for SingleEventGreedy {
    fn name(&self) -> &'static str {
        "SingleEvent"
    }

    fn solve(&self, inst: &Instance) -> Planning {
        let mut pairs: Vec<(EventId, UserId)> = Vec::new();
        for u in inst.user_ids() {
            for v in inst.event_ids() {
                if inst.mu(v, u) > 0.0 && inst.round_trip(u, v) <= inst.user(u).budget {
                    pairs.push((v, u));
                }
            }
        }
        pairs.sort_by(|&(v1, u1), &(v2, u2)| {
            inst.mu(v2, u2)
                .total_cmp(&inst.mu(v1, u1))
                .then_with(|| inst.round_trip(u1, v1).cmp(&inst.round_trip(u2, v2)))
                .then_with(|| (v1, u1).cmp(&(v2, u2)))
        });
        let mut planning = Planning::empty(inst);
        let mut user_served = vec![false; inst.num_users()];
        for (v, u) in pairs {
            if user_served[u.index()] || planning.remaining_capacity(inst, v) == 0 {
                continue;
            }
            planning.assign(inst, u, v).expect("validated single-event assignment");
            user_served[u.index()] = true;
        }
        planning
    }
}

/// Multi-event global greedy by **utility alone** — RatioGreedy without
/// the denominator. An ablation of Eq. (2): comparing it against
/// RatioGreedy isolates how much the `inc_cost` term contributes.
/// Budget-blind ranking spends travel budget on far-away high-μ events,
/// crowding out cheap follow-ups.
#[derive(Clone, Copy, Debug, Default)]
pub struct UtilityGreedy;

impl Solver for UtilityGreedy {
    fn name(&self) -> &'static str {
        "UtilityGreedy"
    }

    fn solve(&self, inst: &Instance) -> Planning {
        let mut pairs: Vec<(EventId, UserId)> = Vec::new();
        for u in inst.user_ids() {
            for v in inst.event_ids() {
                if inst.mu(v, u) > 0.0 && inst.round_trip(u, v) <= inst.user(u).budget {
                    pairs.push((v, u));
                }
            }
        }
        pairs.sort_by(|&(v1, u1), &(v2, u2)| {
            inst.mu(v2, u2)
                .total_cmp(&inst.mu(v1, u1))
                .then_with(|| (v1, u1).cmp(&(v2, u2)))
        });
        let mut planning = Planning::empty(inst);
        for (v, u) in pairs {
            // best-effort insertion in utility order, all constraints on
            let _ = planning.assign(inst, u, v);
        }
        planning
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeDPO, Solver};
    use usep_core::{Cost, InstanceBuilder, Point, TimeInterval};

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    #[test]
    fn one_event_per_user() {
        let mut b = InstanceBuilder::new();
        let v0 = b.event(5, Point::new(1, 0), iv(0, 10));
        let v1 = b.event(5, Point::new(2, 0), iv(10, 20));
        let u0 = b.user(Point::ORIGIN, Cost::new(50));
        let u1 = b.user(Point::ORIGIN, Cost::new(50));
        for &u in &[u0, u1] {
            b.utility(v0, u, 0.9);
            b.utility(v1, u, 0.8);
        }
        let inst = b.build().unwrap();
        let p = SingleEventGreedy.solve(&inst);
        assert!(p.validate(&inst).is_ok());
        assert_eq!(p.schedule(u0).len(), 1);
        assert_eq!(p.schedule(u1).len(), 1);
        // both take the higher-utility event (capacity allows)
        assert_eq!(p.load(v0), 2);
    }

    #[test]
    fn capacity_pushes_user_to_next_choice() {
        let mut b = InstanceBuilder::new();
        let v0 = b.event(1, Point::ORIGIN, iv(0, 10));
        let v1 = b.event(1, Point::ORIGIN, iv(10, 20));
        let u0 = b.user(Point::ORIGIN, Cost::new(50));
        let u1 = b.user(Point::ORIGIN, Cost::new(50));
        b.utility(v0, u0, 0.9);
        b.utility(v1, u0, 0.1);
        b.utility(v0, u1, 0.8);
        b.utility(v1, u1, 0.7);
        let inst = b.build().unwrap();
        let p = SingleEventGreedy.solve(&inst);
        assert_eq!(p.schedule(u0).events(), &[v0]);
        assert_eq!(p.schedule(u1).events(), &[v1]);
    }

    #[test]
    fn multi_event_planning_beats_baseline() {
        // plenty of compatible events: USEP algorithms should clearly win
        let mut b = InstanceBuilder::new();
        let mut vs = Vec::new();
        for i in 0..4i32 {
            vs.push(b.event(2, Point::new(i, 0), iv(i64::from(i) * 10, i64::from(i) * 10 + 9)));
        }
        let u0 = b.user(Point::ORIGIN, Cost::new(100));
        let u1 = b.user(Point::new(3, 0), Cost::new(100));
        for &v in &vs {
            b.utility(v, u0, 0.5);
            b.utility(v, u1, 0.5);
        }
        let inst = b.build().unwrap();
        let single = SingleEventGreedy.solve(&inst).omega(&inst);
        let multi = DeDPO::new().solve(&inst).omega(&inst);
        assert!(multi > single, "multi {multi} vs single {single}");
    }

    #[test]
    fn budget_excludes_far_events() {
        let mut b = InstanceBuilder::new();
        let v = b.event(1, Point::new(100, 0), iv(0, 10));
        let u = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(v, u, 1.0);
        let inst = b.build().unwrap();
        let p = SingleEventGreedy.solve(&inst);
        assert_eq!(p.num_assignments(), 0);
    }

    #[test]
    fn utility_greedy_is_feasible_and_multi_event() {
        let mut b = InstanceBuilder::new();
        let v0 = b.event(2, Point::new(1, 0), iv(0, 10));
        let v1 = b.event(2, Point::new(2, 0), iv(10, 20));
        let u = b.user(Point::ORIGIN, Cost::new(20));
        b.utility(v0, u, 0.5);
        b.utility(v1, u, 0.6);
        let inst = b.build().unwrap();
        let p = UtilityGreedy.solve(&inst);
        p.validate(&inst).unwrap();
        assert_eq!(p.schedule(u).len(), 2);
    }

    #[test]
    fn ratio_denominator_matters() {
        // the Eq. (2) ablation: the high-μ event A eats the whole budget,
        // so utility-blind greedy strands the user; the ratio sends them
        // to two cheap events worth more in total
        let mut b = InstanceBuilder::new();
        let a = b.event(1, Point::new(5, 0), iv(0, 10)); // μ .9, round trip 10
        let bb = b.event(1, Point::new(1, 0), iv(0, 10)); // μ .5, conflicts with a
        let c = b.event(1, Point::new(0, 1), iv(10, 20)); // μ .5
        let u = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(a, u, 0.9);
        b.utility(bb, u, 0.5);
        b.utility(c, u, 0.5);
        let inst = b.build().unwrap();
        let ug = UtilityGreedy.solve(&inst);
        let rg = crate::RatioGreedy.solve(&inst);
        assert_eq!(ug.schedule(u).events(), &[a], "utility-first takes the budget hog");
        assert_eq!(rg.schedule(u).events(), &[bb, c], "ratio prefers two cheap events");
        assert!(rg.omega(&inst) > ug.omega(&inst));
    }

    #[test]
    fn utility_greedy_deterministic() {
        let mut b = InstanceBuilder::new();
        for i in 0..4i32 {
            b.event(2, Point::new(i, 0), iv(i64::from(i) * 10, i64::from(i) * 10 + 9));
        }
        for j in 0..3i32 {
            b.user(Point::new(j, 1), Cost::new(25));
        }
        for v in 0..4u32 {
            for u in 0..3u32 {
                b.utility(EventId(v), UserId(u), ((v * 3 + u) % 5 + 1) as f64 / 5.0);
            }
        }
        let inst = b.build().unwrap();
        assert_eq!(UtilityGreedy.solve(&inst), UtilityGreedy.solve(&inst));
    }
}
