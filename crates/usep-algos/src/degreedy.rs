//! DeGreedy (Algorithm 5): the two-step framework with `GreedySingle`.
//!
//! DeGreedy keeps the decomposition and `select`-array machinery of
//! [`DeDPO`](crate::DeDPO) but replaces the `O(|V'_r|² b_u)` dynamic
//! program with a `O(|V'_r|²)` ratio-greedy per-user subroutine: events
//! are repeatedly inserted by descending `μ / inc_cost` ratio. The heap
//! `H` holds at most one candidate per *gap region* — the stretch of the
//! end-time order between two consecutively scheduled events — which is
//! exactly the set whose incremental costs an insertion can change
//! (Lemma 3). No approximation guarantee, but much faster and usually
//! within a few percent of DeDPO (cf. Figures 2–4).
//!
//! One deviation from the printed pseudo-code, recorded in DESIGN.md: an
//! insertion shrinks the remaining budget, which can invalidate a heap
//! candidate from a *different* region (whose `inc_cost` is unchanged).
//! We therefore re-check the budget on pop; a stale candidate triggers a
//! rescan of its region for the best still-affordable event. This is
//! strictly safer and preserves the complexity bound.

use crate::augment::augment_with_ratio_greedy_guarded;
use crate::dedp::{decomposed_with_select, Candidate, SingleScheduler};
use crate::{finish_guarded, GuardedSolve, Solver};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use usep_core::{CoreView, Cost, Instance, Planning, Schedule, UserId};
use usep_guard::Guard;
use usep_trace::{Counter, Probe};

/// DeGreedy (Alg. 5). `with_augment()` yields the paper's DeGreedy+RG.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeGreedy {
    augment: bool,
}

impl DeGreedy {
    /// Plain DeGreedy.
    pub fn new() -> DeGreedy {
        DeGreedy { augment: false }
    }

    /// DeGreedy followed by the RatioGreedy pass over residual capacity
    /// (§4.4) — the paper's DeGreedy+RG.
    pub fn with_augment(self) -> DeGreedy {
        DeGreedy { augment: true }
    }
}

impl Solver for DeGreedy {
    fn name(&self) -> &'static str {
        if self.augment {
            "DeGreedy+RG"
        } else {
            "DeGreedy"
        }
    }

    fn solve_with_probe(&self, inst: &Instance, probe: &dyn Probe) -> Planning {
        self.solve_guarded(inst, Guard::none(), probe).planning
    }

    fn solve_guarded(&self, inst: &Instance, guard: &Guard, probe: &dyn Probe) -> GuardedSolve {
        // view choice is made once per solve, on the calling thread
        let mut scheduler = GreedyScheduler { probe, guard };
        let mut planning = if usep_core::object_path_forced() {
            decomposed_with_select(inst, inst, &mut scheduler, guard, probe)
        } else {
            let flat = inst.freeze();
            decomposed_with_select(inst, &*flat, &mut scheduler, guard, probe)
        };
        if self.augment && !guard.is_tripped() {
            augment_with_ratio_greedy_guarded(inst, &mut planning, guard, probe);
        }
        GuardedSolve { planning, outcome: finish_guarded(guard, probe) }
    }
}

/// `GreedySingle` as a [`SingleScheduler`] plug-in for the decomposed
/// framework.
pub(crate) struct GreedyScheduler<'p> {
    probe: &'p dyn Probe,
    guard: &'p Guard,
}

impl SingleScheduler for GreedyScheduler<'_> {
    fn schedule<V: CoreView>(&mut self, view: &V, u: UserId, cands: &[Candidate]) -> Vec<usize> {
        greedy_single_guarded(view, u, cands, self.guard, self.probe)
    }
}

/// A heap entry: the best valid candidate of the gap region
/// `[lo, hi]` (inclusive candidate-index bounds).
#[derive(Clone, Copy, Debug)]
struct GapCand {
    ratio: f64,
    inc: Cost,
    idx: usize,
    lo: usize,
    hi: usize,
}

impl PartialEq for GapCand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for GapCand {}
impl Ord for GapCand {
    /// Ratio descending, then inc ascending, then index ascending.
    fn cmp(&self, other: &Self) -> Ordering {
        self.ratio
            .total_cmp(&other.ratio)
            .then_with(|| other.inc.cmp(&self.inc))
            .then_with(|| other.idx.cmp(&self.idx))
    }
}
impl PartialOrd for GapCand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// `GreedySingle` (Alg. 5) for user `u` over candidates in end-time
/// order (decomposed utilities positive, Lemma 1 pre-applied). Returns
/// chosen candidate indices in time order.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn greedy_single<V: CoreView>(
    view: &V,
    u: UserId,
    cands: &[Candidate],
    probe: &dyn Probe,
) -> Vec<usize> {
    greedy_single_guarded(view, u, cands, Guard::none(), probe)
}

/// [`greedy_single`] polling `guard` once per heap pop; the chosen
/// prefix at any stop is a feasible schedule.
pub(crate) fn greedy_single_guarded<V: CoreView>(
    view: &V,
    u: UserId,
    cands: &[Candidate],
    guard: &Guard,
    probe: &dyn Probe,
) -> Vec<usize> {
    let m = cands.len();
    if m == 0 {
        return Vec::new();
    }
    let budget = view.budget(u);
    let mut sched = Schedule::new();
    let mut chosen: Vec<usize> = Vec::new(); // ascending candidate indices
    let mut total = Cost::ZERO;
    let mut heap: BinaryHeap<GapCand> = BinaryHeap::new();

    // the best valid candidate within region [lo, hi] against the current
    // schedule
    let scan = |sched: &Schedule, total: Cost, lo: usize, hi: usize| -> Option<GapCand> {
        let mut best: Option<GapCand> = None;
        let hi = hi.min(m - 1);
        for (off, c) in cands[lo..=hi].iter().enumerate() {
            let Some(pos) = sched.insertion_point(view, c.v) else {
                continue;
            };
            let inc = sched.inc_cost_at(view, u, c.v, pos);
            if inc.is_infinite() || total.add(inc) > budget {
                if !inc.is_infinite() {
                    probe.count(Counter::BudgetReject, 1);
                }
                continue;
            }
            let ratio = if inc == Cost::ZERO { f64::INFINITY } else { c.mu / inc.as_f64() };
            let entry = GapCand { ratio, inc, idx: lo + off, lo, hi };
            if best.is_none_or(|b| entry > b) {
                best = Some(entry);
            }
        }
        best
    };

    if let Some(first) = scan(&sched, total, 0, m - 1) {
        probe.count(Counter::HeapPush, 1);
        heap.push(first);
    }
    while let Some(c) = heap.pop() {
        if guard.checkpoint() {
            break;
        }
        probe.count(Counter::HeapPop, 1);
        // re-validate against the *current* budget: an insertion into a
        // different region may have consumed it (inc is still exact — the
        // entry's own region cannot have changed while it sat in H)
        let Some(pos) = sched.insertion_point(view, cands[c.idx].v) else {
            debug_assert!(false, "region invariant violated: position vanished");
            continue;
        };
        let inc = sched.inc_cost_at(view, u, cands[c.idx].v, pos);
        debug_assert_eq!(inc, c.inc, "inc went stale inside an untouched region");
        if inc.is_infinite() || total.add(inc) > budget {
            probe.count(Counter::HeapPopStale, 1);
            // stale by budget: replace with the region's best affordable
            if let Some(repl) = scan(&sched, total, c.lo, c.hi) {
                probe.count(Counter::HeapPush, 1);
                heap.push(repl);
            }
            continue;
        }
        sched
            .try_insert(view, u, cands[c.idx].v)
            .expect("validated insertion");
        total = total.add(inc);
        let at = chosen.partition_point(|&x| x < c.idx);
        chosen.insert(at, c.idx);
        // split the region around the inserted candidate (lines 8-17)
        if c.idx > c.lo {
            if let Some(left) = scan(&sched, total, c.lo, c.idx - 1) {
                probe.count(Counter::HeapPush, 1);
                heap.push(left);
            }
        }
        if c.idx < c.hi {
            if let Some(right) = scan(&sched, total, c.idx + 1, c.hi) {
                probe.count(Counter::HeapPush, 1);
                heap.push(right);
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_core::{EventId, InstanceBuilder, Point, TimeInterval};
    use usep_trace::NOOP;

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    fn cand(v: EventId, mu: f64) -> Candidate {
        Candidate { v, slot: 0, mu }
    }

    #[test]
    fn empty_candidates() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 1));
        let u = b.user(Point::ORIGIN, Cost::new(10));
        let inst = b.build().unwrap();
        assert!(greedy_single(&inst, u, &[], &NOOP).is_empty());
    }

    #[test]
    fn takes_all_compatible_affordable_events() {
        let mut b = InstanceBuilder::new();
        let v0 = b.event(1, Point::new(1, 0), iv(0, 10));
        let v1 = b.event(1, Point::new(2, 0), iv(10, 20));
        let v2 = b.event(1, Point::new(3, 0), iv(20, 30));
        let u = b.user(Point::ORIGIN, Cost::new(50));
        for &v in &[v0, v1, v2] {
            b.utility(v, u, 0.5);
        }
        let inst = b.build().unwrap();
        let chosen = greedy_single(
            &inst,
            u,
            &[cand(v0, 0.5), cand(v1, 0.5), cand(v2, 0.5)],
            &NOOP,
        );
        assert_eq!(chosen, vec![0, 1, 2]);
    }

    #[test]
    fn budget_staleness_is_rescanned() {
        // u at origin; v_mid is free to attend (at origin), two side
        // events compete for the remaining budget
        let mut b = InstanceBuilder::new();
        let v0 = b.event(1, Point::ORIGIN, iv(10, 20)); // ratio ∞
        let v1 = b.event(1, Point::new(4, 0), iv(0, 10)); // round trip 8
        let v2 = b.event(1, Point::new(5, 0), iv(20, 30)); // round trip 10
        let u = b.user(Point::ORIGIN, Cost::new(9));
        b.utility(v0, u, 0.5);
        b.utility(v1, u, 0.9);
        b.utility(v2, u, 0.8);
        let inst = b.build().unwrap();
        // candidates in end-time order: v1 [0,10], v0 [10,20], v2 [20,30]
        let chosen =
            greedy_single(&inst, u, &[cand(v1, 0.9), cand(v0, 0.5), cand(v2, 0.8)], &NOOP);
        // v0 goes first (infinite ratio, inc 0); then v1 (inc 8 ≤ 9)
        // beats v2 (inc 10 > 9, unaffordable)
        let events: Vec<EventId> = chosen.iter().map(|&i| [v1, v0, v2][i]).collect();
        assert!(events.contains(&v0));
        assert!(events.contains(&v1));
        assert!(!events.contains(&v2));
    }

    #[test]
    fn solver_produces_feasible_plannings() {
        let mut b = InstanceBuilder::new();
        let mut vs = Vec::new();
        for i in 0..7i32 {
            let s = i64::from(i % 3) * 8;
            vs.push(b.event(2, Point::new(i, i % 3), iv(s, s + 7)));
        }
        let mut us = Vec::new();
        for j in 0..6i32 {
            us.push(b.user(Point::new(j % 4, 1), Cost::new(18)));
        }
        for (i, &v) in vs.iter().enumerate() {
            for (j, &u) in us.iter().enumerate() {
                b.utility(v, u, ((i * 3 + j * 5) % 9) as f64 / 9.0);
            }
        }
        let inst = b.build().unwrap();
        for p in [DeGreedy::new().solve(&inst), DeGreedy::new().with_augment().solve(&inst)] {
            p.validate(&inst).expect("feasible");
        }
    }

    #[test]
    fn augment_never_decreases_omega() {
        let mut b = InstanceBuilder::new();
        let v0 = b.event(3, Point::new(2, 0), iv(0, 10));
        let v1 = b.event(3, Point::new(4, 0), iv(10, 20));
        let mut us = Vec::new();
        for j in 0..3i32 {
            us.push(b.user(Point::new(j, 0), Cost::new(30)));
        }
        for (i, &v) in [v0, v1].iter().enumerate() {
            for (j, &u) in us.iter().enumerate() {
                b.utility(v, u, 0.3 + 0.1 * ((i + j) % 3) as f64);
            }
        }
        let inst = b.build().unwrap();
        let base = DeGreedy::new().solve(&inst).omega(&inst);
        let plus = DeGreedy::new().with_augment().solve(&inst).omega(&inst);
        assert!(plus >= base - 1e-9);
    }

    #[test]
    fn deterministic() {
        let mut b = InstanceBuilder::new();
        for i in 0..5i32 {
            b.event(2, Point::new(i * 2, 0), iv(i64::from(i) * 5, i64::from(i) * 5 + 4));
        }
        for j in 0..4i32 {
            b.user(Point::new(j, 1), Cost::new(22));
        }
        for v in 0..5u32 {
            for u in 0..4u32 {
                b.utility(EventId(v), UserId(u), ((v * 4 + u) % 7 + 1) as f64 / 7.0);
            }
        }
        let inst = b.build().unwrap();
        assert_eq!(DeGreedy::new().solve(&inst), DeGreedy::new().solve(&inst));
    }
}
