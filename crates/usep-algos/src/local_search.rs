//! Local-search post-optimization (an extension beyond the paper).
//!
//! The decomposed algorithms fix each user's schedule in one pass and
//! never revisit it; the `+RG` pass only *adds* assignments. Local
//! search closes the remaining gap with two improving move families,
//! applied until a fixpoint (or a round cap):
//!
//! * **transfer** — move an event from its current attendee to a
//!   non-attendee with strictly higher utility (capacity stays
//!   satisfied: one leaves, one enters);
//! * **swap** — within one user's schedule, replace an arranged event
//!   by a strictly better-by-utility unarranged event that fits the
//!   schedule once the old one is gone.
//!
//! Every move strictly increases `Ω`, so termination is guaranteed
//! (finitely many plannings, strictly monotone objective); each round is
//! `O(|V| |U| · |S|)`. Feasibility is preserved by construction — moves
//! are validated with the same checks as `Planning::assign`.
//!
//! Rounds are **evaluate-then-apply**: every candidate move is scored
//! in parallel against a snapshot of the planning (pure reads), then
//! the proposals are applied on the driving thread in a fixed order,
//! each revalidated against the now-mutating planning and skipped if an
//! earlier application invalidated it. The applied sequence is a pure
//! function of the snapshot, so the result is bit-identical at every
//! thread count.

use crate::Solver;
use usep_core::{CoreView, EventId, Instance, Planning, UserId};
use usep_guard::Guard;
use usep_par::{current_threads, par_map};

/// Improves `planning` in place until no transfer/swap move helps or
/// `max_rounds` passes complete. Returns the number of applied moves.
pub fn improve(inst: &Instance, planning: &mut Planning, max_rounds: usize) -> usize {
    // view choice is made once per improvement run, on the calling thread
    if usep_core::object_path_forced() {
        improve_with(inst, inst, planning, max_rounds)
    } else {
        let flat = inst.freeze();
        improve_with(inst, &*flat, planning, max_rounds)
    }
}

fn improve_with<V: CoreView + Sync>(
    inst: &Instance,
    view: &V,
    planning: &mut Planning,
    max_rounds: usize,
) -> usize {
    let threads = current_threads();
    let mut applied = 0;
    for _ in 0..max_rounds {
        let before = applied;
        applied += transfer_round(inst, view, planning, threads);
        applied += swap_round(inst, view, planning, threads);
        if applied == before {
            break; // fixpoint
        }
    }
    applied
}

/// One pass of transfer moves. Every assigned `(v, u_from)` pair is
/// scored in parallel: the best user `u_to` with `μ(v, u_to) >
/// μ(v, u_from)` that can host `v` in the snapshot. Proposals are then
/// applied in `(v, u_from)` order, each re-checked against the current
/// planning (an earlier transfer may have filled `u_to`'s schedule).
fn transfer_round<V: CoreView + Sync>(
    inst: &Instance,
    view: &V,
    planning: &mut Planning,
    threads: usize,
) -> usize {
    let mut pairs: Vec<(EventId, UserId)> =
        planning.assignments().map(|(u, v)| (v, u)).collect();
    pairs.sort_unstable();
    let snapshot: &Planning = planning;
    let proposals = par_map(threads, &pairs, Guard::none(), |_, &(v, u_from)| {
        let mu_from = view.mu(v, u_from);
        let mut best: Option<(UserId, f64)> = None;
        for u_to in inst.user_ids() {
            if u_to == u_from {
                continue;
            }
            let mu_to = view.mu(v, u_to);
            if mu_to <= mu_from {
                continue;
            }
            if best.is_some_and(|(_, m)| mu_to <= m) {
                continue;
            }
            if snapshot.schedule(u_to).can_insert(view, u_to, v) {
                best = Some((u_to, mu_to));
            }
        }
        best.map(|(u_to, _)| u_to)
    });
    let mut moves = 0;
    for (k, proposal) in proposals.into_iter().enumerate() {
        let Some(Some(u_to)) = proposal else { continue };
        let (v, u_from) = pairs[k];
        // revalidate against the mutated planning; a skipped proposal is
        // simply re-found (or not) next round
        if !planning.schedule(u_to).can_insert(view, u_to, v) {
            continue;
        }
        assert!(planning.unassign(u_from, v));
        planning.assign(inst, u_to, v).expect("transfer target validated");
        moves += 1;
    }
    moves
}

/// One pass of swap moves. Each user's best single swap — replace an
/// arranged `v_out` with an unarranged, spare-capacity `v_in` of
/// strictly higher utility that fits once `v_out` is gone — is found in
/// parallel on a cloned schedule (the trial removal never touches the
/// shared snapshot), then the proposals are applied in user-id order,
/// re-checking capacity and fit (an earlier user's swap may have taken
/// the last slot of `v_in`).
fn swap_round<V: CoreView + Sync>(
    inst: &Instance,
    view: &V,
    planning: &mut Planning,
    threads: usize,
) -> usize {
    let users: Vec<UserId> = inst.user_ids().collect();
    let snapshot: &Planning = planning;
    let proposals = par_map(threads, &users, Guard::none(), |_, &u| {
        best_swap(inst, view, snapshot, u)
    });
    let mut moves = 0;
    for (k, proposal) in proposals.into_iter().enumerate() {
        let Some(Some((v_out, v_in))) = proposal else { continue };
        let u = users[k];
        if planning.remaining_capacity(inst, v_in) == 0 {
            continue;
        }
        assert!(planning.unassign(u, v_out));
        if planning.schedule(u).can_insert(view, u, v_in) {
            planning.assign(inst, u, v_in).expect("swap target validated");
            moves += 1;
        } else {
            planning.assign(inst, u, v_out).expect("reinsertion of removed event");
        }
    }
    moves
}

/// The best swap for `u` against the snapshot: maximal utility gain,
/// ties broken by smallest `(v_out, v_in)` so the choice is unique.
fn best_swap<V: CoreView>(
    inst: &Instance,
    view: &V,
    snapshot: &Planning,
    u: UserId,
) -> Option<(EventId, EventId)> {
    let mut best: Option<(EventId, EventId, f64)> = None;
    for &v_out in snapshot.schedule(u).events() {
        let mu_out = view.mu(v_out, u);
        let mut trial = snapshot.schedule(u).clone();
        trial.remove(v_out);
        for v_in in inst.event_ids() {
            if v_in == v_out || trial.contains(v_in) {
                continue;
            }
            let mu_in = view.mu(v_in, u);
            if mu_in <= mu_out || snapshot.remaining_capacity(inst, v_in) == 0 {
                continue;
            }
            let gain = mu_in - mu_out;
            if best.is_some_and(|(bo, bi, bg)| {
                gain < bg || (gain == bg && (v_out, v_in) > (bo, bi))
            }) {
                continue;
            }
            if trial.can_insert(view, u, v_in) {
                best = Some((v_out, v_in, gain));
            }
        }
    }
    best.map(|(v_out, v_in, _)| (v_out, v_in))
}

/// Wraps any solver with a local-search post-pass.
#[derive(Clone, Copy, Debug)]
pub struct WithLocalSearch<S> {
    inner: S,
    max_rounds: usize,
}

impl<S: Solver> WithLocalSearch<S> {
    /// Wraps `inner`, running up to `max_rounds` improvement rounds
    /// after it.
    pub fn new(inner: S, max_rounds: usize) -> WithLocalSearch<S> {
        WithLocalSearch { inner, max_rounds }
    }
}

impl<S: Solver> Solver for WithLocalSearch<S> {
    fn name(&self) -> &'static str {
        "LocalSearch"
    }

    fn solve(&self, inst: &Instance) -> Planning {
        let mut p = self.inner.solve(inst);
        improve(inst, &mut p, self.max_rounds);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, Algorithm, DeGreedy};
    use usep_core::{Cost, InstanceBuilder, Point, TimeInterval};

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    #[test]
    fn transfer_moves_event_to_higher_utility_user() {
        let mut b = InstanceBuilder::new();
        let v = b.event(1, Point::ORIGIN, iv(0, 10));
        let u0 = b.user(Point::ORIGIN, Cost::new(10));
        let u1 = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(v, u0, 0.3);
        b.utility(v, u1, 0.9);
        let inst = b.build().unwrap();
        let mut p = Planning::empty(&inst);
        p.assign(&inst, u0, v).unwrap(); // deliberately suboptimal
        let n = improve(&inst, &mut p, 10);
        assert_eq!(n, 1);
        assert!(p.schedule(u0).is_empty());
        assert_eq!(p.schedule(u1).events(), &[v]);
        assert!(p.validate(&inst).is_ok());
    }

    #[test]
    fn swap_replaces_event_with_better_one() {
        let mut b = InstanceBuilder::new();
        let v0 = b.event(1, Point::ORIGIN, iv(0, 10));
        let v1 = b.event(1, Point::ORIGIN, iv(5, 15)); // conflicts with v0
        let u = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(v0, u, 0.3);
        b.utility(v1, u, 0.8);
        let inst = b.build().unwrap();
        let mut p = Planning::empty(&inst);
        p.assign(&inst, u, v0).unwrap();
        let n = improve(&inst, &mut p, 10);
        assert_eq!(n, 1);
        assert_eq!(p.schedule(u).events(), &[v1]);
    }

    #[test]
    fn fixpoint_on_already_optimal_plannings() {
        let mut b = InstanceBuilder::new();
        let v = b.event(1, Point::ORIGIN, iv(0, 10));
        let u0 = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(v, u0, 0.9);
        let inst = b.build().unwrap();
        let mut p = Planning::empty(&inst);
        p.assign(&inst, u0, v).unwrap();
        assert_eq!(improve(&inst, &mut p, 10), 0);
    }

    #[test]
    fn omega_is_monotone_and_feasibility_preserved_on_random_instances() {
        use usep_gen::{generate, SyntheticConfig};
        for seed in 0..10u64 {
            let inst = generate(&SyntheticConfig::tiny().with_users(25), 500 + seed);
            for a in [Algorithm::DeGreedy, Algorithm::RatioGreedy, Algorithm::DeDPO] {
                let mut p = solve(a, &inst);
                let before = p.omega(&inst);
                improve(&inst, &mut p, 5);
                assert!(p.omega(&inst) >= before - 1e-9, "{a} seed {seed} regressed");
                p.validate(&inst).unwrap();
            }
        }
    }

    #[test]
    fn local_search_sometimes_strictly_improves_degreedy() {
        use usep_gen::{generate, SyntheticConfig};
        let mut improved = 0;
        for seed in 0..20u64 {
            let inst = generate(&SyntheticConfig::tiny().with_users(25), 900 + seed);
            let mut p = solve(Algorithm::DeGreedy, &inst);
            let before = p.omega(&inst);
            improve(&inst, &mut p, 5);
            if p.omega(&inst) > before + 1e-9 {
                improved += 1;
            }
        }
        assert!(improved > 0, "local search never improved DeGreedy across 20 seeds");
    }

    #[test]
    fn wrapped_solver_is_feasible() {
        use usep_gen::{generate, SyntheticConfig};
        let inst = generate(&SyntheticConfig::tiny().with_users(20), 77);
        let s = WithLocalSearch::new(DeGreedy::new(), 4);
        let p = s.solve(&inst);
        p.validate(&inst).unwrap();
        assert!(p.omega(&inst) >= solve(Algorithm::DeGreedy, &inst).omega(&inst) - 1e-9);
    }
}
