//! Budget-supervised solving with graceful degradation.
//!
//! [`GuardedSolver`] wraps a requested [`Algorithm`] and a
//! [`SolveBudget`] and manages the whole solve lifecycle:
//!
//! * **Pre-estimation** — before attempting [`DeDP`](crate::DeDP) under
//!   a memory ceiling, the literal `μ^r` pseudo-event matrix size is
//!   computed from the pseudo-event layout; if it alone would blow the
//!   ceiling, DeDP is skipped without doing any work.
//! * **Degradation** — memory trips walk down the chain
//!   `DeDP → DeDPO → RatioGreedy` (the paper's own memory-frugality
//!   ordering: DeDPO produces identical plannings to DeDP with a
//!   fraction of the footprint, RatioGreedy needs `O(|V| + |U|)`
//!   state). Every fallback is counted as a `guard_fallback` trace
//!   event.
//! * **Deadline splitting** — one wall-clock deadline covers the whole
//!   chain; each attempt runs under the time *remaining*, and a
//!   deadline or cancellation trip ends the chain immediately (retrying
//!   a slower algorithm cannot help).
//!
//! The result is a [`GuardedReport`]: the best constraint-valid
//! planning found (by Ω), which algorithm produced it, the fallback
//! trail, and the terminal [`SolveOutcome`].

use crate::dedp::PseudoLayout;
use crate::{solve_guarded, Algorithm, Probe};
use std::time::Instant;
use usep_core::{Instance, Planning};
use usep_guard::{Guard, SolveBudget, SolveOutcome, TruncationReason};
use usep_trace::{Counter, NOOP};

/// Orchestrates a solve under a [`SolveBudget`], degrading
/// `DeDP → DeDPO → RatioGreedy` on memory pressure.
#[derive(Clone, Debug)]
pub struct GuardedSolver {
    algorithm: Algorithm,
    budget: SolveBudget,
}

/// What a [`GuardedSolver`] run produced.
#[derive(Debug)]
pub struct GuardedReport {
    /// The best constraint-valid planning found across all attempts.
    pub planning: Planning,
    /// Terminal outcome: [`SolveOutcome::Complete`] when some attempt
    /// ran to its natural end, otherwise the last truncation.
    pub outcome: SolveOutcome,
    /// The algorithm originally requested.
    pub requested: Algorithm,
    /// The algorithm whose planning is returned.
    pub executed: Algorithm,
    /// Algorithms abandoned (or skipped by pre-estimation) before
    /// `executed`, in attempt order.
    pub fallbacks: Vec<Algorithm>,
}

impl GuardedReport {
    /// True when the chain had to move past the requested algorithm.
    pub fn degraded(&self) -> bool {
        !self.fallbacks.is_empty()
    }
}

impl GuardedSolver {
    /// A guarded run of `algorithm` under `budget`.
    pub fn new(algorithm: Algorithm, budget: SolveBudget) -> GuardedSolver {
        GuardedSolver { algorithm, budget }
    }

    /// The memory-degradation chain starting at `algorithm`: which
    /// algorithms a guarded run may attempt, in order. Memory-frugal
    /// algorithms have nothing lighter to fall back to and form
    /// singleton chains.
    pub fn degradation_chain(algorithm: Algorithm) -> &'static [Algorithm] {
        match algorithm {
            Algorithm::DeDP => &[Algorithm::DeDP, Algorithm::DeDPO, Algorithm::RatioGreedy],
            Algorithm::DeDPO => &[Algorithm::DeDPO, Algorithm::RatioGreedy],
            Algorithm::DeDPORG => &[Algorithm::DeDPORG, Algorithm::RatioGreedy],
            Algorithm::RatioGreedy => &[Algorithm::RatioGreedy],
            Algorithm::DeGreedy => &[Algorithm::DeGreedy],
            Algorithm::DeGreedyRG => &[Algorithm::DeGreedyRG],
            Algorithm::SingleEventGreedy => &[Algorithm::SingleEventGreedy],
            Algorithm::UtilityGreedy => &[Algorithm::UtilityGreedy],
        }
    }

    /// Runs the chain without instrumentation.
    pub fn solve(&self, inst: &Instance) -> GuardedReport {
        self.solve_with_probe(inst, &NOOP)
    }

    /// Runs the chain, reporting trips, fallbacks and spans through
    /// `probe`.
    pub fn solve_with_probe(&self, inst: &Instance, probe: &dyn Probe) -> GuardedReport {
        let chain = GuardedSolver::degradation_chain(self.algorithm);
        let start = Instant::now();
        let mut fallbacks: Vec<Algorithm> = Vec::new();
        // best planning by Ω across attempts, with its producer
        let mut best: Option<(Planning, Algorithm, f64)> = None;
        let mut terminal = SolveOutcome::Complete;

        probe.span_enter("guarded_solve");
        for (k, &algo) in chain.iter().enumerate() {
            let is_last = k + 1 == chain.len();
            let Some(remaining) = self.budget.with_remaining_deadline(start.elapsed()) else {
                terminal = SolveOutcome::Truncated { reason: TruncationReason::Deadline };
                break;
            };

            // DeDP's footprint is dominated by the μ^r matrix plus the
            // one-shot SoA lowering every solve shares, and is known
            // exactly up front — skip the attempt when it cannot fit.
            // The lowering term does not depend on which view executes,
            // so object-path and flat-path runs skip identically.
            if algo == Algorithm::DeDP && !is_last {
                let bytes = PseudoLayout::new(inst)
                    .mu_matrix_bytes(inst.num_users())
                    .saturating_add(usep_core::FlatInstance::estimate_bytes(
                        inst.num_events(),
                        inst.num_users(),
                    ));
                if remaining.memory_ceiling().is_some_and(|ceiling| bytes > ceiling) {
                    probe.count(Counter::GuardFallback, 1);
                    probe.record("guarded_solve.skipped_matrix_bytes", bytes as f64);
                    fallbacks.push(algo);
                    terminal =
                        SolveOutcome::Truncated { reason: TruncationReason::MemoryCeiling };
                    continue;
                }
            }

            let guard = Guard::new(&remaining);
            let attempt = solve_guarded(algo, inst, &guard, probe);
            terminal = attempt.outcome;
            let omega = attempt.planning.omega(inst);
            if best.as_ref().is_none_or(|(_, _, best_omega)| omega > *best_omega) {
                best = Some((attempt.planning, algo, omega));
            }
            match attempt.outcome {
                SolveOutcome::Complete => break,
                SolveOutcome::Truncated { reason: TruncationReason::MemoryCeiling }
                    if !is_last =>
                {
                    // a lighter algorithm may fit — degrade and retry
                    probe.count(Counter::GuardFallback, 1);
                    fallbacks.push(algo);
                }
                // out of time or cancelled: retrying cannot help
                SolveOutcome::Truncated { .. } => break,
            }
        }
        probe.span_exit("guarded_solve");

        let (planning, executed, _) = best.unwrap_or_else(|| {
            (Planning::empty(inst), *chain.last().expect("chains are non-empty"), 0.0)
        });
        GuardedReport {
            planning,
            outcome: terminal,
            requested: self.algorithm,
            executed,
            fallbacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_core::{Cost, InstanceBuilder, Point, TimeInterval, UserId};
    use usep_trace::TraceSink;

    fn dense_instance(nv: u32, nu: u32) -> Instance {
        let mut b = InstanceBuilder::new();
        for i in 0..nv {
            let s = i64::from(i) * 10;
            b.event(2, Point::new(i as i32, 0), TimeInterval::new(s, s + 9).unwrap());
        }
        for j in 0..nu {
            b.user(Point::new(j as i32, 1), Cost::new(100));
        }
        for v in 0..nv {
            for u in 0..nu {
                b.utility(
                    usep_core::EventId(v),
                    UserId(u),
                    ((v * nu + u) % 9 + 1) as f64 / 9.0,
                );
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn unlimited_budget_completes_without_fallback() {
        let inst = dense_instance(5, 4);
        let report =
            GuardedSolver::new(Algorithm::DeDP, SolveBudget::unlimited()).solve(&inst);
        assert!(report.outcome.is_complete());
        assert!(!report.degraded());
        assert_eq!(report.executed, Algorithm::DeDP);
        assert_eq!(report.planning, crate::solve(Algorithm::DeDP, &inst));
    }

    #[test]
    fn tiny_ceiling_skips_dedp_by_estimate() {
        let inst = dense_instance(5, 4);
        // matrix needs 5*2 slots × 4 users × 8 bytes = 320 bytes > 64
        let budget = SolveBudget::unlimited().with_memory_ceiling(64);
        let sink = TraceSink::new();
        let report =
            GuardedSolver::new(Algorithm::DeDP, budget).solve_with_probe(&inst, &sink);
        assert!(report.fallbacks.contains(&Algorithm::DeDP));
        assert!(sink.counter(Counter::GuardFallback) >= 1);
        assert!(report.planning.validate(&inst).is_ok());
    }

    #[test]
    fn chain_reaches_ratio_greedy_under_extreme_ceiling() {
        let inst = dense_instance(6, 5);
        // 1 byte: DeDP skipped by estimate, DeDPO's DP table refused at
        // its first growth, RatioGreedy (no charged allocations) completes
        let budget = SolveBudget::unlimited().with_memory_ceiling(1);
        let report = GuardedSolver::new(Algorithm::DeDP, budget).solve(&inst);
        assert_eq!(report.fallbacks, vec![Algorithm::DeDP, Algorithm::DeDPO]);
        assert_eq!(report.executed, Algorithm::RatioGreedy);
        assert!(report.outcome.is_complete(), "terminal attempt ran unimpeded");
        assert!(report.planning.validate(&inst).is_ok());
        assert_eq!(report.planning, crate::solve(Algorithm::RatioGreedy, &inst));
    }

    #[test]
    fn expired_deadline_returns_empty_truncated() {
        let inst = dense_instance(4, 3);
        let budget = SolveBudget::unlimited().with_deadline(std::time::Duration::ZERO);
        let report = GuardedSolver::new(Algorithm::DeDPO, budget).solve(&inst);
        assert_eq!(
            report.outcome,
            SolveOutcome::Truncated { reason: TruncationReason::Deadline }
        );
        assert!(report.planning.validate(&inst).is_ok());
    }

    #[test]
    fn singleton_chains_never_degrade() {
        for a in [Algorithm::RatioGreedy, Algorithm::DeGreedy, Algorithm::UtilityGreedy] {
            assert_eq!(GuardedSolver::degradation_chain(a), &[a]);
        }
    }
}
