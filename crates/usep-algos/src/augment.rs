//! The `+RG` augmentation pass (§4.3.2 / §4.4).
//!
//! After a decomposed algorithm finishes, some events retain residual
//! capacity (never fully selected, or freed when step 2 dropped them from
//! earlier users' schedules), and the users those drops happened to still
//! have budget. The pass runs [`RatioGreedy`](crate::RatioGreedy) over
//! `V' = {v : v not full}` with the existing schedules in place,
//! monotonically adding event-user pairs. Since it never removes an
//! assignment, Ω only grows, so DeDPO+RG keeps DeDPO's ½-approximation.

use crate::ratio_greedy::run_ratio_greedy;
use usep_core::{EventId, Instance, Planning};
use usep_guard::Guard;
use usep_trace::{with_span, Counter, Probe, NOOP};

/// Augments `planning` in place with a RatioGreedy pass over the events
/// that still have spare capacity. Returns the number of assignments
/// added.
pub fn augment_with_ratio_greedy(inst: &Instance, planning: &mut Planning) -> usize {
    augment_with_ratio_greedy_probed(inst, planning, &NOOP)
}

/// [`augment_with_ratio_greedy`], reporting through `probe`: the whole
/// pass runs under an `augment_rg` span and every assignment it adds is
/// counted as an `augment_swap`.
pub fn augment_with_ratio_greedy_probed(
    inst: &Instance,
    planning: &mut Planning,
    probe: &dyn Probe,
) -> usize {
    augment_with_ratio_greedy_guarded(inst, planning, Guard::none(), probe)
}

/// [`augment_with_ratio_greedy_probed`] under a budget: the pass stops
/// at the next checkpoint once `guard` trips. Since it only ever adds
/// assignments, stopping early leaves the planning valid.
pub fn augment_with_ratio_greedy_guarded(
    inst: &Instance,
    planning: &mut Planning,
    guard: &Guard,
    probe: &dyn Probe,
) -> usize {
    let before = planning.num_assignments();
    let residual: Vec<EventId> = inst
        .event_ids()
        .filter(|&v| planning.remaining_capacity(inst, v) > 0)
        .collect();
    with_span(probe, "augment_rg", || run_ratio_greedy(inst, planning, &residual, guard, probe));
    let added = planning.num_assignments() - before;
    probe.count(Counter::AugmentSwap, added as u64);
    added
}

/// Runs the RatioGreedy augmentation engine restricted to an explicit
/// event subset: only pairs `(v, u)` with `v ∈ events` are considered,
/// existing schedules are respected, and assignments are only ever
/// added. This is the bounded-repair primitive of `usep-delta` — after
/// a mutation touches one event (or a handful), repairing against just
/// those events keeps per-mutation work proportional to the touched
/// set instead of the whole instance. Returns the number of
/// assignments added.
pub fn augment_events_with_ratio_greedy(
    inst: &Instance,
    planning: &mut Planning,
    events: &[EventId],
    probe: &dyn Probe,
) -> usize {
    let before = planning.num_assignments();
    with_span(probe, "augment_rg", || {
        run_ratio_greedy(inst, planning, events, Guard::none(), probe)
    });
    let added = planning.num_assignments() - before;
    probe.count(Counter::AugmentSwap, added as u64);
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeGreedy, Solver};
    use usep_core::{Cost, InstanceBuilder, Point, TimeInterval, UserId};

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    #[test]
    fn fills_residual_capacity_after_a_steal() {
        // vb and vc overlap. Step 1: u0 schedules vb (0.6 > 0.5); u1
        // steals vb (marginal 0.9 - 0.6 = 0.3 beats nothing else). After
        // step 2, u0 is left empty and vc has residual capacity — only
        // the +RG pass recovers μ(vc, u0) = 0.5.
        let mut b = InstanceBuilder::new();
        let vb = b.event(1, Point::ORIGIN, iv(0, 10));
        let vc = b.event(1, Point::ORIGIN, iv(5, 15));
        let u0 = b.user(Point::ORIGIN, Cost::new(10));
        let u1 = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(vb, u0, 0.6);
        b.utility(vc, u0, 0.5);
        b.utility(vb, u1, 0.9);
        let inst = b.build().unwrap();
        let mut p = DeGreedy::new().solve(&inst);
        assert_eq!(p.schedule(u1).events(), &[vb]);
        assert!(p.schedule(u0).is_empty(), "u0 lost vb in step 2");
        let before = p.omega(&inst);
        let added = augment_with_ratio_greedy(&inst, &mut p);
        assert_eq!(added, 1);
        assert_eq!(p.schedule(u0).events(), &[vc]);
        assert!(p.omega(&inst) > before);
        assert!(p.validate(&inst).is_ok());
    }

    #[test]
    fn noop_when_everything_full() {
        let mut b = InstanceBuilder::new();
        let v = b.event(1, Point::ORIGIN, iv(0, 10));
        let u0 = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(v, u0, 0.5);
        let inst = b.build().unwrap();
        let mut p = usep_core::Planning::empty(&inst);
        p.assign(&inst, u0, v).unwrap();
        assert_eq!(augment_with_ratio_greedy(&inst, &mut p), 0);
    }

    #[test]
    fn respects_existing_schedules_budgets() {
        // u has already spent most budget; the pass must not overspend
        let mut b = InstanceBuilder::new();
        let v0 = b.event(1, Point::new(4, 0), iv(0, 10));
        let v1 = b.event(1, Point::new(6, 0), iv(20, 30));
        let u = b.user(Point::ORIGIN, Cost::new(9));
        b.utility(v0, u, 0.9);
        b.utility(v1, u, 0.9);
        let inst = b.build().unwrap();
        let mut p = usep_core::Planning::empty(&inst);
        p.assign(&inst, u, v0).unwrap(); // spends 8 of 9
        augment_with_ratio_greedy(&inst, &mut p);
        assert!(!p.schedule(u).contains(v1));
        assert!(p.validate(&inst).is_ok());
    }

    #[test]
    fn augmented_solver_matches_manual_pass() {
        let mut b = InstanceBuilder::new();
        let mut vs = Vec::new();
        for i in 0..4i32 {
            vs.push(b.event(2, Point::new(i, 0), iv(i64::from(i) * 10, i64::from(i) * 10 + 9)));
        }
        for j in 0..3i32 {
            b.user(Point::new(j, 1), Cost::new(20));
        }
        for (i, &v) in vs.iter().enumerate() {
            for u in 0..3u32 {
                b.utility(v, UserId(u), ((i as u32 * 3 + u) % 5 + 1) as f64 / 5.0);
            }
        }
        let inst = b.build().unwrap();
        let auto = DeGreedy::new().with_augment().solve(&inst);
        let mut manual = DeGreedy::new().solve(&inst);
        augment_with_ratio_greedy(&inst, &mut manual);
        assert_eq!(auto, manual);
    }
}
