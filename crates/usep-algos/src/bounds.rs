//! Upper bounds on the optimal total utility `Ω(A*)`.
//!
//! USEP is NP-hard, so the exact optimum is out of reach at scale —
//! but cheap upper bounds let experiments report *optimality gaps* for
//! the heuristics (an extension beyond the paper, which only compares
//! algorithms against each other). Two relaxations:
//!
//! * [`capacity_relaxed_bound`] drops the capacity constraint: each user
//!   independently gets their DP-optimal schedule (budget, feasibility
//!   and utility constraints intact). `O(|U| |V|² b)` — the cost of one
//!   DeDPO step-1 pass.
//! * [`budget_relaxed_bound`] drops budgets and feasibility: each event
//!   collects its `min(c_v, |U|)` largest positive utilities.
//!   `O(|V| |U| log |U|)`.
//!
//! Each relaxation only enlarges the feasible set, so both values bound
//! `Ω(A*)` from above; [`best_upper_bound`] takes their minimum.

use crate::dedp::{optimal_user_schedule_with, DpScheduler};
use usep_core::{CoreView, EventId, Instance, UserId};
use usep_guard::Guard;
use usep_par::{current_threads, par_map_section};
use usep_trace::{Probe, NOOP};

/// Upper bound from dropping the capacity constraint: the sum over users
/// of their individually optimal schedule utilities.
///
/// The per-user DPs are independent, so they fan out over the
/// configured thread pool; each worker owns one reusable `DpScheduler`
/// workspace across all the users it processes. The
/// per-user utilities are summed on the caller's thread in user-id
/// order — float addition is not associative, so a scheduling-dependent
/// reduction order would break bit-identity with a sequential run.
pub fn capacity_relaxed_bound(inst: &Instance) -> f64 {
    capacity_relaxed_bound_with(inst, &NOOP)
}

/// [`capacity_relaxed_bound`] reporting through `probe`: the fan-out
/// runs as an observable `par.capacity_relaxed_bound` section, so a
/// request-scoped probe attributes the DP scan to its request.
pub fn capacity_relaxed_bound_with(inst: &Instance, probe: &dyn Probe) -> f64 {
    // view choice is made once per bound computation, on the calling
    // thread; workers borrow the shared read-only view
    if usep_core::object_path_forced() {
        capacity_relaxed_bound_on(inst, inst, probe)
    } else {
        let flat = inst.freeze();
        capacity_relaxed_bound_on(inst, &*flat, probe)
    }
}

fn capacity_relaxed_bound_on<V: CoreView + Sync>(
    inst: &Instance,
    view: &V,
    probe: &dyn Probe,
) -> f64 {
    let users: Vec<UserId> = inst.user_ids().collect();
    par_map_section(
        current_threads(),
        "par.capacity_relaxed_bound",
        probe,
        &users,
        Guard::none(),
        DpScheduler::new,
        |ws, _, &u| optimal_user_utility_with(ws, view, u),
        |_| (),
    )
    .into_iter()
    .map(|r| r.expect("no guard was active"))
    .sum()
}

/// The DP-optimal schedule utility of one user, ignoring capacities.
pub fn optimal_user_utility(inst: &Instance, u: UserId) -> f64 {
    optimal_user_utility_with(&mut DpScheduler::new(), inst, u)
}

fn optimal_user_utility_with<V: CoreView>(ws: &mut DpScheduler<'_>, view: &V, u: UserId) -> f64 {
    let mu_row = view.mu_row(u);
    let cands: Vec<(EventId, f64)> = mu_row
        .iter()
        .enumerate()
        .filter_map(|(vi, &m)| {
            let m = f64::from(m);
            if m > 0.0 {
                Some((EventId(vi as u32), m))
            } else {
                None
            }
        })
        .collect();
    optimal_user_schedule_with(ws, view, u, &cands).1
}

/// Upper bound from dropping budgets and time conflicts: each event
/// contributes its `min(c_v, |U|)` largest positive utilities.
pub fn budget_relaxed_bound(inst: &Instance) -> f64 {
    let nu = inst.num_users();
    let mut total = 0.0;
    let mut col: Vec<f64> = Vec::with_capacity(nu);
    for v in inst.event_ids() {
        col.clear();
        for u in inst.user_ids() {
            let m = inst.mu(v, u);
            if m > 0.0 {
                col.push(m);
            }
        }
        let k = (inst.event(v).capacity as usize).min(nu);
        if col.len() > k {
            // partial selection of the k largest
            col.sort_unstable_by(|a, b| b.total_cmp(a));
            col.truncate(k);
        }
        total += col.iter().sum::<f64>();
    }
    total
}

/// The tighter of the two relaxation bounds.
pub fn best_upper_bound(inst: &Instance) -> f64 {
    capacity_relaxed_bound(inst).min(budget_relaxed_bound(inst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::optimal_planning;
    use crate::{solve, Algorithm};
    use usep_core::{Cost, EventId, InstanceBuilder, Point, TimeInterval};

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    fn small() -> Instance {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::new(0, 0), iv(0, 10));
        b.event(2, Point::new(3, 0), iv(10, 20));
        b.event(1, Point::new(5, 0), iv(5, 15));
        let _u0 = b.user(Point::new(1, 0), Cost::new(20));
        let _u1 = b.user(Point::new(4, 0), Cost::new(12));
        for (v, u, m) in [
            (0, 0, 0.6),
            (1, 0, 0.5),
            (2, 0, 0.9),
            (0, 1, 0.4),
            (1, 1, 0.8),
            (2, 1, 0.3),
        ] {
            b.utility(EventId(v), usep_core::UserId(u), m);
        }
        b.build().unwrap()
    }

    #[test]
    fn bounds_dominate_the_exact_optimum() {
        let inst = small();
        let (_, opt) = optimal_planning(&inst);
        assert!(capacity_relaxed_bound(&inst) >= opt - 1e-9);
        assert!(budget_relaxed_bound(&inst) >= opt - 1e-9);
        assert!(best_upper_bound(&inst) >= opt - 1e-9);
    }

    #[test]
    fn bounds_dominate_every_heuristic() {
        let inst = small();
        let ub = best_upper_bound(&inst);
        for a in Algorithm::PAPER_SET {
            let o = solve(a, &inst).omega(&inst);
            assert!(ub >= o - 1e-9, "{a}: bound {ub} < Ω {o}");
        }
    }

    #[test]
    fn budget_relaxed_counts_top_capacity_utilities() {
        let mut b = InstanceBuilder::new();
        let v = b.event(2, Point::ORIGIN, iv(0, 1));
        for _ in 0..4 {
            b.user(Point::ORIGIN, Cost::new(10));
        }
        for (u, m) in [(0, 0.1), (1, 0.9), (2, 0.5), (3, 0.7)] {
            b.utility(v, usep_core::UserId(u), m);
        }
        let inst = b.build().unwrap();
        // top-2 utilities: 0.9 + 0.7
        assert!((budget_relaxed_bound(&inst) - 1.6).abs() < 1e-6);
    }

    #[test]
    fn capacity_relaxed_is_exact_for_single_user() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::new(1, 0), iv(0, 10));
        b.event(1, Point::new(2, 0), iv(10, 20));
        let u = b.user(Point::ORIGIN, Cost::new(50));
        b.utility(EventId(0), u, 0.4);
        b.utility(EventId(1), u, 0.7);
        let inst = b.build().unwrap();
        let (_, opt) = optimal_planning(&inst);
        assert!((capacity_relaxed_bound(&inst) - opt).abs() < 1e-9);
    }

    #[test]
    fn zero_utility_instance_has_zero_bounds() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 1));
        b.user(Point::ORIGIN, Cost::new(10));
        let inst = b.build().unwrap();
        assert_eq!(best_upper_bound(&inst), 0.0);
    }
}
