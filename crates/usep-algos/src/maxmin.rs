//! Max-min (bottleneck-aware) planning — an alternative objective.
//!
//! The paper's related work cites \[29\] (Tong, Meng, She, ICDE-W'15),
//! which optimizes the *minimum* user satisfaction instead of the sum.
//! This module implements that regime inside our constraint model as a
//! lexicographic water-filling greedy: repeatedly take a user with the
//! currently **lowest** schedule utility and grant them their best
//! feasible event; a user with no feasible addition is frozen. The
//! result trades total `Ω` for a much flatter utility distribution
//! (higher Jain index, more users served) — quantified by
//! [`FairnessStats`](usep_core::fairness::FairnessStats) and the
//! `ext/fairness` experiment panel.

use crate::Solver;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use usep_core::{Cost, EventId, Instance, Planning, UserId};

/// Water-filling greedy for the max-min objective.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxMinGreedy;

/// Heap key: utility ascending, then user id ascending (deterministic).
#[derive(PartialEq)]
struct Poorest(f64, u32);

impl Eq for Poorest {}
impl Ord for Poorest {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then_with(|| self.1.cmp(&other.1))
    }
}
impl PartialOrd for Poorest {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Solver for MaxMinGreedy {
    fn name(&self) -> &'static str {
        "MaxMinGreedy"
    }

    fn solve(&self, inst: &Instance) -> Planning {
        let mut planning = Planning::empty(inst);
        // min-heap of (current utility, user)
        let mut heap: BinaryHeap<Reverse<Poorest>> = inst
            .user_ids()
            .map(|u| Reverse(Poorest(0.0, u.0)))
            .collect();
        while let Some(Reverse(Poorest(util, u))) = heap.pop() {
            let u = UserId(u);
            // best feasible addition for the poorest user: max μ, tie by
            // smaller incremental cost, then event id
            let mut best: Option<(EventId, f64, Cost)> = None;
            for v in inst.event_ids() {
                if planning.remaining_capacity(inst, v) == 0 || inst.mu(v, u) <= 0.0 {
                    continue;
                }
                let s = planning.schedule(u);
                let Some(pos) = s.insertion_point(inst, v) else { continue };
                let inc = s.inc_cost_at(inst, u, v, pos);
                if inc.is_infinite() || s.total_cost(inst, u).add(inc) > inst.user(u).budget {
                    continue;
                }
                let mu = inst.mu(v, u);
                let better = match best {
                    None => true,
                    Some((bv, bmu, binc)) => {
                        mu > bmu || (mu == bmu && (inc < binc || (inc == binc && v < bv)))
                    }
                };
                if better {
                    best = Some((v, mu, inc));
                }
            }
            if let Some((v, mu, _)) = best {
                planning.assign(inst, u, v).expect("validated assignment");
                heap.push(Reverse(Poorest(util + mu, u.0)));
            }
            // no feasible addition: the user is frozen (not re-pushed)
        }
        planning
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, Algorithm};
    use usep_core::fairness::FairnessStats;
    use usep_core::{InstanceBuilder, Point, TimeInterval};

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    #[test]
    fn spreads_scarce_capacity_across_users() {
        // two capacity-1 events, two users, both like both; Ω-greedy
        // would happily give both to one user — max-min must not
        let mut b = InstanceBuilder::new();
        let v0 = b.event(1, Point::ORIGIN, iv(0, 10));
        let v1 = b.event(1, Point::ORIGIN, iv(10, 20));
        let u0 = b.user(Point::ORIGIN, Cost::new(10));
        let u1 = b.user(Point::ORIGIN, Cost::new(10));
        for v in [v0, v1] {
            b.utility(v, u0, 0.6);
            b.utility(v, u1, 0.5);
        }
        let inst = b.build().unwrap();
        let p = MaxMinGreedy.solve(&inst);
        p.validate(&inst).unwrap();
        assert_eq!(p.schedule(u0).len(), 1);
        assert_eq!(p.schedule(u1).len(), 1);
        let f = FairnessStats::compute(&inst, &p);
        assert_eq!(f.served_fraction, 1.0);
    }

    #[test]
    fn feasible_and_deterministic_on_random_instances() {
        use usep_gen::{generate, SyntheticConfig};
        for seed in 0..8u64 {
            let inst = generate(&SyntheticConfig::tiny().with_users(20), 700 + seed);
            let a = MaxMinGreedy.solve(&inst);
            a.validate(&inst).unwrap();
            assert_eq!(a, MaxMinGreedy.solve(&inst));
        }
    }

    #[test]
    fn fairer_than_omega_maximizers_under_scarcity() {
        use usep_gen::{generate, SyntheticConfig};
        // scarce capacity: far fewer slots than users want
        let cfg = SyntheticConfig::tiny().with_events(6).with_users(30).with_capacity_mean(2);
        let mut wins = 0;
        for seed in 0..6u64 {
            let inst = generate(&cfg, 800 + seed);
            let mm = FairnessStats::compute(&inst, &MaxMinGreedy.solve(&inst));
            let dp = FairnessStats::compute(&inst, &solve(Algorithm::DeDPO, &inst));
            if mm.jain_index >= dp.jain_index - 1e-9 {
                wins += 1;
            }
        }
        assert!(wins >= 4, "MaxMinGreedy should usually be at least as fair ({wins}/6)");
    }

    #[test]
    fn empty_instance() {
        let mut b = InstanceBuilder::new();
        b.user(Point::ORIGIN, Cost::new(5));
        let inst = b.build().unwrap();
        assert_eq!(MaxMinGreedy.solve(&inst).num_assignments(), 0);
    }
}
