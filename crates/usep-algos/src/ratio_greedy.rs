//! RatioGreedy (Algorithm 1): the global utility/cost-ratio heuristic.
//!
//! RatioGreedy repeatedly adds the unarranged event-user pair with the
//! largest `ratio(v, u) = μ(v, u) / inc_cost(v, u)` (Eq. 2) to the
//! planning, where `inc_cost` is the extra travel the insertion causes
//! (Eq. 3). A heap `H` holds at most one candidate pair per event (its
//! current best user) and one per user (their current best event); after
//! every insertion the affected candidates are recomputed — including, as
//! in lines 15–18 of the paper's pseudo-code, every heap pair incident to
//! the popped user, whose incremental costs may have changed.
//!
//! The same engine drives the `+RG` augmentation pass of §4.3.2: it can
//! start from a non-empty planning and restrict itself to a subset of
//! events (those with residual capacity).
//!
//! The two `O(|U|·|V|)` scan phases — heap seeding and the incident
//! refresh after an accepted pop — fan out over `usep-par` when more
//! than one thread is configured. Scans are pure reads of the planning;
//! the commits (generation bumps and heap pushes) replay sequentially
//! in index order afterwards, so the heap — and therefore the final
//! planning — is bit-identical to a single-threaded run.

use crate::{finish_guarded, GuardedSolve, Solver};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use usep_core::{CoreView, Cost, EventId, Instance, Planning, UserId};
use usep_guard::Guard;
use usep_par::{current_threads, par_map_section};
use usep_trace::{with_span, Counter, LocalCounters, Probe};

/// Below this many scan items a parallel section's thread spawns cost
/// more than the scans they would offload; stay inline.
const MIN_PAR_ITEMS: usize = 32;

/// The RatioGreedy heuristic (Algorithm 1). No approximation guarantee,
/// but fast on small instances; used standalone and as the `+RG`
/// augmentation pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct RatioGreedy;

impl Solver for RatioGreedy {
    fn name(&self) -> &'static str {
        "RatioGreedy"
    }

    fn solve_with_probe(&self, inst: &Instance, probe: &dyn Probe) -> Planning {
        self.solve_guarded(inst, Guard::none(), probe).planning
    }

    fn solve_guarded(&self, inst: &Instance, guard: &Guard, probe: &dyn Probe) -> GuardedSolve {
        let mut planning = Planning::empty(inst);
        let events: Vec<EventId> = inst.event_ids().collect();
        with_span(probe, "ratio_greedy", || {
            run_ratio_greedy(inst, &mut planning, &events, guard, probe);
        });
        GuardedSolve { planning, outcome: finish_guarded(guard, probe) }
    }
}

/// Which side of the bipartition a heap candidate was computed for.
///
/// The paper keeps one best pair per event *and* one per user in `H`;
/// tagging lets stale copies be dropped in O(1) when a side's candidate
/// has been recomputed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    Event,
    User,
}

#[derive(Clone, Copy, Debug)]
struct Cand {
    ratio: f64,
    inc: Cost,
    v: EventId,
    u: UserId,
    side: Side,
    /// Generation stamp; a heap entry is live only while it matches the
    /// side's current generation (lazy deletion).
    gen: u64,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Cand {}

impl Ord for Cand {
    /// Max-heap order: ratio descending, then `inc_cost` ascending (the
    /// paper's tie-break), then ids ascending for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        self.ratio
            .total_cmp(&other.ratio)
            .then_with(|| other.inc.cmp(&self.inc))
            .then_with(|| other.v.cmp(&self.v))
            .then_with(|| other.u.cmp(&self.u))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// `ratio(v, u)` of Eq. (2). `inc = 0` (an event exactly on the way)
/// yields `+∞`, which simply sorts first; `μ > 0` is guaranteed by the
/// caller, so the ratio is never NaN.
fn ratio_of(mu: f64, inc: Cost) -> f64 {
    debug_assert!(mu > 0.0);
    let inc = inc.as_f64();
    if inc == 0.0 {
        f64::INFINITY
    } else {
        mu / inc
    }
}

/// Per-user occupancy bitsets over events: `⌈|V|/64⌉` words per user,
/// bit `v` set iff `v ∈ S_u`. On the flat view a whole feasibility
/// probe collapses to `conflict_word & occupied_word != 0` against
/// these rows; the object view ignores them and re-scans intervals.
struct Occupancy {
    words: usize,
    bits: Vec<u64>,
}

impl Occupancy {
    fn from_planning(nv: usize, planning: &Planning) -> Occupancy {
        let words = nv.div_ceil(64);
        let mut bits = vec![0u64; planning.schedules().len() * words];
        for (u, s) in planning.schedules().iter().enumerate() {
            for &v in s.events() {
                bits[u * words + v.index() / 64] |= 1u64 << (v.index() % 64);
            }
        }
        Occupancy { words, bits }
    }

    #[inline]
    fn row(&self, u: UserId) -> &[u64] {
        &self.bits[u.index() * self.words..(u.index() + 1) * self.words]
    }

    #[inline]
    fn set(&mut self, u: UserId, v: EventId) {
        self.bits[u.index() * self.words + v.index() / 64] |= 1u64 << (v.index() % 64);
    }
}

/// Remaining capacity of `v` through the view (identical to
/// `Planning::remaining_capacity`, which takes the full instance).
#[inline]
fn remaining_capacity<V: CoreView>(view: &V, planning: &Planning, v: EventId) -> u32 {
    view.capacity(v).saturating_sub(planning.load(v))
}

/// Validity of the pair per Alg. 1: capacity left, `μ > 0`, not yet in
/// `S_u`, time-feasible insertion, reachable legs, and budget. Returns
/// the incremental cost when valid. A pure read of the planning, so
/// parallel scans may call it concurrently; rejects accumulate in the
/// caller's local counter block.
///
/// On the flat view the duplicate/time-conflict test is the bitmask
/// word-AND against `occ`'s row for `u`; the insertion *position* is
/// then recovered with the plain ordinal prefix scan. The object view
/// reports no mask and takes the legacy interval scan, so both paths
/// accept exactly the same pairs.
fn pair_inc<V: CoreView>(
    view: &V,
    planning: &Planning,
    occ: &Occupancy,
    v: EventId,
    u: UserId,
    lc: &mut LocalCounters,
) -> Option<Cost> {
    if remaining_capacity(view, planning, v) == 0 {
        lc.count(Counter::CapacityReject, 1);
        return None;
    }
    if view.mu(v, u) <= 0.0 {
        return None;
    }
    let s = planning.schedule(u);
    let pos = match view.occupied_conflicts(occ.row(u), v) {
        Some(true) => return None,
        Some(false) => view.insertion_pos_unchecked(s.events(), v),
        None => view.insertion_point(s.events(), v)?,
    };
    let inc = view.inc_cost_at(s.events(), u, v, pos);
    if inc.is_infinite() {
        return None;
    }
    if view.total_cost(s.events(), u).add(inc) > view.budget(u) {
        lc.count(Counter::BudgetReject, 1);
        return None;
    }
    Some(inc)
}

/// The scan half of an event refresh (lines 3–5 / 12–14): the best user
/// for `v` by ratio, tie-broken by `inc_cost` then id. Pure.
fn scan_event<V: CoreView>(
    view: &V,
    planning: &Planning,
    occ: &Occupancy,
    v: EventId,
    lc: &mut LocalCounters,
) -> Option<(UserId, f64, Cost)> {
    if remaining_capacity(view, planning, v) == 0 {
        return None;
    }
    let mut best: Option<(UserId, f64, Cost)> = None;
    for ui in 0..view.num_users() as u32 {
        let u = UserId(ui);
        let Some(inc) = pair_inc(view, planning, occ, v, u, lc) else { continue };
        let r = ratio_of(view.mu(v, u), inc);
        let better = match best {
            None => true,
            Some((bu, br, binc)) => {
                r > br || (r == br && (inc < binc || (inc == binc && u < bu)))
            }
        };
        if better {
            best = Some((u, r, inc));
        }
    }
    best
}

/// The scan half of a user refresh (lines 6–8 / 19–20): the best event
/// for `u` among `events`. Pure.
fn scan_user<V: CoreView>(
    view: &V,
    planning: &Planning,
    occ: &Occupancy,
    events: &[EventId],
    u: UserId,
    lc: &mut LocalCounters,
) -> Option<(EventId, f64, Cost)> {
    let mut best: Option<(EventId, f64, Cost)> = None;
    for &v in events {
        let Some(inc) = pair_inc(view, planning, occ, v, u, lc) else { continue };
        let r = ratio_of(view.mu(v, u), inc);
        let better = match best {
            None => true,
            Some((bv, br, binc)) => {
                r > br || (r == br && (inc < binc || (inc == binc && v < bv)))
            }
        };
        if better {
            best = Some((v, r, inc));
        }
    }
    best
}

struct Engine<'a, V: CoreView + Sync> {
    inst: &'a Instance,
    /// The hot-path accessor surface: the frozen `FlatInstance`
    /// normally, the instance itself under `with_object_path`.
    view: &'a V,
    planning: &'a mut Planning,
    /// Per-user occupancy bitsets, kept in lockstep with `planning`.
    occ: Occupancy,
    /// The events this run may assign (all events for plain RatioGreedy;
    /// the non-full ones for the `+RG` pass).
    events: &'a [EventId],
    heap: BinaryHeap<Cand>,
    /// Current generation per event (index = position in `events`).
    event_gen: Vec<u64>,
    /// Current best candidate per event, if any.
    event_best: Vec<Option<(UserId, f64, Cost)>>,
    user_gen: Vec<u64>,
    user_best: Vec<Option<(EventId, f64, Cost)>>,
    /// Maps `EventId` to its position in `events` (u32::MAX = excluded).
    event_pos: Vec<u32>,
    next_gen: u64,
    /// Worker count for the scan fan-outs (resolved once per run).
    threads: usize,
    guard: &'a Guard,
    probe: &'a dyn Probe,
}

impl<'a, V: CoreView + Sync> Engine<'a, V> {
    fn new(
        inst: &'a Instance,
        view: &'a V,
        planning: &'a mut Planning,
        events: &'a [EventId],
        guard: &'a Guard,
        probe: &'a dyn Probe,
    ) -> Self {
        let mut event_pos = vec![u32::MAX; inst.num_events()];
        for (i, &v) in events.iter().enumerate() {
            event_pos[v.index()] = i as u32;
        }
        let occ = Occupancy::from_planning(inst.num_events(), planning);
        Engine {
            inst,
            view,
            planning,
            occ,
            events,
            heap: BinaryHeap::new(),
            event_gen: vec![0; events.len()],
            event_best: vec![None; events.len()],
            user_gen: vec![0; inst.num_users()],
            user_best: vec![None; inst.num_users()],
            event_pos,
            next_gen: 1,
            threads: current_threads(),
            guard,
            probe,
        }
    }

    /// The commit half of an event refresh: bumps the generation, stores
    /// the scan's best and pushes it. Commits always run on the driving
    /// thread, in item-index order.
    fn commit_event(&mut self, pos: usize, v: EventId, best: Option<(UserId, f64, Cost)>) {
        self.probe.count(Counter::CandidateRefreshEvent, 1);
        self.next_gen += 1;
        self.event_gen[pos] = self.next_gen;
        self.event_best[pos] = best;
        if let Some((u, r, inc)) = best {
            self.probe.count(Counter::HeapPush, 1);
            self.heap.push(Cand { ratio: r, inc, v, u, side: Side::Event, gen: self.next_gen });
        }
    }

    /// The commit half of a user refresh.
    fn commit_user(&mut self, u: UserId, best: Option<(EventId, f64, Cost)>) {
        self.probe.count(Counter::CandidateRefreshUser, 1);
        self.next_gen += 1;
        self.user_gen[u.index()] = self.next_gen;
        self.user_best[u.index()] = best;
        if let Some((v, r, inc)) = best {
            self.probe.count(Counter::HeapPush, 1);
            self.heap.push(Cand { ratio: r, inc, v, u, side: Side::User, gen: self.next_gen });
        }
    }

    /// Recomputes the best user for event `v` (lines 3–5 / 12–14) and
    /// pushes it.
    fn refresh_event(&mut self, v: EventId) {
        let pos = self.event_pos[v.index()];
        if pos == u32::MAX {
            return; // event excluded from this run
        }
        let mut lc = LocalCounters::new();
        let best = scan_event(self.view, self.planning, &self.occ, v, &mut lc);
        lc.flush_into(self.probe);
        self.commit_event(pos as usize, v, best);
    }

    /// Recomputes the best event for user `u` (lines 6–8 / 19–20) and
    /// pushes it.
    fn refresh_user(&mut self, u: UserId) {
        let mut lc = LocalCounters::new();
        let best = scan_user(self.view, self.planning, &self.occ, self.events, u, &mut lc);
        lc.flush_into(self.probe);
        self.commit_user(u, best);
    }

    /// Seeds the heap with every event's and every user's best pair.
    /// With more than one thread the scans fan out over the pool and
    /// the commits replay in index order, reproducing the sequential
    /// generation sequence exactly.
    fn seed(&mut self) {
        let users: Vec<UserId> = self.inst.user_ids().collect();
        if self.threads > 1 && self.events.len().max(users.len()) >= MIN_PAR_ITEMS {
            let (view, probe) = (self.view, self.probe);
            let occ = &self.occ;
            let planning: &Planning = self.planning;
            let event_scans = par_map_section(
                self.threads,
                "par.seed_events",
                probe,
                self.events,
                self.guard,
                LocalCounters::new,
                |lc, _, &v| scan_event(view, planning, occ, v, lc),
                |mut lc| lc.flush_into(probe),
            );
            for (pos, scan) in event_scans.into_iter().enumerate() {
                // a `None` slot means the guard tripped before this
                // chunk: skip the commit, the drain loop stops anyway
                let Some(best) = scan else { continue };
                self.commit_event(pos, self.events[pos], best);
            }
            let events = self.events;
            let occ = &self.occ;
            let planning: &Planning = self.planning;
            let user_scans = par_map_section(
                self.threads,
                "par.seed_users",
                probe,
                &users,
                self.guard,
                LocalCounters::new,
                |lc, _, &u| scan_user(view, planning, occ, events, u, lc),
                |mut lc| lc.flush_into(probe),
            );
            for (i, scan) in user_scans.into_iter().enumerate() {
                let Some(best) = scan else { continue };
                self.commit_user(users[i], best);
            }
        } else {
            // the inline fallback ticks the same section span/counter as
            // the fan-out path, so trace snapshots stay identical across
            // thread counts
            let probe = self.probe;
            with_span(probe, "par.seed_events", || {
                probe.count(Counter::ParSection, 1);
                for i in 0..self.events.len() {
                    if self.guard.checkpoint() {
                        break;
                    }
                    self.refresh_event(self.events[i]);
                }
            });
            with_span(probe, "par.seed_users", || {
                probe.count(Counter::ParSection, 1);
                for &u in &users {
                    if self.guard.checkpoint() {
                        break;
                    }
                    self.refresh_user(u);
                }
            });
        }
    }

    fn run(&mut self) {
        self.probe.span_enter("ratio_greedy.seed");
        self.seed();
        self.probe.span_exit("ratio_greedy.seed");
        self.probe.span_enter("ratio_greedy.drain");
        while let Some(c) = self.heap.pop() {
            // every assignment made so far is a valid prefix — stop here
            // when the budget is exhausted
            if self.guard.checkpoint() {
                break;
            }
            self.probe.count(Counter::HeapPop, 1);
            // lazy deletion: only the entry matching the side's current
            // generation is live
            let live = match c.side {
                Side::Event => {
                    let p = self.event_pos[c.v.index()] as usize;
                    self.event_gen[p] == c.gen
                }
                Side::User => self.user_gen[c.u.index()] == c.gen,
            };
            if !live {
                self.probe.count(Counter::HeapPopStale, 1);
                continue;
            }
            // consume the side's slot
            match c.side {
                Side::Event => self.event_best[self.event_pos[c.v.index()] as usize] = None,
                Side::User => self.user_best[c.u.index()] = None,
            }
            let mut lc = LocalCounters::new();
            let revalidated = pair_inc(self.view, self.planning, &self.occ, c.v, c.u, &mut lc);
            lc.flush_into(self.probe);
            let added = if let Some(inc) = revalidated {
                self.planning
                    .assign(self.inst, c.u, c.v)
                    .expect("pair validated as assignable");
                self.occ.set(c.u, c.v);
                if self.probe.enabled() {
                    self.probe.record("ratio_greedy.accepted_inc", inc.as_f64());
                }
                true
            } else {
                false
            };
            // lines 12-14 & 19-20: new best pair for the popped event and user
            self.refresh_event(c.v);
            self.refresh_user(c.u);
            if added {
                // lines 15-18: u's schedule changed, so every heap pair
                // incident to u may have a different inc_cost — recompute
                // the events whose current best user is u
                let incident: Vec<(u32, EventId)> = self
                    .event_best
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| match b {
                        Some((bu, _, _)) if *bu == c.u && self.events[i] != c.v => {
                            Some((i as u32, self.events[i]))
                        }
                        _ => None,
                    })
                    .collect();
                if self.threads > 1 && incident.len() >= MIN_PAR_ITEMS {
                    let (view, probe) = (self.view, self.probe);
                    let occ = &self.occ;
                    let planning: &Planning = self.planning;
                    let scans = par_map_section(
                        self.threads,
                        "par.refresh_incident",
                        probe,
                        &incident,
                        self.guard,
                        LocalCounters::new,
                        |lc, _, &(_, v)| scan_event(view, planning, occ, v, lc),
                        |mut lc| lc.flush_into(probe),
                    );
                    for (k, scan) in scans.into_iter().enumerate() {
                        let Some(best) = scan else { continue };
                        let (pos, v) = incident[k];
                        self.commit_event(pos as usize, v, best);
                    }
                } else {
                    let probe = self.probe;
                    with_span(probe, "par.refresh_incident", || {
                        probe.count(Counter::ParSection, 1);
                        for &(_, v) in &incident {
                            self.refresh_event(v);
                        }
                    });
                }
                // and the user-side entries offering the now-possibly-full
                // event v are handled lazily: they fail `pair_inc` on pop
                // and trigger a refresh then.
            }
        }
        self.probe.span_exit("ratio_greedy.drain");
    }
}

/// Runs the RatioGreedy engine on `planning`, restricted to `events`
/// (Algorithm 1; also the `+RG` pass when `planning` is non-empty and
/// `events` are the non-full ones). Existing schedules are respected —
/// incremental costs are computed against them.
pub(crate) fn run_ratio_greedy(
    inst: &Instance,
    planning: &mut Planning,
    events: &[EventId],
    guard: &Guard,
    probe: &dyn Probe,
) {
    if events.is_empty() || inst.num_users() == 0 {
        return;
    }
    // the view decision is made once, here, on the calling thread; the
    // chosen view flows into the parallel scan closures, so workers
    // never consult the thread-local
    if usep_core::object_path_forced() {
        Engine::new(inst, inst, planning, events, guard, probe).run();
    } else {
        let flat = inst.freeze();
        Engine::new(inst, &*flat, planning, events, guard, probe).run();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_core::{InstanceBuilder, Point, TimeInterval};

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    #[test]
    fn empty_instance() {
        let mut b = InstanceBuilder::new();
        b.user(Point::ORIGIN, Cost::new(10));
        let inst = b.build().unwrap();
        let p = RatioGreedy.solve(&inst);
        assert_eq!(p.num_assignments(), 0);
    }

    #[test]
    fn no_users() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 1));
        let inst = b.build().unwrap();
        let p = RatioGreedy.solve(&inst);
        assert_eq!(p.num_assignments(), 0);
    }

    #[test]
    fn picks_highest_ratio_pair_first() {
        let mut b = InstanceBuilder::new();
        // v0 near u0 (cheap), v1 far (expensive), same utility
        let v0 = b.event(1, Point::new(1, 0), iv(0, 10));
        let v1 = b.event(1, Point::new(50, 0), iv(0, 10)); // conflicts with v0
        let u0 = b.user(Point::ORIGIN, Cost::new(200));
        b.utility(v0, u0, 0.5);
        b.utility(v1, u0, 0.5);
        let inst = b.build().unwrap();
        let p = RatioGreedy.solve(&inst);
        // both conflict, so only one fits; the cheaper one wins by ratio
        assert_eq!(p.schedule(u0).events(), &[v0]);
        assert!(p.validate(&inst).is_ok());
    }

    #[test]
    fn respects_capacity() {
        let mut b = InstanceBuilder::new();
        let v0 = b.event(1, Point::ORIGIN, iv(0, 10));
        let u0 = b.user(Point::new(1, 0), Cost::new(100));
        let u1 = b.user(Point::new(1, 0), Cost::new(100));
        b.utility(v0, u0, 0.9);
        b.utility(v0, u1, 0.8);
        let inst = b.build().unwrap();
        let p = RatioGreedy.solve(&inst);
        assert_eq!(p.load(v0), 1);
        // the higher-ratio user gets it
        assert_eq!(p.schedule(u0).events(), &[v0]);
        assert!(p.schedule(u1).is_empty());
    }

    #[test]
    fn zero_inc_cost_pair_sorts_first() {
        let mut b = InstanceBuilder::new();
        // u0 sits exactly at v0: round trip costs 0
        let v0 = b.event(1, Point::ORIGIN, iv(0, 10));
        let v1 = b.event(1, Point::new(1, 0), iv(20, 30));
        let u0 = b.user(Point::ORIGIN, Cost::new(100));
        b.utility(v0, u0, 0.1); // tiny utility but infinite ratio
        b.utility(v1, u0, 0.9);
        let inst = b.build().unwrap();
        let p = RatioGreedy.solve(&inst);
        // both fit; just verify feasibility and that v0 was taken
        assert!(p.schedule(u0).contains(v0));
        assert!(p.schedule(u0).contains(v1));
        assert!(p.validate(&inst).is_ok());
    }

    #[test]
    fn budget_limits_schedule() {
        let mut b = InstanceBuilder::new();
        let v0 = b.event(5, Point::new(2, 0), iv(0, 10));
        let v1 = b.event(5, Point::new(4, 0), iv(10, 20));
        let v2 = b.event(5, Point::new(40, 0), iv(20, 30));
        let u0 = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(v0, u0, 0.5);
        b.utility(v1, u0, 0.5);
        b.utility(v2, u0, 1.0);
        let inst = b.build().unwrap();
        let p = RatioGreedy.solve(&inst);
        assert!(p.validate(&inst).is_ok());
        // v2 is unaffordable (round trip 80 > 10)
        assert!(!p.schedule(u0).contains(v2));
    }

    #[test]
    fn incident_pairs_are_refreshed_when_inc_cost_improves() {
        // Algorithm 1 lines 15-18: after u0 gets v_far, inserting v_mid
        // becomes *cheaper* for u0 (it sits on the way), so its ratio
        // jumps. A lazy implementation that only re-checks validity at
        // pop time would still use the stale, worse ratio and could lose
        // the capacity race for v_mid to u1.
        let mut b = InstanceBuilder::new();
        let v_far = b.event(1, Point::new(10, 0), iv(0, 10));
        let v_mid = b.event(1, Point::new(5, 0), iv(10, 20)); // capacity 1!
        let u0 = b.user(Point::new(0, 0), Cost::new(40));
        let u1 = b.user(Point::new(5, 4), Cost::new(40));
        b.utility(v_far, u0, 0.9);
        // stale ratio for (v_mid, u0): 0.4 / 10 = 0.04 (round trip);
        // fresh after v_far: inc = cost(v_far,v_mid) + cost(v_mid,u0)
        //                        - cost(v_far,u0) = 5 + 5 - 10 = 0 → ∞
        b.utility(v_mid, u0, 0.4);
        // competitor ratio for (v_mid, u1): 0.3 / 8 = 0.0375 < 0.04 is
        // false... make it sit between stale (0.04) and fresh (∞):
        // inc for u1 = 2·4 = 8 → 0.35/8 = 0.044 > 0.04
        b.utility(v_mid, u1, 0.35);
        let inst = b.build().unwrap();
        assert_eq!(inst.cost_uv(u1, v_mid), Cost::new(4));
        let p = RatioGreedy.solve(&inst);
        assert!(p.validate(&inst).is_ok());
        // with eager incident refresh, u0's post-insertion ratio for
        // v_mid is infinite (zero marginal travel) and beats u1's 0.044
        assert!(
            p.schedule(u0).contains(v_mid),
            "incident refresh failed: u0 lost the free-on-the-way event, got {:?} / {:?}",
            p.schedule(u0).events(),
            p.schedule(u1).events()
        );
        assert!(p.schedule(u0).contains(v_far));
    }

    #[test]
    fn multi_user_multi_event_feasible_and_deterministic() {
        let mut b = InstanceBuilder::new();
        let mut vs = Vec::new();
        for i in 0..6 {
            vs.push(b.event(
                2,
                Point::new(i * 3, (i % 2) * 4),
                iv(i64::from(i) * 10, i64::from(i) * 10 + 8),
            ));
        }
        let mut us = Vec::new();
        for j in 0..4 {
            us.push(b.user(Point::new(j * 2, 1), Cost::new(60)));
        }
        for (i, &v) in vs.iter().enumerate() {
            for (j, &u) in us.iter().enumerate() {
                b.utility(v, u, 0.1 + 0.13 * ((i * 4 + j) % 7) as f64);
            }
        }
        let inst = b.build().unwrap();
        let p1 = RatioGreedy.solve(&inst);
        let p2 = RatioGreedy.solve(&inst);
        assert_eq!(p1, p2, "deterministic");
        assert!(p1.validate(&inst).is_ok());
        assert!(p1.num_assignments() > 0);
    }

    #[test]
    fn probe_counters_satisfy_lazy_heap_invariants() {
        use usep_trace::TraceSink;
        let mut b = InstanceBuilder::new();
        let mut vs = Vec::new();
        for i in 0..5 {
            vs.push(b.event(
                2,
                Point::new(i * 4, i % 3),
                iv(i64::from(i) * 10, i64::from(i) * 10 + 8),
            ));
        }
        let mut us = Vec::new();
        for j in 0..4 {
            us.push(b.user(Point::new(j, 2), Cost::new(50)));
        }
        for (i, &v) in vs.iter().enumerate() {
            for (j, &u) in us.iter().enumerate() {
                b.utility(v, u, 0.15 + 0.11 * ((i * 3 + j) % 6) as f64);
            }
        }
        let inst = b.build().unwrap();

        let sink = TraceSink::new();
        let traced = RatioGreedy.solve_with_probe(&inst, &sink);
        assert_eq!(traced, RatioGreedy.solve(&inst), "probes must not steer the result");

        let pop = sink.counter(Counter::HeapPop);
        let stale = sink.counter(Counter::HeapPopStale);
        let push = sink.counter(Counter::HeapPush);
        assert!(pop >= stale, "every stale pop is a pop: pop={pop} stale={stale}");
        assert_eq!(push, pop, "the drain loop empties the heap exactly");
        assert!(sink.counter(Counter::CandidateRefreshEvent) >= 5, "one seed refresh per event");
        assert!(sink.counter(Counter::CandidateRefreshUser) >= 4, "one seed refresh per user");
        // every assignment came out of an accepted pop
        assert!(pop - stale >= traced.num_assignments() as u64);
        let spans = sink.span_totals();
        for name in ["ratio_greedy", "ratio_greedy.seed", "ratio_greedy.drain"] {
            assert!(spans.iter().any(|t| t.name == name && t.count == 1), "missing span {name}");
        }
    }
}
