//! DeDP (Algorithms 2 + 3): the literal decomposed-DP algorithm.
//!
//! This implementation deliberately keeps the paper's original data
//! layout: a dense `μ^r` matrix over all pseudo-events × users
//! (`O(|V| |U| max c_v)` doubles), updated after every user via the Local
//! Ratio decomposition:
//!
//! * for every pseudo-event `v̂_i` in the freshly computed schedule
//!   `Ŝ_{u_r}`: `μ^{r+1}(v̂_i, u_j) ← μ^r(v̂_i, u_j) − μ^r(v̂_i, u_r)`
//!   for all `j > r`;
//! * the entire column of `u_r` is zeroed.
//!
//! The memory-vs-speed behaviour of this variant is what the paper's
//! Figures 2–3 measure as "DeDP"; use [`DeDPO`](super::DeDPO) for
//! identical plannings at a fraction of the footprint.

use super::{
    build_planning_from_holders, Candidate, DpScheduler, Lemma1Row, PseudoLayout,
    SingleScheduler,
};
use crate::{finish_guarded, GuardedSolve, Solver};
use usep_core::{CoreView, EventId, Instance, Planning, UserId};
use usep_guard::Guard;
use usep_trace::{with_span, Counter, Probe};

/// DeDP (Alg. 3): ½-approximate, with the literal `μ^r` matrix.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeDP {
    _private: (),
}

impl DeDP {
    /// Creates the solver.
    pub fn new() -> DeDP {
        DeDP::default()
    }
}

impl Solver for DeDP {
    fn name(&self) -> &'static str {
        "DeDP"
    }

    fn solve_with_probe(&self, inst: &Instance, probe: &dyn Probe) -> Planning {
        self.solve_guarded(inst, Guard::none(), probe).planning
    }

    fn solve_guarded(&self, inst: &Instance, guard: &Guard, probe: &dyn Probe) -> GuardedSolve {
        // view choice is made once per solve, on the calling thread
        if usep_core::object_path_forced() {
            solve_guarded_with(inst, inst, guard, probe)
        } else {
            let flat = inst.freeze();
            solve_guarded_with(inst, &*flat, guard, probe)
        }
    }
}

fn solve_guarded_with<V: CoreView>(
    inst: &Instance,
    view: &V,
    guard: &Guard,
    probe: &dyn Probe,
) -> GuardedSolve {
    let nu = inst.num_users();
    let layout = PseudoLayout::new(inst);
    let total = layout.total();

    // The μ^r matrix dominates DeDP's footprint; charge it against
    // the ceiling before allocating. On refusal there is no valid
    // prefix to salvage (no user has been scheduled), so the result
    // is the empty planning, truncated.
    let matrix_bytes = layout.mu_matrix_bytes(nu);
    if !guard.try_reserve(matrix_bytes) {
        let planning = build_planning_from_holders(inst, &layout, &vec![0u32; total]);
        return GuardedSolve { planning, outcome: finish_guarded(guard, probe) };
    }

    // μ^r, pseudo-major: mu_m[p * |U| + u]. Row updates (the chosen
    // pseudo-events, subtracted across all later users) are then
    // contiguous.
    probe.count(Counter::PseudoMatrixBytes, matrix_bytes as u64);
    let mut mu_m = vec![0.0f64; total * nu];
    for v in inst.event_ids() {
        for p in layout.slots(v) {
            for u in 0..nu {
                mu_m[p * nu + u] = view.mu(v, UserId(u as u32));
            }
        }
    }

    // step 1: Ŝ_{u_r} per user, as (slot, event) pairs in time order
    let mut hat: Vec<Vec<u32>> = Vec::with_capacity(nu);
    let mut scheduler = DpScheduler::with_guard(probe, guard);
    let order = inst.temporal().order();
    let mut cands: Vec<Candidate> = Vec::with_capacity(inst.num_events());
    let mut lemma1 = Lemma1Row::new(inst);

    probe.span_enter("decomposed.step1");
    for r in 0..nu {
        // users scheduled so far form a valid prefix: stop between
        // users when the budget runs out
        if guard.checkpoint() {
            break;
        }
        let u = UserId(r as u32);
        probe.count(Counter::CandidateRefreshUser, 1);
        lemma1.fill(view, u);
        cands.clear();
        for &vi in order {
            let v = EventId(vi);
            // v̂_i = argmax_k μ^r(v_{i,k}, u_r), ascending-k scan with
            // strict improvement
            let mut best_val = f64::NEG_INFINITY;
            let mut best_slot = 0usize;
            for p in layout.slots(v) {
                let val = mu_m[p * nu + r];
                if val > best_val {
                    best_val = val;
                    best_slot = p;
                }
            }
            if best_val > 0.0 && lemma1.passes(v) {
                cands.push(Candidate { v, slot: best_slot as u32, mu: best_val });
            }
        }
        let chosen = scheduler.schedule(view, u, &cands);
        let mut slots = Vec::with_capacity(chosen.len());
        for &ci in &chosen {
            let p = cands[ci].slot as usize;
            let base = mu_m[p * nu + r];
            for j in (r + 1)..nu {
                mu_m[p * nu + j] -= base;
            }
            slots.push(p as u32);
        }
        // μ^{r+1}(v_{i,k}, u_r) = 0, ∀i, k
        for p in 0..total {
            mu_m[p * nu + r] = 0.0;
        }
        hat.push(slots);
    }
    probe.span_exit("decomposed.step1");
    drop(mu_m);
    guard.release(matrix_bytes);

    // step 2: scan r = |U| .. 1, dropping pseudo-events already kept
    // by a later user — equivalently, each slot stays with its last
    // holder. `hat` may cover only a prefix of the users when the
    // guard tripped; the resolution is unchanged.
    let planning = with_span(probe, "decomposed.step2", || {
        let mut holder = vec![0u32; total];
        for (r, slots) in hat.iter().enumerate() {
            for &p in slots {
                holder[p as usize] = r as u32 + 1;
            }
        }
        build_planning_from_holders(inst, &layout, &holder)
    });
    GuardedSolve { planning, outcome: finish_guarded(guard, probe) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeDPO;
    use usep_core::{Cost, InstanceBuilder, Point, TimeInterval};

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    #[test]
    fn dedp_equals_dedpo_on_structured_instance() {
        let mut b = InstanceBuilder::new();
        let mut vs = Vec::new();
        for i in 0..6i32 {
            let start = i64::from(i % 3) * 10;
            vs.push(b.event(2, Point::new(i * 3, i % 2), iv(start, start + 9)));
        }
        let mut us = Vec::new();
        for j in 0..7i32 {
            us.push(b.user(Point::new(j, 2 - j), Cost::new(40)));
        }
        for (i, &v) in vs.iter().enumerate() {
            for (j, &u) in us.iter().enumerate() {
                b.utility(v, u, ((i * 7 + j * 3) % 11) as f64 / 11.0);
            }
        }
        let inst = b.build().unwrap();
        let a = DeDP::new().solve(&inst);
        let b2 = DeDPO::new().solve(&inst);
        assert_eq!(a, b2, "DeDP and DeDPO must produce identical plannings");
        assert!(a.validate(&inst).is_ok());
    }

    #[test]
    fn steals_resolve_to_last_holder() {
        let mut b = InstanceBuilder::new();
        let v = b.event(1, Point::ORIGIN, iv(0, 10));
        let u0 = b.user(Point::ORIGIN, Cost::new(10));
        let u1 = b.user(Point::ORIGIN, Cost::new(10));
        let u2 = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(v, u0, 0.2);
        b.utility(v, u1, 0.5);
        b.utility(v, u2, 0.9);
        let inst = b.build().unwrap();
        let p = DeDP::new().solve(&inst);
        assert!(p.schedule(u0).is_empty());
        assert!(p.schedule(u1).is_empty());
        assert_eq!(p.schedule(u2).events(), &[v]);
    }

    #[test]
    fn chain_of_steals_uses_marginal_utilities() {
        // u2's marginal gain over u1 (0.9 - 0.5 = 0.4) competes against
        // its other option
        let mut b = InstanceBuilder::new();
        let v0 = b.event(1, Point::ORIGIN, iv(0, 10));
        let v1 = b.event(1, Point::ORIGIN, iv(0, 10)); // conflicts with v0
        let u0 = b.user(Point::ORIGIN, Cost::new(10));
        let u1 = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(v0, u0, 0.5);
        b.utility(v1, u0, 0.1);
        b.utility(v0, u1, 0.9);
        b.utility(v1, u1, 0.45);
        let inst = b.build().unwrap();
        // u0 takes v0 (0.5 > 0.1). u1's marginal for v0 is 0.4 < 0.45 for
        // free v1, so u1 takes v1 and u0 keeps v0.
        let p = DeDP::new().solve(&inst);
        assert_eq!(p.schedule(u0).events(), &[v0]);
        assert_eq!(p.schedule(u1).events(), &[v1]);
        assert!((p.omega(&inst) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn no_users_or_no_events() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 1));
        let inst = b.build().unwrap();
        assert_eq!(DeDP::new().solve(&inst).num_assignments(), 0);

        let mut b = InstanceBuilder::new();
        b.user(Point::ORIGIN, Cost::new(5));
        let inst = b.build().unwrap();
        assert_eq!(DeDP::new().solve(&inst).num_assignments(), 0);
    }
}
