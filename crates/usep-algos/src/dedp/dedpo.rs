//! DeDPO (Algorithm 4): the space/speed-optimized two-step framework.
//!
//! Lemma 2 shows that when the framework is about to process user `u_r`,
//! the decomposed utility of a pseudo-event slot is fully determined by
//! the *last* user whose step-1 schedule contained the slot:
//! `μ^r(v_{i,k}, u_r) = μ(v_i, u_r) − μ(v_i, u_last)` (or the plain
//! `μ(v_i, u_r)` for a free slot). DeDPO therefore keeps only a
//! `select(v_i, k)` array instead of the full `μ^r` matrix, saving
//! `O(|V| |U| max c_v)` space and the per-iteration matrix update, while
//! producing exactly the same planning as [`DeDP`](super::DeDP).
//!
//! The driver is generic over the single-user subproblem solver, so
//! [`DeGreedy`](crate::DeGreedy) reuses it with the greedy of Alg. 5.

use super::{
    build_planning_from_holders, Candidate, DpScheduler, Lemma1Row, PseudoLayout,
    SingleScheduler,
};
use crate::augment::augment_with_ratio_greedy_guarded;
use crate::{finish_guarded, GuardedSolve, Solver};
use usep_core::{CoreView, EventId, Instance, Planning, UserId};
use usep_guard::Guard;
use usep_trace::{with_span, Counter, Probe};

/// DeDPO (Alg. 4): ½-approximate, `O(|V| max c_v + |V| b_u + |V||U|)`
/// space. `with_augment()` turns it into the paper's DeDPO+RG.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeDPO {
    augment: bool,
}

impl DeDPO {
    /// Plain DeDPO.
    pub fn new() -> DeDPO {
        DeDPO { augment: false }
    }

    /// DeDPO followed by the RatioGreedy pass over residual capacity
    /// (§4.3.2) — the paper's DeDPO+RG. Still ½-approximate: the pass
    /// only ever adds utility.
    pub fn with_augment(self) -> DeDPO {
        DeDPO { augment: true }
    }
}

impl Solver for DeDPO {
    fn name(&self) -> &'static str {
        if self.augment {
            "DeDPO+RG"
        } else {
            "DeDPO"
        }
    }

    fn solve_with_probe(&self, inst: &Instance, probe: &dyn Probe) -> Planning {
        self.solve_guarded(inst, Guard::none(), probe).planning
    }

    fn solve_guarded(&self, inst: &Instance, guard: &Guard, probe: &dyn Probe) -> GuardedSolve {
        // view choice is made once per solve, on the calling thread
        let mut scheduler = DpScheduler::with_guard(probe, guard);
        let mut planning = if usep_core::object_path_forced() {
            decomposed_with_select(inst, inst, &mut scheduler, guard, probe)
        } else {
            let flat = inst.freeze();
            decomposed_with_select(inst, &*flat, &mut scheduler, guard, probe)
        };
        if self.augment && !guard.is_tripped() {
            augment_with_ratio_greedy_guarded(inst, &mut planning, guard, probe);
        }
        GuardedSolve { planning, outcome: finish_guarded(guard, probe) }
    }
}

/// The select-array two-step framework shared by DeDPO and DeGreedy.
///
/// For each user `u_r` (in id order, as the paper's decomposition
/// prescribes):
///
/// 1. per event, scan its slots and pick the one maximizing the Lemma-2
///    value (ascending-`k` scan with strict improvement, mirroring
///    DeDP's `argmax` so both algorithms break ties identically);
/// 2. keep candidates with positive decomposed utility (`V_r`) that pass
///    the Lemma-1 round-trip filter (`V'_r`), in end-time order;
/// 3. let `scheduler` solve the single-user subproblem;
/// 4. stamp the chosen slots with `r + 1`.
///
/// Step 2 of the framework — keep each slot with its last holder — is
/// exactly what the final `select` array encodes.
pub(crate) fn decomposed_with_select<V: CoreView>(
    inst: &Instance,
    view: &V,
    scheduler: &mut impl SingleScheduler,
    guard: &Guard,
    probe: &dyn Probe,
) -> Planning {
    let layout = PseudoLayout::new(inst);
    let mut select = vec![0u32; layout.total()];
    let order = inst.temporal().order();
    let mut cands: Vec<Candidate> = Vec::with_capacity(inst.num_events());
    let mut lemma1 = Lemma1Row::new(inst);

    probe.span_enter("decomposed.step1");
    for r in 0..inst.num_users() as u32 {
        // the select array over the users handled so far is a valid
        // partial decomposition: stop between users on budget exhaustion
        if guard.checkpoint() {
            break;
        }
        let u = UserId(r);
        // building V'_r is the decomposed framework's per-user candidate
        // refresh (step 1 of Alg. 3/4)
        probe.count(Counter::CandidateRefreshUser, 1);
        let mu_row = view.mu_row(u);
        lemma1.fill(view, u);
        cands.clear();
        for &vi in order {
            let v = EventId(vi);
            let mu_vr = f64::from(mu_row[vi as usize]);
            if mu_vr <= 0.0 {
                // every slot value is μ(v, u_r) − (≥ 0) ≤ 0: never in V_r
                continue;
            }
            let mut best_val = f64::NEG_INFINITY;
            let mut best_slot = 0usize;
            for p in layout.slots(v) {
                let val = match select[p] {
                    0 => mu_vr,
                    holder => mu_vr - view.mu(v, UserId(holder - 1)),
                };
                if val > best_val {
                    best_val = val;
                    best_slot = p;
                }
            }
            if best_val > 0.0 && lemma1.passes(v) {
                cands.push(Candidate { v, slot: best_slot as u32, mu: best_val });
            }
        }
        let chosen = scheduler.schedule(view, u, &cands);
        for &ci in &chosen {
            select[cands[ci].slot as usize] = r + 1;
        }
    }
    probe.span_exit("decomposed.step1");

    with_span(probe, "decomposed.step2", || build_planning_from_holders(inst, &layout, &select))
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_core::{Cost, InstanceBuilder, Point, TimeInterval};

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    #[test]
    fn empty_instance() {
        let mut b = InstanceBuilder::new();
        b.user(Point::ORIGIN, Cost::new(5));
        let inst = b.build().unwrap();
        let p = DeDPO::new().solve(&inst);
        assert_eq!(p.num_assignments(), 0);
    }

    #[test]
    fn single_user_gets_optimal_schedule() {
        // per-user subproblem is solved optimally by the DP
        let mut b = InstanceBuilder::new();
        let v0 = b.event(1, Point::new(1, 0), iv(0, 10));
        let v1 = b.event(1, Point::new(2, 0), iv(10, 20));
        let v2 = b.event(1, Point::new(40, 0), iv(0, 20)); // conflicts with both
        let u = b.user(Point::ORIGIN, Cost::new(90));
        b.utility(v0, u, 0.4);
        b.utility(v1, u, 0.4);
        b.utility(v2, u, 0.7);
        let inst = b.build().unwrap();
        let p = DeDPO::new().solve(&inst);
        assert_eq!(p.schedule(u).events(), &[v0, v1]);
        assert!((p.omega(&inst) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn later_user_with_higher_utility_steals_the_slot() {
        let mut b = InstanceBuilder::new();
        let v = b.event(1, Point::ORIGIN, iv(0, 10)); // capacity 1
        let u0 = b.user(Point::ORIGIN, Cost::new(10));
        let u1 = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(v, u0, 0.3);
        b.utility(v, u1, 0.8); // strictly higher: steals
        let inst = b.build().unwrap();
        let p = DeDPO::new().solve(&inst);
        assert!(p.schedule(u0).is_empty());
        assert_eq!(p.schedule(u1).events(), &[v]);
        assert!((p.omega(&inst) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn later_user_with_equal_utility_does_not_steal() {
        let mut b = InstanceBuilder::new();
        let v = b.event(1, Point::ORIGIN, iv(0, 10));
        let u0 = b.user(Point::ORIGIN, Cost::new(10));
        let u1 = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(v, u0, 0.5);
        b.utility(v, u1, 0.5); // decomposed value 0: not in V_1
        let inst = b.build().unwrap();
        let p = DeDPO::new().solve(&inst);
        assert_eq!(p.schedule(u0).events(), &[v]);
        assert!(p.schedule(u1).is_empty());
    }

    #[test]
    fn capacity_two_serves_both_users() {
        let mut b = InstanceBuilder::new();
        let v = b.event(2, Point::ORIGIN, iv(0, 10));
        let u0 = b.user(Point::ORIGIN, Cost::new(10));
        let u1 = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(v, u0, 0.3);
        b.utility(v, u1, 0.8);
        let inst = b.build().unwrap();
        let p = DeDPO::new().solve(&inst);
        assert_eq!(p.load(v), 2);
        assert!((p.omega(&inst) - 1.1).abs() < 1e-6);
    }

    #[test]
    fn augment_never_decreases_omega() {
        let mut b = InstanceBuilder::new();
        let v0 = b.event(2, Point::new(1, 0), iv(0, 10));
        let v1 = b.event(2, Point::new(3, 0), iv(10, 20));
        let u0 = b.user(Point::ORIGIN, Cost::new(50));
        let u1 = b.user(Point::new(4, 0), Cost::new(50));
        b.utility(v0, u0, 0.9);
        b.utility(v1, u0, 0.2);
        b.utility(v0, u1, 0.9);
        b.utility(v1, u1, 0.2);
        let inst = b.build().unwrap();
        let base = DeDPO::new().solve(&inst).omega(&inst);
        let plus = DeDPO::new().with_augment().solve(&inst);
        assert!(plus.omega(&inst) >= base - 1e-9);
        assert!(plus.validate(&inst).is_ok());
    }

    #[test]
    fn output_is_always_feasible() {
        // a denser instance with conflicts and tight budgets
        let mut b = InstanceBuilder::new();
        let mut vs = Vec::new();
        for i in 0..8i32 {
            let start = i64::from(i % 4) * 10;
            vs.push(b.event(
                2,
                Point::new(i * 2, -i),
                iv(start, start + 12), // heavy overlaps
            ));
        }
        let mut us = Vec::new();
        for j in 0..5i32 {
            us.push(b.user(Point::new(j, j), Cost::new(25)));
        }
        for (i, &v) in vs.iter().enumerate() {
            for (j, &u) in us.iter().enumerate() {
                b.utility(v, u, ((i * 5 + j) % 10) as f64 / 10.0);
            }
        }
        let inst = b.build().unwrap();
        for p in [DeDPO::new().solve(&inst), DeDPO::new().with_augment().solve(&inst)] {
            p.validate(&inst).expect("feasible planning");
        }
    }
}
