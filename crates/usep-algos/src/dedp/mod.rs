//! The two-step approximation framework of §4 and its DP-based
//! instantiations.
//!
//! **Step 1** decomposes USEP into `|U|` single-user problems via the
//! Local Ratio Theorem: events are split into unit-capacity
//! *pseudo-events* `v_{i,k}` (`k < min(c_v, |U|)`); for each user `u_r` in
//! turn, the best pseudo-event per event (by the decomposed utility
//! `μ^r`) forms the candidate set `V_r`, Lemma 1 prunes events whose
//! round trip alone busts the budget, and a pseudo-polynomial dynamic
//! program (`dp_single`, Alg. 2) finds the utility-optimal feasible
//! schedule. The decomposed utilities are then updated so that a later
//! user only "steals" a pseudo-event when their original utility strictly
//! exceeds the current holder's.
//!
//! **Step 2** resolves multiply-assigned pseudo-events by keeping each
//! with the *last* user that scheduled it, which yields the
//! ½-approximation of Theorem 3.
//!
//! [`DeDP`] implements step 1 with the literal `μ^r` matrix over all
//! pseudo-events × users (`O(|V| |U| max c_v)` memory — the paper keeps
//! it as the strawman its Figures 2–3 measure). [`DeDPO`] replaces the
//! matrix with the `select` array justified by Lemma 2 (the value of
//! `μ^r(v_{i,k}, u_r)` only depends on the last user holding the slot),
//! producing byte-identical plannings with an order of magnitude less
//! memory. Both share `dp_single` and the step-2 logic.

mod dedp_literal;
mod dedpo;
mod dp_single;

pub use dedp_literal::DeDP;
pub use dedpo::DeDPO;
pub(crate) use dedpo::decomposed_with_select;
pub(crate) use dp_single::DpScheduler;

use usep_core::{CoreView, Cost, EventId, Instance, Planning, Schedule, UserId};

/// A candidate pseudo-event offered to the single-user subproblem:
/// event `v`, the global index of the chosen pseudo-event slot, and the
/// decomposed utility `μ^r(v̂_i, u_r) > 0`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Candidate {
    pub v: EventId,
    pub slot: u32,
    pub mu: f64,
}

/// Strategy for solving the single-user subproblem: given candidates in
/// end-time order, return the indices of the chosen ones (in time order).
///
/// Implemented by the DP of Alg. 2 ([`DpScheduler`]) and the greedy of
/// Alg. 5 (`GreedyScheduler` in [`crate::degreedy`]). Generic over the
/// instance view so the decomposed drivers run the same code against the
/// object path and the flat SoA path.
pub(crate) trait SingleScheduler {
    fn schedule<V: CoreView>(&mut self, view: &V, u: UserId, cands: &[Candidate]) -> Vec<usize>;
}

/// Unit-capacity pseudo-event layout: event `i` owns the global slot
/// indices `offsets[i] .. offsets[i] + caps[i]`, with capacities clamped
/// to `|U|` (line 1 of Alg. 3/4).
#[derive(Clone, Debug)]
pub(crate) struct PseudoLayout {
    offsets: Vec<u32>,
    caps: Vec<u32>,
    total: usize,
}

impl PseudoLayout {
    pub fn new(inst: &Instance) -> PseudoLayout {
        let nu = inst.num_users() as u32;
        let mut offsets = Vec::with_capacity(inst.num_events());
        let mut caps = Vec::with_capacity(inst.num_events());
        let mut total = 0u32;
        for e in inst.events() {
            offsets.push(total);
            let c = e.capacity.min(nu);
            caps.push(c);
            total = total
                .checked_add(c)
                .expect("pseudo-event count overflows u32");
        }
        PseudoLayout { offsets, caps, total: total as usize }
    }

    /// Total number of pseudo-events `Σ min(c_v, |U|)`.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Bytes the literal `μ^r` matrix of [`DeDP`] would occupy for `nu`
    /// users — the quantity orchestrators pre-estimate against a memory
    /// ceiling before attempting DeDP at all.
    #[inline]
    pub fn mu_matrix_bytes(&self, nu: usize) -> usize {
        self.total
            .saturating_mul(nu)
            .saturating_mul(std::mem::size_of::<f64>())
    }

    /// Global slot range of event `v`.
    #[inline]
    pub fn slots(&self, v: EventId) -> std::ops::Range<usize> {
        let o = self.offsets[v.index()] as usize;
        o..o + self.caps[v.index()] as usize
    }

    /// The event owning global slot `p` (O(log |V|)).
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub fn event_of(&self, p: usize) -> EventId {
        let i = self.offsets.partition_point(|&o| o as usize <= p) - 1;
        EventId(i as u32)
    }
}

/// Lemma 1 filter: an event whose lone round trip exceeds the budget can
/// never appear in a valid schedule (triangle inequality).
#[inline]
pub(crate) fn passes_lemma1<V: CoreView>(view: &V, u: UserId, v: EventId) -> bool {
    view.round_trip(u, v) <= view.budget(u)
}

/// The Lemma-1 filter as a precomputed row: one `round_trip` evaluation
/// per event when [`Lemma1Row::fill`] switches to a user, then pure
/// lookups during the candidate scan. The buffer is allocated once per
/// solve and reused across all `|U|` users, so the step-1 loops of
/// DeDP/DeDPO/DeGreedy never recompute travel geometry inside the scan.
pub(crate) struct Lemma1Row {
    rt: Vec<Cost>,
    budget: Cost,
}

impl Lemma1Row {
    pub fn new(inst: &Instance) -> Lemma1Row {
        Lemma1Row { rt: vec![Cost::new(0); inst.num_events()], budget: Cost::new(0) }
    }

    /// Recomputes the row for user `u`.
    pub fn fill<V: CoreView>(&mut self, view: &V, u: UserId) {
        self.budget = view.budget(u);
        for (vi, slot) in self.rt.iter_mut().enumerate() {
            *slot = view.round_trip(u, EventId(vi as u32));
        }
    }

    /// `passes_lemma1` for the filled user, as a table lookup.
    #[inline]
    pub fn passes(&self, v: EventId) -> bool {
        self.rt[v.index()] <= self.budget
    }
}

/// The utility-optimal feasible schedule for a *single* user (Algorithm
/// 2 as a standalone tool): given `(event, utility)` candidates, returns
/// the chosen events in time order and their total utility. Candidates
/// with non-positive utility or an unaffordable round trip (Lemma 1) are
/// ignored; capacity is not a single-user concern.
///
/// This is the paper's `DPSingle` exposed directly — useful on its own
/// as an optimal personal day-planner, and as the engine of the
/// capacity-relaxed upper bound in [`crate::bounds`].
pub fn optimal_user_schedule(
    inst: &Instance,
    u: UserId,
    candidates: &[(EventId, f64)],
) -> (Vec<EventId>, f64) {
    let mut ws = DpScheduler::new();
    optimal_user_schedule_with(&mut ws, inst, u, candidates)
}

/// [`optimal_user_schedule`] against a caller-owned workspace, so a
/// loop over many users (the capacity-relaxed bound's hot path) reuses
/// one DP table instead of reallocating it per user.
pub(crate) fn optimal_user_schedule_with<V: CoreView>(
    ws: &mut DpScheduler<'_>,
    view: &V,
    u: UserId,
    candidates: &[(EventId, f64)],
) -> (Vec<EventId>, f64) {
    let mut idx: Vec<usize> = (0..candidates.len()).collect();
    idx.sort_by_key(|&i| {
        let v = candidates[i].0;
        (view.event_end(v), view.event_start(v), v)
    });
    let cands: Vec<Candidate> = idx
        .into_iter()
        .filter_map(|i| {
            let (v, mu) = candidates[i];
            if mu > 0.0 && passes_lemma1(view, u, v) {
                Some(Candidate { v, slot: 0, mu })
            } else {
                None
            }
        })
        .collect();
    let chosen = ws.schedule(view, u, &cands);
    let score = chosen.iter().map(|&c| cands[c].mu).sum();
    (chosen.into_iter().map(|c| cands[c].v).collect(), score)
}

/// Step 2 of the framework, shared by every decomposed algorithm: each
/// pseudo-event is kept by the **last** user whose step-1 schedule
/// contained it, then per-user event sets are ordered by time into final
/// schedules.
///
/// `holder[p]` is `0` for an unassigned slot, else `r + 1` where `u_r` is
/// the last holder — exactly the DeDPO `select` array; [`DeDP`] reduces
/// its removal scan to the same representation before calling this.
pub(crate) fn build_planning_from_holders(
    inst: &Instance,
    layout: &PseudoLayout,
    holder: &[u32],
) -> Planning {
    debug_assert_eq!(holder.len(), layout.total());
    let mut per_user: Vec<Vec<EventId>> = vec![Vec::new(); inst.num_users()];
    for v in inst.event_ids() {
        for p in layout.slots(v) {
            let h = holder[p];
            if h > 0 {
                per_user[(h - 1) as usize].push(v);
            }
        }
    }
    let schedules = per_user
        .into_iter()
        .map(|mut evs| {
            // a user's kept events are a subset of one feasible schedule,
            // so sorting by start time restores the original order
            evs.sort_by_key(|&v| {
                let t = inst.event(v).time;
                (t.start(), t.end(), v)
            });
            Schedule::from_time_ordered(inst, evs)
        })
        .collect();
    Planning::from_schedules(inst, schedules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usep_core::{Cost, InstanceBuilder, Point, TimeInterval};

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    #[test]
    fn pseudo_layout_clamps_to_num_users() {
        let mut b = InstanceBuilder::new();
        b.event(5, Point::ORIGIN, iv(0, 1));
        b.event(1_000_000, Point::ORIGIN, iv(2, 3));
        b.event(1, Point::ORIGIN, iv(4, 5));
        for _ in 0..3 {
            b.user(Point::ORIGIN, Cost::new(10));
        }
        let inst = b.build().unwrap();
        let layout = PseudoLayout::new(&inst);
        assert_eq!(layout.total(), 3 + 3 + 1);
        assert_eq!(layout.slots(EventId(0)), 0..3);
        assert_eq!(layout.slots(EventId(1)), 3..6);
        assert_eq!(layout.slots(EventId(2)), 6..7);
        assert_eq!(layout.event_of(0), EventId(0));
        assert_eq!(layout.event_of(3), EventId(1));
        assert_eq!(layout.event_of(6), EventId(2));
    }

    #[test]
    fn lemma1_filter() {
        let mut b = InstanceBuilder::new();
        let v = b.event(1, Point::new(10, 0), iv(0, 1));
        let u0 = b.user(Point::ORIGIN, Cost::new(20)); // round trip exactly 20
        let u1 = b.user(Point::ORIGIN, Cost::new(19));
        b.utility(v, u0, 0.5);
        b.utility(v, u1, 0.5);
        let inst = b.build().unwrap();
        assert!(passes_lemma1(&inst, u0, v));
        assert!(!passes_lemma1(&inst, u1, v));
    }

    #[test]
    fn build_planning_orders_events_by_time() {
        let mut b = InstanceBuilder::new();
        let v0 = b.event(1, Point::ORIGIN, iv(10, 20));
        let v1 = b.event(1, Point::ORIGIN, iv(0, 5));
        let u = b.user(Point::ORIGIN, Cost::new(100));
        b.utility(v0, u, 0.5);
        b.utility(v1, u, 0.5);
        let inst = b.build().unwrap();
        let layout = PseudoLayout::new(&inst);
        let holder = vec![1u32, 1u32]; // both events held by u0
        let p = build_planning_from_holders(&inst, &layout, &holder);
        assert_eq!(p.schedule(u).events(), &[v1, v0]);
        assert!(p.validate(&inst).is_ok());
    }
}
