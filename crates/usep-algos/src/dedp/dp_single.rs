//! `DPSingle` (Algorithm 2): the utility-optimal single-user schedule.
//!
//! Costs are bounded non-negative integers, so the DP table
//! `Ω(i, T)` — the best utility of a feasible schedule ending at
//! candidate `i` with travel cost `T` spent getting there — is dense in
//! `T ∈ [0, b_u]`. Eq. (4) restricts predecessors to candidates `l ≤ l_i`
//! (those ending no later than `i` starts) and enforces the return leg
//! `T + cost(v̂_i, u) ≤ b_u` at every state, which is lossless under the
//! triangle inequality: if you cannot afford to go home from `v̂_i`, no
//! continuation can ever afford it either.
//!
//! The table is `O(|V'_r| · b_u)` — pseudo-polynomial in the budget — and
//! is reused across users: the workspace only ever zeroes the cells a run
//! actually touched, so a sparse run stays cheap.

use super::{Candidate, SingleScheduler};
use usep_core::{CoreView, UserId};
use usep_guard::{Guard, TruncationReason};
use usep_trace::{Counter, Probe, NOOP};

/// Upper bound on DP table cells (`|V'_r| × (b_u + 1)`); about 1.6 GiB of
/// table. Exceeding it means the instance's budgets are far outside the
/// integer scales the paper (and this reproduction) use — rescale costs.
pub(crate) const MAX_DP_CELLS: usize = 1 << 27;

/// Reusable workspace for [`dp_single`], implementing
/// [`SingleScheduler`] for the DeDP/DeDPO family.
pub(crate) struct DpScheduler<'p> {
    /// Instrumentation sink; visited/pruned cell counts are accumulated
    /// locally per run and flushed here once, so the probe never sits in
    /// the DP inner loop.
    probe: &'p dyn Probe,
    /// `omega[i * stride + t]`; all-zero between calls.
    omega: Vec<f64>,
    /// Predecessor candidate index per cell (`-1` = schedule starts here).
    /// Only read where `omega > 0`, so it is never cleared.
    path: Vec<i32>,
    /// Per-row touched bounds, for targeted clearing.
    lo: Vec<u32>,
    hi: Vec<u32>,
    /// End times of the candidates, for `l_i` binary searches.
    ends: Vec<i64>,
    /// Budget supervision: polled between rows, charged on table growth.
    guard: &'p Guard,
}

impl DpScheduler<'static> {
    pub fn new() -> DpScheduler<'static> {
        DpScheduler::with_probe(&NOOP)
    }
}

impl<'p> DpScheduler<'p> {
    pub fn with_probe(probe: &'p dyn Probe) -> DpScheduler<'p> {
        DpScheduler::with_guard(probe, Guard::none())
    }

    pub fn with_guard(probe: &'p dyn Probe, guard: &'p Guard) -> DpScheduler<'p> {
        DpScheduler {
            probe,
            omega: Vec::new(),
            path: Vec::new(),
            lo: Vec::new(),
            hi: Vec::new(),
            ends: Vec::new(),
            guard,
        }
    }
}

impl SingleScheduler for DpScheduler<'_> {
    fn schedule<V: CoreView>(&mut self, view: &V, u: UserId, cands: &[Candidate]) -> Vec<usize> {
        dp_single(self, view, u, cands)
    }
}

/// Runs Algorithm 2 for user `u` over `cands` (end-time order, decomposed
/// utilities strictly positive, Lemma 1 pre-applied). Returns the indices
/// of the chosen candidates in time order; empty when no affordable
/// candidate exists.
pub(crate) fn dp_single<V: CoreView>(
    ws: &mut DpScheduler<'_>,
    view: &V,
    u: UserId,
    cands: &[Candidate],
) -> Vec<usize> {
    let m = cands.len();
    if m == 0 {
        return Vec::new();
    }
    let budget = view.budget(u).value() as usize;
    let stride = budget + 1;
    let cells = match m.checked_mul(stride).filter(|&c| c <= MAX_DP_CELLS) {
        Some(c) => c,
        // Under an active guard an oversized table is a memory trip —
        // the user simply gets no schedule and the solve truncates.
        // Unguarded, the legacy fail-fast panic stands (tripping the
        // shared unlimited guard would poison unrelated solves).
        None if ws.guard.is_active() => {
            ws.guard.trip(TruncationReason::MemoryCeiling);
            return Vec::new();
        }
        None => panic!(
            "DPSingle table of {m} candidates × budget {budget} exceeds \
             MAX_DP_CELLS = {MAX_DP_CELLS}; rescale the instance's integer costs"
        ),
    };

    if ws.omega.len() < cells {
        let grown = cells - ws.omega.len();
        let grown_bytes =
            grown * (std::mem::size_of::<f64>() + std::mem::size_of::<i32>());
        if !ws.guard.try_reserve(grown_bytes) {
            return Vec::new();
        }
        ws.omega.resize(cells, 0.0);
        ws.path.resize(cells, 0);
    }
    ws.lo.clear();
    ws.lo.resize(m, u32::MAX);
    ws.hi.clear();
    ws.hi.resize(m, 0);
    ws.ends.clear();
    ws.ends.extend(cands.iter().map(|c| view.event_end(c.v)));
    debug_assert!(ws.ends.windows(2).all(|w| w[0] <= w[1]), "candidates not in end-time order");

    let mut best_score = 0.0f64;
    let mut best_cell = None::<(usize, usize)>;
    // cell accounting stays in registers; flushed to the probe once below
    let mut cells_visited = 0u64;
    let mut cells_pruned = 0u64;

    for i in 0..m {
        // each processed row leaves a reconstructable best_cell, so
        // breaking here still yields a feasible (shorter) schedule
        if ws.guard.checkpoint() {
            break;
        }
        let vi = cands[i].v;
        let mu_i = cands[i].mu;
        debug_assert!(mu_i > 0.0);
        // both finite by the Lemma 1 filter (round trip ≤ budget)
        let arrive = view.cost_to_event(u, vi).value() as usize;
        let go_home = view.cost_from_event(vi, u).value() as usize;
        if arrive + go_home > budget {
            debug_assert!(false, "Lemma 1 filter should have removed this candidate");
            continue;
        }
        // highest affordable arrival cost at v_i, given the return leg
        let t_cap = budget - go_home;

        let (before, row_i) = ws.omega.split_at_mut(i * stride);
        let row_i = &mut row_i[..stride];
        let path_i = &mut ws.path[i * stride..(i + 1) * stride];
        let mut lo_i = ws.lo[i];
        let mut hi_i = ws.hi[i];

        // base case: v_i is the first event
        {
            cells_visited += 1;
            let t0 = arrive;
            if mu_i > row_i[t0] {
                row_i[t0] = mu_i;
                path_i[t0] = -1;
                lo_i = lo_i.min(t0 as u32);
                hi_i = hi_i.max(t0 as u32);
                if mu_i > best_score {
                    best_score = mu_i;
                    best_cell = Some((i, t0));
                }
            }
        }

        // transitions from candidates that end before v_i starts
        let l_i = ws.ends[..i].partition_point(|&e| e <= view.event_start(vi));
        for l in 0..l_i {
            let Some(c) = view.cost_vv(cands[l].v, vi).finite_value() else {
                continue;
            };
            let c = c as usize;
            if c > t_cap {
                continue;
            }
            let (llo, lhi) = (ws.lo[l], ws.hi[l]);
            if llo == u32::MAX {
                continue; // row l never touched: no reachable state
            }
            let row_l = &before[l * stride..(l + 1) * stride];
            let t_hi = (t_cap - c).min(lhi as usize);
            let t_lo = llo as usize;
            if t_lo > t_hi {
                continue;
            }
            for (off, &s) in row_l[t_lo..=t_hi].iter().enumerate() {
                if s <= 0.0 {
                    cells_pruned += 1;
                    continue;
                }
                cells_visited += 1;
                let t = t_lo + off;
                let nt = t + c;
                let ns = s + mu_i;
                if ns > row_i[nt] {
                    row_i[nt] = ns;
                    path_i[nt] = l as i32;
                    lo_i = lo_i.min(nt as u32);
                    hi_i = hi_i.max(nt as u32);
                    if ns > best_score {
                        best_score = ns;
                        best_cell = Some((i, nt));
                    }
                }
            }
        }
        ws.lo[i] = lo_i;
        ws.hi[i] = hi_i;
    }

    // reconstruct the chosen candidate chain
    let mut chosen = Vec::new();
    if let Some((mut i, mut t)) = best_cell {
        loop {
            chosen.push(i);
            let prev = ws.path[i * stride + t];
            if prev < 0 {
                break;
            }
            let l = prev as usize;
            let c = view
                .cost_vv(cands[l].v, cands[i].v)
                .value() as usize;
            t -= c;
            i = l;
        }
        chosen.reverse();
    }

    // restore the all-zero invariant, touching only written cells
    for i in 0..m {
        if ws.lo[i] != u32::MAX {
            let (lo, hi) = (ws.lo[i] as usize, ws.hi[i] as usize);
            ws.omega[i * stride + lo..=i * stride + hi].fill(0.0);
        }
    }
    debug_assert!(chosen.windows(2).all(|w| w[0] < w[1]));
    ws.probe.count(Counter::DpCellVisit, cells_visited);
    ws.probe.count(Counter::DpCellPruned, cells_pruned);
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::optimal_single_schedule;
    use usep_core::{Cost, EventId, Instance, InstanceBuilder, Point, TimeInterval};

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    fn cand(v: EventId, mu: f64) -> Candidate {
        Candidate { v, slot: 0, mu }
    }

    /// Builds an instance with one user and events on a line, all with
    /// capacity 1 and sequential time slots.
    fn line(events: &[(i32, i64, i64)], budget: u32, mus: &[f64]) -> (Instance, Vec<Candidate>) {
        let mut b = InstanceBuilder::new();
        let mut vs = Vec::new();
        for &(x, t1, t2) in events {
            vs.push(b.event(1, Point::new(x, 0), iv(t1, t2)));
        }
        let u = b.user(Point::new(0, 0), Cost::new(budget));
        for (&v, &m) in vs.iter().zip(mus) {
            b.utility(v, u, m);
        }
        let inst = b.build().unwrap();
        // candidates in end-time order, with the Lemma-1 filter applied
        let mut order: Vec<usize> = (0..vs.len()).collect();
        order.sort_by_key(|&i| events[i].2);
        let cands = order
            .into_iter()
            .filter(|&i| inst.round_trip(u, vs[i]) <= inst.user(u).budget)
            .map(|i| cand(vs[i], mus[i]))
            .collect();
        (inst, cands)
    }

    fn score(inst: &Instance, cands: &[Candidate], chosen: &[usize]) -> f64 {
        let _ = inst;
        chosen.iter().map(|&i| cands[i].mu).sum()
    }

    #[test]
    fn empty_candidates() {
        let (inst, _) = line(&[(1, 0, 1)], 10, &[0.5]);
        let mut ws = DpScheduler::new();
        assert!(dp_single(&mut ws, &inst, UserId(0), &[]).is_empty());
    }

    #[test]
    fn single_affordable_event() {
        let (inst, cands) = line(&[(3, 0, 10)], 10, &[0.5]);
        let mut ws = DpScheduler::new();
        let chosen = dp_single(&mut ws, &inst, UserId(0), &cands);
        assert_eq!(chosen, vec![0]);
    }

    #[test]
    fn chains_compatible_events() {
        let (inst, cands) = line(
            &[(2, 0, 10), (4, 10, 20), (6, 20, 30)],
            100,
            &[0.5, 0.5, 0.5],
        );
        let mut ws = DpScheduler::new();
        let chosen = dp_single(&mut ws, &inst, UserId(0), &cands);
        assert_eq!(chosen, vec![0, 1, 2]);
    }

    #[test]
    fn budget_forces_choice() {
        // two far-apart events, budget only allows one
        let (inst, cands) = line(&[(5, 0, 10), (-5, 20, 30)], 12, &[0.4, 0.9]);
        let mut ws = DpScheduler::new();
        let chosen = dp_single(&mut ws, &inst, UserId(0), &cands);
        // picks the higher-utility one
        assert_eq!(chosen.len(), 1);
        assert!((cands[chosen[0]].mu - 0.9).abs() < 1e-12);
    }

    #[test]
    fn prefers_many_small_over_one_big_when_optimal() {
        // v0 and v1 chain cheaply (total 0.8), v2 alone is 0.7 but conflicts
        let (inst, cands) = line(
            &[(1, 0, 10), (2, 10, 20), (50, 0, 20)],
            90,
            &[0.4, 0.4, 0.7],
        );
        let mut ws = DpScheduler::new();
        let chosen = dp_single(&mut ws, &inst, UserId(0), &cands);
        let s = score(&inst, &cands, &chosen);
        assert!((s - 0.8).abs() < 1e-12, "got {s}");
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let (inst, cands) = line(
            &[(2, 0, 10), (4, 10, 20), (6, 20, 30)],
            100,
            &[0.5, 0.5, 0.5],
        );
        let mut ws = DpScheduler::new();
        let a = dp_single(&mut ws, &inst, UserId(0), &cands);
        let b = dp_single(&mut ws, &inst, UserId(0), &cands);
        assert_eq!(a, b);
        assert!(ws.omega.iter().all(|&x| x == 0.0), "workspace left dirty");
    }

    #[test]
    fn matches_bruteforce_on_dense_cases() {
        // 8 events with mixed overlaps and distances; exhaustive check
        let events: Vec<(i32, i64, i64)> = vec![
            (3, 0, 5),
            (-2, 2, 7), // overlaps the first
            (5, 6, 9),
            (1, 9, 14),
            (-4, 10, 15), // overlaps previous
            (7, 16, 20),
            (0, 21, 25),
            (9, 21, 30), // overlaps previous
        ];
        let mus = [0.3, 0.8, 0.5, 0.2, 0.9, 0.4, 0.6, 0.7];
        for budget in [8u32, 15, 25, 40, 80] {
            let (inst, cands) = line(&events, budget, &mus);
            let mut ws = DpScheduler::new();
            let chosen = dp_single(&mut ws, &inst, UserId(0), &cands);
            let got = score(&inst, &cands, &chosen);
            let pairs: Vec<(EventId, f64)> = cands.iter().map(|c| (c.v, c.mu)).collect();
            let (_, want) = optimal_single_schedule(&inst, UserId(0), &pairs);
            assert!(
                (got - want).abs() < 1e-9,
                "budget {budget}: dp {got} vs brute force {want}"
            );
        }
    }

    #[test]
    fn zero_budget_user_at_event_location() {
        let mut b = InstanceBuilder::new();
        let v = b.event(1, Point::ORIGIN, iv(0, 10));
        let u = b.user(Point::ORIGIN, Cost::new(0));
        b.utility(v, u, 0.6);
        let inst = b.build().unwrap();
        let mut ws = DpScheduler::new();
        let chosen = dp_single(&mut ws, &inst, UserId(0), &[cand(v, 0.6)]);
        assert_eq!(chosen, vec![0]);
    }
}
