//! Exhaustive reference solvers for testing.
//!
//! USEP is NP-hard (Theorem 1), so these are exponential and strictly for
//! verifying the fast algorithms on tiny instances:
//!
//! * [`optimal_single_schedule`] enumerates all subsets of a candidate
//!   list to certify the DP of Algorithm 2 (`|cands| ≲ 20`);
//! * [`optimal_planning`] searches the full assignment space to certify
//!   the ½-approximation of Theorem 3 (`|V| · |U| ≲ 12`).

use usep_core::{Cost, EventId, Instance, Planning, Schedule, UserId};

/// The utility-optimal feasible schedule for user `u` drawn from
/// `cands = [(event, utility)]` (utilities may be decomposed values, not
/// necessarily `μ`). Exhaustive over all `2^m` subsets.
///
/// # Panics
/// Panics when `cands.len() > 25` — use the DP for anything real.
pub fn optimal_single_schedule(
    inst: &Instance,
    u: UserId,
    cands: &[(EventId, f64)],
) -> (Vec<EventId>, f64) {
    let m = cands.len();
    assert!(m <= 25, "exhaustive subset search capped at 25 candidates");
    // sort candidate order by time so subsets enumerate in schedule order
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by_key(|&i| {
        let t = inst.event(cands[i].0).time;
        (t.start(), t.end(), cands[i].0)
    });
    let budget = inst.user(u).budget;
    let mut best: (Vec<EventId>, f64) = (Vec::new(), 0.0);
    'subset: for mask in 0u32..(1 << m) {
        let mut events = Vec::new();
        let mut score = 0.0;
        for &i in &order {
            if mask & (1 << i) != 0 {
                let (v, mu) = cands[i];
                if mu <= 0.0 {
                    continue 'subset;
                }
                events.push(v);
                score += mu;
            }
        }
        if score <= best.1 {
            continue;
        }
        // feasibility: consecutive precedence + reachable legs + budget
        for w in events.windows(2) {
            if !inst.event(w[0]).time.precedes(inst.event(w[1]).time)
                || inst.cost_vv(w[0], w[1]).is_infinite()
            {
                continue 'subset;
            }
        }
        let sched = Schedule::from_time_ordered(inst, events.clone());
        if sched.total_cost(inst, u) > budget {
            continue;
        }
        best = (events, score);
    }
    best
}

/// The optimal planning of a whole instance by exhaustive search:
/// depth-first over users, enumerating every feasible schedule of each
/// user against the remaining event capacities.
///
/// # Panics
/// Panics when the instance is too large (`|V| > 10` or `|U| > 6`).
pub fn optimal_planning(inst: &Instance) -> (Planning, f64) {
    let nv = inst.num_events();
    let nu = inst.num_users();
    assert!(nv <= 10 && nu <= 6, "exhaustive planning search capped at 10 events / 6 users");

    // per user, the list of all feasible non-empty schedules (event sets)
    let per_user: Vec<Vec<(Vec<EventId>, f64)>> = inst
        .user_ids()
        .map(|u| feasible_schedules(inst, u))
        .collect();

    let mut caps: Vec<u32> = inst.events().iter().map(|e| e.capacity.min(nu as u32)).collect();
    let mut chosen: Vec<usize> = vec![usize::MAX; nu]; // usize::MAX = empty schedule
    let mut best_choice = chosen.clone();
    let mut best_score = 0.0f64;

    #[allow(clippy::too_many_arguments)] // recursive search state, local to this fn
    fn dfs(
        u: usize,
        nu: usize,
        per_user: &[Vec<(Vec<EventId>, f64)>],
        caps: &mut Vec<u32>,
        chosen: &mut Vec<usize>,
        score: f64,
        best_score: &mut f64,
        best_choice: &mut Vec<usize>,
    ) {
        if u == nu {
            if score > *best_score {
                *best_score = score;
                best_choice.clone_from(chosen);
            }
            return;
        }
        // empty schedule for user u
        chosen[u] = usize::MAX;
        dfs(u + 1, nu, per_user, caps, chosen, score, best_score, best_choice);
        for (si, (events, s)) in per_user[u].iter().enumerate() {
            if events.iter().any(|v| caps[v.index()] == 0) {
                continue;
            }
            for v in events {
                caps[v.index()] -= 1;
            }
            chosen[u] = si;
            dfs(u + 1, nu, per_user, caps, chosen, score + s, best_score, best_choice);
            for v in events {
                caps[v.index()] += 1;
            }
        }
    }

    dfs(0, nu, &per_user, &mut caps, &mut chosen, 0.0, &mut best_score, &mut best_choice);

    let schedules = best_choice
        .iter()
        .enumerate()
        .map(|(u, &si)| {
            if si == usize::MAX {
                Schedule::new()
            } else {
                Schedule::from_time_ordered(inst, per_user[u][si].0.clone())
            }
        })
        .collect();
    (Planning::from_schedules(inst, schedules), best_score)
}

/// All feasible non-empty schedules of user `u` (ignoring capacity, which
/// the planning search handles), with their utility.
fn feasible_schedules(inst: &Instance, u: UserId) -> Vec<(Vec<EventId>, f64)> {
    let cands: Vec<EventId> = {
        let mut c: Vec<EventId> = inst
            .event_ids()
            .filter(|&v| inst.mu(v, u) > 0.0 && inst.round_trip(u, v) <= inst.user(u).budget)
            .collect();
        c.sort_by_key(|&v| {
            let t = inst.event(v).time;
            (t.start(), t.end(), v)
        });
        c
    };
    let m = cands.len();
    let budget = inst.user(u).budget;
    let mut out = Vec::new();
    'subset: for mask in 1u32..(1 << m) {
        let mut events = Vec::new();
        let mut score = 0.0;
        for (i, &v) in cands.iter().enumerate() {
            if mask & (1 << i) != 0 {
                events.push(v);
                score += inst.mu(v, u);
            }
        }
        for w in events.windows(2) {
            if !inst.event(w[0]).time.precedes(inst.event(w[1]).time)
                || inst.cost_vv(w[0], w[1]).is_infinite()
            {
                continue 'subset;
            }
        }
        let mut total = inst.cost_to_event(u, events[0]);
        for w in events.windows(2) {
            total = total.add(inst.cost_vv(w[0], w[1]));
        }
        total = total.add(inst.cost_from_event(*events.last().unwrap(), u));
        if total > budget {
            continue;
        }
        let _ = Cost::ZERO;
        out.push((events, score));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, Algorithm};
    use usep_core::{InstanceBuilder, Point, TimeInterval};

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    fn small_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        let v0 = b.event(1, Point::new(0, 0), iv(0, 10));
        let v1 = b.event(2, Point::new(3, 0), iv(10, 20));
        let v2 = b.event(1, Point::new(5, 0), iv(5, 15)); // overlaps both
        let u0 = b.user(Point::new(1, 0), Cost::new(20));
        let u1 = b.user(Point::new(4, 0), Cost::new(12));
        b.utility(v0, u0, 0.6);
        b.utility(v1, u0, 0.5);
        b.utility(v2, u0, 0.9);
        b.utility(v0, u1, 0.4);
        b.utility(v1, u1, 0.8);
        b.utility(v2, u1, 0.3);
        b.build().unwrap()
    }

    #[test]
    fn optimal_single_schedule_simple() {
        let inst = small_instance();
        let cands: Vec<(EventId, f64)> = inst
            .event_ids()
            .map(|v| (v, inst.mu(v, UserId(0))))
            .collect();
        let (events, score) = optimal_single_schedule(&inst, UserId(0), &cands);
        // u0: v0 + v1 = 1.1 beats v2 alone = 0.9 (if affordable)
        assert!((score - 1.1).abs() < 1e-6, "got {score} with {events:?}");
    }

    #[test]
    fn optimal_planning_is_feasible_and_upper_bounds_heuristics() {
        let inst = small_instance();
        let (plan, opt) = optimal_planning(&inst);
        assert!(plan.validate(&inst).is_ok());
        assert!((plan.omega(&inst) - opt).abs() < 1e-9);
        for a in Algorithm::PAPER_SET {
            let got = solve(a, &inst).omega(&inst);
            assert!(got <= opt + 1e-9, "{a} exceeded optimum: {got} > {opt}");
        }
    }

    #[test]
    fn dedp_within_half_of_optimum_here() {
        let inst = small_instance();
        let (_, opt) = optimal_planning(&inst);
        for a in [Algorithm::DeDP, Algorithm::DeDPO, Algorithm::DeDPORG] {
            let got = solve(a, &inst).omega(&inst);
            assert!(got * 2.0 >= opt - 1e-9, "{a}: {got} < half of {opt}");
        }
    }

    #[test]
    fn empty_candidates_give_empty_schedule() {
        let inst = small_instance();
        let (events, score) = optimal_single_schedule(&inst, UserId(0), &[]);
        assert!(events.is_empty());
        assert_eq!(score, 0.0);
    }
}
