//! Property tests on the core model: schedules, incremental costs,
//! plannings and the temporal index, driven by randomized instances.

use proptest::prelude::*;
use usep_core::{
    Cost, CoreView, EventId, Instance, InstanceBuilder, Planning, Point, Schedule, TimeInterval,
    UserId,
};

/// Strategy: a random grid instance with `nv` events and `nu` users.
fn arb_instance(max_v: usize, max_u: usize) -> impl Strategy<Value = Instance> {
    let ev = (0i64..60, 1i64..15, 0i32..20, 0i32..20, 1u32..4);
    let us = (0i32..20, 0i32..20, 0u32..80);
    (
        prop::collection::vec(ev, 1..=max_v),
        prop::collection::vec(us, 1..=max_u),
        any::<u64>(),
    )
        .prop_map(|(events, users, mu_seed)| {
            let mut b = InstanceBuilder::new();
            for &(start, dur, x, y, cap) in &events {
                b.event(cap, Point::new(x, y), TimeInterval::new(start, start + dur).unwrap());
            }
            for &(x, y, budget) in &users {
                b.user(Point::new(x, y), Cost::new(budget));
            }
            // deterministic pseudo-random utilities from the seed
            let mut s = mu_seed | 1;
            for v in 0..events.len() as u32 {
                for u in 0..users.len() as u32 {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let m = ((s >> 33) % 11) as f64 / 10.0;
                    b.utility(EventId(v), UserId(u), m);
                }
            }
            b.build().unwrap()
        })
}

/// Strategy: like [`arb_instance`], but with event times on a coarse
/// 5-unit grid so exactly-touching endpoints (`end == next start`) and
/// exactly-coinciding intervals are routine rather than coincidental —
/// the edge cases the conflict bitmask must get right.
fn arb_coarse_time_instance(max_v: usize, max_u: usize) -> impl Strategy<Value = Instance> {
    let ev = (0i64..8, 1i64..4, 0i32..20, 0i32..20, 1u32..4);
    let us = (0i32..20, 0i32..20, 0u32..80);
    (
        prop::collection::vec(ev, 1..=max_v),
        prop::collection::vec(us, 1..=max_u),
        any::<u64>(),
    )
        .prop_map(|(events, users, mu_seed)| {
            let mut b = InstanceBuilder::new();
            for &(slot, dur, x, y, cap) in &events {
                let start = slot * 5;
                b.event(cap, Point::new(x, y), TimeInterval::new(start, start + dur * 5).unwrap());
            }
            for &(x, y, budget) in &users {
                b.user(Point::new(x, y), Cost::new(budget));
            }
            let mut s = mu_seed | 1;
            for v in 0..events.len() as u32 {
                for u in 0..users.len() as u32 {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let m = ((s >> 33) % 11) as f64 / 10.0;
                    b.utility(EventId(v), UserId(u), m);
                }
            }
            b.build().unwrap()
        })
}

/// From-scratch round-trip cost of a grid schedule: home → first event,
/// consecutive event legs, last event → home, all as raw Manhattan
/// distances plus per-event fees on the inbound leg (Remark 2).
/// Deliberately shares nothing with `Schedule::total_cost`'s Eq.-3
/// bookkeeping — this is the independent recomputation the incremental
/// path is audited against.
fn raw_round_trip(inst: &Instance, u: UserId, events: &[EventId]) -> u64 {
    let (Some(&first), Some(&last)) = (events.first(), events.last()) else {
        return 0;
    };
    let home = inst.user(u).location;
    let fee = |v: EventId| inst.fees().get(v.index()).copied().unwrap_or(0) as u64;
    let mut total = home.manhattan(inst.event(first).location) + fee(first);
    for w in events.windows(2) {
        total += inst.event(w[0]).location.manhattan(inst.event(w[1]).location) + fee(w[1]);
    }
    total + inst.event(last).location.manhattan(home)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every feasible insertion — under time-ascending (pure tail),
    /// time-descending (pure head) and shuffled insertion orders — the
    /// incrementally maintained total cost equals the from-scratch
    /// round-trip recomputation. This pins Eq. 3's bookkeeping to ground
    /// truth rather than to its own delta.
    #[test]
    fn incremental_cost_matches_from_scratch_roundtrip(
        inst in arb_instance(8, 3),
        order in 0u8..3,
        shuffle in any::<u64>(),
    ) {
        let u = UserId(0);
        let mut evs: Vec<EventId> = inst.event_ids().collect();
        match order {
            // ascending start times: every insertion lands at the tail
            0 => evs.sort_by_key(|&v| inst.event(v).time.start()),
            // descending start times: every insertion lands at the head
            1 => evs.sort_by_key(|&v| std::cmp::Reverse(inst.event(v).time.start())),
            _ => {
                let mut seed = shuffle | 1;
                for i in (1..evs.len()).rev() {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    evs.swap(i, (seed >> 33) as usize % (i + 1));
                }
            }
        }
        let mut s = Schedule::new();
        for v in evs {
            if s.try_insert(&inst, u, v).is_ok() {
                let expected = raw_round_trip(&inst, u, s.events());
                let got = s.total_cost(&inst, u);
                prop_assert!(got.is_finite());
                prop_assert_eq!(u64::from(got.value()), expected);
            }
        }
    }

    /// inc_cost (Eq. 3) is exactly the total-cost delta of the insertion,
    /// for every feasible insertion in any order.
    #[test]
    fn inc_cost_equals_total_cost_delta(inst in arb_instance(8, 3), order in any::<u64>()) {
        let u = UserId(0);
        let mut s = Schedule::new();
        let mut evs: Vec<EventId> = inst.event_ids().collect();
        // pseudo-shuffle
        let mut seed = order | 1;
        for i in (1..evs.len()).rev() {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            evs.swap(i, (seed >> 33) as usize % (i + 1));
        }
        for v in evs {
            let before = s.total_cost(&inst, u);
            let inc = s.inc_cost(&inst, u, v);
            match s.try_insert(&inst, u, v) {
                Ok(_) => {
                    prop_assert!(inc.is_finite());
                    prop_assert_eq!(s.total_cost(&inst, u), before.add(inc));
                    prop_assert!(s.check(&inst, u).is_ok());
                }
                Err(usep_core::InsertError::OverBudget) => {
                    prop_assert!(inc.is_finite());
                    prop_assert!(before.add(inc) > inst.user(u).budget);
                }
                Err(_) => prop_assert!(inc.is_infinite()),
            }
        }
    }

    /// Removal keeps a feasible schedule feasible and never increases the
    /// travel cost (triangle inequality).
    #[test]
    fn removal_is_safe(inst in arb_instance(8, 2), pick in any::<usize>()) {
        let u = UserId(0);
        let mut s = Schedule::new();
        for v in inst.event_ids() {
            let _ = s.try_insert(&inst, u, v);
        }
        prop_assume!(!s.is_empty());
        let before = s.total_cost(&inst, u);
        let victim = s.events()[pick % s.len()];
        prop_assert!(s.remove(victim));
        prop_assert!(s.check(&inst, u).is_ok());
        prop_assert!(s.total_cost(&inst, u) <= before);
    }

    /// A planning mutated by any assign/unassign sequence always
    /// validates.
    #[test]
    fn planning_mutations_stay_valid(
        inst in arb_instance(6, 3),
        ops in prop::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 0..40),
    ) {
        let mut p = Planning::empty(&inst);
        for (v, u, insert) in ops {
            let v = EventId(v % inst.num_events() as u32);
            let u = UserId(u % inst.num_users() as u32);
            if insert {
                let _ = p.assign(&inst, u, v);
            } else {
                let _ = p.unassign(u, v);
            }
            prop_assert!(p.validate(&inst).is_ok());
        }
    }

    /// The temporal index orders by end time and its `l_of` prefix
    /// matches a naive scan.
    #[test]
    fn temporal_index_invariants(inst in arb_instance(10, 1)) {
        let idx = inst.temporal();
        for p in 1..idx.len() {
            let (a, b) = (idx.event_at(p - 1), idx.event_at(p));
            prop_assert!(
                inst.event(EventId(a)).time.end() <= inst.event(EventId(b)).time.end()
            );
        }
        for p in 0..idx.len() {
            let ti = inst.event(EventId(idx.event_at(p))).time;
            let naive = (0..idx.len())
                .filter(|&q| inst.event(EventId(idx.event_at(q))).time.end() <= ti.start())
                .count();
            prop_assert_eq!(idx.l_of(p), naive);
        }
    }

    /// Grid event-event costs: finite implies temporal precedence, and
    /// the cost matrix respects the triangle inequality on finite chains.
    #[test]
    fn event_costs_respect_time_and_triangle(inst in arb_instance(8, 1)) {
        let n = inst.num_events() as u32;
        for i in 0..n {
            for j in 0..n {
                let c = inst.cost_vv(EventId(i), EventId(j));
                if c.is_finite() {
                    prop_assert!(inst.event(EventId(i)).time.precedes(inst.event(EventId(j)).time));
                }
                for k in 0..n {
                    let ik = inst.cost_vv(EventId(i), EventId(k));
                    let ij = inst.cost_vv(EventId(i), EventId(j));
                    let jk = inst.cost_vv(EventId(j), EventId(k));
                    if ik.is_finite() && ij.is_finite() && jk.is_finite() {
                        prop_assert!(ik <= ij.add(jk));
                    }
                }
            }
        }
    }

    /// The flat view's bitmask feasibility must agree with the legacy
    /// interval logic on every query — `insertion_point`, the raw
    /// word-AND occupancy probe, and full `try_insert` drives (same
    /// position or the same error kind) — on random instances where
    /// exactly-touching endpoints are common and the op stream retries
    /// already-scheduled events (duplicate case, the diagonal bit).
    #[test]
    fn bitmask_feasibility_matches_interval_logic(
        inst in arb_coarse_time_instance(10, 2),
        ops in prop::collection::vec(any::<u32>(), 1..40),
    ) {
        let flat = inst.freeze();
        let u = UserId(0);
        let mut legacy = Schedule::new();
        let mut soa = Schedule::new();
        for op in ops {
            // mod keeps re-picking the same events, so duplicate
            // insertion attempts against a populated schedule occur
            let v = EventId(op % inst.num_events() as u32);
            let events: Vec<EventId> = legacy.events().to_vec();
            let obj_pos = CoreView::insertion_point(&inst, &events, v);
            let flat_pos = CoreView::insertion_point(&*flat, &events, v);
            prop_assert_eq!(obj_pos, flat_pos);
            let mut occupied = vec![0u64; flat.words()];
            for &e in &events {
                occupied[e.index() / 64] |= 1 << (e.index() % 64);
            }
            prop_assert_eq!(flat.conflicts_with_occupied(&occupied, v), obj_pos.is_none());
            let via_object = legacy.try_insert(&inst, u, v);
            let via_flat = soa.try_insert(&*flat, u, v);
            prop_assert_eq!(via_object, via_flat);
            prop_assert_eq!(legacy.events(), soa.events());
        }
    }

    /// Instances survive a serde round trip with identical behaviour.
    #[test]
    fn instance_serde_roundtrip(inst in arb_instance(6, 3)) {
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &inst);
        for i in inst.event_ids() {
            for j in inst.event_ids() {
                prop_assert_eq!(back.cost_vv(i, j), inst.cost_vv(i, j));
            }
        }
    }

    /// Instances survive a binary-codec round trip bit-exactly.
    #[test]
    fn instance_codec_roundtrip(inst in arb_instance(6, 3)) {
        let bytes = usep_core::codec::encode(&inst);
        let back = usep_core::codec::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &inst);
    }

    /// No prefix of an encoded instance decodes successfully — truncation
    /// is always detected, never a panic or a silent partial instance.
    #[test]
    fn codec_truncations_always_error(inst in arb_instance(4, 2), frac in 0.0f64..1.0) {
        let bytes = usep_core::codec::encode(&inst);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(usep_core::codec::decode(&bytes[..cut]).is_err());
    }
}
