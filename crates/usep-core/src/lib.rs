//! Problem model for **Utility-aware Social Event-participant Planning**
//! (USEP, She/Tong/Chen, SIGMOD 2015).
//!
//! This crate defines the data model shared by every algorithm and
//! generator in the workspace:
//!
//! * [`Event`]s with a capacity, a location and a time interval, and
//!   [`User`]s with a location and a travel budget ([`Cost`]).
//! * An [`Instance`] bundling events, users, the utility matrix
//!   `μ(v, u) ∈ [0, 1]` and a [`TravelCost`] oracle. Instances precompute
//!   the directed event-to-event cost matrix (with [`Cost::INFINITE`] for
//!   spatio-temporally incompatible pairs) and a [`TemporalIndex`] over
//!   events sorted by end time — the order every algorithm in the paper
//!   works in.
//! * [`Schedule`]s — per-user, time-ordered, conflict-free event lists —
//!   including the incremental-cost computation of the paper's Eq. (3),
//!   and [`Planning`]s (one schedule per user) with full validation of the
//!   four USEP constraints (capacity, budget, feasibility, utility).
//!
//! The objective is `Ω(A) = Σ_u Σ_{v ∈ S_u} μ(v, u)`; see
//! [`Planning::omega`].
//!
//! # Example
//!
//! ```
//! use usep_core::{InstanceBuilder, Point, TimeInterval, Cost, Planning};
//!
//! let mut b = InstanceBuilder::new();
//! let run = b.event(2, Point::new(0, 0), TimeInterval::new(9, 11).unwrap());
//! let gig = b.event(1, Point::new(4, 0), TimeInterval::new(14, 15).unwrap());
//! let alice = b.user(Point::new(1, 1), Cost::new(40));
//! b.utility(run, alice, 0.9);
//! b.utility(gig, alice, 0.7);
//! let inst = b.build().unwrap();
//!
//! let mut plan = Planning::empty(&inst);
//! plan.assign(&inst, alice, run).unwrap();
//! plan.assign(&inst, alice, gig).unwrap();
//! assert!(plan.validate(&inst).is_ok());
//! assert!((plan.omega(&inst) - 1.6).abs() < 1e-6); // μ is stored as f32
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod cost;
pub mod error;
pub mod event;
pub mod fairness;
pub mod flat;
pub mod geo;
pub mod ids;
pub mod instance;
pub mod planning;
pub mod schedule;
pub mod stats;
pub mod temporal;
pub mod time;
pub mod user;
pub mod view;

pub use codec::CodecError;
pub use cost::Cost;
pub use error::{BuildError, ConstraintViolation, PlanningError, ValidateError};
pub use event::Event;
pub use fairness::FairnessStats;
pub use flat::{object_path_forced, with_object_path, FlatInstance};
pub use geo::Point;
pub use ids::{EventId, UserId};
pub use instance::patch::PatchError;
pub use instance::{Instance, InstanceBuilder, TravelCost};
pub use planning::Planning;
pub use schedule::{InsertError, Schedule};
pub use stats::PlanningStats;
pub use temporal::TemporalIndex;
pub use time::TimeInterval;
pub use user::User;
pub use view::{normalize_utility, CoreView};
