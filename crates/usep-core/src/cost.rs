//! Travel costs.
//!
//! The paper models every travel cost as a *bounded non-negative integer*,
//! with `cost(v_i, v_j) = +∞` when `v_j` cannot be attended after `v_i`
//! (time overlap, or the gap is too short to travel). [`Cost`] encodes that
//! domain: a `u32` with a dedicated [`Cost::INFINITE`] sentinel that
//! propagates through arithmetic, so an infeasible leg poisons the total
//! cost of any schedule containing it.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;

/// A non-negative integer travel cost, or `+∞` for an infeasible leg.
///
/// `Cost` is totally ordered with `INFINITE` greater than every finite
/// cost. Addition saturates into `INFINITE` (both on an infinite operand
/// and on `u32` overflow), matching the paper's convention that any
/// schedule containing an infeasible leg has infinite travel cost.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Cost(u32);

// `add`/`sub` intentionally shadow the operator names: they have
// non-standard semantics (infinity propagation, triangle-inequality
// panics) that must stay visible at call sites rather than hide behind
// `+`/`-`.
#[allow(clippy::should_implement_trait)]
impl Cost {
    /// Zero travel cost.
    pub const ZERO: Cost = Cost(0);

    /// The infeasible-leg sentinel, greater than every finite cost.
    pub const INFINITE: Cost = Cost(u32::MAX);

    /// Largest representable finite cost.
    pub const MAX_FINITE: Cost = Cost(u32::MAX - 1);

    /// A finite cost of `v` units.
    ///
    /// # Panics
    /// Panics if `v` equals the infinity sentinel (`u32::MAX`); use
    /// [`Cost::INFINITE`] for that.
    #[inline]
    pub fn new(v: u32) -> Cost {
        assert!(v != u32::MAX, "Cost::new(u32::MAX): use Cost::INFINITE");
        Cost(v)
    }

    /// Whether this cost is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0 != u32::MAX
    }

    /// Whether this cost is the infinity sentinel.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0 == u32::MAX
    }

    /// The numeric value of a finite cost.
    ///
    /// # Panics
    /// Panics if the cost is infinite.
    #[inline]
    pub fn value(self) -> u32 {
        assert!(self.is_finite(), "Cost::value() on Cost::INFINITE");
        self.0
    }

    /// The numeric value, or `None` when infinite.
    #[inline]
    pub fn finite_value(self) -> Option<u32> {
        if self.is_finite() {
            Some(self.0)
        } else {
            None
        }
    }

    /// Infinity-propagating, overflow-saturating addition.
    #[inline]
    #[must_use]
    pub fn add(self, other: Cost) -> Cost {
        if self.is_infinite() || other.is_infinite() {
            return Cost::INFINITE;
        }
        match self.0.checked_add(other.0) {
            Some(s) if s != u32::MAX => Cost(s),
            _ => Cost::INFINITE,
        }
    }

    /// Subtraction of finite costs.
    ///
    /// Used by the incremental-cost computation of Eq. (3), where the
    /// triangle inequality guarantees a non-negative result.
    ///
    /// # Panics
    /// Panics if either operand is infinite or if the result would be
    /// negative (i.e. the instance violates the triangle inequality, which
    /// [`InstanceBuilder`](crate::InstanceBuilder) rejects for explicit
    /// matrices).
    #[inline]
    #[must_use]
    pub fn sub(self, other: Cost) -> Cost {
        assert!(
            self.is_finite() && other.is_finite(),
            "Cost::sub on infinite operand"
        );
        match self.0.checked_sub(other.0) {
            Some(d) => Cost(d),
            None => panic!(
                "Cost::sub underflow ({} - {}): triangle inequality violated",
                self.0, other.0
            ),
        }
    }

    /// A finite cost of `v` units, or `None` when `v` is the infinity
    /// sentinel — the non-panicking form of [`Cost::new`] for untrusted
    /// input (e.g. values arriving through deserialization).
    #[inline]
    pub fn checked_new(v: u32) -> Option<Cost> {
        if v == u32::MAX {
            None
        } else {
            Some(Cost(v))
        }
    }

    /// Subtraction without the panics of [`Cost::sub`]: `None` on an
    /// infinite operand or a would-be-negative result. Use this where
    /// the triangle inequality has not been established (untrusted
    /// instances before [`Instance::validate`](crate::Instance::validate)).
    #[inline]
    #[must_use]
    pub fn checked_sub(self, other: Cost) -> Option<Cost> {
        if self.is_infinite() || other.is_infinite() {
            return None;
        }
        self.0.checked_sub(other.0).map(Cost)
    }

    /// Saturating doubling, used for round-trip costs.
    #[inline]
    #[must_use]
    pub fn double(self) -> Cost {
        self.add(self)
    }

    /// The cost as `f64` (`+∞` maps to `f64::INFINITY`), for ratio
    /// computations.
    #[inline]
    pub fn as_f64(self) -> f64 {
        if self.is_finite() {
            f64::from(self.0)
        } else {
            f64::INFINITY
        }
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Cost::add)
    }
}

impl fmt::Debug for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            write!(f, "{}", self.0)
        } else {
            write!(f, "∞")
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_arithmetic() {
        assert_eq!(Cost::new(2).add(Cost::new(3)), Cost::new(5));
        assert_eq!(Cost::new(5).sub(Cost::new(3)), Cost::new(2));
        assert_eq!(Cost::new(4).double(), Cost::new(8));
        assert_eq!(Cost::ZERO.add(Cost::ZERO), Cost::ZERO);
    }

    #[test]
    fn infinity_propagates_through_add() {
        assert!(Cost::INFINITE.add(Cost::new(1)).is_infinite());
        assert!(Cost::new(1).add(Cost::INFINITE).is_infinite());
        assert!(Cost::INFINITE.add(Cost::INFINITE).is_infinite());
    }

    #[test]
    fn add_saturates_on_overflow() {
        assert!(Cost::MAX_FINITE.add(Cost::new(1)).is_infinite());
        assert!(Cost::new(u32::MAX - 2).add(Cost::new(1)).is_finite());
    }

    #[test]
    fn ordering_puts_infinity_last() {
        assert!(Cost::new(1_000_000) < Cost::INFINITE);
        assert!(Cost::ZERO < Cost::new(1));
        let mut v = vec![Cost::INFINITE, Cost::new(3), Cost::ZERO];
        v.sort();
        assert_eq!(v, vec![Cost::ZERO, Cost::new(3), Cost::INFINITE]);
    }

    #[test]
    #[should_panic(expected = "use Cost::INFINITE")]
    fn new_rejects_sentinel() {
        let _ = Cost::new(u32::MAX);
    }

    #[test]
    #[should_panic(expected = "triangle inequality")]
    fn sub_underflow_panics() {
        let _ = Cost::new(1).sub(Cost::new(2));
    }

    #[test]
    fn as_f64_maps_infinity() {
        assert_eq!(Cost::new(7).as_f64(), 7.0);
        assert!(Cost::INFINITE.as_f64().is_infinite());
    }

    #[test]
    fn sum_of_costs() {
        let s: Cost = [Cost::new(1), Cost::new(2), Cost::new(3)].into_iter().sum();
        assert_eq!(s, Cost::new(6));
        let s: Cost = [Cost::new(1), Cost::INFINITE].into_iter().sum();
        assert!(s.is_infinite());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Cost::new(42)), "42");
        assert_eq!(format!("{}", Cost::INFINITE), "∞");
    }

    #[test]
    fn serde_roundtrip() {
        let json = serde_json::to_string(&Cost::new(9)).unwrap();
        assert_eq!(json, "9");
        let back: Cost = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Cost::new(9));
    }
}
