//! Event time intervals.

use crate::error::BuildError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open-in-spirit time interval `[t1, t2]` of an event.
///
/// The paper's feasibility rule is `t2` of one event ≤ `t1` of the next, so
/// two events that share only the boundary instant ("back to back") do
/// *not* conflict. Times are plain `i64` ticks; the unit (minutes, epoch
/// seconds, …) is up to the instance generator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimeInterval {
    start: i64,
    end: i64,
}

impl TimeInterval {
    /// Creates the interval `[start, end]`; fails unless `start < end`.
    pub fn new(start: i64, end: i64) -> Result<TimeInterval, BuildError> {
        if start < end {
            Ok(TimeInterval { start, end })
        } else {
            Err(BuildError::EmptyInterval { start, end })
        }
    }

    /// Start time `t1`.
    #[inline]
    pub fn start(self) -> i64 {
        self.start
    }

    /// End time `t2`.
    #[inline]
    pub fn end(self) -> i64 {
        self.end
    }

    /// Duration `t2 - t1` (always positive).
    #[inline]
    pub fn duration(self) -> i64 {
        self.end - self.start
    }

    /// Whether the two intervals overlap in time (boundary contact is not
    /// an overlap).
    #[inline]
    pub fn overlaps(self, other: TimeInterval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Whether `self` can be attended before `other` (`t2 ≤ t1'`).
    #[inline]
    pub fn precedes(self, other: TimeInterval) -> bool {
        self.end <= other.start
    }

    /// The idle gap between `self` and a following `other`, or `None` when
    /// `self` does not precede `other`.
    #[inline]
    pub fn gap_before(self, other: TimeInterval) -> Option<i64> {
        if self.precedes(other) {
            Some(other.start - self.end)
        } else {
            None
        }
    }
}

impl fmt::Debug for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    #[test]
    fn rejects_empty_and_inverted() {
        assert!(TimeInterval::new(5, 5).is_err());
        assert!(TimeInterval::new(6, 5).is_err());
        assert!(TimeInterval::new(-3, -1).is_ok());
    }

    #[test]
    fn accessors() {
        let t = iv(2, 9);
        assert_eq!(t.start(), 2);
        assert_eq!(t.end(), 9);
        assert_eq!(t.duration(), 7);
    }

    #[test]
    fn overlap_is_symmetric_and_open_at_boundary() {
        assert!(iv(1, 4).overlaps(iv(3, 6)));
        assert!(iv(3, 6).overlaps(iv(1, 4)));
        // touching at the boundary is not an overlap: back-to-back is fine
        assert!(!iv(1, 4).overlaps(iv(4, 6)));
        assert!(!iv(4, 6).overlaps(iv(1, 4)));
        // containment overlaps
        assert!(iv(1, 10).overlaps(iv(3, 4)));
    }

    #[test]
    fn precedes_matches_paper_rule() {
        assert!(iv(1, 4).precedes(iv(4, 6)));
        assert!(iv(1, 4).precedes(iv(5, 6)));
        assert!(!iv(1, 4).precedes(iv(3, 6)));
        assert!(!iv(4, 6).precedes(iv(1, 4)));
    }

    #[test]
    fn gap_before() {
        assert_eq!(iv(1, 4).gap_before(iv(6, 8)), Some(2));
        assert_eq!(iv(1, 4).gap_before(iv(4, 8)), Some(0));
        assert_eq!(iv(1, 4).gap_before(iv(3, 8)), None);
    }

    #[test]
    fn ordering_is_by_start_then_end() {
        assert!(iv(1, 4) < iv(2, 3));
        assert!(iv(1, 3) < iv(1, 4));
    }

    #[test]
    fn serde_roundtrip() {
        let t = iv(60, 180);
        let json = serde_json::to_string(&t).unwrap();
        let back: TimeInterval = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
