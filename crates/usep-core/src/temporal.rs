//! End-time ordering of events.
//!
//! Every algorithm in the paper processes events sorted by non-descending
//! end time `t2`, and repeatedly needs `l_i` — the last sorted position
//! whose event can *temporally* precede the event at position `i`
//! (`t2_l ≤ t1_i`). Because the list is sorted by end time, the positions
//! that can precede `i` form a prefix, so a single binary search per event
//! suffices. [`TemporalIndex`] precomputes the order, the inverse ranks
//! and the prefix lengths once per instance.

use crate::event::Event;
use serde::{Deserialize, Serialize};

/// Precomputed end-time ordering over the events of an instance.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalIndex {
    /// Event indices sorted by `(t2, t1, id)`.
    order: Vec<u32>,
    /// `rank[event] = position of the event in `order``.
    rank: Vec<u32>,
    /// For each sorted position `p`, the number of sorted positions `q`
    /// with `t2_q ≤ t1_p` — the paper's `l_i` (as a count, so valid
    /// predecessor positions are `0..l_of[p]`).
    l_of: Vec<u32>,
}

impl TemporalIndex {
    /// Builds the index for a slice of events.
    pub fn build(events: &[Event]) -> TemporalIndex {
        let n = events.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&i| {
            let t = events[i as usize].time;
            (t.end(), t.start(), i)
        });
        let mut rank = vec![0u32; n];
        for (pos, &ev) in order.iter().enumerate() {
            rank[ev as usize] = pos as u32;
        }
        // ends[p] = end time of the event at sorted position p (non-descending)
        let ends: Vec<i64> = order.iter().map(|&i| events[i as usize].time.end()).collect();
        let l_of = order
            .iter()
            .map(|&i| {
                let start = events[i as usize].time.start();
                ends.partition_point(|&e| e <= start) as u32
            })
            .collect();
        TemporalIndex { order, rank, l_of }
    }

    /// Number of indexed events.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the instance has no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Event index at sorted position `p`.
    #[inline]
    pub fn event_at(&self, p: usize) -> u32 {
        self.order[p]
    }

    /// Sorted position of event `v`.
    #[inline]
    pub fn position_of(&self, v: u32) -> usize {
        self.rank[v as usize] as usize
    }

    /// The paper's `l_i` for sorted position `p`: positions `0..l_i(p)`
    /// hold exactly the events that end no later than `p`'s start.
    #[inline]
    pub fn l_of(&self, p: usize) -> usize {
        self.l_of[p] as usize
    }

    /// The sorted order as a slice of event indices.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Point;
    use crate::time::TimeInterval;

    fn ev(start: i64, end: i64) -> Event {
        Event::new(1, Point::ORIGIN, TimeInterval::new(start, end).unwrap())
    }

    #[test]
    fn orders_by_end_time() {
        // paper running example: v1 [1,4], v2 [3,6], v3 [1,2], v4 [6,7]
        let events = vec![ev(1, 4), ev(3, 6), ev(1, 2), ev(6, 7)];
        let idx = TemporalIndex::build(&events);
        assert_eq!(idx.order(), &[2, 0, 1, 3]); // v3, v1, v2, v4
        assert_eq!(idx.position_of(2), 0);
        assert_eq!(idx.position_of(3), 3);
        assert_eq!(idx.event_at(1), 0);
    }

    #[test]
    fn l_of_counts_temporal_predecessors() {
        let events = vec![ev(1, 4), ev(3, 6), ev(1, 2), ev(6, 7)];
        let idx = TemporalIndex::build(&events);
        // sorted: v3 [1,2], v1 [1,4], v2 [3,6], v4 [6,7]
        assert_eq!(idx.l_of(0), 0); // nothing ends by t=1
        assert_eq!(idx.l_of(1), 0); // nothing ends by t=1
        assert_eq!(idx.l_of(2), 1); // v3 ends by t=3
        assert_eq!(idx.l_of(3), 3); // v3, v1, v2 end by t=6
    }

    #[test]
    fn l_of_is_exact_boundary_inclusive() {
        // back-to-back events: end == next start counts as predecessor
        let events = vec![ev(0, 5), ev(5, 10)];
        let idx = TemporalIndex::build(&events);
        assert_eq!(idx.l_of(1), 1);
        assert_eq!(idx.l_of(0), 0);
    }

    #[test]
    fn ties_break_by_start_then_id() {
        let events = vec![ev(2, 8), ev(0, 8), ev(2, 8)];
        let idx = TemporalIndex::build(&events);
        assert_eq!(idx.order(), &[1, 0, 2]);
    }

    #[test]
    fn empty_and_singleton() {
        let idx = TemporalIndex::build(&[]);
        assert!(idx.is_empty());
        let idx = TemporalIndex::build(&[ev(0, 1)]);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.l_of(0), 0);
    }

    #[test]
    fn l_of_prefix_matches_naive_count() {
        // randomized-ish deterministic sweep
        let mut events = Vec::new();
        let mut s = 17i64;
        for _ in 0..40 {
            s = (s * 1103515245 + 12345) % 97;
            let start = s.abs() % 50;
            let dur = 1 + s.abs() % 10;
            events.push(ev(start, start + dur));
        }
        let idx = TemporalIndex::build(&events);
        for p in 0..events.len() {
            let vi = idx.event_at(p) as usize;
            let naive = (0..events.len())
                .filter(|&q| {
                    let vq = idx.event_at(q) as usize;
                    events[vq].time.end() <= events[vi].time.start()
                })
                .count();
            // because the list is sorted by end time, temporal predecessors
            // of p are exactly the prefix 0..l_of(p)
            assert_eq!(idx.l_of(p), naive, "position {p}");
            for q in 0..idx.l_of(p) {
                let vq = idx.event_at(q) as usize;
                assert!(events[vq].time.precedes(events[vi].time));
            }
        }
    }
}
