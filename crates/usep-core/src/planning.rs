//! Plannings — one schedule per user — and the USEP objective Ω.

use crate::error::{ConstraintViolation, PlanningError};
use crate::ids::{EventId, UserId};
use crate::instance::Instance;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};

/// A planning `A = ∪_u {S_u}`: one (possibly empty) schedule per user,
/// plus per-event load counters for O(1) capacity checks.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Planning {
    schedules: Vec<Schedule>,
    load: Vec<u32>,
}

impl Planning {
    /// The empty planning for an instance (every schedule empty).
    pub fn empty(inst: &Instance) -> Planning {
        Planning {
            schedules: vec![Schedule::new(); inst.num_users()],
            load: vec![0; inst.num_events()],
        }
    }

    /// Builds a planning from per-user schedules (recomputing loads).
    ///
    /// Used by the decomposed algorithms, which construct whole schedules;
    /// call [`Planning::validate`] to audit the result.
    pub fn from_schedules(inst: &Instance, schedules: Vec<Schedule>) -> Planning {
        assert_eq!(schedules.len(), inst.num_users(), "one schedule per user");
        let mut load = vec![0u32; inst.num_events()];
        for s in &schedules {
            for &v in s.events() {
                load[v.index()] += 1;
            }
        }
        Planning { schedules, load }
    }

    /// The schedule of user `u`.
    #[inline]
    pub fn schedule(&self, u: UserId) -> &Schedule {
        &self.schedules[u.index()]
    }

    /// All schedules, indexed by `UserId`.
    #[inline]
    pub fn schedules(&self) -> &[Schedule] {
        &self.schedules
    }

    /// Number of users currently attending event `v`.
    #[inline]
    pub fn load(&self, v: EventId) -> u32 {
        self.load[v.index()]
    }

    /// Remaining capacity of event `v`.
    #[inline]
    pub fn remaining_capacity(&self, inst: &Instance, v: EventId) -> u32 {
        inst.event(v).capacity.saturating_sub(self.load[v.index()])
    }

    /// Whether `(v, u)` can be added without violating any of the four
    /// USEP constraints.
    pub fn can_assign(&self, inst: &Instance, u: UserId, v: EventId) -> bool {
        self.remaining_capacity(inst, v) > 0
            && inst.mu(v, u) > 0.0
            && self.schedules[u.index()].can_insert(inst, u, v)
    }

    /// Adds event `v` to the schedule of user `u`, enforcing all four
    /// constraints.
    pub fn assign(&mut self, inst: &Instance, u: UserId, v: EventId) -> Result<(), PlanningError> {
        if self.remaining_capacity(inst, v) == 0 {
            return Err(PlanningError::EventFull(v));
        }
        if inst.mu(v, u) <= 0.0 {
            return Err(PlanningError::ZeroUtility(v, u));
        }
        match self.schedules[u.index()].try_insert(inst, u, v) {
            Ok(_) => {
                self.load[v.index()] += 1;
                Ok(())
            }
            Err(crate::schedule::InsertError::OverBudget) => Err(PlanningError::OverBudget(v, u)),
            Err(_) => Err(PlanningError::Infeasible(v, u)),
        }
    }

    /// Removes event `v` from the schedule of user `u`, returning whether
    /// it was present. Removal never invalidates a feasible planning.
    pub fn unassign(&mut self, u: UserId, v: EventId) -> bool {
        if self.schedules[u.index()].remove(v) {
            self.load[v.index()] -= 1;
            true
        } else {
            false
        }
    }

    /// The total utility score `Ω(A) = Σ_u Σ_{v ∈ S_u} μ(v, u)` (Eq. 1).
    pub fn omega(&self, inst: &Instance) -> f64 {
        crate::view::normalize_utility(
            self.schedules
                .iter()
                .enumerate()
                .map(|(u, s)| s.utility(inst, UserId(u as u32)))
                .sum::<f64>(),
        )
    }

    /// Total number of arranged event-user pairs.
    pub fn num_assignments(&self) -> usize {
        self.schedules.iter().map(Schedule::len).sum()
    }

    /// Validates all four USEP constraints, returning the first violation
    /// found.
    pub fn validate(&self, inst: &Instance) -> Result<(), ConstraintViolation> {
        // capacity (constraint 1) — recompute loads from scratch so the
        // audit does not trust the incremental counters
        let mut load = vec![0u32; inst.num_events()];
        for s in &self.schedules {
            for &v in s.events() {
                load[v.index()] += 1;
            }
        }
        debug_assert_eq!(load, self.load, "incremental load counters went stale");
        for (v, &n) in load.iter().enumerate() {
            let cap = inst.event(EventId(v as u32)).capacity;
            if n > cap {
                return Err(ConstraintViolation::Capacity {
                    event: EventId(v as u32),
                    assigned: n,
                    capacity: cap,
                });
            }
        }
        for (ui, s) in self.schedules.iter().enumerate() {
            let u = UserId(ui as u32);
            // duplicates
            for (i, &a) in s.events().iter().enumerate() {
                if s.events()[i + 1..].contains(&a) {
                    return Err(ConstraintViolation::DuplicateEvent { user: u, event: a });
                }
            }
            // feasibility (constraint 3)
            for w in s.events().windows(2) {
                if !inst.event(w[0]).time.precedes(inst.event(w[1]).time) {
                    return Err(ConstraintViolation::Feasibility {
                        user: u,
                        detail: format!("{} does not precede {}", w[0], w[1]),
                    });
                }
                if inst.cost_vv(w[0], w[1]).is_infinite() {
                    return Err(ConstraintViolation::Feasibility {
                        user: u,
                        detail: format!("leg {} → {} unreachable", w[0], w[1]),
                    });
                }
            }
            // budget (constraint 2)
            let cost = s.total_cost(inst, u);
            let budget = inst.user(u).budget;
            if cost > budget {
                return Err(ConstraintViolation::Budget {
                    user: u,
                    cost: cost.finite_value().map_or(u64::MAX, u64::from),
                    budget: u64::from(budget.value()),
                });
            }
            // utility (constraint 4)
            for &v in s.events() {
                if inst.mu(v, u) <= 0.0 {
                    return Err(ConstraintViolation::Utility { user: u, event: v });
                }
            }
        }
        Ok(())
    }

    /// Iterates over all `(user, event)` assignments.
    pub fn assignments(&self) -> impl Iterator<Item = (UserId, EventId)> + '_ {
        self.schedules
            .iter()
            .enumerate()
            .flat_map(|(u, s)| s.events().iter().map(move |&v| (UserId(u as u32), v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;
    use crate::geo::Point;
    use crate::instance::InstanceBuilder;
    use crate::time::TimeInterval;

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    fn two_user_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::new(0, 0), iv(0, 10)); // capacity 1
        b.event(2, Point::new(10, 0), iv(10, 20));
        let u0 = b.user(Point::new(0, 0), Cost::new(100));
        let u1 = b.user(Point::new(10, 0), Cost::new(100));
        for &u in &[u0, u1] {
            b.utility(EventId(0), u, 0.6);
            b.utility(EventId(1), u, 0.4);
        }
        b.build().unwrap()
    }

    #[test]
    fn assign_and_omega() {
        let inst = two_user_instance();
        let mut p = Planning::empty(&inst);
        p.assign(&inst, UserId(0), EventId(0)).unwrap();
        p.assign(&inst, UserId(0), EventId(1)).unwrap();
        p.assign(&inst, UserId(1), EventId(1)).unwrap();
        assert!((p.omega(&inst) - 1.4).abs() < 1e-6);
        assert_eq!(p.num_assignments(), 3);
        assert!(p.validate(&inst).is_ok());
    }

    #[test]
    fn capacity_enforced() {
        let inst = two_user_instance();
        let mut p = Planning::empty(&inst);
        p.assign(&inst, UserId(0), EventId(0)).unwrap();
        assert_eq!(
            p.assign(&inst, UserId(1), EventId(0)).unwrap_err(),
            PlanningError::EventFull(EventId(0))
        );
        assert_eq!(p.load(EventId(0)), 1);
        assert_eq!(p.remaining_capacity(&inst, EventId(0)), 0);
    }

    #[test]
    fn zero_utility_rejected() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 1));
        b.user(Point::ORIGIN, Cost::new(10));
        let inst = b.build().unwrap(); // μ defaults to 0
        let mut p = Planning::empty(&inst);
        assert_eq!(
            p.assign(&inst, UserId(0), EventId(0)).unwrap_err(),
            PlanningError::ZeroUtility(EventId(0), UserId(0))
        );
    }

    #[test]
    fn unassign_frees_capacity() {
        let inst = two_user_instance();
        let mut p = Planning::empty(&inst);
        p.assign(&inst, UserId(0), EventId(0)).unwrap();
        assert!(p.unassign(UserId(0), EventId(0)));
        assert!(!p.unassign(UserId(0), EventId(0)));
        p.assign(&inst, UserId(1), EventId(0)).unwrap();
        assert!(p.validate(&inst).is_ok());
    }

    #[test]
    fn can_assign_mirrors_assign() {
        let inst = two_user_instance();
        let mut p = Planning::empty(&inst);
        assert!(p.can_assign(&inst, UserId(0), EventId(0)));
        p.assign(&inst, UserId(0), EventId(0)).unwrap();
        assert!(!p.can_assign(&inst, UserId(1), EventId(0))); // full
        assert!(!p.can_assign(&inst, UserId(0), EventId(0))); // duplicate
    }

    #[test]
    fn from_schedules_recomputes_load() {
        let inst = two_user_instance();
        let mut s0 = Schedule::new();
        s0.try_insert(&inst, UserId(0), EventId(0)).unwrap();
        let mut s1 = Schedule::new();
        s1.try_insert(&inst, UserId(1), EventId(1)).unwrap();
        let p = Planning::from_schedules(&inst, vec![s0, s1]);
        assert_eq!(p.load(EventId(0)), 1);
        assert_eq!(p.load(EventId(1)), 1);
        assert!(p.validate(&inst).is_ok());
    }

    #[test]
    fn validate_catches_capacity_violation() {
        let inst = two_user_instance();
        // force both users onto the capacity-1 event
        let mut s0 = Schedule::new();
        s0.try_insert(&inst, UserId(0), EventId(0)).unwrap();
        let mut s1 = Schedule::new();
        s1.try_insert(&inst, UserId(1), EventId(0)).unwrap();
        let p = Planning::from_schedules(&inst, vec![s0, s1]);
        assert!(matches!(
            p.validate(&inst).unwrap_err(),
            ConstraintViolation::Capacity { .. }
        ));
    }

    #[test]
    fn validate_catches_budget_violation() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::new(50, 0), iv(0, 1));
        let u = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(EventId(0), u, 0.5);
        let inst = b.build().unwrap();
        let s = Schedule::from_time_ordered(&inst, vec![EventId(0)]);
        let p = Planning::from_schedules(&inst, vec![s]);
        assert!(matches!(p.validate(&inst).unwrap_err(), ConstraintViolation::Budget { .. }));
    }

    #[test]
    fn validate_catches_time_conflict() {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 10));
        b.event(1, Point::ORIGIN, iv(5, 15));
        let u = b.user(Point::ORIGIN, Cost::new(100));
        b.utility(EventId(0), u, 0.5);
        b.utility(EventId(1), u, 0.5);
        let inst = b.build().unwrap();
        let p = Planning::from_schedules(
            &inst,
            vec![Schedule { events: vec![EventId(0), EventId(1)] }],
        );
        assert!(matches!(
            p.validate(&inst).unwrap_err(),
            ConstraintViolation::Feasibility { .. }
        ));
    }

    #[test]
    fn assignments_iterator() {
        let inst = two_user_instance();
        let mut p = Planning::empty(&inst);
        p.assign(&inst, UserId(0), EventId(0)).unwrap();
        p.assign(&inst, UserId(1), EventId(1)).unwrap();
        let pairs: Vec<_> = p.assignments().collect();
        assert_eq!(pairs, vec![(UserId(0), EventId(0)), (UserId(1), EventId(1))]);
    }

    #[test]
    fn empty_planning_is_valid_with_zero_omega() {
        let inst = two_user_instance();
        let p = Planning::empty(&inst);
        assert_eq!(p.omega(&inst), 0.0);
        assert!(p.validate(&inst).is_ok());
        assert_eq!(p.num_assignments(), 0);
    }
}
