//! Locations on the integer grid.
//!
//! The paper evaluates on Manhattan distances between integer grid
//! coordinates, which conveniently yields the *bounded non-negative
//! integer* costs the problem statement requires and satisfies the
//! triangle inequality by construction.

use crate::cost::Cost;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A point on the integer grid.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Point {
    /// East-west coordinate.
    pub x: i32,
    /// North-south coordinate.
    pub y: i32,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// A point at `(x, y)`.
    #[inline]
    pub const fn new(x: i32, y: i32) -> Point {
        Point { x, y }
    }

    /// Manhattan (L1) distance to `other`, as a raw integer.
    #[inline]
    pub fn manhattan(self, other: Point) -> u64 {
        let dx = (i64::from(self.x) - i64::from(other.x)).unsigned_abs();
        let dy = (i64::from(self.y) - i64::from(other.y)).unsigned_abs();
        dx + dy
    }

    /// Manhattan distance to `other` as a travel [`Cost`].
    ///
    /// Distances beyond [`Cost::MAX_FINITE`] saturate to infinity; with the
    /// `i32` coordinate range that cannot actually happen (max distance
    /// `2^33 < u32::MAX` is false — it can reach `2^33`, so we saturate
    /// defensively).
    #[inline]
    pub fn cost_to(self, other: Point) -> Cost {
        let d = self.manhattan(other);
        if d >= u64::from(u32::MAX) {
            Cost::INFINITE
        } else {
            Cost::new(d as u32)
        }
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_basic() {
        assert_eq!(Point::new(0, 0).manhattan(Point::new(3, 4)), 7);
        assert_eq!(Point::new(-2, 5).manhattan(Point::new(2, 1)), 8);
        assert_eq!(Point::ORIGIN.manhattan(Point::ORIGIN), 0);
    }

    #[test]
    fn manhattan_is_symmetric() {
        let a = Point::new(-7, 11);
        let b = Point::new(13, -2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
    }

    #[test]
    fn manhattan_satisfies_triangle_inequality() {
        let pts = [
            Point::new(0, 0),
            Point::new(5, -3),
            Point::new(-10, 7),
            Point::new(2, 2),
        ];
        for &a in &pts {
            for &b in &pts {
                for &c in &pts {
                    assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
                }
            }
        }
    }

    #[test]
    fn extreme_coordinates_do_not_overflow() {
        let a = Point::new(i32::MIN, i32::MIN);
        let b = Point::new(i32::MAX, i32::MAX);
        // 2 * (2^32 - 1) fits comfortably in u64.
        assert_eq!(a.manhattan(b), 2 * (u64::from(u32::MAX)));
        assert!(a.cost_to(b).is_infinite());
    }

    #[test]
    fn cost_to_is_finite_on_city_scales() {
        let a = Point::new(0, 0);
        let b = Point::new(100, 200);
        assert_eq!(a.cost_to(b), Cost::new(300));
    }

    #[test]
    fn serde_roundtrip() {
        let p = Point::new(-4, 9);
        let json = serde_json::to_string(&p).unwrap();
        let back: Point = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
