//! Descriptive statistics over a planning, for reports and experiments.

use crate::ids::EventId;
use crate::instance::Instance;
use crate::planning::Planning;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a planning on an instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanningStats {
    /// Total utility score `Ω(A)`.
    pub omega: f64,
    /// Total number of event-user assignments.
    pub assignments: usize,
    /// Number of users with at least one arranged event.
    pub users_served: usize,
    /// Largest schedule length.
    pub max_schedule_len: usize,
    /// Mean schedule length over *served* users (0 if none).
    pub mean_schedule_len: f64,
    /// Mean event fill rate `load / capacity` over all events.
    pub mean_fill_rate: f64,
    /// Number of events filled to capacity.
    pub events_full: usize,
    /// Mean budget utilization `total_cost / b_u` over served users.
    pub mean_budget_utilization: f64,
}

impl PlanningStats {
    /// Computes statistics for `planning` on `inst`.
    pub fn compute(inst: &Instance, planning: &Planning) -> PlanningStats {
        let omega = planning.omega(inst);
        let mut assignments = 0usize;
        let mut users_served = 0usize;
        let mut max_len = 0usize;
        let mut budget_util_sum = 0.0;
        for u in inst.user_ids() {
            let s = planning.schedule(u);
            if s.is_empty() {
                continue;
            }
            users_served += 1;
            assignments += s.len();
            max_len = max_len.max(s.len());
            let cost = s.total_cost(inst, u);
            let budget = inst.user(u).budget;
            if budget > crate::cost::Cost::ZERO {
                budget_util_sum += cost.as_f64() / budget.as_f64();
            }
        }
        let mut fill_sum = 0.0;
        let mut events_full = 0usize;
        for v in inst.event_ids() {
            let cap = effective_capacity(inst, v);
            let load = planning.load(v).min(cap);
            if cap > 0 {
                fill_sum += f64::from(load) / f64::from(cap);
            }
            if load >= cap {
                events_full += 1;
            }
        }
        PlanningStats {
            omega,
            assignments,
            users_served,
            max_schedule_len: max_len,
            mean_schedule_len: if users_served > 0 {
                assignments as f64 / users_served as f64
            } else {
                0.0
            },
            mean_fill_rate: if inst.num_events() > 0 {
                fill_sum / inst.num_events() as f64
            } else {
                0.0
            },
            events_full,
            mean_budget_utilization: if users_served > 0 {
                budget_util_sum / users_served as f64
            } else {
                0.0
            },
        }
    }
}

/// Capacity clamped to `|U|`, the effective bound the algorithms use.
fn effective_capacity(inst: &Instance, v: EventId) -> u32 {
    inst.event(v).capacity.min(inst.num_users() as u32)
}

impl fmt::Display for PlanningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ω(A)                 = {:.4}", self.omega)?;
        writeln!(f, "assignments          = {}", self.assignments)?;
        writeln!(f, "users served         = {}", self.users_served)?;
        writeln!(
            f,
            "schedule length      = mean {:.2}, max {}",
            self.mean_schedule_len, self.max_schedule_len
        )?;
        writeln!(
            f,
            "event fill           = mean {:.1}%, {} events full",
            100.0 * self.mean_fill_rate,
            self.events_full
        )?;
        write!(f, "budget utilization   = mean {:.1}%", 100.0 * self.mean_budget_utilization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;
    use crate::geo::Point;
    use crate::instance::InstanceBuilder;
    use crate::time::TimeInterval;

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    fn make() -> (Instance, Planning) {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::new(0, 0), iv(0, 10));
        b.event(2, Point::new(4, 0), iv(10, 20));
        let u0 = b.user(Point::new(0, 0), Cost::new(40));
        let u1 = b.user(Point::new(4, 0), Cost::new(40));
        for &u in &[u0, u1] {
            b.utility(EventId(0), u, 0.5);
            b.utility(EventId(1), u, 1.0);
        }
        let inst = b.build().unwrap();
        let mut p = Planning::empty(&inst);
        p.assign(&inst, u0, EventId(0)).unwrap();
        p.assign(&inst, u0, EventId(1)).unwrap();
        p.assign(&inst, u1, EventId(1)).unwrap();
        (inst, p)
    }

    #[test]
    fn stats_basic() {
        let (inst, p) = make();
        let s = PlanningStats::compute(&inst, &p);
        assert!((s.omega - 2.5).abs() < 1e-6);
        assert_eq!(s.assignments, 3);
        assert_eq!(s.users_served, 2);
        assert_eq!(s.max_schedule_len, 2);
        assert!((s.mean_schedule_len - 1.5).abs() < 1e-9);
        // both events full: fill = 1.0 each
        assert_eq!(s.events_full, 2);
        assert!((s.mean_fill_rate - 1.0).abs() < 1e-9);
        assert!(s.mean_budget_utilization > 0.0);
    }

    #[test]
    fn stats_on_empty_planning() {
        let (inst, _) = make();
        let p = Planning::empty(&inst);
        let s = PlanningStats::compute(&inst, &p);
        assert_eq!(s.omega, 0.0);
        assert_eq!(s.users_served, 0);
        assert_eq!(s.mean_schedule_len, 0.0);
        assert_eq!(s.events_full, 0);
    }

    #[test]
    fn display_renders() {
        let (inst, p) = make();
        let s = PlanningStats::compute(&inst, &p);
        let text = s.to_string();
        assert!(text.contains("Ω(A)"));
        assert!(text.contains("users served"));
    }

    #[test]
    fn capacity_clamped_to_num_users() {
        let mut b = InstanceBuilder::new();
        b.event(1_000_000, Point::ORIGIN, iv(0, 1));
        let u = b.user(Point::ORIGIN, Cost::new(10));
        b.utility(EventId(0), u, 0.5);
        let inst = b.build().unwrap();
        let mut p = Planning::empty(&inst);
        p.assign(&inst, u, EventId(0)).unwrap();
        let s = PlanningStats::compute(&inst, &p);
        // effective capacity is |U| = 1, so the event counts as full
        assert_eq!(s.events_full, 1);
        assert!((s.mean_fill_rate - 1.0).abs() < 1e-9);
    }
}
