//! [`FlatInstance`] — the cache-friendly structure-of-arrays lowering
//! of an [`Instance`], produced once per instance by
//! [`Instance::freeze`] and borrowed read-only by every solver hot
//! path.
//!
//! # Layout
//!
//! All arrays are dense, contiguous, and indexed by the raw `u32` ids:
//!
//! * `mu` — `|U| × |V|` row-major by user (`mu[u * nv + v]`), a verbatim
//!   copy of the object matrix so μ sums stay bit-identical.
//! * `to` / `from` / `rt` — `|U| × |V|` user↔event leg costs with the
//!   Remark-2 fee folded exactly as the object accessors fold it
//!   (`cost_to_event` carries the fee, `cost_from_event` does not,
//!   `round_trip` is their saturating sum).
//! * `vv` — the `|V| × |V|` directed event-event matrix, copied from
//!   the instance's precomputed `event_costs`.
//! * `start` / `end` — event interval endpoints, for the positional
//!   prefix scan that stays ordinal even on the flat path.
//!
//! # Conflict bitmask
//!
//! `conflict` holds `|V|` rows of `⌈|V|/64⌉` little-endian words; bit
//! `j` of row `i` (word `j / 64`, bit `j % 64`) is set iff `i == j`
//! (duplicate) or the intervals of `i` and `j` overlap
//! (`start_i < end_j && start_j < end_i`). This is a pure **time**
//! predicate — deliberately not cost-based: non-adjacent mutually
//! unreachable pairs are legal in feasible schedules (only consecutive
//! legs are costed), so folding reachability into the mask would
//! over-reject and break byte-identity with the object path.
//!
//! `Schedule::insertion_point` returns `None` exactly when the probed
//! event is a duplicate of — or time-overlaps — some scheduled event
//! (transitivity of `precedes` over a time-ordered schedule makes the
//! prefix argument airtight), so a row-AND against an occupancy bitset,
//! or per-event bit probes when no bitset is maintained, reproduces the
//! accept/reject decision of the interval scan bit for bit.

use crate::cost::Cost;
use crate::ids::{EventId, UserId};
use crate::instance::Instance;
use crate::view::CoreView;
use std::cell::Cell;

thread_local! {
    static FORCE_OBJECT_PATH: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with the flat hot path disabled on this thread: solvers
/// entered inside `f` take the legacy object-accessor path instead of
/// [`Instance::freeze`].
///
/// The switch is consulted **once** per solve, at solver entry, on the
/// calling thread; the chosen view then flows into any parallel worker
/// closures, so fan-out sections need no thread-local propagation.
/// This exists for the differential suites that pin the SoA path
/// byte-identical to the pre-refactor behaviour; production code never
/// calls it.
pub fn with_object_path<R>(f: impl FnOnce() -> R) -> R {
    FORCE_OBJECT_PATH.with(|c| {
        let prev = c.replace(true);
        let r = f();
        c.set(prev);
        r
    })
}

/// Whether [`with_object_path`] is active on this thread.
#[inline]
pub fn object_path_forced() -> bool {
    FORCE_OBJECT_PATH.with(Cell::get)
}

/// The flat SoA view of one instance. See the module docs for layout.
#[derive(Clone, Debug, PartialEq)]
pub struct FlatInstance {
    nv: usize,
    nu: usize,
    /// Words per conflict/occupancy row: `⌈nv / 64⌉`.
    words: usize,
    /// `|U| × |V|` row-major utilities (verbatim copy).
    mu: Vec<f32>,
    /// `|U| × |V|` inbound leg costs (fee folded in).
    to: Vec<Cost>,
    /// `|U| × |V|` outbound leg costs (no fee).
    from: Vec<Cost>,
    /// `|U| × |V|` round trips (`to + from`, saturating).
    rt: Vec<Cost>,
    /// `|V| × |V|` directed event-event costs.
    vv: Vec<Cost>,
    /// Event interval starts, indexed by event.
    start: Vec<i64>,
    /// Event interval ends, indexed by event.
    end: Vec<i64>,
    /// Event capacities.
    capacity: Vec<u32>,
    /// User budgets.
    budget: Vec<Cost>,
    /// `|V| × words` time-conflict bitmask rows (diagonal set).
    conflict: Vec<u64>,
}

impl FlatInstance {
    /// Lowers `inst` into the flat layout. Called once per instance by
    /// [`Instance::freeze`]; every value is read through the object
    /// accessors so the copy is bit-identical by construction.
    pub fn build(inst: &Instance) -> FlatInstance {
        let nv = inst.num_events();
        let nu = inst.num_users();
        let words = nv.div_ceil(64);

        let mut mu = Vec::with_capacity(nu * nv);
        for u in inst.user_ids() {
            mu.extend_from_slice(inst.mu_row(u));
        }

        let mut to = Vec::with_capacity(nu * nv);
        let mut from = Vec::with_capacity(nu * nv);
        let mut rt = Vec::with_capacity(nu * nv);
        for u in inst.user_ids() {
            for v in inst.event_ids() {
                let t = inst.cost_to_event(u, v);
                let f = inst.cost_from_event(v, u);
                to.push(t);
                from.push(f);
                rt.push(t.add(f));
            }
        }

        let mut vv = Vec::with_capacity(nv * nv);
        for i in inst.event_ids() {
            for j in inst.event_ids() {
                vv.push(inst.cost_vv(i, j));
            }
        }

        let start: Vec<i64> = inst.events().iter().map(|e| e.time.start()).collect();
        let end: Vec<i64> = inst.events().iter().map(|e| e.time.end()).collect();
        let capacity: Vec<u32> = inst.events().iter().map(|e| e.capacity).collect();
        let budget: Vec<Cost> = inst.users().iter().map(|u| u.budget).collect();

        let conflict = build_conflict(&start, &end, words);

        FlatInstance { nv, nu, words, mu, to, from, rt, vv, start, end, capacity, budget, conflict }
    }

    /// A copy with one capacity cell amended — the capacity-change
    /// patch path ([`Instance::patch_set_capacity`]); every other array
    /// is a verbatim memcpy of the frozen original.
    pub(crate) fn amend_capacity(&self, v: EventId, capacity: u32) -> FlatInstance {
        let mut f = self.clone();
        f.capacity[v.index()] = capacity;
        f
    }

    /// A copy with one μ cell amended (`Instance::patch_set_mu`).
    pub(crate) fn amend_mu(&self, v: EventId, u: UserId, mu: f32) -> FlatInstance {
        let mut f = self.clone();
        f.mu[u.index() * self.nv + v.index()] = mu;
        f
    }

    /// A copy with one user row appended. `inst` must already hold the
    /// new user at index `u`; existing rows are memcpy'd and only the
    /// new user's `|V|` leg costs are derived.
    pub(crate) fn amend_add_user(&self, inst: &Instance, u: UserId) -> FlatInstance {
        let mut f = self.clone();
        f.nu += 1;
        f.mu.extend_from_slice(inst.mu_row(u));
        for v in inst.event_ids() {
            let t = inst.cost_to_event(u, v);
            let b = inst.cost_from_event(v, u);
            f.to.push(t);
            f.from.push(b);
            f.rt.push(t.add(b));
        }
        f.budget.push(inst.user(u).budget);
        f
    }

    /// A copy with user `u`'s row swap-removed (the last row moves into
    /// `u`'s slot, mirroring `Vec::swap_remove` on the object arrays).
    pub(crate) fn amend_remove_user(&self, u: UserId) -> FlatInstance {
        let mut f = self.clone();
        let nv = self.nv;
        let last = f.nu - 1;
        swap_remove_row(&mut f.mu, u.index(), last, nv);
        swap_remove_row(&mut f.to, u.index(), last, nv);
        swap_remove_row(&mut f.from, u.index(), last, nv);
        swap_remove_row(&mut f.rt, u.index(), last, nv);
        f.budget.swap_remove(u.index());
        f.nu -= 1;
        f
    }

    /// A copy with one event column appended. `inst` must already hold
    /// the new event at index `v` (the last index): per-user rows are
    /// re-laid-out to the new stride with only the appended cell
    /// derived, the `vv` matrix gains one computed row and column, and
    /// the conflict bitmask is re-derived from the interval endpoints
    /// (pure bit work — no cost recomputation anywhere).
    pub(crate) fn amend_add_event(&self, inst: &Instance, v: EventId) -> FlatInstance {
        let nv = self.nv + 1;
        debug_assert_eq!(v.index(), self.nv);
        let nu = self.nu;
        let words = nv.div_ceil(64);

        let mut mu = Vec::with_capacity(nu * nv);
        let mut to = Vec::with_capacity(nu * nv);
        let mut from = Vec::with_capacity(nu * nv);
        let mut rt = Vec::with_capacity(nu * nv);
        for ui in 0..nu {
            let u = UserId(ui as u32);
            let row = ui * self.nv;
            mu.extend_from_slice(&self.mu[row..row + self.nv]);
            mu.push(inst.mu_row(u)[v.index()]);
            to.extend_from_slice(&self.to[row..row + self.nv]);
            from.extend_from_slice(&self.from[row..row + self.nv]);
            rt.extend_from_slice(&self.rt[row..row + self.nv]);
            let t = inst.cost_to_event(u, v);
            let b = inst.cost_from_event(v, u);
            to.push(t);
            from.push(b);
            rt.push(t.add(b));
        }

        let mut vv = Vec::with_capacity(nv * nv);
        for i in 0..self.nv {
            vv.extend_from_slice(&self.vv[i * self.nv..(i + 1) * self.nv]);
            vv.push(inst.cost_vv(EventId(i as u32), v));
        }
        for j in 0..nv {
            vv.push(inst.cost_vv(v, EventId(j as u32)));
        }

        let mut start = self.start.clone();
        let mut end = self.end.clone();
        let mut capacity = self.capacity.clone();
        start.push(inst.event(v).time.start());
        end.push(inst.event(v).time.end());
        capacity.push(inst.event(v).capacity);
        let conflict = build_conflict(&start, &end, words);

        FlatInstance {
            nv,
            nu,
            words,
            mu,
            to,
            from,
            rt,
            vv,
            start,
            end,
            capacity,
            budget: self.budget.clone(),
            conflict,
        }
    }

    /// A copy with event `v`'s column swap-removed (the last event's
    /// column moves into `v`'s slot). Pure re-layout: no cost is
    /// recomputed, the conflict mask is re-derived from endpoints.
    pub(crate) fn amend_remove_event(&self, v: EventId) -> FlatInstance {
        let old_nv = self.nv;
        let nv = old_nv - 1;
        let nu = self.nu;
        let words = nv.div_ceil(64);
        // column map: dense index in the shrunk layout → old index
        let old_col = |j: usize| if j == v.index() { old_nv - 1 } else { j };

        let shrink_rows = |arr: &[Cost]| -> Vec<Cost> {
            let mut out = Vec::with_capacity(nu * nv);
            for ui in 0..nu {
                let row = &arr[ui * old_nv..(ui + 1) * old_nv];
                for j in 0..nv {
                    out.push(row[old_col(j)]);
                }
            }
            out
        };
        let mut mu = Vec::with_capacity(nu * nv);
        for ui in 0..nu {
            let row = &self.mu[ui * old_nv..(ui + 1) * old_nv];
            for j in 0..nv {
                mu.push(row[old_col(j)]);
            }
        }

        let mut vv = Vec::with_capacity(nv * nv);
        for i in 0..nv {
            let row = &self.vv[old_col(i) * old_nv..(old_col(i) + 1) * old_nv];
            for j in 0..nv {
                vv.push(row[old_col(j)]);
            }
        }

        let mut start = self.start.clone();
        let mut end = self.end.clone();
        let mut capacity = self.capacity.clone();
        start.swap_remove(v.index());
        end.swap_remove(v.index());
        capacity.swap_remove(v.index());
        let conflict = build_conflict(&start, &end, words);

        FlatInstance {
            nv,
            nu,
            words,
            mu,
            to: shrink_rows(&self.to),
            from: shrink_rows(&self.from),
            rt: shrink_rows(&self.rt),
            vv,
            start,
            end,
            capacity,
            budget: self.budget.clone(),
            conflict,
        }
    }

    /// Words per conflict/occupancy row (`⌈|V| / 64⌉`).
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// The time-conflict row of event `v` (bit `j` set iff `j`
    /// conflicts with `v`, diagonal included).
    #[inline]
    pub fn conflict_row(&self, v: EventId) -> &[u64] {
        &self.conflict[v.index() * self.words..(v.index() + 1) * self.words]
    }

    /// Whether any event in the `occupied` bitset conflicts with `v`:
    /// the `conflict_word & occupied_word != 0` probe.
    #[inline]
    pub fn conflicts_with_occupied(&self, occupied: &[u64], v: EventId) -> bool {
        debug_assert_eq!(occupied.len(), self.words);
        self.conflict_row(v).iter().zip(occupied).any(|(&c, &o)| c & o != 0)
    }

    /// The round-trip costs of user `u` over all events (indexed by
    /// `EventId`) — the Lemma-1 prefilter row as one contiguous slice.
    #[inline]
    pub fn round_trip_row(&self, u: UserId) -> &[Cost] {
        &self.rt[u.index() * self.nv..(u.index() + 1) * self.nv]
    }

    /// Heap footprint of this view in bytes (arrays only).
    pub fn bytes(&self) -> usize {
        Self::estimate_bytes(self.nv, self.nu)
    }

    /// Heap footprint a freeze of an `nv × nu` instance would take,
    /// without building it. Used by `usep-guard`'s pre-solve memory
    /// estimates.
    pub fn estimate_bytes(nv: usize, nu: usize) -> usize {
        let words = nv.div_ceil(64);
        let uv = nu * nv * std::mem::size_of::<Cost>();
        nu * nv * std::mem::size_of::<f32>()  // mu
            + 3 * uv                          // to + from + rt
            + nv * nv * std::mem::size_of::<Cost>() // vv
            + 2 * nv * std::mem::size_of::<i64>()   // start + end
            + nv * std::mem::size_of::<u32>()       // capacity
            + nu * std::mem::size_of::<Cost>()      // budget
            + nv * words * std::mem::size_of::<u64>() // conflict
    }
}

/// Builds the `|V| × words` time-conflict bitmask from interval
/// endpoints — shared by [`FlatInstance::build`] and the patch-path
/// amendments so both derive the identical predicate.
fn build_conflict(start: &[i64], end: &[i64], words: usize) -> Vec<u64> {
    let nv = start.len();
    let mut conflict = vec![0u64; nv * words];
    for i in 0..nv {
        let row = &mut conflict[i * words..(i + 1) * words];
        for j in 0..nv {
            let conflicts = i == j || (start[i] < end[j] && start[j] < end[i]);
            if conflicts {
                row[j / 64] |= 1u64 << (j % 64);
            }
        }
    }
    conflict
}

/// In-place `Vec::swap_remove` of row `row` in a `stride`-strided
/// row-major matrix with `last + 1` rows: the last row moves into
/// `row`'s slot, then the vector shrinks by one row.
fn swap_remove_row<T: Copy>(arr: &mut Vec<T>, row: usize, last: usize, stride: usize) {
    if row != last {
        arr.copy_within(last * stride..(last + 1) * stride, row * stride);
    }
    arr.truncate(last * stride);
}

impl CoreView for FlatInstance {
    #[inline]
    fn num_events(&self) -> usize {
        self.nv
    }
    #[inline]
    fn num_users(&self) -> usize {
        self.nu
    }
    #[inline]
    fn mu(&self, v: EventId, u: UserId) -> f64 {
        f64::from(self.mu[u.index() * self.nv + v.index()])
    }
    #[inline]
    fn mu_row(&self, u: UserId) -> &[f32] {
        &self.mu[u.index() * self.nv..(u.index() + 1) * self.nv]
    }
    #[inline]
    fn cost_to_event(&self, u: UserId, v: EventId) -> Cost {
        self.to[u.index() * self.nv + v.index()]
    }
    #[inline]
    fn cost_from_event(&self, v: EventId, u: UserId) -> Cost {
        self.from[u.index() * self.nv + v.index()]
    }
    #[inline]
    fn cost_vv(&self, i: EventId, j: EventId) -> Cost {
        self.vv[i.index() * self.nv + j.index()]
    }
    #[inline]
    fn round_trip(&self, u: UserId, v: EventId) -> Cost {
        self.rt[u.index() * self.nv + v.index()]
    }
    #[inline]
    fn budget(&self, u: UserId) -> Cost {
        self.budget[u.index()]
    }
    #[inline]
    fn capacity(&self, v: EventId) -> u32 {
        self.capacity[v.index()]
    }
    #[inline]
    fn event_start(&self, v: EventId) -> i64 {
        self.start[v.index()]
    }
    #[inline]
    fn event_end(&self, v: EventId) -> i64 {
        self.end[v.index()]
    }

    #[inline]
    fn occupied_conflicts(&self, occupied: &[u64], v: EventId) -> Option<bool> {
        Some(self.conflicts_with_occupied(occupied, v))
    }

    /// Bitmask insertion point: per-event bit probes replace the
    /// interval comparisons; a clear row section implies both "no
    /// duplicate" (diagonal bit) and "no overlap", after which the
    /// position is the ordinal prefix scan.
    fn insertion_point(&self, events: &[EventId], v: EventId) -> Option<usize> {
        let row = self.conflict_row(v);
        for &e in events {
            if row[e.index() / 64] & (1u64 << (e.index() % 64)) != 0 {
                return None;
            }
        }
        Some(self.insertion_pos_unchecked(events, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Point;
    use crate::instance::InstanceBuilder;
    use crate::schedule::Schedule;
    use crate::time::TimeInterval;

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    fn fixture() -> Instance {
        let mut b = InstanceBuilder::new();
        b.event(2, Point::new(0, 0), iv(0, 10));
        b.event(1, Point::new(10, 0), iv(10, 20)); // touches v0's endpoint
        b.event(3, Point::new(5, 5), iv(5, 15)); // overlaps both
        b.event(1, Point::new(20, 0), iv(25, 40));
        let u0 = b.user(Point::new(1, 1), Cost::new(80));
        let u1 = b.user(Point::new(8, 2), Cost::new(35));
        for v in 0..4 {
            b.utility(EventId(v), u0, 0.1 + 0.2 * f64::from(v));
            b.utility(EventId(v), u1, 0.9 - 0.2 * f64::from(v));
        }
        b.fee(EventId(1), 3);
        b.build().unwrap()
    }

    #[test]
    fn freeze_is_cached_and_shared() {
        let inst = fixture();
        let a = inst.freeze();
        let b = inst.freeze();
        assert!(std::sync::Arc::ptr_eq(&a, &b), "freeze must cache its Arc");
    }

    #[test]
    fn flat_accessors_match_object_accessors() {
        let inst = fixture();
        let flat = inst.freeze();
        assert_eq!(CoreView::num_events(&*flat), inst.num_events());
        assert_eq!(CoreView::num_users(&*flat), inst.num_users());
        for u in inst.user_ids() {
            assert_eq!(CoreView::budget(&*flat, u), inst.user(u).budget);
            assert_eq!(CoreView::mu_row(&*flat, u), inst.mu_row(u));
            for v in inst.event_ids() {
                assert_eq!(CoreView::mu(&*flat, v, u).to_bits(), inst.mu(v, u).to_bits());
                assert_eq!(CoreView::cost_to_event(&*flat, u, v), inst.cost_to_event(u, v));
                assert_eq!(CoreView::cost_from_event(&*flat, v, u), inst.cost_from_event(v, u));
                assert_eq!(CoreView::round_trip(&*flat, u, v), inst.round_trip(u, v));
            }
        }
        for i in inst.event_ids() {
            assert_eq!(CoreView::capacity(&*flat, i), inst.event(i).capacity);
            assert_eq!(CoreView::event_start(&*flat, i), inst.event(i).time.start());
            assert_eq!(CoreView::event_end(&*flat, i), inst.event(i).time.end());
            for j in inst.event_ids() {
                assert_eq!(CoreView::cost_vv(&*flat, i, j), inst.cost_vv(i, j));
            }
        }
    }

    #[test]
    fn conflict_mask_is_time_overlap_plus_diagonal() {
        let inst = fixture();
        let flat = inst.freeze();
        for i in inst.event_ids() {
            let row = flat.conflict_row(i);
            for j in inst.event_ids() {
                let bit = row[j.index() / 64] & (1 << (j.index() % 64)) != 0;
                let expect =
                    i == j || inst.event(i).time.overlaps(inst.event(j).time);
                assert_eq!(bit, expect, "conflict[{i}][{j}]");
            }
        }
        // touching endpoints (v0 ends exactly when v1 starts) are NOT a
        // conflict — precedes uses `end <= start`
        assert_eq!(
            flat.conflict_row(EventId(0))[0] & (1 << 1),
            0,
            "touching endpoints must not conflict"
        );
    }

    #[test]
    fn flat_schedule_ops_match_legacy() {
        let inst = fixture();
        let flat = inst.freeze();
        // every subset of events reachable by legal insertion, every probe
        for u in inst.user_ids() {
            let mut s = Schedule::new();
            for v in inst.event_ids() {
                let _ = s.try_insert(&inst, u, v);
                for probe in inst.event_ids() {
                    assert_eq!(
                        CoreView::insertion_point(&*flat, s.events(), probe),
                        s.insertion_point(&inst, probe),
                        "insertion_point({probe}) after {:?}",
                        s.events()
                    );
                    assert_eq!(
                        CoreView::inc_cost(&*flat, s.events(), u, probe),
                        s.inc_cost(&inst, u, probe)
                    );
                    assert_eq!(
                        CoreView::can_insert(&*flat, s.events(), u, probe),
                        s.can_insert(&inst, u, probe)
                    );
                }
                assert_eq!(CoreView::total_cost(&*flat, s.events(), u), s.total_cost(&inst, u));
                assert_eq!(
                    CoreView::utility(&*flat, s.events(), u).to_bits(),
                    s.utility(&inst, u).to_bits()
                );
            }
        }
    }

    #[test]
    fn occupied_word_probe_matches_per_event_probes() {
        let inst = fixture();
        let flat = inst.freeze();
        let words = flat.words();
        // all 2^4 occupancy bitsets of the 4 events
        for mask in 0u64..16 {
            let mut occupied = vec![0u64; words];
            occupied[0] = mask;
            let events: Vec<EventId> =
                (0..4u32).filter(|b| mask & (1 << b) != 0).map(EventId).collect();
            for v in inst.event_ids() {
                let by_word = flat.conflicts_with_occupied(&occupied, v);
                let by_probe = CoreView::insertion_point(&*flat, &events, v).is_none();
                assert_eq!(by_word, by_probe, "mask {mask:04b} probe {v}");
            }
        }
    }

    #[test]
    fn object_path_switch_scopes_to_closure() {
        assert!(!object_path_forced());
        let inner = with_object_path(|| {
            assert!(object_path_forced());
            with_object_path(object_path_forced)
        });
        assert!(inner);
        assert!(!object_path_forced());
    }

    #[test]
    fn estimate_bytes_matches_actual_layout() {
        let inst = fixture();
        let flat = inst.freeze();
        assert_eq!(flat.bytes(), FlatInstance::estimate_bytes(4, 2));
        assert!(flat.bytes() > 0);
    }
}
