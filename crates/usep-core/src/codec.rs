//! Compact binary instance format.
//!
//! JSON instances are convenient but bulky (a 100×5000 instance is tens
//! of megabytes of decimal text); this codec stores the same data in a
//! dense little-endian binary layout — typically 6–10× smaller and much
//! faster to parse — for pinning benchmark inputs and shipping large
//! instances. Layout (version 1):
//!
//! ```text
//! magic  "USEP"            4 bytes
//! version u16              = 1
//! travel  u8               0 = Grid, 1 = Explicit
//! has_fees u8              0 | 1
//! grid: time_per_unit u32  (Grid only)
//! nv u32, nu u32
//! events   nv × (capacity u32, x i32, y i32, t1 i64, t2 i64)
//! users    nu × (x i32, y i32, budget u32)
//! mu       nv·nu × f32     (row-major by user)
//! fees     nv × u32        (if has_fees)
//! explicit matrices        (Explicit only: nu·nv + nv·nv × u32)
//! ```
//!
//! Decoding re-validates through [`InstanceBuilder`](crate::InstanceBuilder), so a corrupted or
//! adversarial payload can produce an error but never an inconsistent
//! instance.

use crate::cost::Cost;
use crate::geo::Point;
use crate::instance::{Instance, TravelCost};
use crate::time::TimeInterval;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 4] = b"USEP";
const VERSION: u16 = 1;

/// Decoding failures.
#[derive(Debug)]
pub enum CodecError {
    /// The payload does not start with the `USEP` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The payload ended before the declared contents.
    Truncated {
        /// What was being read.
        reading: &'static str,
    },
    /// Trailing garbage after the declared contents.
    TrailingBytes(usize),
    /// Structurally invalid field.
    Invalid(String),
    /// The decoded data failed instance validation.
    Validation(crate::error::BuildError),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a USEP binary instance (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::Truncated { reading } => write!(f, "payload truncated while reading {reading}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after instance"),
            CodecError::Invalid(s) => write!(f, "invalid field: {s}"),
            CodecError::Validation(e) => write!(f, "decoded instance failed validation: {e}"),
        }
    }
}

impl Error for CodecError {}

/// Encodes an instance into the version-1 binary format.
pub fn encode(inst: &Instance) -> Vec<u8> {
    let nv = inst.num_events();
    let nu = inst.num_users();
    let mut out = BytesMut::with_capacity(32 + nv * 28 + nu * 12 + nv * nu * 4);
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    match inst.travel() {
        TravelCost::Grid { .. } => out.put_u8(0),
        TravelCost::Explicit { .. } => out.put_u8(1),
    }
    let has_fees = inst.event_ids().any(|v| inst.fee(v) != 0);
    out.put_u8(u8::from(has_fees));
    if let TravelCost::Grid { time_per_unit } = inst.travel() {
        out.put_u32_le(*time_per_unit);
    }
    out.put_u32_le(nv as u32);
    out.put_u32_le(nu as u32);
    for e in inst.events() {
        out.put_u32_le(e.capacity);
        out.put_i32_le(e.location.x);
        out.put_i32_le(e.location.y);
        out.put_i64_le(e.time.start());
        out.put_i64_le(e.time.end());
    }
    for u in inst.users() {
        out.put_i32_le(u.location.x);
        out.put_i32_le(u.location.y);
        out.put_u32_le(u.budget.value());
    }
    for u in inst.user_ids() {
        for &m in inst.mu_row(u) {
            out.put_f32_le(m);
        }
    }
    if has_fees {
        for v in inst.event_ids() {
            out.put_u32_le(inst.fee(v));
        }
    }
    if let TravelCost::Explicit { user_event, event_event } = inst.travel() {
        for c in user_event.iter().chain(event_event) {
            out.put_u32_le(c.finite_value().unwrap_or(u32::MAX));
        }
    }
    out.to_vec()
}

fn need(buf: &Bytes, n: usize, reading: &'static str) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated { reading })
    } else {
        Ok(())
    }
}

/// Decodes a version-1 binary instance, re-running full builder
/// validation.
pub fn decode(data: &[u8]) -> Result<Instance, CodecError> {
    let mut buf = Bytes::copy_from_slice(data);
    need(&buf, 8, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let travel_kind = buf.get_u8();
    let has_fees = match buf.get_u8() {
        0 => false,
        1 => true,
        other => return Err(CodecError::Invalid(format!("has_fees = {other}"))),
    };
    let time_per_unit = match travel_kind {
        0 => {
            need(&buf, 4, "time_per_unit")?;
            Some(buf.get_u32_le())
        }
        1 => None,
        other => return Err(CodecError::Invalid(format!("travel kind = {other}"))),
    };
    need(&buf, 8, "dimensions")?;
    let nv = buf.get_u32_le() as usize;
    let nu = buf.get_u32_le() as usize;
    // sanity cap so a corrupted header cannot trigger a huge allocation
    let declared = nv
        .checked_mul(28)
        .and_then(|e| nu.checked_mul(12).map(|u| (e, u)))
        .and_then(|(e, u)| nv.checked_mul(nu).map(|m| (e, u, m * 4)))
        .ok_or_else(|| CodecError::Invalid("dimension overflow".into()))?;
    if declared.0 + declared.1 + declared.2 > data.len().saturating_mul(2) + (1 << 20) {
        return Err(CodecError::Invalid(format!(
            "declared dimensions |V|={nv}, |U|={nu} exceed the payload size"
        )));
    }

    let mut b = crate::instance::InstanceBuilder::new();
    for i in 0..nv {
        need(&buf, 28, "events")?;
        let capacity = buf.get_u32_le();
        let x = buf.get_i32_le();
        let y = buf.get_i32_le();
        let t1 = buf.get_i64_le();
        let t2 = buf.get_i64_le();
        let time = TimeInterval::new(t1, t2)
            .map_err(|e| CodecError::Invalid(format!("event {i}: {e}")))?;
        b.event(capacity, Point::new(x, y), time);
    }
    for i in 0..nu {
        need(&buf, 12, "users")?;
        let x = buf.get_i32_le();
        let y = buf.get_i32_le();
        let budget = buf.get_u32_le();
        if budget == u32::MAX {
            return Err(CodecError::Invalid(format!("user {i}: infinite budget")));
        }
        b.user(Point::new(x, y), Cost::new(budget));
    }
    need(&buf, nv * nu * 4, "utilities")?;
    let mut mu = Vec::with_capacity(nv * nu);
    for _ in 0..nv * nu {
        mu.push(buf.get_f32_le());
    }
    b.utility_matrix(mu);
    if has_fees {
        need(&buf, nv * 4, "fees")?;
        for v in 0..nv {
            let fee = buf.get_u32_le();
            if fee > 0 {
                b.fee(crate::ids::EventId(v as u32), fee);
            }
        }
    }
    match time_per_unit {
        Some(tpu) => {
            b.travel(TravelCost::Grid { time_per_unit: tpu });
        }
        None => {
            let read_costs = |buf: &mut Bytes, n: usize| -> Result<Vec<Cost>, CodecError> {
                need(buf, n * 4, "explicit costs")?;
                Ok((0..n)
                    .map(|_| {
                        let raw = buf.get_u32_le();
                        if raw == u32::MAX {
                            Cost::INFINITE
                        } else {
                            Cost::new(raw)
                        }
                    })
                    .collect())
            };
            let user_event = read_costs(&mut buf, nu * nv)?;
            let event_event = read_costs(&mut buf, nv * nv)?;
            b.travel(TravelCost::Explicit { user_event, event_event });
        }
    }
    if buf.has_remaining() {
        return Err(CodecError::TrailingBytes(buf.remaining()));
    }
    b.build().map_err(CodecError::Validation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EventId, UserId};
    use crate::instance::InstanceBuilder;

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    fn grid_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        let v0 = b.event(2, Point::new(3, -1), iv(0, 10));
        let v1 = b.event(1, Point::new(-5, 8), iv(10, 20));
        let u0 = b.user(Point::new(0, 0), Cost::new(40));
        let u1 = b.user(Point::new(2, 2), Cost::new(25));
        b.utility(v0, u0, 0.5);
        b.utility(v1, u0, 0.25);
        b.utility(v0, u1, 0.75);
        b.fee(v1, 3);
        b.build().unwrap()
    }

    fn explicit_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        b.event(1, Point::ORIGIN, iv(0, 1));
        b.event(1, Point::ORIGIN, iv(2, 3));
        let u = b.user(Point::ORIGIN, Cost::new(50));
        b.utility(EventId(0), u, 0.5);
        b.utility(EventId(1), u, 0.5);
        b.travel(TravelCost::Explicit {
            user_event: vec![Cost::new(2), Cost::new(3)],
            event_event: vec![Cost::INFINITE, Cost::new(4), Cost::INFINITE, Cost::INFINITE],
        });
        b.build().unwrap()
    }

    #[test]
    fn grid_roundtrip() {
        let inst = grid_instance();
        let bytes = encode(&inst);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, inst);
        assert_eq!(back.fee(EventId(1)), 3);
        assert_eq!(back.mu(EventId(0), UserId(1)), 0.75);
    }

    #[test]
    fn explicit_roundtrip() {
        let inst = explicit_instance();
        let back = decode(&encode(&inst)).unwrap();
        assert_eq!(back, inst);
        assert_eq!(back.cost_vv(EventId(0), EventId(1)), Cost::new(4));
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let inst = grid_instance();
        let bin = encode(&inst).len();
        let json = serde_json::to_string(&inst).unwrap().len();
        assert!(bin < json, "binary {bin} >= json {json}");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&grid_instance());
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes).unwrap_err(), CodecError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(&grid_instance());
        bytes[4] = 99;
        assert!(matches!(decode(&bytes).unwrap_err(), CodecError::BadVersion(_)));
    }

    #[test]
    fn every_truncation_point_errors_cleanly() {
        let bytes = encode(&grid_instance());
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("decode of {cut}-byte prefix unexpectedly succeeded"),
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&grid_instance());
        bytes.push(0);
        assert!(matches!(decode(&bytes).unwrap_err(), CodecError::TrailingBytes(1)));
    }

    #[test]
    fn corrupted_dimensions_do_not_overallocate() {
        let mut bytes = encode(&grid_instance());
        // nv lives right after magic+version+kind+fees+tpu = 4+2+1+1+4 = 12
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn corrupted_utility_fails_validation() {
        let inst = grid_instance();
        let mut bytes = encode(&inst);
        // utilities start after header(12) + dims(8) + events(2·28) + users(2·12)
        let mu_off = 12 + 8 + 2 * 28 + 2 * 12;
        bytes[mu_off..mu_off + 4].copy_from_slice(&5.0f32.to_le_bytes());
        assert!(matches!(decode(&bytes).unwrap_err(), CodecError::Validation(_)));
    }

    #[test]
    fn format_is_stable_across_releases() {
        // golden bytes for a canonical tiny instance: if this test ever
        // fails, the format changed — bump VERSION instead of breaking
        // old files
        let mut b = InstanceBuilder::new();
        let v = b.event(2, Point::new(1, -2), iv(3, 7));
        let u = b.user(Point::new(0, 4), Cost::new(30));
        b.utility(v, u, 0.5);
        let inst = b.build().unwrap();
        let bytes = encode(&inst);
        let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(
            hex,
            "55534550" // "USEP"
            .to_owned()
                + "0100" // version 1
                + "00" // grid travel
                + "00" // no fees
                + "00000000" // time_per_unit 0
                + "01000000" // nv = 1
                + "01000000" // nu = 1
                + "02000000" // capacity 2
                + "01000000" // x = 1
                + "feffffff" // y = -2
                + "0300000000000000" // t1 = 3
                + "0700000000000000" // t2 = 7
                + "00000000" // user x = 0
                + "04000000" // user y = 4
                + "1e000000" // budget 30
                + "0000003f" // μ = 0.5f32
        );
        assert_eq!(decode(&bytes).unwrap(), inst);
    }

    #[test]
    fn empty_instance_roundtrip() {
        let inst = InstanceBuilder::new().build().unwrap();
        let back = decode(&encode(&inst)).unwrap();
        assert_eq!(back, inst);
    }
}
